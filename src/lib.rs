//! # DeepBurning-SEG
//!
//! A from-scratch reproduction of *"DeepBurning-SEG: Generating DNN
//! Accelerators of Segment-Grained Pipeline Architecture"* (MICRO 2022).
//!
//! This facade crate re-exports the whole workspace so applications can use
//! one dependency:
//!
//! * [`nnmodel`] — DNN graph IR, cost accounting and the benchmark zoo.
//! * [`faultsim`] — deterministic fault injection for robustness testing
//!   (`FAULT_PLAN`).
//! * [`obs`] — std-only observability: spans, counters, histograms and
//!   JSONL run traces (`OBS_LEVEL` / `OBS_OUT`).
//! * [`mip`] — the mixed-integer-programming solver used for segmentation.
//! * [`bayesopt`] — Bayesian/random search used by the co-design baselines.
//! * [`benes`] — the reconfigurable inter-PU Benes fabric.
//! * [`pucost`] — the Timeloop-like per-PU latency/energy/area model.
//! * [`spa_arch`] — the parameterized SPA hardware template.
//! * [`spa_sim`] — no-pipeline / full-pipeline / segment-pipeline / fusion
//!   execution simulators.
//! * [`autoseg`] — the end-to-end HW/SW co-design engine.
//!
//! # Quickstart
//!
//! ```
//! use deepburning_seg::prelude::*;
//!
//! let model = nnmodel::zoo::squeezenet1_0();
//! let budget = spa_arch::HwBudget::eyeriss();
//! let outcome = autoseg::AutoSeg::new(budget.clone())
//!     .design_goal(autoseg::DesignGoal::Latency)
//!     .max_pus(3)
//!     .max_segments(4)
//!     .run(&model)?;
//! assert!(outcome.design.fits(&budget));
//! assert!(!outcome.design.segments().is_empty());
//! # Ok::<(), autoseg::AutoSegError>(())
//! ```

#![warn(missing_docs)]

pub use autoseg;
pub use bayesopt;
pub use benes;
pub use faultsim;
pub use mip;
pub use nnmodel;
pub use obs;
pub use pucost;
pub use spa_arch;
pub use spa_codegen;
pub use spa_sim;

/// Convenient glob-import of the most common types.
pub mod prelude {
    pub use autoseg::{self, AutoSeg, DesignGoal};
    pub use nnmodel::{self, zoo, Graph, Workload};
    pub use spa_arch::{self, HwBudget, SpaDesign};
    pub use spa_sim::{self};
}
