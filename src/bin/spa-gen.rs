//! `spa-gen`: command-line accelerator generator.
//!
//! Runs the AutoSeg co-design flow for a zoo model under a named budget
//! and writes the design manifest (JSON) and generated Verilog next to
//! each other.
//!
//! ```text
//! spa-gen <model> <budget> [--goal latency|throughput] [--out DIR]
//!         [--deadline MS] [--checkpoint PATH [--checkpoint-every N]] [--resume PATH]
//! spa-gen --spec model.txt <budget> [...]
//!
//! models:  alexnet vgg16 mobilenet_v1 mobilenet_v2 resnet18 resnet50
//!          resnet152 squeezenet1_0 inception_v1 efficientnet_b0 ...
//!          (or a custom model via --spec; see nnmodel::spec for the format)
//! budgets: eyeriss nvdla-small nvdla-large edge-tpu zu3eg 7z045 ku115
//! ```
//!
//! Anytime execution: `--deadline` (or `DSE_DEADLINE_MS`) stops the
//! design sweep cooperatively and generates hardware from the best
//! design found so far; `--checkpoint` persists sweep state every N
//! generations and `--resume` continues bit-identically from it.
//! `FAULT_PLAN` arms the deterministic fault-injection points (see
//! `crates/faultsim`).

use deepburning_seg::prelude::*;
use deepburning_seg::spa_codegen;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

fn budget_by_name(name: &str) -> Option<HwBudget> {
    Some(match name {
        "eyeriss" => HwBudget::eyeriss(),
        "nvdla-small" => HwBudget::nvdla_small(),
        "nvdla-large" => HwBudget::nvdla_large(),
        "edge-tpu" => HwBudget::edge_tpu(),
        "zu3eg" => HwBudget::zu3eg(),
        "7z045" => HwBudget::z7045(),
        "ku115" => HwBudget::ku115(),
        _ => return None,
    })
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: spa-gen <model> <budget> [--goal latency|throughput] [--out DIR]\n\
         \x20      [--deadline MS] [--checkpoint PATH [--checkpoint-every N]] [--resume PATH]\n\
         \x20      spa-gen --spec model.txt <budget> [...]\n\
         budgets: eyeriss nvdla-small nvdla-large edge-tpu zu3eg 7z045 ku115"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    if let Err(e) = deepburning_seg::faultsim::arm_from_env() {
        eprintln!("FAULT_PLAN: {e}");
        return ExitCode::FAILURE;
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        return usage();
    }
    let model = if args[0] == "--spec" {
        if args.len() < 3 {
            return usage();
        }
        let path = &args[1];
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let stem = std::path::Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("custom");
        match nnmodel::parse_spec(stem, &text) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match nnmodel::zoo::by_name(&args[0]) {
            Some(g) => g,
            None => {
                eprintln!("unknown model `{}`", args[0]);
                return usage();
            }
        }
    };
    // With --spec, the budget is the third token; drop the extra arg so the
    // remaining flag parsing lines up.
    let args: Vec<String> = if args[0] == "--spec" {
        args[1..].to_vec()
    } else {
        args
    };
    let Some(budget) = budget_by_name(&args[1]) else {
        eprintln!("unknown budget `{}`", args[1]);
        return usage();
    };
    let mut goal = autoseg::DesignGoal::Latency;
    let mut out_dir = PathBuf::from(".");
    let mut ctl = autoseg::RunCtl::none().deadline_from_env();
    let mut checkpoint: Option<PathBuf> = None;
    let mut checkpoint_every = 1u64;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--goal" if i + 1 < args.len() => {
                goal = match args[i + 1].as_str() {
                    "latency" => autoseg::DesignGoal::Latency,
                    "throughput" => autoseg::DesignGoal::Throughput,
                    other => {
                        eprintln!("unknown goal `{other}`");
                        return usage();
                    }
                };
                i += 2;
            }
            "--out" if i + 1 < args.len() => {
                out_dir = PathBuf::from(&args[i + 1]);
                i += 2;
            }
            "--deadline" if i + 1 < args.len() => {
                let Ok(ms) = args[i + 1].parse::<u64>() else {
                    eprintln!("--deadline: `{}` is not milliseconds", args[i + 1]);
                    return usage();
                };
                ctl = ctl.deadline(Duration::from_millis(ms));
                i += 2;
            }
            "--checkpoint" if i + 1 < args.len() => {
                checkpoint = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--checkpoint-every" if i + 1 < args.len() => {
                let Ok(n) = args[i + 1].parse::<u64>() else {
                    eprintln!("--checkpoint-every: `{}` is not a count", args[i + 1]);
                    return usage();
                };
                checkpoint_every = n;
                i += 2;
            }
            "--resume" if i + 1 < args.len() => {
                ctl = ctl.resume(&args[i + 1]);
                i += 2;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }
    if let Some(path) = checkpoint {
        ctl = ctl.checkpoint(path, checkpoint_every);
    }

    let anytime = match AutoSeg::new(budget.clone())
        .design_goal(goal)
        .run_ctl(&model, &ctl)
    {
        Ok(a) => a,
        Err(e) => {
            eprintln!("co-design failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let autoseg::RunStatus::Partial(p) = anytime.status {
        eprintln!(
            "anytime: stopped early ({}) after {}/{} generations; \
             generating from the best design found so far",
            p.reason, p.completed_gens, p.planned_gens
        );
    }
    let Some(outcome) = anytime.outcome else {
        eprintln!("co-design failed: no feasible design explored before the stop");
        return ExitCode::FAILURE;
    };
    println!(
        "design: {} PUs x {} segments, {} PEs, {:.3} ms/frame ({:.1} GOP/s)",
        outcome.design.n_pus(),
        outcome.design.segments().len(),
        outcome.design.total_pes(),
        outcome.report.seconds * 1e3,
        outcome.report.gops()
    );

    let stem = format!("{}_{}", model.name(), budget.name);
    let manifest = match spa_codegen::manifest::design_manifest(&outcome.design, &outcome.workload)
    {
        Ok(m) => m,
        Err(e) => {
            eprintln!("manifest generation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rtl = match spa_codegen::verilog::top_module(&outcome.design, &outcome.workload) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("RTL generation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = spa_codegen::verilog::lint(&rtl) {
        eprintln!("generated RTL failed lint: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let manifest_path = out_dir.join(format!("{stem}.json"));
    let rtl_path = out_dir.join(format!("{stem}.v"));
    if let Err(e) = std::fs::write(&manifest_path, manifest) {
        eprintln!("write failed: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&rtl_path, rtl) {
        eprintln!("write failed: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {}", manifest_path.display());
    println!("wrote {}", rtl_path.display());
    ExitCode::SUCCESS
}
