#!/usr/bin/env bash
# Flake hunter for the socket-service suites: reruns the serve and fleet
# integration tests in a loop until one fails or the iteration budget is
# exhausted. The suites poll real processes over unix sockets, so any
# timing assumption that only holds on a fast machine shows up here long
# before it shows up in CI.
#
# Usage: scripts/stress_loop.sh [iterations] [-- extra test args]
#   iterations          loop count (default 10)
#   SERVE_TEST_TIMEOUT_MS  per-wait budget handed to the suites
#                          (default 30000; lower it to tighten the screws)
#   OFFLINE_RLIB_DIR    where offline_check.sh put the rlibs (default /tmp/rlibs)
#
# Prefers the prebuilt offline test binaries (t_serve_integration,
# t_fleet_integration next to bin_spa_serve); falls back to `cargo test`
# when they are missing.
set -uo pipefail
R="$(cd "$(dirname "$0")/.." && pwd)"
L="${OFFLINE_RLIB_DIR:-/tmp/rlibs}"
N="${1:-10}"
shift || true
[ "${1:-}" = "--" ] && shift

run_offline() { # run_offline <iter>
  local i=$1 rc=0
  for t in t_serve_integration t_fleet_integration; do
    SPA_SERVE_BIN="$L/bin_spa_serve" "$L/$t" --test-threads=4 "$@" \
      > "/tmp/stress_${t}.txt" 2>&1
    rc=$?
    if [ $rc -ne 0 ]; then
      echo "FAIL iteration $i: $t (exit $rc)"
      tail -40 "/tmp/stress_${t}.txt"
      return 1
    fi
  done
}

run_cargo() { # run_cargo <iter>
  local i=$1
  if ! cargo test -q --offline -p serve --test serve_integration \
         --test fleet_integration -- "$@" > /tmp/stress_cargo.txt 2>&1; then
    echo "FAIL iteration $i (cargo test)"
    tail -40 /tmp/stress_cargo.txt
    return 1
  fi
}

mode=cargo
if [ -x "$L/t_serve_integration" ] && [ -x "$L/t_fleet_integration" ] \
   && [ -x "$L/bin_spa_serve" ]; then
  mode=offline
fi
echo "stress_loop: $N iterations of serve_integration + fleet_integration ($mode runner)"
for i in $(seq 1 "$N"); do
  if [ "$mode" = offline ]; then
    run_offline "$i" "$@" || exit 1
  else
    run_cargo "$i" "$@" || exit 1
  fi
  echo "PASS iteration $i/$N"
done
echo "stress_loop: OK ($N clean iterations)"
