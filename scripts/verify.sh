#!/usr/bin/env bash
# Tier-1 verification: lints, build + full test suite, then the co-design
# bench kernels in quick mode and an instrumented smoke run. Runs fully
# offline (no registry access) and uses DSE_SMOKE=1 so the search-based
# benches finish in CI time.
#
# Usage: scripts/verify.sh [--skip-bench]
set -euo pipefail
cd "$(dirname "$0")/.."

export DSE_SMOKE="${DSE_SMOKE:-1}"
export DSE_THREADS="${DSE_THREADS:-4}"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (offline, -D warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release (offline) =="
cargo build --release --offline

echo "== spa-lint: source rules + semantic validators (--deny) =="
# Fails on any unwaived D1-D5 finding or semantic validation failure and
# refreshes the machine-readable results/LINT.json.
cargo run --release --offline -p lint -- --deny

echo "== cargo test (offline) =="
cargo test -q --offline

if [[ "${1:-}" != "--skip-bench" ]]; then
    echo "== bench: fig18_codesign (quick) =="
    cargo bench --offline -p bench --bench fig18_codesign -- --quick
    echo "== bench: dse_parallel (quick) =="
    cargo bench --offline -p bench --bench dse_parallel -- --quick
    echo "== bench_dse: executor speedup + cache stats (OBS_LEVEL=summary) =="
    OBS_LEVEL=summary cargo run --release --offline -p experiments --bin bench_dse
    # The instrumented smoke run must leave a real obs report in the JSON.
    python3 - <<'EOF'
import json, sys
with open("results/BENCH_dse.json") as f:
    doc = json.load(f)
obs = doc.get("obs")
if not obs or obs == "null" or not obs.get("spans"):
    sys.exit("verify: BENCH_dse.json has no obs report despite OBS_LEVEL=summary")
counters = obs.get("counters", {})
for key in ("pucost.cache.hits", "dse.candidates"):
    if counters.get(key, 0) <= 0:
        sys.exit(f"verify: obs counter {key} missing or zero")
print(f"   obs report OK: {len(obs['spans'])} spans, {len(counters)} counters")
EOF

    echo "== fault-injection smoke: scripted worker deaths + cache poison =="
    # The armed run must survive every scripted fault (exit 0), stay
    # deterministic, and record each injection in the report.
    FAULT_PLAN='dse.worker@*,cache.poison@5' \
        cargo run --release --offline -p experiments --bin bench_dse
    python3 - <<'EOF'
import json, sys
with open("results/BENCH_dse.json") as f:
    doc = json.load(f)
if not doc.get("faults_armed"):
    sys.exit("verify: FAULT_PLAN was not armed")
if doc.get("faults_injected", 0) <= 0:
    sys.exit("verify: the fault plan never fired")
if doc.get("status") != "complete" or not doc.get("deterministic"):
    sys.exit("verify: injected faults perturbed the search result")
print(f"   fault smoke OK: {doc['faults_injected']} injections, result intact")
EOF
    # The armed runs overwrite BENCH_dse.json; regenerate the canonical
    # (unarmed, instrumented) report so the checked-in artifact stays clean.
    OBS_LEVEL=summary cargo run --release --offline -p experiments --bin bench_dse
fi

echo "== golden results: regenerated CSVs vs results/*.csv =="
# The harness strips DSE_SMOKE etc. from the binaries it spawns, so the
# regeneration always uses the same full budgets the goldens were made with.
cargo test -q --offline -p experiments --test golden

echo "verify: OK"
