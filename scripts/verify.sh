#!/usr/bin/env bash
# Tier-1 verification: build + full test suite, then the co-design bench
# kernels in quick mode. Runs fully offline (no registry access) and uses
# DSE_SMOKE=1 so the search-based benches finish in CI time.
#
# Usage: scripts/verify.sh [--skip-bench]
set -euo pipefail
cd "$(dirname "$0")/.."

export DSE_SMOKE="${DSE_SMOKE:-1}"
export DSE_THREADS="${DSE_THREADS:-4}"

echo "== cargo build --release (offline) =="
cargo build --release --offline

echo "== cargo test (offline) =="
cargo test -q --offline

if [[ "${1:-}" != "--skip-bench" ]]; then
    echo "== bench: fig18_codesign (quick) =="
    cargo bench --offline -p bench --bench fig18_codesign -- --quick
    echo "== bench: dse_parallel (quick) =="
    cargo bench --offline -p bench --bench dse_parallel -- --quick
    echo "== bench_dse: executor speedup + cache stats =="
    cargo run --release --offline -p experiments --bin bench_dse
fi

echo "verify: OK"
