#!/usr/bin/env bash
# Tier-1 verification: lints, build + full test suite, then the co-design
# bench kernels in quick mode and an instrumented smoke run. Runs fully
# offline (no registry access) and uses DSE_SMOKE=1 so the search-based
# benches finish in CI time.
#
# Usage: scripts/verify.sh [--skip-bench]
set -euo pipefail
cd "$(dirname "$0")/.."

export DSE_SMOKE="${DSE_SMOKE:-1}"
export DSE_THREADS="${DSE_THREADS:-4}"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (offline, -D warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release (offline) =="
cargo build --release --offline

echo "== spa-lint: source rules + semantic validators + concurrency analysis (--deny) =="
# Fails on any unwaived finding (Layers 1 and 3), semantic validation
# failure, or lock-order cycle; refreshes results/LINT.json and
# results/LOCKS.txt.
cargo run --release --offline -p lint -- --deny
# The lock-order graph artifact must exist, be non-trivial, and be
# acyclic — a cycle is a potential deadlock in the serving stack.
test -s results/LOCKS.txt
grep -q "cycles: none" results/LOCKS.txt

echo "== cargo test (offline) =="
cargo test -q --offline

if [[ "${1:-}" != "--skip-bench" ]]; then
    echo "== bench: fig18_codesign (quick) =="
    cargo bench --offline -p bench --bench fig18_codesign -- --quick
    echo "== bench: dse_parallel (quick) =="
    cargo bench --offline -p bench --bench dse_parallel -- --quick
    echo "== bench_dse: executor speedup + cache stats (OBS_LEVEL=summary) =="
    OBS_LEVEL=summary cargo run --release --offline -p experiments --bin bench_dse
    # The instrumented smoke run must leave a real obs report in the JSON.
    python3 - <<'EOF'
import json, sys
with open("results/BENCH_dse.json") as f:
    doc = json.load(f)
obs = doc.get("obs")
if not obs or obs == "null" or not obs.get("spans"):
    sys.exit("verify: BENCH_dse.json has no obs report despite OBS_LEVEL=summary")
counters = obs.get("counters", {})
for key in ("pucost.cache.hits", "dse.candidates"):
    if counters.get(key, 0) <= 0:
        sys.exit(f"verify: obs counter {key} missing or zero")
print(f"   obs report OK: {len(obs['spans'])} spans, {len(counters)} counters")
EOF

    echo "== fault-injection smoke: scripted worker deaths + cache poison =="
    # The armed run must survive every scripted fault (exit 0), stay
    # deterministic, and record each injection in the report.
    FAULT_PLAN='dse.worker@*,cache.poison@5' \
        cargo run --release --offline -p experiments --bin bench_dse
    python3 - <<'EOF'
import json, sys
with open("results/BENCH_dse.json") as f:
    doc = json.load(f)
if not doc.get("faults_armed"):
    sys.exit("verify: FAULT_PLAN was not armed")
if doc.get("faults_injected", 0) <= 0:
    sys.exit("verify: the fault plan never fired")
if doc.get("status") != "complete" or not doc.get("deterministic"):
    sys.exit("verify: injected faults perturbed the search result")
print(f"   fault smoke OK: {doc['faults_injected']} injections, result intact")
EOF
    # The armed/instrumented runs overwrite BENCH_dse.json; regenerate the
    # canonical report in the exact pinned configuration the golden JSON
    # diff compares against (smoke budgets, 2 threads, obs off), so the
    # checked-in artifact matches `results/BENCH_dse.json`'s golden role.
    DSE_SMOKE=1 OBS_LEVEL=off \
        cargo run --release --offline -p experiments --bin bench_dse -- --threads 2

    echo "== milp engine gates: presolve must cut nodes, warm starts must hit =="
    # The canonical report just regenerated above carries the MILP engine
    # block: every configuration already proved bit-identical to the cold
    # reference inside bench_dse (it asserts before reporting), so the
    # gates here are the *performance* contracts — presolve strictly
    # reduces the branch-and-bound node count across the pinned instance
    # set, and the warm-start path actually lands hits.
    python3 - <<'EOF'
import json, sys
with open("results/BENCH_dse.json") as f:
    doc = json.load(f)
milp = doc.get("milp") or {}
cold = milp.get("cold_nodes", 0)
pre = milp.get("presolved_nodes", 0)
if cold <= 0 or pre <= 0:
    sys.exit("verify: milp block missing from BENCH_dse.json")
if pre >= cold:
    sys.exit(f"verify: presolve did not reduce B&B nodes ({cold} -> {pre})")
rate = milp.get("warm_hit_rate", 0)
if rate <= 0:
    sys.exit("verify: the warm-start path never landed a hit")
if not milp.get("deterministic"):
    sys.exit("verify: milp engine configurations diverged")
print(f"   milp OK: nodes {cold} -> {pre} with presolve, warm hit rate {rate}")
EOF

    echo "== eval-throughput smoke: batched kernels must not lose to scalar =="
    python3 - <<'EOF'
import json, sys
with open("results/BENCH_dse.json") as f:
    doc = json.load(f)
tp = doc.get("eval_throughput") or {}
ratio = tp.get("batch_vs_scalar", 0)
if ratio < 1.0:
    sys.exit(f"verify: batched kernel slower than scalar ({ratio}x)")
cache_ratio = tp.get("cache_batch_vs_scalar", 0)
# The cache paths are SipHash-dominated, so cold batch probes sit at
# parity with scalar; anything below 0.9 means the batch plumbing itself
# regressed.
if cache_ratio < 0.9:
    sys.exit(f"verify: batched cache path regressed vs scalar ({cache_ratio}x)")
curve = doc.get("speedup_curve") or []
if len(curve) < 2:
    sys.exit("verify: speedup_curve missing from BENCH_dse.json")
if tp.get("host_cpus", 1) > 1:
    if curve[1]["speedup"] <= curve[0]["speedup"]:
        sys.exit(f"verify: 2 threads did not beat 1 on a multi-core host: {curve}")
    print(f"   eval throughput OK: batch {ratio}x, 2-thread speedup {curve[1]['speedup']}x")
else:
    print(f"   eval throughput OK: batch {ratio}x (single-CPU host, curve gate skipped)")
EOF
fi

echo "== spa-serve: stdio transcript (mid-request deadline, torn cache write) =="
SERVE_TMP="$(mktemp -d)"
python3 - target/release/spa-serve "$SERVE_TMP" <<'EOF'
import json, os, subprocess, sys, time

bin_, tmp = sys.argv[1], sys.argv[2]
cache_dir = os.path.join(tmp, "cache")

EVAL = {"v": 1, "id": 1, "req": "eval_pu", "dataflow": "best",
        "layer": {"in_c": 64, "in_h": 28, "in_w": 28, "out_c": 128,
                  "out_h": 28, "out_w": 28, "kernel": 3, "stride": 1,
                  "groups": 1, "is_fc": False},
        "pu": {"rows": 16, "cols": 16}}

def run(label, lines, fault=None, pause_before_last=0.0):
    """Runs one spa-serve --stdio session; returns {id: terminal response}.

    `pause_before_last` sleeps before the final (shutdown) line so
    in-flight work can reach its own deadline instead of being cancelled
    by the shutdown. Every stdout line must be valid JSON with a known
    response kind, the process must exit 0, and stderr must contain no
    panic."""
    env = dict(os.environ)
    env["SERVE_CACHE_DIR"] = cache_dir
    env.pop("FAULT_PLAN", None)
    env.pop("SERVE_SOCKET", None)
    if fault:
        env["FAULT_PLAN"] = fault
    p = subprocess.Popen([bin_, "--stdio"], stdin=subprocess.PIPE,
                         stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                         text=True, env=env)
    for line in lines[:-1]:
        p.stdin.write(line + "\n")
    p.stdin.flush()
    if pause_before_last:
        time.sleep(pause_before_last)
    out, err = p.communicate(input=lines[-1] + "\n", timeout=120)
    if p.returncode != 0:
        sys.exit(f"verify: spa-serve ({label}) exited {p.returncode}:\n{err}")
    if "panic" in err.lower():
        sys.exit(f"verify: spa-serve ({label}) panicked:\n{err}")
    term = {}
    for line in out.splitlines():
        if not line.strip():
            continue
        doc = json.loads(line)
        if doc.get("kind") not in ("done", "partial", "progress", "error"):
            sys.exit(f"verify: spa-serve ({label}) emitted unknown kind: {line}")
        if doc["kind"] != "progress":
            term[doc.get("id")] = doc
    return term

# Session 1 (cold cache): evals, a codesign that must hit its deadline
# mid-request, malformed and unknown requests, then graceful shutdown.
lines = [json.dumps(dict(EVAL, id=1)), json.dumps(dict(EVAL, id=2)),
         json.dumps({"v": 1, "id": 4, "req": "codesign", "model": "alexnet",
                     "budget": "eyeriss", "method": "mip-baye",
                     "hw_iters": 4000, "seg_iters": 48, "deadline_ms": 50}),
         "{not json",
         json.dumps({"v": 1, "id": 6, "req": "frobnicate"}),
         json.dumps({"v": 1, "id": 3, "req": "status"}),
         json.dumps({"v": 1, "id": 7, "req": "shutdown"})]
t = run("cold", lines, pause_before_last=0.3)
for i in (1, 2):
    if t.get(i, {}).get("kind") != "done":
        sys.exit(f"verify: eval id {i} not answered done: {t.get(i)}")
cd = t.get(4, {})
if cd.get("kind") == "partial":
    if cd.get("reason") != "deadline" or cd["completed_gens"] >= cd["planned_gens"]:
        sys.exit(f"verify: codesign partial is not a typed deadline stop: {cd}")
elif cd.get("kind") != "done":  # done = legal race on a very fast machine
    sys.exit(f"verify: codesign id 4 unanswered: {cd}")
if t.get(None, {}).get("code") != "bad-json":
    sys.exit(f"verify: malformed line not rejected as bad-json: {t.get(None)}")
if t.get(6, {}).get("code") != "unknown-request":
    sys.exit(f"verify: unknown req not typed: {t.get(6)}")
st = t.get(3, {}).get("result", {})
if st.get("protocol") != 1 or not st.get("disk", {}).get("enabled"):
    sys.exit(f"verify: status report malformed: {st}")

# Session 2 (warm restart + torn write): the persisted cache must load,
# then FAULT_PLAN tears the save on shutdown.
lines = [json.dumps({"v": 1, "id": 1, "req": "status"}),
         json.dumps(dict(EVAL, id=2)),
         json.dumps({"v": 1, "id": 3, "req": "shutdown"})]
t = run("warm+torn", lines, fault="ckpt.torn@1", pause_before_last=0.3)
disk = t.get(1, {}).get("result", {}).get("disk", {})
if disk.get("loaded_entries", 0) < 1 or not str(disk.get("note", "")).startswith("loaded"):
    sys.exit(f"verify: restart did not load the persistent cache: {disk}")
if t.get(2, {}).get("kind") != "done":
    sys.exit(f"verify: eval after warm load failed: {t.get(2)}")

# Session 3 (recovery): the torn file must be detected as a typed cold
# start, never a panic, and the server must keep serving.
t = run("recovery", lines, pause_before_last=0.3)
disk = t.get(1, {}).get("result", {}).get("disk", {})
if disk.get("loaded_entries", 0) != 0 or not str(disk.get("note", "")).startswith("cold start"):
    sys.exit(f"verify: torn cache not recovered as a typed cold start: {disk}")
if t.get(2, {}).get("kind") != "done":
    sys.exit(f"verify: eval after torn-cache recovery failed: {t.get(2)}")
print("   spa-serve transcript OK: typed deadline stop, warm reload, torn-write recovery")
EOF
rm -rf "$SERVE_TMP"

echo "== bench_serve: socket service bench, telemetry gates (smoke) =="
# Small-N smoke of the request-grained telemetry stack: the unix-socket
# bench must produce real throughput in every phase, tail quantiles per
# phase, server-side queue-wait decomposition, and a telemetry overhead
# ratio inside the 10% budget.
BENCH_SERVE_CLIENTS=2 BENCH_SERVE_REQS=8 \
    cargo run --release --offline -p experiments --bin bench_serve
python3 - <<'EOF'
import json, sys
with open("results/BENCH_serve.json") as f:
    doc = json.load(f)
phases = doc.get("phases") or {}
for name in ("cold", "warm", "restart"):
    ph = phases.get(name) or {}
    if ph.get("throughput_rps", 0) <= 0:
        sys.exit(f"verify: BENCH_serve.json phase {name} has no throughput")
    for key in ("p50_us", "p99_us"):
        if key not in ph:
            sys.exit(f"verify: BENCH_serve.json phase {name} missing {key}")
ratio = (doc.get("overhead") or {}).get("ratio", 99)
if ratio >= 1.10:
    sys.exit(f"verify: telemetry overhead {ratio}x exceeds the 10% budget")
qw = doc.get("queue_wait_us") or {}
if qw.get("count", 0) <= 0 or "p99" not in qw:
    sys.exit(f"verify: no queue-wait decomposition in server metrics: {qw}")
verbs = (doc.get("server_metrics") or {}).get("verbs") or {}
if verbs.get("eval_pu", {}).get("count", 0) <= 0:
    sys.exit("verify: server metrics missing the eval_pu verb histogram")

# Fleet block: every shard must have carried real load in every phase,
# tail quantiles must be present, the restarted shard must have warmed
# from its peers' snapshots, and the overload burst must have shed.
fleet = doc.get("fleet")
if not fleet:
    sys.exit("verify: BENCH_serve.json has no fleet block")
shards = fleet.get("shards", 0)
for name in ("cold", "warm", "restart"):
    ph = (fleet.get("phases") or {}).get(name) or {}
    if ph.get("throughput_rps", 0) <= 0:
        sys.exit(f"verify: fleet phase {name} has no throughput")
    for key in ("p99_us", "p999_us"):
        if key not in ph:
            sys.exit(f"verify: fleet phase {name} missing {key}")
    rps = ph.get("per_shard_rps") or []
    if len(rps) != shards or any(r <= 0 for r in rps):
        sys.exit(f"verify: fleet phase {name} per-shard throughput not "
                 f"all non-zero across {shards} shards: {rps}")
restart = fleet.get("restart") or {}
if restart.get("warm_hit_rate", 0) <= 0:
    sys.exit(f"verify: restarted shard never warmed from snapshots: {restart}")
overload = fleet.get("overload") or {}
if overload.get("shed_rate", 0) <= 0 or overload.get("served", 0) <= 0:
    sys.exit(f"verify: overload burst did not shed (or served nothing): {overload}")
print(f"   bench_serve OK: warm p99 {phases['warm']['p99_us']} us, "
      f"overhead {ratio:.3f}x, queue-wait p99 {qw['p99']} us, "
      f"fleet warm-hit {restart['warm_hit_rate']}, "
      f"shed {overload['shed_rate']:.2f}")
EOF

echo "== spa-fleet: 3-shard smoke (kill one mid-codesign, digest-identical resume) =="
FLEET_TMP="$(mktemp -d)"
python3 - target/release/spa-fleet target/release/spa-serve "$FLEET_TMP" <<'EOF'
import json, os, signal, socket, subprocess, sys, time

fleet_bin, serve_bin, tmp = sys.argv[1], sys.argv[2], sys.argv[3]
CODESIGN = {"v": 1, "id": 1, "req": "codesign", "model": "alexnet",
            "budget": "eyeriss", "method": "mip-baye",
            "hw_iters": 4000, "seg_iters": 48, "seed": 3}

# Reference digest: the identical codesign on a plain single-shard
# spa-serve with a cold cache. The engine is deterministic, so the
# fleet's kill-and-resume run must land on this exact digest.
env = dict(os.environ)
env.pop("FAULT_PLAN", None)
env.pop("SERVE_SOCKET", None)
env["SERVE_CACHE_DIR"] = os.path.join(tmp, "ref-cache")
p = subprocess.Popen([serve_bin, "--stdio"], stdin=subprocess.PIPE,
                     stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                     text=True, env=env)
p.stdin.write(json.dumps(CODESIGN) + "\n")
p.stdin.flush()
reference = None
for line in p.stdout:
    doc = json.loads(line)
    if doc.get("id") == 1 and doc.get("kind") != "progress":
        if doc.get("kind") != "done":
            sys.exit(f"verify: reference codesign did not finish: {doc}")
        reference = doc.get("result", {}).get("digest")
        break
p.communicate(input=json.dumps({"v": 1, "id": 2, "req": "shutdown"}) + "\n",
              timeout=120)
if not reference:
    sys.exit("verify: reference codesign produced no digest")

# Boot a 3-shard fleet on a fresh directory.
sock_path = os.path.join(tmp, "fleet.sock")
env = dict(os.environ)
env.pop("FAULT_PLAN", None)
env["FLEET_PROBE_MS"] = "25"
fleet = subprocess.Popen([fleet_bin, "--socket", sock_path,
                          "--dir", os.path.join(tmp, "fleet"),
                          "--shards", "3"],
                         stderr=subprocess.PIPE, text=True, env=env)
deadline = time.time() + 60
while not os.path.exists(sock_path):
    if fleet.poll() is not None or time.time() > deadline:
        sys.exit("verify: spa-fleet never opened its socket")
    time.sleep(0.05)

s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sock_path)
s.settimeout(120)
rd = s.makefile("r")

def send(doc):
    s.sendall((json.dumps(doc) + "\n").encode())

# Kick off the codesign, find its owner shard from the first progress
# line, look up that shard's pid via the router-local status verb, and
# SIGTERM it mid-run.
send(CODESIGN)
owner = None
killed = False
terminal = None
for line in rd:
    doc = json.loads(line)
    if doc.get("id") == 1 and doc.get("kind") == "progress" and not killed:
        owner = doc.get("shard")
        send({"v": 1, "id": 90, "req": "status"})
    elif doc.get("id") == 90:
        pid = next(sh["pid"] for sh in doc["result"]["shards"]
                   if sh["idx"] == owner)
        os.kill(pid, signal.SIGTERM)
        killed = True
    elif doc.get("id") == 1 and doc.get("kind") != "progress":
        terminal = doc
        break
if terminal.get("kind") != "done":
    sys.exit(f"verify: fleet codesign lost across the kill: {terminal}")
if not killed:
    # Legal race on a very fast machine: the codesign finished before a
    # progress line arrived. The digest check below still stands.
    print("   (owner finished before the kill landed; digest check only)")
got = terminal.get("result", {}).get("digest")
if got != reference:
    sys.exit(f"verify: resumed codesign digest {got} != reference {reference}")

# The supervisor must have respawned the killed shard.
if killed:
    send({"v": 1, "id": 91, "req": "status"})
    for line in rd:
        doc = json.loads(line)
        if doc.get("id") == 91:
            info = next(sh for sh in doc["result"]["shards"]
                        if sh["idx"] == owner)
            if info.get("restarts", 0) < 1:
                sys.exit(f"verify: killed shard was never respawned: {info}")
            break

send({"v": 1, "id": 99, "req": "shutdown"})
try:
    fleet.wait(timeout=60)
except subprocess.TimeoutExpired:
    fleet.terminate()
    sys.exit("verify: spa-fleet did not stop on shutdown")
suffix = "killed mid-run and resumed" if killed else "undisturbed (fast finish)"
print(f"   spa-fleet smoke OK: digest {got} matches reference, owner shard {suffix}")
EOF
rm -rf "$FLEET_TMP"
# The fleet stage spawns and kills processes holding the same locks the
# analyzer models; the lock-order artifact must still be acyclic.
grep -q "cycles: none" results/LOCKS.txt

echo "== golden results: regenerated CSVs vs results/*.csv =="
# The harness strips DSE_SMOKE etc. from the binaries it spawns, so the
# regeneration always uses the same full budgets the goldens were made with.
cargo test -q --offline -p experiments --test golden

echo "verify: OK"
