//! Typecheck-only stub for rand 0.8 APIs used in this workspace.
//! Deterministic SplitMix64; NOT the real StdRng algorithm.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}
pub trait Rng {
    fn next_u64(&mut self) -> u64;
    fn gen<T: Standard>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.pick(self.next_u64())
    }
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}
pub trait Standard { fn from_u64(v: u64) -> Self; }
impl Standard for f64 { fn from_u64(v: u64) -> f64 { (v >> 11) as f64 / (1u64 << 53) as f64 } }
impl Standard for u64 { fn from_u64(v: u64) -> u64 { v } }
impl Standard for u32 { fn from_u64(v: u64) -> u32 { v as u32 } }
impl Standard for bool { fn from_u64(v: u64) -> bool { v & 1 == 1 } }
pub trait SampleRange<T> { fn pick(self, r: u64) -> T; }
macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn pick(self, r: u64) -> $t {
                let w = (self.end - self.start) as u64;
                assert!(w > 0, "empty range");
                self.start + (r % w) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn pick(self, r: u64) -> $t {
                let (s, e) = (*self.start(), *self.end());
                let w = (e - s) as u64 + 1;
                s + (r % w) as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, i64, i32, u8);
impl SampleRange<f64> for std::ops::Range<f64> {
    fn pick(self, r: u64) -> f64 {
        self.start + ((r >> 11) as f64 / (1u64 << 53) as f64) * (self.end - self.start)
    }
}
pub mod rngs {
    #[derive(Debug, Clone)]
    pub struct StdRng(u64);
    impl super::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self { StdRng(state) }
    }
    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}
