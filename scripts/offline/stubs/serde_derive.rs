//! Typecheck-only stub for serde_derive: derives expand to nothing.
extern crate proc_macro;
use proc_macro::TokenStream;
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream { TokenStream::new() }
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream { TokenStream::new() }
