//! Typecheck-only stub for serde: empty traits + no-op derives.
pub use serde_derive::{Deserialize, Serialize};
pub trait Serialize {}
pub trait Deserialize<'de> {}
impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
