#!/usr/bin/env bash
# Registry-free test runner: compiles and executes every crate's unit
# tests (lib `#[cfg(test)]`) plus the non-proptest integration suites
# against the rlibs produced by scripts/offline_check.sh (run that
# first). Property-based suites that depend on the real proptest crate
# only run under `cargo test`; the hand-rolled seeded ones (ring_prop,
# route_prop) run here too.
#
# Prints one PASS/FAIL/COMPILE-FAIL line per suite; exits non-zero if
# anything failed.
set -uo pipefail
R="$(cd "$(dirname "$0")/.." && pwd)"
L="${OFFLINE_RLIB_DIR:-/tmp/rlibs}"
cd "$L"
E="--edition 2021 -L $L"
X_SERDE="--extern serde=$L/libserde.rlib --extern serde_derive=$L/libserde_derive.so"
X_RAND="--extern rand=$L/librand.rlib"
fail=0
t() { # t <name> <root-file> [extra...]
  local name=$1 src=$2; shift 2
  CARGO_MANIFEST_DIR="$(dirname "$(dirname "$src")")" \
  rustc $E --test --crate-name "t_${name//-/_}" "$src" "$@" \
    -o "$L/t_${name//-/_}" -A dead_code 2> "/tmp/terr_$name.txt"
  if [ $? -ne 0 ]; then echo "COMPILE-FAIL $name"; head -30 "/tmp/terr_$name.txt"; fail=1; return; fi
  out=$("$L/t_${name//-/_}" --test-threads=4 2>&1 | tail -3)
  if echo "$out" | grep -q "test result: ok"; then
    echo "PASS $name: $(echo "$out" | grep 'test result')"
  else
    echo "FAIL $name"; "$L/t_${name//-/_}" --test-threads=4 2>&1 | tail -30; fail=1
  fi
}
t nnmodel  $R/crates/nnmodel/src/lib.rs  $X_SERDE
t faultsim $R/crates/faultsim/src/lib.rs
t obs      $R/crates/obs/src/lib.rs --extern faultsim=libfaultsim.rlib
t mip      $R/crates/mip/src/lib.rs --extern obs=libobs.rlib --extern faultsim=libfaultsim.rlib
t benes    $R/crates/benes/src/lib.rs
t pucost   $R/crates/pucost/src/lib.rs   $X_SERDE --extern nnmodel=libnnmodel.rlib --extern obs=libobs.rlib --extern faultsim=libfaultsim.rlib
t bayesopt $R/crates/bayesopt/src/lib.rs $X_RAND --extern obs=libobs.rlib
t spa-arch $R/crates/spa-arch/src/lib.rs $X_SERDE --extern nnmodel=libnnmodel.rlib --extern pucost=libpucost.rlib --extern benes=libbenes.rlib
t spa-sim  $R/crates/spa-sim/src/lib.rs  $X_SERDE --extern nnmodel=libnnmodel.rlib --extern pucost=libpucost.rlib --extern spa_arch=libspa_arch.rlib --extern benes=libbenes.rlib --extern obs=libobs.rlib
t spa-codegen $R/crates/spa-codegen/src/lib.rs --extern nnmodel=libnnmodel.rlib --extern benes=libbenes.rlib --extern pucost=libpucost.rlib --extern spa_arch=libspa_arch.rlib --extern autoseg=libautoseg.rlib --extern spa_sim=libspa_sim.rlib
t autoseg  $R/crates/autoseg/src/lib.rs  $X_SERDE --extern nnmodel=libnnmodel.rlib --extern mip=libmip.rlib --extern bayesopt=libbayesopt.rlib --extern benes=libbenes.rlib --extern pucost=libpucost.rlib --extern spa_arch=libspa_arch.rlib --extern spa_sim=libspa_sim.rlib --extern obs=libobs.rlib --extern faultsim=libfaultsim.rlib
X_ALL="--extern nnmodel=libnnmodel.rlib --extern autoseg=libautoseg.rlib --extern spa_arch=libspa_arch.rlib --extern spa_sim=libspa_sim.rlib --extern pucost=libpucost.rlib --extern benes=libbenes.rlib --extern obs=libobs.rlib --extern faultsim=libfaultsim.rlib --extern bayesopt=libbayesopt.rlib"
t experiments $R/crates/experiments/src/lib.rs $X_ALL
t serve    $R/crates/serve/src/lib.rs $X_ALL
t lint     $R/crates/lint/src/lib.rs --extern nnmodel=libnnmodel.rlib --extern spa_arch=libspa_arch.rlib
# integration tests that need no proptest
t obs-flight-stress $R/crates/obs/tests/flight_stress.rs --extern obs=libobs.rlib --extern faultsim=libfaultsim.rlib
t lint-rules $R/crates/lint/tests/rules.rs --extern lint=liblint.rlib --extern nnmodel=libnnmodel.rlib --extern spa_arch=libspa_arch.rlib
t lint-clean $R/crates/lint/tests/workspace_clean.rs --extern lint=liblint.rlib --extern nnmodel=libnnmodel.rlib --extern spa_arch=libspa_arch.rlib
t lint-locks $R/crates/lint/tests/locks.rs --extern lint=liblint.rlib --extern nnmodel=libnnmodel.rlib --extern spa_arch=libspa_arch.rlib
t pucost-batch-diff $R/crates/pucost/tests/batch_diff.rs --extern pucost=libpucost.rlib $X_SERDE --extern nnmodel=libnnmodel.rlib --extern obs=libobs.rlib --extern faultsim=libfaultsim.rlib
t dse-equiv  $R/crates/autoseg/tests/dse_equiv.rs --extern autoseg=libautoseg.rlib --extern nnmodel=libnnmodel.rlib --extern spa_arch=libspa_arch.rlib --extern spa_sim=libspa_sim.rlib --extern pucost=libpucost.rlib --extern obs=libobs.rlib
t obs-equiv  $R/crates/autoseg/tests/obs_equiv.rs --extern autoseg=libautoseg.rlib --extern nnmodel=libnnmodel.rlib --extern spa_arch=libspa_arch.rlib --extern spa_sim=libspa_sim.rlib --extern pucost=libpucost.rlib --extern obs=libobs.rlib
t resume-equiv $R/crates/autoseg/tests/resume_equiv.rs --extern autoseg=libautoseg.rlib --extern nnmodel=libnnmodel.rlib --extern spa_arch=libspa_arch.rlib --extern spa_sim=libspa_sim.rlib --extern pucost=libpucost.rlib --extern obs=libobs.rlib --extern faultsim=libfaultsim.rlib
t fault-matrix $R/crates/autoseg/tests/fault_matrix.rs --extern autoseg=libautoseg.rlib --extern nnmodel=libnnmodel.rlib --extern spa_arch=libspa_arch.rlib --extern spa_sim=libspa_sim.rlib --extern pucost=libpucost.rlib --extern obs=libobs.rlib --extern faultsim=libfaultsim.rlib --extern mip=libmip.rlib
t serve-integration $R/crates/serve/tests/serve_integration.rs --extern serve=libserve.rlib $X_ALL
t proto-fuzz $R/crates/serve/tests/proto_fuzz.rs --extern serve=libserve.rlib $X_ALL
t ring-prop $R/crates/serve/tests/ring_prop.rs --extern serve=libserve.rlib $X_ALL
# The fleet chaos suite boots real shard processes; point it at the
# spa-serve binary offline_check.sh built.
SPA_SERVE_BIN=$L/bin_spa_serve t fleet-integration $R/crates/serve/tests/fleet_integration.rs --extern serve=libserve.rlib $X_ALL
t mip-diff $R/crates/mip/tests/diff_bruteforce.rs --extern mip=libmip.rlib --extern obs=libobs.rlib
t mip-metamorphic $R/crates/mip/tests/metamorphic.rs --extern mip=libmip.rlib --extern obs=libobs.rlib
t mip-problem-fuzz $R/crates/mip/tests/problem_fuzz.rs --extern mip=libmip.rlib --extern obs=libobs.rlib
t benes-route $R/crates/benes/tests/route_prop.rs --extern benes=libbenes.rlib
t sim-cross $R/crates/spa-sim/tests/model_cross.rs $X_SERDE --extern spa_sim=libspa_sim.rlib --extern nnmodel=libnnmodel.rlib --extern pucost=libpucost.rlib --extern spa_arch=libspa_arch.rlib --extern autoseg=libautoseg.rlib --extern obs=libobs.rlib
# golden regression harness, driving the bin_* executables built by
# offline_check.sh
GOLDEN_BIN_DIR=$L t golden $R/crates/experiments/tests/golden.rs --extern experiments=libexperiments.rlib
X_WS="$X_ALL --extern deepburning_seg=libdeepburning_seg.rlib --extern mip=libmip.rlib"
t ws-integration $R/tests/integration.rs $X_SERDE $X_WS
t ws-paper $R/tests/paper_claims.rs $X_SERDE $X_WS
# Layer 3 gate: the lint binary (built by offline_check.sh) must exit 0
# under --deny and regenerate a non-empty, acyclic lock-order artifact.
if [ -x "$L/bin_lint" ]; then
  if "$L/bin_lint" --root "$R" --deny > /tmp/lint_gate.txt 2>&1 \
     && [ -s "$R/results/LOCKS.txt" ] \
     && grep -q "cycles: none" "$R/results/LOCKS.txt"; then
    echo "PASS lint-deny-gate: $(grep '^lint:' /tmp/lint_gate.txt | head -1)"
  else
    echo "FAIL lint-deny-gate"; tail -10 /tmp/lint_gate.txt; fail=1
  fi
else
  echo "SKIP lint-deny-gate (bin_lint not built)"
fi
exit $fail
