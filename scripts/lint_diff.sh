#!/usr/bin/env bash
# Incremental lint for pre-commit: report findings only in files that
# differ from a base ref (default: main), instead of all 100+ workspace
# sources. The whole workspace is still *analyzed* (Layer 3's lock and
# call graphs are global), only the reporting is filtered.
#
#   scripts/lint_diff.sh            # vs main
#   scripts/lint_diff.sh HEAD~3     # vs an arbitrary ref
#
# Exits nonzero on any unwaived finding in a changed file. Artifacts
# (results/LINT.json, results/LOCKS.txt) are NOT rewritten in this mode;
# run the full `cargo run -p lint -- --deny` before merging.
set -euo pipefail
cd "$(dirname "$0")/.."
REF="${1:-main}"
exec cargo run -q -p lint -- --deny --changed "$REF"
