#!/usr/bin/env bash
# Registry-free build of the whole workspace with bare rustc.
#
# For environments where cargo has no registry cache (`cargo --offline`
# cannot resolve even the few external deps): the three external crates
# (serde, serde_derive, rand) are replaced by the tiny stubs under
# scripts/offline/stubs/, everything else is the real workspace source.
# Crates are built in dependency order as rlibs plus every experiment /
# tool binary, so a compile error anywhere fails this script.
#
# Artifacts land in $OFFLINE_RLIB_DIR (default /tmp/rlibs); run
# scripts/offline_test.sh afterwards to execute the test suites against
# them.
set -uo pipefail
R="$(cd "$(dirname "$0")/.." && pwd)"
L="${OFFLINE_RLIB_DIR:-/tmp/rlibs}"
S="$R/scripts/offline/stubs"
mkdir -p "$L"
cd "$L"
E="--edition 2021 -L $L"

# External-dependency stubs (typecheck-accurate, deterministic runtime).
[ -f libserde_derive.so ] || rustc --edition 2021 --crate-type proc-macro --crate-name serde_derive "$S/serde_derive.rs" -o libserde_derive.so || exit 1
[ -f libserde.rlib ] || rustc $E --crate-type rlib --crate-name serde "$S/serde.rs" --extern serde_derive=libserde_derive.so -o libserde.rlib || exit 1
[ -f librand.rlib ] || rustc $E --crate-type rlib --crate-name rand "$S/rand.rs" -o librand.rlib || exit 1

X_SERDE="--extern serde=$L/libserde.rlib --extern serde_derive=$L/libserde_derive.so"
X_RAND="--extern rand=$L/librand.rlib"
fail=0
build() { # build <name> <root-file> [extra args...]
  local name=$1 src=$2; shift 2
  CARGO_MANIFEST_DIR="$(dirname "$(dirname "$src")")" \
  rustc $E --crate-type rlib --crate-name "${name//-/_}" "$src" "$@" \
    -o "lib${name//-/_}.rlib" --emit metadata,link -A dead_code 2> "/tmp/err_$name.txt"
  if [ $? -ne 0 ]; then echo "FAIL $name"; head -40 "/tmp/err_$name.txt"; fail=1; else echo "ok   $name"; fi
}
build nnmodel  $R/crates/nnmodel/src/lib.rs  $X_SERDE
build faultsim $R/crates/faultsim/src/lib.rs
build obs      $R/crates/obs/src/lib.rs --extern faultsim=libfaultsim.rlib
build mip      $R/crates/mip/src/lib.rs --extern obs=libobs.rlib --extern faultsim=libfaultsim.rlib
build benes    $R/crates/benes/src/lib.rs
build pucost   $R/crates/pucost/src/lib.rs   $X_SERDE --extern nnmodel=libnnmodel.rlib --extern obs=libobs.rlib --extern faultsim=libfaultsim.rlib
build bayesopt $R/crates/bayesopt/src/lib.rs $X_RAND --extern obs=libobs.rlib
build spa-arch $R/crates/spa-arch/src/lib.rs $X_SERDE --extern nnmodel=libnnmodel.rlib --extern pucost=libpucost.rlib --extern benes=libbenes.rlib
build spa-sim  $R/crates/spa-sim/src/lib.rs  $X_SERDE --extern nnmodel=libnnmodel.rlib --extern pucost=libpucost.rlib --extern spa_arch=libspa_arch.rlib --extern benes=libbenes.rlib --extern obs=libobs.rlib
build spa-codegen $R/crates/spa-codegen/src/lib.rs --extern nnmodel=libnnmodel.rlib --extern benes=libbenes.rlib --extern pucost=libpucost.rlib --extern spa_arch=libspa_arch.rlib
build autoseg  $R/crates/autoseg/src/lib.rs  $X_SERDE --extern nnmodel=libnnmodel.rlib --extern mip=libmip.rlib --extern bayesopt=libbayesopt.rlib --extern benes=libbenes.rlib --extern pucost=libpucost.rlib --extern spa_arch=libspa_arch.rlib --extern spa_sim=libspa_sim.rlib --extern obs=libobs.rlib --extern faultsim=libfaultsim.rlib
X_ALL="--extern nnmodel=libnnmodel.rlib --extern autoseg=libautoseg.rlib --extern spa_arch=libspa_arch.rlib --extern spa_sim=libspa_sim.rlib --extern pucost=libpucost.rlib --extern benes=libbenes.rlib --extern obs=libobs.rlib --extern faultsim=libfaultsim.rlib --extern bayesopt=libbayesopt.rlib --extern mip=libmip.rlib"
build experiments $R/crates/experiments/src/lib.rs $X_ALL
# serving layer (before the experiment bins: bench_serve links it)
build serve $R/crates/serve/src/lib.rs $X_ALL
# experiment binaries (runnable: scripts/offline_test.sh points the golden
# harness at them via GOLDEN_BIN_DIR)
for b in $R/crates/experiments/src/bin/*.rs; do
  name=$(basename "$b" .rs)
  CARGO_MANIFEST_DIR=$R/crates/experiments \
  rustc $E --crate-type bin --crate-name "$name" "$b" $X_ALL --extern experiments=libexperiments.rlib --extern serve=libserve.rlib \
    -o "$L/bin_$name" -A dead_code 2> "/tmp/err_bin_$name.txt" \
    && echo "ok   bin/$name" || { echo "FAIL bin/$name"; head -30 "/tmp/err_bin_$name.txt"; fail=1; }
done
CARGO_MANIFEST_DIR=$R/crates/serve rustc $E --crate-type bin --crate-name spa_serve $R/crates/serve/src/main.rs \
  $X_ALL --extern serve=libserve.rlib \
  -o "$L/bin_spa_serve" -A dead_code 2> /tmp/err_spa_serve.txt && echo "ok   bin/spa-serve" || { echo "FAIL bin/spa-serve"; head -30 /tmp/err_spa_serve.txt; fail=1; }
CARGO_MANIFEST_DIR=$R/crates/serve rustc $E --crate-type bin --crate-name spa_fleet $R/crates/serve/src/bin/spa-fleet.rs \
  $X_ALL --extern serve=libserve.rlib \
  -o "$L/bin_spa_fleet" -A dead_code 2> /tmp/err_spa_fleet.txt && echo "ok   bin/spa-fleet" || { echo "FAIL bin/spa-fleet"; head -30 /tmp/err_spa_fleet.txt; fail=1; }
# lint crate + binary
build lint $R/crates/lint/src/lib.rs --extern nnmodel=libnnmodel.rlib --extern spa_arch=libspa_arch.rlib
CARGO_MANIFEST_DIR=$R/crates/lint rustc $E --crate-type bin --crate-name lint $R/crates/lint/src/main.rs \
  --extern lint=liblint.rlib --extern nnmodel=libnnmodel.rlib --extern spa_arch=libspa_arch.rlib \
  -o "$L/bin_lint" -A dead_code 2> /tmp/err_bin_lint.txt && echo "ok   bin/lint" || { echo "FAIL bin/lint"; head -30 /tmp/err_bin_lint.txt; fail=1; }
# facade crate + spa-gen
build deepburning-seg $R/src/lib.rs $X_SERDE $X_ALL --extern mip=libmip.rlib --extern bayesopt=libbayesopt.rlib --extern spa_codegen=libspa_codegen.rlib
CARGO_MANIFEST_DIR=$R rustc $E --crate-type bin --crate-name spa_gen $R/src/bin/spa-gen.rs \
  $X_SERDE $X_ALL --extern mip=libmip.rlib --extern bayesopt=libbayesopt.rlib --extern spa_codegen=libspa_codegen.rlib --extern deepburning_seg=libdeepburning_seg.rlib \
  -o "$L/bin_spa_gen" -A dead_code 2> /tmp/err_spa_gen.txt && echo "ok   bin/spa-gen" || { echo "FAIL bin/spa-gen"; head -30 /tmp/err_spa_gen.txt; fail=1; }
exit $fail
