//! JSON design manifests: everything a downstream flow needs to
//! instantiate and program the customized accelerator.

use crate::json::Json;
use nnmodel::Workload;
use spa_arch::{DesignError, SpaDesign};

/// Builds the design manifest for `design` over `workload`.
///
/// The manifest contains the PU pipeline parameters, the full segmentation
/// (items, PU bindings, dataflows), the per-segment fabric switch
/// configuration, and pruning statistics.
///
/// # Errors
///
/// Returns [`DesignError::FabricUnroutable`] if some segment cannot route
/// (such designs are rejected by the engine, but hand-built ones may
/// reach here).
pub fn design_manifest(design: &SpaDesign, workload: &Workload) -> Result<String, DesignError> {
    let net = design.fabric();
    let routings = design.segment_routings(workload)?;
    let pruned = design.pruned_fabric(workload)?;

    let pus: Vec<Json> = design
        .pus
        .iter()
        .enumerate()
        .map(|(i, pu)| {
            Json::obj()
                .set("id", i)
                .set("rows", pu.rows)
                .set("cols", pu.cols)
                .set("pes", pu.num_pe())
                .set("act_buf_bytes", pu.act_buf_bytes)
                .set("wgt_buf_bytes", pu.wgt_buf_bytes)
                .set("freq_mhz", pu.freq_mhz)
        })
        .collect();

    let segments: Vec<Json> = design
        .schedule
        .segments
        .iter()
        .enumerate()
        .map(|(s, seg)| {
            let assignments: Vec<Json> = seg
                .assignments
                .iter()
                .map(|a| {
                    Json::obj()
                        .set("item", a.item)
                        .set("layer", workload.items()[a.item].name.clone())
                        .set("pu", a.pu)
                })
                .collect();
            let dataflows: Vec<Json> = (0..design.n_pus())
                .map(|pu| Json::from(design.dataflows[pu][s].to_string()))
                .collect();
            // Fabric switch settings for this segment: active muxes only.
            let switches: Vec<Json> = net
                .node_ids()
                .flat_map(|id| {
                    let r = &routings[s];
                    (0..2u8).filter_map(move |port| {
                        r.selection(id, port).map(|sel| {
                            Json::obj()
                                .set("node", id.index())
                                .set("port", port as usize)
                                .set("select", sel as usize)
                        })
                    })
                })
                .collect();
            Json::obj()
                .set("index", s)
                .set("assignments", Json::Arr(assignments))
                .set("dataflows", Json::Arr(dataflows))
                .set("fabric_switches", Json::Arr(switches))
        })
        .collect();

    let doc = Json::obj()
        .set("design", design.name.clone())
        .set("model", workload.name().to_string())
        .set(
            "platform",
            match design.platform {
                spa_arch::Platform::Asic => "asic",
                spa_arch::Platform::Fpga => "fpga",
            },
        )
        .set("batch", design.batch)
        .set("bandwidth_gbps", design.bandwidth_gbps)
        .set("total_pes", design.total_pes())
        .set("pus", Json::Arr(pus))
        .set("segments", Json::Arr(segments))
        .set(
            "fabric",
            Json::obj()
                .set("ports", net.ports())
                .set("padded_ports", net.padded_ports())
                .set("stages", net.stages())
                .set("nodes_total", net.num_nodes())
                .set("nodes_kept", pruned.nodes())
                .set("muxes_kept", pruned.muxes())
                .set("wires_kept", pruned.wires()),
        );
    Ok(doc.pretty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoseg::AutoSeg;
    use nnmodel::zoo;
    use spa_arch::HwBudget;

    fn outcome() -> autoseg::AutoSegOutcome {
        AutoSeg::new(HwBudget::nvdla_small())
            .max_pus(3)
            .max_segments(4)
            .run(&zoo::squeezenet1_0())
            .expect("feasible")
    }

    #[test]
    fn manifest_contains_all_sections() {
        let out = outcome();
        let m = design_manifest(&out.design, &out.workload).unwrap();
        for key in [
            "\"design\"",
            "\"pus\"",
            "\"segments\"",
            "\"fabric\"",
            "\"fabric_switches\"",
            "\"dataflows\"",
        ] {
            assert!(m.contains(key), "missing {key}");
        }
    }

    #[test]
    fn manifest_covers_every_item_once() {
        let out = outcome();
        let m = design_manifest(&out.design, &out.workload).unwrap();
        for item in out.workload.items() {
            let needle = format!("\"layer\": \"{}\"", item.name);
            assert_eq!(
                m.matches(&needle).count(),
                1,
                "{} not exactly once",
                item.name
            );
        }
    }

    #[test]
    fn manifest_is_deterministic() {
        let out = outcome();
        let a = design_manifest(&out.design, &out.workload).unwrap();
        let b = design_manifest(&out.design, &out.workload).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn switch_counts_match_routings() {
        let out = outcome();
        let routings = out.design.segment_routings(&out.workload).unwrap();
        let m = design_manifest(&out.design, &out.workload).unwrap();
        let total_switches: usize = routings.iter().map(|r| r.active_muxes()).sum();
        assert_eq!(m.matches("\"select\"").count(), total_switches);
    }
}
