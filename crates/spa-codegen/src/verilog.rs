//! Synthesizable Verilog emission for the customized SPA accelerator.
//!
//! [`fabric_module`] emits the pruned inter-PU Benes fabric exactly as
//! Section IV-C describes it: clockless 2:1 muxes per surviving switch
//! port, plain wires where pruning froze a selection, and a per-segment
//! configuration table driving the mux select bits. [`top_module`] wraps
//! it with per-PU parameterized instances and the dataflow schedule.
//! [`lint`] performs structural validation of the emitted text (balanced
//! blocks, no undeclared identifiers) and is run by the test-suite on
//! every generated design.

use nnmodel::Workload;
use pucost::Dataflow;
use spa_arch::{DesignError, SpaDesign};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Emits the pruned fabric as a standalone Verilog module `spa_fabric`.
///
/// # Errors
///
/// [`DesignError::FabricUnroutable`] if a segment cannot route.
pub fn fabric_module(design: &SpaDesign, workload: &Workload) -> Result<String, DesignError> {
    let net = design.fabric();
    let routings = design.segment_routings(workload)?;
    let pruned = design.pruned_fabric(workload)?;
    let ports = net.padded_ports();
    let n_segs = routings.len().max(1);
    let seg_w = usize::BITS as usize - (n_segs - 1).leading_zeros() as usize;
    let seg_w = seg_w.max(1);

    // Driver expression of each (node, input port).
    let mut driver = vec![[String::new(), String::new()]; net.num_nodes()];
    for i in 0..ports {
        let (nd, p) = net.input_port(i);
        driver[nd.index()][p as usize] = format!("in_{i}");
    }
    for id in net.node_ids() {
        for (port, t) in net.node_targets(id).into_iter().enumerate() {
            if let benes::PortTarget::Node(dst, dp) = t {
                driver[dst.index()][dp as usize] = format!("n{}_o{}", id.index(), port);
            }
        }
    }

    // Config bits: one per true mux, in (node, port) order.
    let mut cfg_bits: Vec<(usize, u8)> = Vec::new();
    for id in net.node_ids() {
        for port in 0..2u8 {
            if pruned.mux_state(id, port) == benes::MuxState::Mux {
                cfg_bits.push((id.index(), port));
            }
        }
    }

    let mut v = String::new();
    let _ = writeln!(
        v,
        "// Pruned Benes inter-PU fabric for design `{}`\n\
         // {} ports, {} stages, {}/{} nodes kept, {} muxes + {} wires",
        design.name,
        ports,
        net.stages(),
        pruned.nodes(),
        net.num_nodes(),
        pruned.muxes(),
        pruned.wires()
    );
    let _ = writeln!(v, "module spa_fabric #(");
    let _ = writeln!(v, "  parameter WIDTH = 8");
    let _ = writeln!(v, ") (");
    let _ = writeln!(v, "  input  wire [{}:0] seg_sel,", seg_w - 1);
    for i in 0..ports {
        let _ = writeln!(v, "  input  wire [WIDTH-1:0] in_{i},");
    }
    for o in 0..ports {
        let comma = if o + 1 < ports { "," } else { "" };
        let _ = writeln!(v, "  output wire [WIDTH-1:0] out_{o}{comma}");
    }
    let _ = writeln!(v, ");");

    // Configuration table.
    if !cfg_bits.is_empty() {
        let w = cfg_bits.len();
        let _ = writeln!(v, "\n  // per-segment switch configuration");
        let _ = writeln!(v, "  reg [{}:0] cfg;", w - 1);
        let _ = writeln!(v, "  always @(*) begin");
        let _ = writeln!(v, "    case (seg_sel)");
        for (s, routing) in routings.iter().enumerate() {
            let bits: String = cfg_bits
                .iter()
                .rev() // MSB first
                .map(|&(nd, port)| {
                    match routing.selection(benes::NodeId::from_index(nd), port) {
                        Some(1) => '1',
                        _ => '0',
                    }
                })
                .collect();
            let _ = writeln!(v, "      {seg_w}'d{s}: cfg = {w}'b{bits};");
        }
        let _ = writeln!(v, "      default: cfg = {w}'b{};", "0".repeat(w));
        let _ = writeln!(v, "    endcase");
        let _ = writeln!(v, "  end");
    }

    // Switch datapath.
    let _ = writeln!(v, "\n  // switching nodes (pruned)");
    for id in net.node_ids() {
        for port in 0..2u8 {
            let sig = format!("n{}_o{}", id.index(), port);
            match pruned.mux_state(id, port) {
                benes::MuxState::Removed => {}
                benes::MuxState::Wire(sel) => {
                    let _ = writeln!(v, "  wire [WIDTH-1:0] {sig};");
                    let _ = writeln!(
                        v,
                        "  assign {sig} = {};",
                        driver[id.index()][sel as usize]
                    );
                }
                benes::MuxState::Mux => {
                    let k = cfg_bits
                        .iter()
                        .position(|&(nd, p)| nd == id.index() && p == port)
                        .expect("mux registered");
                    let _ = writeln!(v, "  wire [WIDTH-1:0] {sig};");
                    let _ = writeln!(
                        v,
                        "  assign {sig} = cfg[{k}] ? {} : {};",
                        driver[id.index()][1],
                        driver[id.index()][0]
                    );
                }
            }
        }
    }

    // External outputs.
    let _ = writeln!(v, "\n  // external outputs");
    let mut out_driver = vec![None; ports];
    for id in net.node_ids() {
        for (port, t) in net.node_targets(id).into_iter().enumerate() {
            if let benes::PortTarget::Output(o) = t {
                if pruned.mux_state(id, port as u8) != benes::MuxState::Removed {
                    out_driver[o] = Some(format!("n{}_o{}", id.index(), port));
                }
            }
        }
    }
    for (o, d) in out_driver.iter().enumerate() {
        match d {
            Some(sig) => {
                let _ = writeln!(v, "  assign out_{o} = {sig};");
            }
            None => {
                let _ = writeln!(v, "  assign out_{o} = {{WIDTH{{1'b0}}}};");
            }
        }
    }
    let _ = writeln!(v, "endmodule");
    Ok(v)
}

/// Emits the full accelerator skeleton: a behavioral PU stub, the pruned
/// fabric, and a `spa_top` wiring them with per-PU parameters and the
/// per-segment dataflow schedule.
///
/// # Errors
///
/// See [`fabric_module`].
pub fn top_module(design: &SpaDesign, workload: &Workload) -> Result<String, DesignError> {
    let fabric = fabric_module(design, workload)?;
    let net = design.fabric();
    let ports = net.padded_ports();
    let n = design.n_pus();
    let n_segs = design.schedule.len().max(1);
    let seg_w = (usize::BITS as usize - (n_segs - 1).leading_zeros() as usize).max(1);

    let mut v = String::new();
    let _ = writeln!(
        v,
        "// Generated by spa-codegen for `{}` ({} PUs x {} segments)",
        design.name, n, n_segs
    );
    // Behavioral PU stub: the datapath internals come from the DeepBurning
    // template library; ports and parameters are the generation contract.
    let _ = writeln!(
        v,
        "\nmodule spa_pu #(\n  parameter ROWS = 8,\n  parameter COLS = 8,\n  parameter AB_BYTES = 1024,\n  parameter WB_BYTES = 1024,\n  parameter WIDTH = 8\n) (\n  input  wire clk,\n  input  wire rst,\n  input  wire dataflow_sel, // 0 = weight-stationary, 1 = output-stationary\n  input  wire [WIDTH-1:0] act_in,\n  output wire [WIDTH-1:0] act_out\n);\n  // datapath stub: systolic array elaborated by the template library\n  assign act_out = act_in;\nendmodule"
    );
    v.push('\n');
    v.push_str(&fabric);

    let _ = writeln!(v, "\nmodule spa_top #(");
    let _ = writeln!(v, "  parameter WIDTH = 8");
    let _ = writeln!(v, ") (");
    let _ = writeln!(v, "  input  wire clk,");
    let _ = writeln!(v, "  input  wire rst,");
    let _ = writeln!(v, "  input  wire [{}:0] seg_sel,", seg_w - 1);
    let _ = writeln!(v, "  input  wire [WIDTH-1:0] dram_in,");
    let _ = writeln!(v, "  output wire [WIDTH-1:0] dram_out");
    let _ = writeln!(v, ");");

    // Per-PU dataflow schedule.
    let _ = writeln!(v, "\n  // dataflow schedule (0 = WS, 1 = OS)");
    let _ = writeln!(v, "  reg [{}:0] df;", n - 1);
    let _ = writeln!(v, "  always @(*) begin");
    let _ = writeln!(v, "    case (seg_sel)");
    for s in 0..n_segs {
        let bits: String = (0..n)
            .rev()
            .map(|pu| match design.dataflows[pu][s] {
                Dataflow::WeightStationary => '0',
                Dataflow::OutputStationary => '1',
            })
            .collect();
        let _ = writeln!(v, "      {seg_w}'d{s}: df = {n}'b{bits};");
    }
    let _ = writeln!(v, "      default: df = {n}'b{};", "0".repeat(n));
    let _ = writeln!(v, "    endcase");
    let _ = writeln!(v, "  end");

    // PU <-> fabric wiring.
    let _ = writeln!(v, "\n  // PU pipeline");
    for i in 0..ports {
        let _ = writeln!(v, "  wire [WIDTH-1:0] pu_out_{i};");
        let _ = writeln!(v, "  wire [WIDTH-1:0] pu_in_{i};");
    }
    for (i, pu) in design.pus.iter().enumerate() {
        let _ = writeln!(
            v,
            "  spa_pu #(.ROWS({}), .COLS({}), .AB_BYTES({}), .WB_BYTES({}), .WIDTH(WIDTH)) pu{i} (\n    .clk(clk), .rst(rst), .dataflow_sel(df[{i}]),\n    .act_in(pu_in_{i}), .act_out(pu_out_{i})\n  );",
            pu.rows, pu.cols, pu.act_buf_bytes, pu.wgt_buf_bytes
        );
    }
    // Padding ports tie off.
    for i in n..ports {
        let _ = writeln!(v, "  assign pu_out_{i} = {{WIDTH{{1'b0}}}};");
    }

    let _ = writeln!(v, "\n  spa_fabric #(.WIDTH(WIDTH)) fabric (");
    let _ = writeln!(v, "    .seg_sel(seg_sel),");
    for i in 0..ports {
        let _ = writeln!(v, "    .in_{i}(pu_out_{i}),");
    }
    for o in 0..ports {
        let comma = if o + 1 < ports { "," } else { "" };
        let _ = writeln!(v, "    .out_{o}(pu_in_{o}){comma}");
    }
    let _ = writeln!(v, "  );");

    let _ = writeln!(v, "\n  assign dram_out = pu_out_{};", n - 1);
    let _ = writeln!(v, "  // PU0 also accepts the DRAM stream");
    let _ = writeln!(v, "  wire [WIDTH-1:0] unused_dram;");
    let _ = writeln!(v, "  assign unused_dram = dram_in;");
    let _ = writeln!(v, "endmodule");
    Ok(v)
}

/// Structural-lint failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LintError {
    /// `module`/`endmodule`, `case`/`endcase` or `begin`/`end` imbalance.
    Unbalanced {
        /// The construct that did not balance.
        construct: &'static str,
    },
    /// An identifier was referenced but never declared.
    Undeclared {
        /// The offending identifier.
        ident: String,
    },
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Unbalanced { construct } => write!(f, "unbalanced `{construct}` blocks"),
            LintError::Undeclared { ident } => write!(f, "undeclared identifier `{ident}`"),
        }
    }
}

impl std::error::Error for LintError {}

const KEYWORDS: &[&str] = &[
    "module", "endmodule", "input", "output", "inout", "wire", "reg", "assign", "always",
    "case", "endcase", "default", "begin", "end", "parameter", "localparam", "posedge",
    "negedge", "if", "else", "b", "d", "h",
];

/// Validates the structural soundness of emitted Verilog: balanced block
/// constructs and no references to undeclared identifiers.
///
/// # Errors
///
/// The first violation found.
pub fn lint(rtl: &str) -> Result<(), LintError> {
    // Strip comments and sized literals before tokenizing.
    let mut clean = String::with_capacity(rtl.len());
    let mut chars = rtl.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '/' && chars.peek() == Some(&'/') {
            for c2 in chars.by_ref() {
                if c2 == '\n' {
                    clean.push('\n');
                    break;
                }
            }
        } else if c == '\'' {
            // Sized literal body: consume base char + digits.
            clean.push(' ');
            while let Some(&c2) = chars.peek() {
                if c2.is_ascii_alphanumeric() || c2 == '_' {
                    chars.next();
                } else {
                    break;
                }
            }
        } else {
            clean.push(c);
        }
    }

    let balance = |open: &str, close: &str, construct: &'static str| -> Result<(), LintError> {
        let toks: Vec<&str> = clean
            .split(|c: char| !c.is_ascii_alphanumeric() && c != '_')
            .collect();
        let o = toks.iter().filter(|&&t| t == open).count();
        let c = toks.iter().filter(|&&t| t == close).count();
        if o == c {
            Ok(())
        } else {
            Err(LintError::Unbalanced { construct })
        }
    };
    balance("module", "endmodule", "module")?;
    balance("case", "endcase", "case")?;
    balance("begin", "end", "begin")?;

    // Declarations: the identifier(s) after input/output/wire/reg /
    // parameter, module names, and instance names.
    let mut declared: BTreeSet<String> = BTreeSet::new();
    let mut used: BTreeSet<String> = BTreeSet::new();
    for line in clean.lines() {
        let toks: Vec<String> = line
            .split(|c: char| !c.is_ascii_alphanumeric() && c != '_')
            .filter(|t| !t.is_empty() && !t.starts_with(|c: char| c.is_ascii_digit()))
            .map(str::to_string)
            .collect();
        let mut i = 0;
        while i < toks.len() {
            let t = toks[i].as_str();
            match t {
                "module" | "parameter" | "localparam" => {
                    if let Some(name) = toks.get(i + 1) {
                        declared.insert(name.clone());
                    }
                }
                "input" | "output" | "wire" | "reg" => {
                    // Declared name = last identifier of the declaration
                    // part (left of any initializer `=`).
                    let decl_part = line.split('=').next().unwrap_or(line);
                    let decl_toks: Vec<&str> = decl_part
                        .split(|c: char| !c.is_ascii_alphanumeric() && c != '_')
                        .filter(|t| {
                            !t.is_empty() && !t.starts_with(|c: char| c.is_ascii_digit())
                        })
                        .collect();
                    if let Some(name) = decl_toks.last() {
                        declared.insert((*name).to_string());
                    }
                }
                _ => {}
            }
            if !KEYWORDS.contains(&t) {
                used.insert(t.to_string());
            }
            i += 1;
        }
        // Instance names: `modname #(...) instname (`.
        if line.contains('#') {
            if let Some(pos) = line.rfind(')') {
                let _ = pos;
            }
        }
    }
    // Instance identifiers like `pu0` / `fabric` are declarations too:
    // pattern `<ident> #(`. Handle by declaring the token before ` (` at
    // instantiation lines — approximated by declaring any token that is
    // followed by `(` right after a `)` on the same line. To stay simple
    // and robust, declare tokens appearing immediately before `(` when the
    // line also contains `#(`.
    for line in clean.lines() {
        if let Some(hash) = line.find("#(") {
            let before: Vec<&str> = line[..hash]
                .split(|c: char| !c.is_ascii_alphanumeric() && c != '_')
                .filter(|t| !t.is_empty())
                .collect();
            if let Some(m) = before.first() {
                declared.insert((*m).to_string());
            }
            let after_close = &line[hash..];
            let toks: Vec<&str> = after_close
                .split(|c: char| !c.is_ascii_alphanumeric() && c != '_')
                .filter(|t| !t.is_empty() && !t.starts_with(|c: char| c.is_ascii_digit()))
                .collect();
            if let Some(inst) = toks.last() {
                declared.insert((*inst).to_string());
            }
        }
    }

    for u in &used {
        if !declared.contains(u) {
            return Err(LintError::Undeclared { ident: u.clone() });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoseg::AutoSeg;
    use nnmodel::zoo;
    use spa_arch::HwBudget;

    fn outcome() -> autoseg::AutoSegOutcome {
        AutoSeg::new(HwBudget::nvdla_small())
            .max_pus(4)
            .max_segments(4)
            .run(&zoo::squeezenet1_0())
            .expect("feasible")
    }

    #[test]
    fn fabric_rtl_structure() {
        let out = outcome();
        let rtl = fabric_module(&out.design, &out.workload).unwrap();
        assert!(rtl.contains("module spa_fabric"));
        assert!(rtl.contains("endmodule"));
        // Exactly the pruned mux count appears as cfg-driven muxes.
        let pruned = out.design.pruned_fabric(&out.workload).unwrap();
        assert_eq!(rtl.matches("cfg[").count(), pruned.muxes());
        lint(&rtl).unwrap();
    }

    #[test]
    fn top_rtl_structure() {
        let out = outcome();
        let rtl = top_module(&out.design, &out.workload).unwrap();
        assert!(rtl.contains("module spa_top"));
        assert!(rtl.contains("module spa_pu"));
        // One PU instance per pipeline stage with its parameters.
        for (i, pu) in out.design.pus.iter().enumerate() {
            assert!(rtl.contains(&format!("pu{i} (")), "missing pu{i}");
            assert!(rtl.contains(&format!(".ROWS({})", pu.rows)));
        }
        // One dataflow case arm per segment.
        assert_eq!(
            rtl.matches("'d").count() >= out.design.schedule.len(),
            true
        );
        lint(&rtl).unwrap();
    }

    #[test]
    fn lint_catches_unbalanced_modules() {
        assert_eq!(
            lint("module a (); wire x; assign x = 1'b0;"),
            Err(LintError::Unbalanced {
                construct: "module"
            })
        );
    }

    #[test]
    fn lint_catches_undeclared() {
        let bad = "module a ();\n  wire x;\n  assign x = ghost;\nendmodule";
        assert_eq!(
            lint(bad),
            Err(LintError::Undeclared {
                ident: "ghost".into()
            })
        );
    }

    #[test]
    fn lint_accepts_literals_and_comments() {
        let ok = "// comment with stray words\nmodule a ();\n  wire [7:0] x;\n  assign x = {8{1'b0}}; // more words\nendmodule";
        lint(ok).unwrap();
    }

    #[test]
    fn rtl_generation_is_deterministic() {
        let out = outcome();
        let a = top_module(&out.design, &out.workload).unwrap();
        let b = top_module(&out.design, &out.workload).unwrap();
        assert_eq!(a, b);
    }
}
