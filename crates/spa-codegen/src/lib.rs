//! Accelerator generation backend — the "generating" half of
//! *DeepBurning-SEG: Generating DNN Accelerators*.
//!
//! The AutoSeg engine produces an [`spa_arch::SpaDesign`]; this crate turns
//! it into deployable artifacts:
//!
//! * [`manifest::design_manifest`] — a JSON design manifest (PU
//!   parameters, segmentation, dataflows, fabric configuration per
//!   segment) consumable by downstream toolchains;
//! * [`verilog::fabric_module`] — synthesizable Verilog for the **pruned**
//!   inter-PU Benes fabric: one 2:1 mux per surviving switch port, plain
//!   wires where pruning froze a selection (Figure 10), and a per-segment
//!   configuration table;
//! * [`verilog::top_module`] — a top-level skeleton wiring PU instances to
//!   the fabric with per-PU `localparam`s (array geometry, buffer depths,
//!   dataflow schedule).
//!
//! The original DeepBurning ecosystem emits RTL from in-house templates we
//! cannot reproduce; this backend emits equivalent *structural* RTL for
//! the parts the paper details (the fabric microarchitecture of Section
//! IV-C) and parameter headers for the parts it leaves to the template
//! library (the PU datapath internals). A lightweight structural checker
//! ([`verilog::lint`]) validates every emitted module.
//!
//! # Example
//!
//! ```
//! use autoseg::AutoSeg;
//! use nnmodel::zoo;
//! use spa_arch::HwBudget;
//!
//! let out = AutoSeg::new(HwBudget::nvdla_small())
//!     .max_pus(3).max_segments(4)
//!     .run(&zoo::squeezenet1_0())?;
//! let rtl = spa_codegen::verilog::top_module(&out.design, &out.workload)
//!     .expect("routable design");
//! assert!(rtl.contains("module spa_top"));
//! spa_codegen::verilog::lint(&rtl).expect("structurally sound RTL");
//! # Ok::<(), autoseg::AutoSegError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod interp;
pub mod json;
pub mod manifest;
pub mod verilog;
