//! A miniature interpreter for the *generated* fabric RTL.
//!
//! The strongest check a generator can have is executing its own output:
//! this module parses the `spa_fabric` module emitted by
//! [`crate::verilog::fabric_module`] (a restricted, known subset of
//! Verilog: `wire`/`reg` declarations, continuous `assign`s with optional
//! ternaries, and one `case (seg_sel)` block) and evaluates it for a given
//! segment selector and input vector. The test-suite then proves, for
//! every design it generates, that the silicon netlist routes *exactly*
//! like the golden [`benes::BenesNetwork::trace`] model.

use std::collections::BTreeMap;

/// Interpretation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The RTL did not contain a `spa_fabric` module.
    MissingModule,
    /// An expression referenced an unknown signal.
    UnknownSignal(String),
    /// The requested segment has no configuration case arm.
    UnknownSegment(usize),
    /// Combinational evaluation did not converge (would indicate a cycle —
    /// impossible for emitted fabrics, checked defensively).
    NoConvergence,
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::MissingModule => write!(f, "no spa_fabric module in RTL"),
            InterpError::UnknownSignal(s) => write!(f, "unknown signal `{s}`"),
            InterpError::UnknownSegment(s) => write!(f, "no case arm for segment {s}"),
            InterpError::NoConvergence => write!(f, "combinational loop detected"),
        }
    }
}

impl std::error::Error for InterpError {}

/// A parsed right-hand side.
#[derive(Debug, Clone)]
enum Rhs {
    /// Plain signal copy.
    Signal(String),
    /// `cfg[k] ? a : b`
    Mux { bit: usize, when1: String, when0: String },
    /// All-zero replication `{WIDTH{1'b0}}`.
    Zero,
}

/// An executable model of one emitted `spa_fabric` module.
#[derive(Debug)]
pub struct FabricInterp {
    ports: usize,
    /// `assign`s in emission order: target -> rhs.
    assigns: Vec<(String, Rhs)>,
    /// Per-segment configuration bit vectors (LSB = cfg\[0\]).
    cfg: BTreeMap<usize, Vec<bool>>,
}

impl FabricInterp {
    /// Parses the `spa_fabric` module out of `rtl`.
    ///
    /// # Errors
    ///
    /// [`InterpError::MissingModule`] when no fabric module is present.
    pub fn parse(rtl: &str) -> Result<Self, InterpError> {
        let start = rtl
            .find("module spa_fabric")
            .ok_or(InterpError::MissingModule)?;
        let body = &rtl[start..];
        let end = body.find("endmodule").unwrap_or(body.len());
        let body = &body[..end];

        let mut ports = 0usize;
        let mut assigns = Vec::new();
        let mut cfg: BTreeMap<usize, Vec<bool>> = BTreeMap::new();
        for line in body.lines() {
            let line = line.trim();
            if let Some(rest) = line.strip_prefix("input  wire [WIDTH-1:0] in_") {
                let n: usize = rest
                    .trim_end_matches(',')
                    .parse()
                    .expect("emitted port index");
                ports = ports.max(n + 1);
            } else if let Some(rest) = line.strip_prefix("assign ") {
                let rest = rest.trim_end_matches(';');
                let (lhs, rhs) = rest.split_once('=').expect("emitted assign has =");
                let (lhs, rhs) = (lhs.trim().to_string(), rhs.trim());
                let parsed = if rhs.contains('?') {
                    // cfg[k] ? a : b
                    let (cond, arms) = rhs.split_once('?').expect("ternary");
                    let (a, b) = arms.split_once(':').expect("ternary arms");
                    let bit: usize = cond
                        .trim()
                        .trim_start_matches("cfg[")
                        .trim_end_matches(']')
                        .trim()
                        .trim_end_matches(']')
                        .parse()
                        .expect("cfg index");
                    Rhs::Mux {
                        bit,
                        when1: a.trim().to_string(),
                        when0: b.trim().to_string(),
                    }
                } else if rhs.starts_with('{') {
                    Rhs::Zero
                } else {
                    Rhs::Signal(rhs.to_string())
                };
                assigns.push((lhs, parsed));
            } else if line.contains("'d") && line.contains("cfg =") {
                // `<w>'d<s>: cfg = <n>'b<bits>;`
                let (arm, value) = line.split_once(':').expect("case arm");
                let seg: usize = arm
                    .split("'d")
                    .nth(1)
                    .expect("segment literal")
                    .trim()
                    .parse()
                    .expect("segment index");
                let bits_str = value
                    .split("'b")
                    .nth(1)
                    .expect("bit literal")
                    .trim_end_matches(';')
                    .trim();
                // MSB-first in the literal; store LSB-first.
                let bits: Vec<bool> = bits_str.chars().rev().map(|c| c == '1').collect();
                cfg.insert(seg, bits);
            }
        }
        Ok(Self {
            ports,
            assigns,
            cfg,
        })
    }

    /// Number of external ports.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Evaluates the netlist: feeds `inputs[i]` on `in_i` under segment
    /// `seg_sel` and returns the `out_*` vector.
    ///
    /// # Errors
    ///
    /// [`InterpError::UnknownSegment`] for an unconfigured selector (only
    /// possible when the fabric has muxes), [`InterpError::UnknownSignal`]
    /// for malformed RTL.
    pub fn eval(&self, seg_sel: usize, inputs: &[u64]) -> Result<Vec<u64>, InterpError> {
        let cfg = if self.assigns.iter().any(|(_, r)| matches!(r, Rhs::Mux { .. })) {
            Some(
                self.cfg
                    .get(&seg_sel)
                    .ok_or(InterpError::UnknownSegment(seg_sel))?,
            )
        } else {
            None
        };
        let mut values: BTreeMap<String, u64> = BTreeMap::new();
        for (i, &v) in inputs.iter().enumerate() {
            values.insert(format!("in_{i}"), v);
        }
        // The emitted assigns are topologically ordered (stage by stage),
        // but iterate to fixpoint anyway for robustness.
        for _round in 0..self.assigns.len() + 1 {
            let mut changed = false;
            for (lhs, rhs) in &self.assigns {
                let v = match rhs {
                    Rhs::Zero => Some(0),
                    Rhs::Signal(s) => values.get(s).copied(),
                    Rhs::Mux { bit, when1, when0 } => {
                        let sel = cfg
                            .map(|c| c.get(*bit).copied().unwrap_or(false))
                            .unwrap_or(false);
                        let src = if sel { when1 } else { when0 };
                        values.get(src).copied()
                    }
                };
                if let Some(v) = v {
                    if values.get(lhs) != Some(&v) {
                        values.insert(lhs.clone(), v);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        (0..self.ports)
            .map(|o| {
                values
                    .get(&format!("out_{o}"))
                    .copied()
                    .ok_or_else(|| InterpError::UnknownSignal(format!("out_{o}")))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verilog::fabric_module;
    use autoseg::AutoSeg;
    use nnmodel::{zoo, Workload};
    use spa_arch::HwBudget;

    /// The emitted netlist must route exactly like the golden Benes model
    /// for every segment of every generated design.
    #[test]
    fn netlist_matches_golden_model() {
        for (model, budget) in [
            (zoo::squeezenet1_0(), HwBudget::nvdla_small()),
            (zoo::mobilenet_v1(), HwBudget::nvdla_large()),
            (zoo::inception_v1(), HwBudget::nvdla_large()),
        ] {
            let out = AutoSeg::new(budget)
                .max_pus(4)
                .max_segments(4)
                .run(&model)
                .expect("feasible");
            check_design(&out.design, &out.workload);
        }
    }

    fn check_design(design: &spa_arch::SpaDesign, w: &Workload) {
        let rtl = fabric_module(design, w).expect("routable");
        let interp = FabricInterp::parse(&rtl).expect("parseable");
        let net = design.fabric();
        assert_eq!(interp.ports(), net.padded_ports());
        let routings = design.segment_routings(w).expect("routable");
        // Distinct tokens per input so routing is observable.
        let inputs: Vec<u64> = (0..net.padded_ports() as u64).map(|i| 100 + i).collect();
        for (s, routing) in routings.iter().enumerate() {
            let outs = interp.eval(s, &inputs).expect("evaluates");
            for i in 0..net.padded_ports() {
                for &o in &net.trace(routing, i) {
                    assert_eq!(
                        outs[o],
                        inputs[i],
                        "{}: segment {s}: input {i} must reach output {o}",
                        design.name
                    );
                }
            }
        }
    }

    #[test]
    fn full_pipeline_fabric_also_matches() {
        let w = Workload::from_graph(&zoo::alexnet_conv());
        let d = spa_sim_full(&w);
        check_design(&d, &w);
    }

    fn spa_sim_full(w: &Workload) -> spa_arch::SpaDesign {
        spa_sim::full_pipeline_design(w, &HwBudget::nvdla_large()).expect("fits")
    }

    #[test]
    fn parse_rejects_non_fabric_rtl() {
        assert_eq!(
            FabricInterp::parse("module foo(); endmodule").unwrap_err(),
            InterpError::MissingModule
        );
    }
}
