//! A minimal JSON document builder (the workspace's dependency policy
//! allows `serde` but not `serde_json`, and the manifest only needs a
//! writer, not a parser).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number (emitted with shortest-roundtrip formatting).
    Num(f64),
    /// A string (escaped on emission).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with deterministic (sorted) key order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Creates an empty object.
    pub fn obj() -> Json {
        Json::Obj(BTreeMap::new())
    }

    /// Inserts a field into an object (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(map) => {
                map.insert(key.to_string(), value.into());
            }
            // documented "# Panics" builder precondition; lint: allow(panic-path)
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Serializes with 2-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad1 = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => {
                // exact integral-value test for integer formatting; lint: allow(float-eq)
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x}");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for ch in s.chars() {
                    match ch {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    out.push_str(&pad1);
                    Json::Str(k.clone()).write(out, indent + 1);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < map.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}
impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_format() {
        assert_eq!(Json::Null.pretty(), "null");
        assert_eq!(Json::from(true).pretty(), "true");
        assert_eq!(Json::from(42u64).pretty(), "42");
        assert_eq!(Json::from(2.5).pretty(), "2.5");
        assert_eq!(Json::from("hi").pretty(), "\"hi\"");
    }

    #[test]
    fn strings_escape() {
        let s = Json::from("a\"b\\c\nd\te");
        assert_eq!(s.pretty(), "\"a\\\"b\\\\c\\nd\\te\"");
        assert_eq!(Json::from("\u{1}").pretty(), "\"\\u0001\"");
    }

    #[test]
    fn nested_structure() {
        let doc = Json::obj()
            .set("name", "spa")
            .set("pes", 256usize)
            .set("pus", vec![8usize, 16])
            .set("inner", Json::obj().set("ok", true));
        let text = doc.pretty();
        // Deterministic sorted keys.
        let inner = text.find("\"inner\"").unwrap();
        let name = text.find("\"name\"").unwrap();
        let pes = text.find("\"pes\"").unwrap();
        assert!(inner < name && name < pes);
        assert!(text.contains("\"pus\": [\n    8,\n    16\n  ]"));
    }

    #[test]
    fn empty_collections() {
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
        assert_eq!(Json::obj().pretty(), "{}");
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn set_on_array_panics() {
        let _ = Json::Arr(vec![]).set("x", 1u64);
    }
}
