//! Linear expressions over problem variables.

use std::fmt;
use std::ops::{Add, AddAssign, Mul};

/// Handle to a variable of a [`crate::Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Dense index of the variable.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A linear expression `sum(coef_i * var_i) + constant`.
///
/// Built either term-by-term with [`LinExpr::add_term`] or at once with
/// [`LinExpr::terms`]; `+` and `*` operators are provided for convenience.
///
/// ```
/// use mip::{LinExpr, Problem, Sense};
/// let mut p = Problem::new(Sense::Minimize);
/// let x = p.add_binary("x");
/// let y = p.add_binary("y");
/// let e = LinExpr::from(x) * 2.0 + LinExpr::from(y);
/// assert_eq!(e.coef(x), 2.0);
/// assert_eq!(e.coef(y), 1.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    terms: Vec<(VarId, f64)>,
    constant: f64,
}

impl LinExpr {
    /// The empty expression (zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an expression from `(variable, coefficient)` pairs.
    pub fn terms(pairs: &[(VarId, f64)]) -> Self {
        let mut e = Self::new();
        for &(v, c) in pairs {
            e.add_term(v, c);
        }
        e
    }

    /// A constant expression.
    pub fn constant(c: f64) -> Self {
        Self {
            terms: Vec::new(),
            constant: c,
        }
    }

    /// Adds `coef * var`, merging with an existing term for `var` if any.
    pub fn add_term(&mut self, var: VarId, coef: f64) -> &mut Self {
        // exact-zero sentinel: only literal zeros are dropped, arithmetic
        // near-zeros keep their term; lint: allow(float-eq)
        if coef == 0.0 {
            return self;
        }
        if let Some(t) = self.terms.iter_mut().find(|(v, _)| *v == var) {
            t.1 += coef;
        } else {
            self.terms.push((var, coef));
        }
        self
    }

    /// Adds a constant offset.
    pub fn add_constant(&mut self, c: f64) -> &mut Self {
        self.constant += c;
        self
    }

    /// Coefficient of `var` (zero if absent).
    pub fn coef(&self, var: VarId) -> f64 {
        self.terms
            .iter()
            .find(|(v, _)| *v == var)
            .map_or(0.0, |&(_, c)| c)
    }

    /// The constant offset.
    pub fn offset(&self) -> f64 {
        self.constant
    }

    /// Iterates over the `(variable, coefficient)` terms.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, f64)> + '_ {
        self.terms.iter().copied()
    }

    /// Number of non-zero terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` if the expression has no variable terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluates the expression for a dense assignment.
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|&(v, c)| c * values[v.index()])
                .sum::<f64>()
    }

    /// Largest variable index referenced, if any.
    pub(crate) fn max_var(&self) -> Option<usize> {
        self.terms.iter().map(|&(v, _)| v.index()).max()
    }
}

impl From<VarId> for LinExpr {
    fn from(v: VarId) -> Self {
        LinExpr::terms(&[(v, 1.0)])
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        for (v, c) in rhs.terms {
            self.add_term(v, c);
        }
        self.constant += rhs.constant;
        self
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        for (v, c) in rhs.terms {
            self.add_term(v, c);
        }
        self.constant += rhs.constant;
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, k: f64) -> LinExpr {
        for t in &mut self.terms {
            t.1 *= k;
        }
        self.constant *= k;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_duplicate_terms() {
        let v = VarId(0);
        let mut e = LinExpr::new();
        e.add_term(v, 1.5).add_term(v, 2.5);
        assert_eq!(e.len(), 1);
        assert_eq!(e.coef(v), 4.0);
    }

    #[test]
    fn zero_coef_is_dropped() {
        let mut e = LinExpr::new();
        e.add_term(VarId(3), 0.0);
        assert!(e.is_empty());
    }

    #[test]
    fn eval_with_constant() {
        let e = LinExpr::terms(&[(VarId(0), 2.0), (VarId(1), -1.0)]) + LinExpr::constant(3.0);
        assert_eq!(e.eval(&[4.0, 5.0]), 2.0 * 4.0 - 5.0 + 3.0);
    }

    #[test]
    fn operators() {
        let e = (LinExpr::from(VarId(0)) + LinExpr::from(VarId(1))) * 2.0;
        assert_eq!(e.coef(VarId(0)), 2.0);
        assert_eq!(e.coef(VarId(1)), 2.0);
    }

    #[test]
    fn add_assign_merges() {
        let mut e = LinExpr::from(VarId(0));
        e += LinExpr::terms(&[(VarId(0), 1.0), (VarId(2), 3.0)]);
        assert_eq!(e.coef(VarId(0)), 2.0);
        assert_eq!(e.coef(VarId(2)), 3.0);
    }

    #[test]
    fn max_var_tracks_width() {
        let e = LinExpr::terms(&[(VarId(7), 1.0), (VarId(3), 1.0)]);
        assert_eq!(e.max_var(), Some(7));
        assert_eq!(LinExpr::new().max_var(), None);
    }
}
