//! Presolve: problem reductions applied before branch & bound.
//!
//! The pass iterates to a fixpoint over four reductions, all of which
//! preserve the *integer*-feasible set exactly (the LP relaxation may
//! legitimately tighten, which is the point):
//!
//! * **Bound tightening** — activity bounds of each row squeeze each
//!   variable's range; integer bounds round inward.
//! * **Row elimination** — empty rows are checked as constants; rows whose
//!   worst-case activity already satisfies them are vacuous and dropped;
//!   singleton rows become bounds and are dropped.
//! * **Variable fixing** — a variable whose range collapses is substituted
//!   into every row and the objective and removed from the problem.
//! * **Coefficient reduction** — for a `<=` row with a binary variable
//!   `a_j x_j + rest <= b`, `a_j > 0`, and `U = max(rest)` with `U < b`:
//!   replacing `(a_j, b)` by `(a_j - (b - U), U)` keeps both the `x_j = 0`
//!   branch (`rest <= U` holds by the bound definition of `U`) and the
//!   `x_j = 1` branch (`rest <= U - a_j' = b - a_j`) — same integer set,
//!   strictly tighter relaxation.
//!
//! Contradictions found on the way (crossed bounds, a row violated at its
//! best activity, a constant row that is false) are reported as the typed
//! [`PresolveResult::Infeasible`] — no simplex ever runs. If every variable
//! gets fixed the unique candidate point is checked against all remaining
//! rows and returned as [`PresolveResult::FixedAll`].
//!
//! Otherwise the surviving rows and variables are repacked into a smaller
//! [`Problem`] and a postsolve map ([`Presolved::postsolve`]) that restores
//! original-space vectors: kept variables copy through at their new index,
//! fixed variables re-emerge at their fixed value. Objective constants from
//! fixed variables are folded into the reduced objective's offset, so the
//! reduced-space objective equals the original-space objective at
//! corresponding points.

use crate::expr::LinExpr;
use crate::problem::{Cmp, Problem, VarKind};

const TOL: f64 = 1e-7;
const MAX_ROUNDS: u32 = 16;

/// Reduction counters for one presolve pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PresolveStats {
    /// Fixpoint rounds executed.
    pub rounds: u32,
    /// Individual variable-bound tightenings.
    pub bounds_tightened: u64,
    /// Variables fixed and substituted out.
    pub vars_fixed: u64,
    /// Rows dropped (vacuous, singleton-absorbed, or empty-true).
    pub rows_dropped: u64,
    /// Binary coefficient reductions applied.
    pub coef_reductions: u64,
}

/// Outcome of a presolve pass.
#[derive(Debug)]
pub enum PresolveResult {
    /// A (possibly) smaller equivalent problem plus the postsolve map.
    Reduced(Presolved),
    /// The reductions proved the problem infeasible before any solve.
    Infeasible {
        /// Human-readable contradiction, naming the row or variable.
        reason: String,
    },
    /// Every variable was fixed; the unique candidate point is feasible.
    FixedAll {
        /// The (original-space) assignment.
        values: Vec<f64>,
        /// Objective at that assignment, in the problem's original sense.
        objective: f64,
        /// Reduction counters.
        stats: PresolveStats,
    },
}

/// A reduced problem plus the map back to the original variable space.
#[derive(Debug)]
pub struct Presolved {
    problem: Problem,
    /// Original index of each kept (reduced-space) variable.
    kept: Vec<usize>,
    /// Fixed variables as `(original index, value)`.
    fixed: Vec<(usize, f64)>,
    orig_n: usize,
    /// Reduction counters.
    pub stats: PresolveStats,
}

impl Presolved {
    /// The reduced problem.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// Maps a reduced-space assignment back to the original variable
    /// space: kept variables copy through, fixed variables re-emerge at
    /// their fixed value.
    pub fn postsolve(&self, reduced: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.orig_n];
        for (ri, &oi) in self.kept.iter().enumerate() {
            if let Some(&v) = reduced.get(ri) {
                out[oi] = v;
            }
        }
        for &(oi, v) in &self.fixed {
            out[oi] = v;
        }
        out
    }
}

/// A working row in `<=`/`==` normal form (`>=` rows enter negated).
struct PRow {
    terms: Vec<(usize, f64)>,
    eq: bool,
    rhs: f64,
    dropped: bool,
    /// Index into `p.constraints`, for error messages.
    src: usize,
}

/// Runs the presolve pass on a validated problem.
pub fn presolve(p: &Problem) -> PresolveResult {
    let n = p.num_vars();
    let mut bounds: Vec<(f64, f64)> = p.vars.iter().map(|v| (v.lo, v.hi)).collect();
    let is_int: Vec<bool> = p.vars.iter().map(|v| v.kind == VarKind::Integer).collect();
    let mut fixed_mask = vec![false; n];
    let mut vals = vec![0.0f64; n];
    let mut stats = PresolveStats::default();

    let mut rows: Vec<PRow> = Vec::with_capacity(p.constraints.len());
    for (ci, c) in p.constraints.iter().enumerate() {
        let mut terms: Vec<(usize, f64)> = c
            .expr
            .iter()
            .map(|(v, k)| (v.index(), k))
            .filter(|&(_, k)| k.abs() > 1e-12)
            .collect();
        let mut rhs = c.rhs - c.expr.offset();
        let eq = matches!(c.cmp, Cmp::Eq);
        if matches!(c.cmp, Cmp::Ge) {
            for t in &mut terms {
                t.1 = -t.1;
            }
            rhs = -rhs;
        }
        rows.push(PRow {
            terms,
            eq,
            rhs,
            dropped: false,
            src: ci,
        });
    }

    for round in 0..MAX_ROUNDS {
        stats.rounds = round + 1;
        let mut changed = false;

        // Variable pass: integer rounding, crossed bounds, fixing.
        for i in 0..n {
            if fixed_mask[i] {
                continue;
            }
            let (mut lo, mut hi) = bounds[i];
            if is_int[i] {
                let rlo = (lo - 1e-9).ceil();
                let rhi = (hi + 1e-9).floor();
                if rlo > lo + 1e-9 || rhi < hi - 1e-9 {
                    stats.bounds_tightened += 1;
                    changed = true;
                }
                lo = rlo;
                hi = rhi;
                bounds[i] = (lo, hi);
            }
            if lo > hi + TOL {
                return PresolveResult::Infeasible {
                    reason: format!(
                        "variable {}: bounds crossed after tightening ({lo} > {hi})",
                        p.vars[i].name
                    ),
                };
            }
            if hi - lo <= 1e-9 {
                // `+ 0.0` folds a -0.0 (e.g. `ceil(-1e-9)`) into +0.0 so
                // fixed values are bit-identical to the cold path's.
                let v = if is_int[i] { lo.round() } else { lo } + 0.0;
                fixed_mask[i] = true;
                vals[i] = v;
                stats.vars_fixed += 1;
                changed = true;
                // Substitute into every live row.
                for row in rows.iter_mut().filter(|r| !r.dropped) {
                    if let Some(pos) = row.terms.iter().position(|&(tv, _)| tv == i) {
                        let (_, k) = row.terms.remove(pos);
                        row.rhs -= k * v;
                    }
                }
            }
        }

        // Row pass: constant rows, singletons, activity checks, bound
        // tightening, coefficient reduction.
        for ri in 0..rows.len() {
            if rows[ri].dropped {
                continue;
            }
            // Constant row: nothing left to constrain.
            if rows[ri].terms.is_empty() {
                let (rhs, eq, src) = (rows[ri].rhs, rows[ri].eq, rows[ri].src);
                let ok = if eq { rhs.abs() <= TOL } else { rhs >= -TOL };
                if !ok {
                    return PresolveResult::Infeasible {
                        reason: format!(
                            "constraint {src}: reduces to the false constant {} {} 0",
                            rhs,
                            if eq { "==" } else { ">=" }
                        ),
                    };
                }
                rows[ri].dropped = true;
                stats.rows_dropped += 1;
                changed = true;
                continue;
            }
            // Singleton row: absorb into the variable's bounds.
            if rows[ri].terms.len() == 1 {
                let (v, k) = rows[ri].terms[0];
                let rhs = rows[ri].rhs;
                let eq = rows[ri].eq;
                let src = rows[ri].src;
                let x = rhs / k;
                let (lo, hi) = bounds[v];
                let mut tightened = false;
                if eq {
                    // k*x == rhs pins the variable.
                    let lo2 = lo.max(x);
                    let hi2 = hi.min(x);
                    if lo2 > lo + 1e-9 || hi2 < hi - 1e-9 {
                        tightened = true;
                    }
                    bounds[v] = (lo2, hi2);
                } else if k > 0.0 {
                    // k*x <= rhs.
                    let mut new_hi = x;
                    if is_int[v] {
                        new_hi = (new_hi + 1e-9).floor();
                    }
                    if new_hi < hi - 1e-9 {
                        bounds[v].1 = new_hi;
                        tightened = true;
                    }
                } else {
                    // k*x <= rhs with k < 0 is x >= rhs/k.
                    let mut new_lo = x;
                    if is_int[v] {
                        new_lo = (new_lo - 1e-9).ceil();
                    }
                    if new_lo > lo + 1e-9 {
                        bounds[v].0 = new_lo;
                        tightened = true;
                    }
                }
                if bounds[v].0 > bounds[v].1 + TOL {
                    return PresolveResult::Infeasible {
                        reason: format!(
                            "constraint {src}: singleton row forces {} into the empty range [{}, {}]",
                            p.vars[v].name, bounds[v].0, bounds[v].1
                        ),
                    };
                }
                if tightened {
                    stats.bounds_tightened += 1;
                }
                rows[ri].dropped = true;
                stats.rows_dropped += 1;
                changed = true;
                continue;
            }

            // Activity bounds of the row.
            let (min_act, max_act) = activity(&rows[ri].terms, &bounds);
            let (rhs, eq, src) = (rows[ri].rhs, rows[ri].eq, rows[ri].src);
            if min_act > rhs + TOL {
                return PresolveResult::Infeasible {
                    reason: format!(
                        "constraint {src}: minimum activity {min_act} exceeds rhs {rhs}"
                    ),
                };
            }
            if eq && max_act < rhs - TOL {
                return PresolveResult::Infeasible {
                    reason: format!(
                        "constraint {src}: maximum activity {max_act} cannot reach rhs {rhs}"
                    ),
                };
            }
            // Vacuous row: satisfied at its worst-case activity.
            let vacuous = if eq {
                max_act <= rhs + TOL && min_act >= rhs - TOL
            } else {
                max_act <= rhs + TOL
            };
            if vacuous {
                rows[ri].dropped = true;
                stats.rows_dropped += 1;
                changed = true;
                continue;
            }

            // Bound tightening from the <= view (and the mirrored view for
            // == rows).
            match tighten(&rows[ri].terms, rhs, false, &mut bounds, &is_int, &mut stats) {
                Tighten::Ok(c) => changed |= c,
                Tighten::Crossed(v) => {
                    return PresolveResult::Infeasible {
                        reason: format!(
                            "constraint {src}: tightening empties the range of {}",
                            p.vars[v].name
                        ),
                    };
                }
            }
            if eq {
                match tighten(&rows[ri].terms, rhs, true, &mut bounds, &is_int, &mut stats) {
                    Tighten::Ok(c) => changed |= c,
                    Tighten::Crossed(v) => {
                        return PresolveResult::Infeasible {
                            reason: format!(
                                "constraint {src}: tightening empties the range of {}",
                                p.vars[v].name
                            ),
                        };
                    }
                }
            } else {
                // Coefficient reduction (inequality rows only).
                changed |= reduce_coefficients(&mut rows[ri], &bounds, &is_int, &mut stats);
            }
        }

        if !changed {
            break;
        }
    }

    // Everything fixed: the candidate point is unique; check it.
    if fixed_mask.iter().all(|&f| f) {
        for row in rows.iter().filter(|r| !r.dropped) {
            let lhs: f64 = row.terms.iter().map(|&(v, k)| k * vals[v]).sum();
            let residual = lhs - row.rhs;
            let ok = if row.eq {
                residual.abs() <= TOL
            } else {
                residual <= TOL
            };
            if !ok {
                return PresolveResult::Infeasible {
                    reason: format!(
                        "constraint {}: violated by the fully-fixed point (residual {residual})",
                        row.src
                    ),
                };
            }
        }
        let objective = p.objective.eval(&vals);
        return PresolveResult::FixedAll {
            values: vals,
            objective,
            stats,
        };
    }

    // Repack the survivors into a reduced problem.
    let mut q = Problem::new(p.sense);
    let mut kept = Vec::new();
    let mut remap = vec![usize::MAX; n];
    let mut qvars = Vec::new();
    for i in 0..n {
        if fixed_mask[i] {
            continue;
        }
        remap[i] = kept.len();
        kept.push(i);
        let (lo, hi) = bounds[i];
        let id = match p.vars[i].kind {
            VarKind::Integer => q.add_integer(p.vars[i].name.clone(), lo, hi),
            VarKind::Continuous => q.add_continuous(p.vars[i].name.clone(), lo, hi),
        };
        qvars.push(id);
    }
    let mut obj = LinExpr::new();
    let mut constant = p.objective.offset();
    for (v, k) in p.objective.iter() {
        let i = v.index();
        if fixed_mask[i] {
            constant += k * vals[i];
        } else {
            obj.add_term(qvars[remap[i]], k);
        }
    }
    q.set_objective(obj + LinExpr::constant(constant));
    for row in rows.iter().filter(|r| !r.dropped) {
        let mut e = LinExpr::new();
        for &(v, k) in &row.terms {
            e.add_term(qvars[remap[v]], k);
        }
        q.add_constraint(e, if row.eq { Cmp::Eq } else { Cmp::Le }, row.rhs);
    }

    PresolveResult::Reduced(Presolved {
        problem: q,
        kept,
        fixed: fixed_mask
            .iter()
            .enumerate()
            .filter(|&(_, &f)| f)
            .map(|(i, _)| (i, vals[i]))
            .collect(),
        orig_n: n,
        stats,
    })
}

/// `(min, max)` activity of a term list under the current bounds. Either
/// end may be infinite.
fn activity(terms: &[(usize, f64)], bounds: &[(f64, f64)]) -> (f64, f64) {
    let mut min_act = 0.0f64;
    let mut max_act = 0.0f64;
    for &(v, k) in terms {
        let (lo, hi) = bounds[v];
        if k >= 0.0 {
            min_act += k * lo;
            max_act += k * hi;
        } else {
            min_act += k * hi;
            max_act += k * lo;
        }
    }
    (min_act, max_act)
}

enum Tighten {
    Ok(bool),
    Crossed(usize),
}

/// Activity-based bound tightening for `sum(terms) <= rhs` (or its mirror
/// `-sum(terms) <= -rhs` when `mirror` is set, used for `==` rows).
fn tighten(
    terms: &[(usize, f64)],
    rhs: f64,
    mirror: bool,
    bounds: &mut [(f64, f64)],
    is_int: &[bool],
    stats: &mut PresolveStats,
) -> Tighten {
    let sgn = if mirror { -1.0 } else { 1.0 };
    let rhs = sgn * rhs;
    // Minimum activity of the whole (possibly mirrored) row.
    let mut min_act = 0.0f64;
    for &(v, k) in terms {
        let k = sgn * k;
        let (lo, hi) = bounds[v];
        let contrib = if k >= 0.0 { k * lo } else { k * hi };
        if !contrib.is_finite() {
            return Tighten::Ok(false);
        }
        min_act += contrib;
    }
    let mut changed = false;
    for &(v, k) in terms {
        let k = sgn * k;
        if k.abs() < 1e-12 {
            continue;
        }
        let (lo, hi) = bounds[v];
        let own_min = if k >= 0.0 { k * lo } else { k * hi };
        let rest = min_act - own_min;
        // k * x <= rhs - rest
        let limit = (rhs - rest) / k;
        if k > 0.0 {
            let mut new_hi = limit;
            if is_int[v] {
                new_hi = (new_hi + 1e-9).floor();
            }
            if new_hi < hi - 1e-9 {
                if new_hi < lo - 1e-9 {
                    return Tighten::Crossed(v);
                }
                bounds[v].1 = new_hi;
                stats.bounds_tightened += 1;
                changed = true;
            }
        } else {
            let mut new_lo = limit;
            if is_int[v] {
                new_lo = (new_lo - 1e-9).ceil();
            }
            if new_lo > lo + 1e-9 {
                if new_lo > hi + 1e-9 {
                    return Tighten::Crossed(v);
                }
                bounds[v].0 = new_lo;
                stats.bounds_tightened += 1;
                changed = true;
            }
        }
    }
    Tighten::Ok(changed)
}

/// Binary coefficient reduction on a `<=` row (see the module docs for the
/// derivation). Applied term by term, recomputing the rest-activity after
/// each change, in term order — deterministic.
fn reduce_coefficients(
    row: &mut PRow,
    bounds: &[(f64, f64)],
    is_int: &[bool],
    stats: &mut PresolveStats,
) -> bool {
    let mut changed = false;
    for idx in 0..row.terms.len() {
        let (v, k) = row.terms[idx];
        // Exact binary range required; lint: allow(float-eq)
        let binary = is_int[v] && bounds[v].0 == 0.0 && bounds[v].1 == 1.0;
        if !binary || k <= TOL {
            continue;
        }
        // Max activity of the other terms.
        let mut rest_max = 0.0f64;
        let mut finite = true;
        for (j, &(ov, ok)) in row.terms.iter().enumerate() {
            if j == idx {
                continue;
            }
            let (lo, hi) = bounds[ov];
            let contrib = if ok >= 0.0 { ok * hi } else { ok * lo };
            if !contrib.is_finite() {
                finite = false;
                break;
            }
            rest_max += contrib;
        }
        if !finite {
            continue;
        }
        if rest_max < row.rhs - TOL {
            // Non-vacuity of the row guarantees k > rhs - rest_max here.
            let new_k = k - (row.rhs - rest_max);
            if new_k < k - 1e-9 {
                row.terms[idx].1 = new_k;
                row.rhs = rest_max;
                stats.coef_reductions += 1;
                changed = true;
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::problem::Sense;

    #[test]
    fn forced_binaries_fix_and_rows_drop() {
        // 5a + 5b <= 4 forces a = b = 0; the row then drops.
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_binary("a");
        let b = p.add_binary("b");
        let c = p.add_binary("c");
        p.set_objective(LinExpr::terms(&[(a, 1.0), (b, 1.0), (c, 1.0)]));
        p.add_constraint(LinExpr::terms(&[(a, 5.0), (b, 5.0)]), Cmp::Le, 4.0);
        match presolve(&p) {
            PresolveResult::Reduced(r) => {
                assert_eq!(r.problem().num_vars(), 1, "only c survives");
                assert_eq!(r.problem().num_constraints(), 0);
                assert_eq!(r.stats.vars_fixed, 2);
                assert!(r.stats.rows_dropped >= 1);
                // Postsolve restores original positions.
                let full = r.postsolve(&[1.0]);
                assert_eq!(full, vec![0.0, 0.0, 1.0]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn infeasible_row_is_typed() {
        let mut p = Problem::new(Sense::Minimize);
        let a = p.add_binary("a");
        let b = p.add_binary("b");
        p.set_objective(LinExpr::from(a));
        p.add_constraint(LinExpr::terms(&[(a, 1.0), (b, 1.0)]), Cmp::Ge, 3.0);
        match presolve(&p) {
            PresolveResult::Infeasible { reason } => {
                assert!(reason.contains("constraint 0"), "reason: {reason}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fully_fixed_problem_short_circuits() {
        // x == 3 (singleton eq) and y forced to 1 by a >= row.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_integer("x", 0.0, 10.0);
        let y = p.add_binary("y");
        p.set_objective(LinExpr::terms(&[(x, 2.0), (y, 5.0)]));
        p.add_constraint(LinExpr::from(x), Cmp::Eq, 3.0);
        p.add_constraint(LinExpr::from(y), Cmp::Ge, 1.0);
        match presolve(&p) {
            PresolveResult::FixedAll {
                values, objective, ..
            } => {
                assert_eq!(values, vec![3.0, 1.0]);
                assert!((objective - 11.0).abs() < 1e-9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fully_fixed_but_contradictory_is_infeasible() {
        // x == 3 but also x <= 2.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_integer("x", 0.0, 10.0);
        p.set_objective(LinExpr::from(x));
        p.add_constraint(LinExpr::from(x), Cmp::Eq, 3.0);
        p.add_constraint(LinExpr::from(x), Cmp::Le, 2.0);
        assert!(matches!(presolve(&p), PresolveResult::Infeasible { .. }));
    }

    #[test]
    fn coefficient_reduction_tightens() {
        // 3a + b <= 3 over binaries reduces to a + b <= 1 (same integer
        // set, tighter LP).
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_binary("a");
        let b = p.add_binary("b");
        p.set_objective(LinExpr::terms(&[(a, 2.0), (b, 1.0)]));
        p.add_constraint(LinExpr::terms(&[(a, 3.0), (b, 1.0)]), Cmp::Le, 3.0);
        match presolve(&p) {
            PresolveResult::Reduced(r) => {
                assert!(r.stats.coef_reductions >= 1);
                let q = r.problem();
                assert_eq!(q.num_constraints(), 1);
                // The reduced row must still admit exactly {00, 01, 10}.
                for (a_v, b_v, feas) in
                    [(0.0, 0.0, true), (0.0, 1.0, true), (1.0, 0.0, true), (1.0, 1.0, false)]
                {
                    assert_eq!(
                        q.is_feasible(&[a_v, b_v], 1e-9),
                        feas,
                        "point ({a_v}, {b_v})"
                    );
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn vacuous_rows_drop_and_objective_constant_survives() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_integer("x", 0.0, 2.0);
        let y = p.add_integer("y", 5.0, 5.0); // fixed by bounds
        p.set_objective(LinExpr::terms(&[(x, 1.0), (y, 10.0)]) + LinExpr::constant(1.0));
        // Always true given the bounds: x + y <= 100.
        p.add_constraint(LinExpr::terms(&[(x, 1.0), (y, 1.0)]), Cmp::Le, 100.0);
        match presolve(&p) {
            PresolveResult::Reduced(r) => {
                assert_eq!(r.problem().num_constraints(), 0);
                assert_eq!(r.stats.rows_dropped, 1);
                assert_eq!(r.stats.vars_fixed, 1);
                // Reduced objective at x = 2 equals original at (2, 5).
                let reduced_obj = r.problem().objective.eval(&[2.0]);
                assert!((reduced_obj - 53.0).abs() < 1e-9);
                assert_eq!(r.postsolve(&[2.0]), vec![2.0, 5.0]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ge_rows_enter_negated_and_still_tighten() {
        // 2x >= 6 with x in [0, 10] -> x >= 3.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_integer("x", 0.0, 10.0);
        p.set_objective(LinExpr::from(x));
        p.add_constraint(LinExpr::from(x) * 2.0, Cmp::Ge, 6.0);
        match presolve(&p) {
            PresolveResult::Reduced(r) => {
                let q = r.problem();
                assert_eq!(q.var_bounds(crate::VarId(0)), (3.0, 10.0));
                assert_eq!(q.num_constraints(), 0, "singleton absorbed");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
