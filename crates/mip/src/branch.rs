//! Best-first branch & bound over the LP relaxation.

use crate::problem::{MipError, Problem, Sense, VarKind};
use crate::simplex::{solve_lp, LpOutcome};
use crate::{Solution, SolveStatus};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
// Wall-clock reads feed only the optional `time_limit` cut-off, never the
// search order or the incumbent; lint: allow(nondet-time)
use std::time::{Duration, Instant};

/// Search limits for [`Solver`].
#[derive(Debug, Clone, Copy)]
pub struct SolverLimits {
    /// Maximum branch-and-bound nodes to explore.
    pub max_nodes: u64,
    /// Wall-clock budget.
    pub time_limit: Duration,
    /// Integrality tolerance: `|x - round(x)| <= int_tol` counts as integer.
    pub int_tol: f64,
    /// Relative optimality gap at which the search stops early.
    pub rel_gap: f64,
}

impl Default for SolverLimits {
    fn default() -> Self {
        Self {
            max_nodes: 200_000,
            time_limit: Duration::from_secs(60),
            int_tol: 1e-6,
            rel_gap: 1e-6,
        }
    }
}

/// MILP solver: best-first branch & bound on the simplex relaxation.
///
/// See the crate-level example. Determinism: the search is fully
/// deterministic for a given problem (ties broken by variable index).
#[derive(Debug, Clone, Default)]
pub struct Solver {
    limits: SolverLimits,
    warm_start: Option<Vec<f64>>,
}

/// An open node: its relaxation value (already solved) and bounds overlay.
struct Node {
    /// Internal-minimize key of the node's LP relaxation.
    bound: f64,
    /// LP solution values (used for branching).
    values: Vec<f64>,
    /// Per-variable bounds of this subproblem.
    bounds: Vec<(f64, f64)>,
    /// Insertion counter for deterministic tie-breaking.
    seq: u64,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.seq == other.seq
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; we want the *smallest* bound first.
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}

impl Solver {
    /// Creates a solver with default limits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the node budget.
    pub fn max_nodes(mut self, n: u64) -> Self {
        self.limits.max_nodes = n;
        self
    }

    /// Sets the wall-clock budget.
    pub fn time_limit(mut self, d: Duration) -> Self {
        self.limits.time_limit = d;
        self
    }

    /// Sets the relative optimality gap for early stopping.
    pub fn rel_gap(mut self, g: f64) -> Self {
        self.limits.rel_gap = g;
        self
    }

    /// Seeds the search with a known assignment. If it is feasible it
    /// becomes the initial incumbent, letting branch & bound prune
    /// immediately (infeasible seeds are silently ignored).
    pub fn warm_start(mut self, values: Vec<f64>) -> Self {
        self.warm_start = Some(values);
        self
    }

    /// Current limits.
    pub fn limits(&self) -> SolverLimits {
        self.limits
    }

    /// Solves the MILP.
    ///
    /// # Errors
    ///
    /// Returns [`MipError`] if the problem fails validation (inverted
    /// bounds, unknown variables, non-finite data).
    pub fn solve(&self, p: &Problem) -> Result<Solution, MipError> {
        p.validate()?;
        let _span = obs::span!("mip.solve", vars = p.num_vars());
        let start = Instant::now(); // time_limit cut-off only; lint: allow(nondet-time)
        let sign = match p.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        let int_vars: Vec<usize> = (0..p.num_vars())
            .filter(|&i| p.vars[i].kind == VarKind::Integer)
            .collect();
        let tol = self.limits.int_tol;

        let root_bounds: Vec<(f64, f64)> = p.vars.iter().map(|v| (v.lo, v.hi)).collect();
        let root_bounds = match presolve(p, root_bounds) {
            Some(b) => b,
            None => return Ok(Solution::new(SolveStatus::Infeasible, f64::NAN, vec![], 0)),
        };
        let (root_values, root_key) = match solve_lp(p, &root_bounds)? {
            LpOutcome::Optimal { objective, values } => (values, sign * objective),
            LpOutcome::Infeasible => {
                return Ok(Solution::new(SolveStatus::Infeasible, f64::NAN, vec![], 1))
            }
            LpOutcome::Unbounded => {
                return Ok(Solution::new(SolveStatus::Unbounded, f64::NAN, vec![], 1))
            }
        };

        // Incumbent (internal-minimize key).
        let mut best: Option<(f64, Vec<f64>)> = None;
        // Warm start: a caller-provided feasible assignment becomes the
        // initial incumbent.
        if let Some(seed) = &self.warm_start {
            if p.is_feasible(seed, 1e-6) {
                let key = sign * p.objective.eval(seed);
                best = Some((key, seed.clone()));
                incumbent_event(sign * key, 0, "warm_start");
            }
        }
        // Rounding heuristic on the root relaxation.
        {
            let mut rounded = root_values.clone();
            for &i in &int_vars {
                rounded[i] = rounded[i].round().clamp(root_bounds[i].0, root_bounds[i].1);
            }
            if p.is_feasible(&rounded, 1e-6) {
                let key = sign * p.objective.eval(&rounded);
                if best.as_ref().is_none_or(|(inc, _)| key < *inc) {
                    best = Some((key, rounded));
                    incumbent_event(sign * key, 0, "rounding");
                }
            }
        }

        let mut heap = BinaryHeap::new();
        let mut seq = 0u64;
        heap.push(Node {
            bound: root_key,
            values: root_values,
            bounds: root_bounds,
            seq,
        });

        let mut nodes = 1u64;
        let mut limit_hit = false;
        while let Some(node) = heap.pop() {
            if let Some((inc, _)) = &best {
                // Prune by bound (with relative-gap early stop).
                let cutoff = inc - self.limits.rel_gap * inc.abs().max(1.0);
                if node.bound >= cutoff - 1e-12 {
                    obs::add("mip.bnb.pruned", 1);
                    continue;
                }
            }
            if nodes >= self.limits.max_nodes || start.elapsed() >= self.limits.time_limit {
                limit_hit = true;
                break;
            }

            // Branching variable: most fractional integer variable.
            let frac_of = |x: f64| (x - x.round()).abs();
            let branch_var = int_vars
                .iter()
                .copied()
                .filter(|&i| frac_of(node.values[i]) > tol)
                .max_by(|&a, &b| {
                    frac_of(node.values[a])
                        .partial_cmp(&frac_of(node.values[b]))
                        .unwrap_or(Ordering::Equal)
                        .then(b.cmp(&a)) // deterministic: lower index wins ties
                });

            let Some(bv) = branch_var else {
                // Integral relaxation: candidate incumbent.
                let key = node.bound;
                if best.as_ref().is_none_or(|(inc, _)| key < *inc) {
                    let mut v = node.values.clone();
                    for &i in &int_vars {
                        v[i] = v[i].round();
                    }
                    best = Some((key, v));
                    incumbent_event(sign * key, nodes, "branch");
                }
                continue;
            };

            let x = node.values[bv];
            for (lo, hi) in [
                (node.bounds[bv].0, x.floor()),
                (x.ceil(), node.bounds[bv].1),
            ] {
                if hi < lo - 1e-9 {
                    continue;
                }
                let mut child_bounds = node.bounds.clone();
                child_bounds[bv] = (lo, hi);
                nodes += 1;
                match solve_lp(p, &child_bounds)? {
                    LpOutcome::Optimal { objective, values } => {
                        let key = sign * objective;
                        let worth = match &best {
                            Some((inc, _)) => key < *inc - 1e-12,
                            None => true,
                        };
                        if worth {
                            seq += 1;
                            heap.push(Node {
                                bound: key,
                                values,
                                bounds: child_bounds,
                                seq,
                            });
                        } else {
                            obs::add("mip.bnb.pruned", 1);
                        }
                    }
                    LpOutcome::Infeasible => {}
                    LpOutcome::Unbounded => {
                        // The root was bounded, so children are too; treat
                        // defensively as unbounded problem.
                        return Ok(Solution::new(
                            SolveStatus::Unbounded,
                            f64::NAN,
                            vec![],
                            nodes,
                        ));
                    }
                }
                if start.elapsed() >= self.limits.time_limit {
                    limit_hit = true;
                    break;
                }
            }
            if limit_hit {
                break;
            }
        }

        obs::add("mip.bnb.nodes", nodes);
        Ok(match best {
            Some((key, values)) => {
                let status = if limit_hit {
                    SolveStatus::Feasible
                } else {
                    SolveStatus::Optimal
                };
                Solution::new(status, sign * key, values, nodes)
            }
            None => {
                if limit_hit {
                    Solution::new(SolveStatus::LimitReached, f64::NAN, vec![], nodes)
                } else {
                    Solution::new(SolveStatus::Infeasible, f64::NAN, vec![], nodes)
                }
            }
        })
    }
}

/// Emits one point of the incumbent trajectory (`source` says which
/// mechanism improved it: warm start, root rounding, or branching).
fn incumbent_event(objective: f64, node: u64, source: &'static str) {
    obs::add("mip.bnb.incumbents", 1);
    obs::event(
        "mip.incumbent",
        &[
            ("objective", objective.into()),
            ("node", node.into()),
            ("source", source.into()),
        ],
    );
}

/// Presolve: activity-based bound tightening to fixpoint. For each `<=`
/// (and mirrored `>=`) constraint, a variable's bound is tightened using
/// the minimum activity of the other terms; integer bounds are rounded
/// inward. Returns `None` when a constraint is proven infeasible.
fn presolve(p: &Problem, mut bounds: Vec<(f64, f64)>) -> Option<Vec<(f64, f64)>> {
    // Normalized rows: (terms, rhs) meaning sum(terms) <= rhs.
    let mut rows: Vec<(Vec<(usize, f64)>, f64)> = Vec::new();
    for c in &p.constraints {
        let terms: Vec<(usize, f64)> = c.expr.iter().map(|(v, k)| (v.index(), k)).collect();
        let rhs = c.rhs - c.expr.offset();
        match c.cmp {
            crate::Cmp::Le => rows.push((terms, rhs)),
            crate::Cmp::Ge => rows.push((
                terms.iter().map(|&(v, k)| (v, -k)).collect(),
                -rhs,
            )),
            crate::Cmp::Eq => {
                rows.push((terms.clone(), rhs));
                rows.push((terms.iter().map(|&(v, k)| (v, -k)).collect(), -rhs));
            }
        }
    }
    let is_int: Vec<bool> = (0..p.num_vars())
        .map(|i| p.vars[i].kind == VarKind::Integer)
        .collect();

    for _round in 0..8 {
        let mut changed = false;
        for (terms, rhs) in &rows {
            // Minimum activity of the whole row.
            let mut min_act = 0.0f64;
            let mut finite = true;
            for &(v, k) in terms {
                let (lo, hi) = bounds[v];
                let contrib = if k >= 0.0 { k * lo } else { k * hi };
                if !contrib.is_finite() {
                    finite = false;
                    break;
                }
                min_act += contrib;
            }
            if !finite {
                continue;
            }
            if min_act > rhs + 1e-7 {
                return None; // infeasible even at best bounds
            }
            // Tighten each variable given the others at minimum activity.
            for &(v, k) in terms {
                if k.abs() < 1e-12 {
                    continue;
                }
                let (lo, hi) = bounds[v];
                let own_min = if k >= 0.0 { k * lo } else { k * hi };
                let rest = min_act - own_min;
                // k * x <= rhs - rest
                let limit = (rhs - rest) / k;
                if k > 0.0 {
                    let mut new_hi = limit;
                    if is_int[v] {
                        new_hi = (new_hi + 1e-9).floor();
                    }
                    if new_hi < hi - 1e-9 {
                        if new_hi < lo - 1e-9 {
                            return None;
                        }
                        bounds[v].1 = new_hi;
                        changed = true;
                    }
                } else {
                    let mut new_lo = limit;
                    if is_int[v] {
                        new_lo = (new_lo - 1e-9).ceil();
                    }
                    if new_lo > lo + 1e-9 {
                        if new_lo > hi + 1e-9 {
                            return None;
                        }
                        bounds[v].0 = new_lo;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    Some(bounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::problem::Cmp;

    #[test]
    fn knapsack_optimum() {
        // max 10a + 13b + 7c, 3a + 4b + 2c <= 6 -> {a, c} = 17? or {b, c} = 20.
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_binary("a");
        let b = p.add_binary("b");
        let c = p.add_binary("c");
        p.set_objective(LinExpr::terms(&[(a, 10.0), (b, 13.0), (c, 7.0)]));
        p.add_constraint(LinExpr::terms(&[(a, 3.0), (b, 4.0), (c, 2.0)]), Cmp::Le, 6.0);
        let s = Solver::new().solve(&p).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective - 20.0).abs() < 1e-6);
        assert_eq!((s.int_value(a), s.int_value(b), s.int_value(c)), (0, 1, 1));
    }

    #[test]
    fn assignment_problem() {
        // 3x3 assignment, cost matrix with known optimum 5 (1 + 1 + 3).
        let cost = [[1.0, 4.0, 5.0], [3.0, 1.0, 9.0], [9.0, 7.0, 3.0]];
        let mut p = Problem::new(Sense::Minimize);
        let mut x = vec![];
        for (i, row) in cost.iter().enumerate() {
            let mut r = vec![];
            for (j, _) in row.iter().enumerate() {
                r.push(p.add_binary(format!("x{i}{j}")));
            }
            x.push(r);
        }
        let mut obj = LinExpr::new();
        for i in 0..3 {
            for j in 0..3 {
                obj.add_term(x[i][j], cost[i][j]);
            }
        }
        p.set_objective(obj);
        for i in 0..3 {
            p.add_constraint(
                LinExpr::terms(&(0..3).map(|j| (x[i][j], 1.0)).collect::<Vec<_>>()),
                Cmp::Eq,
                1.0,
            );
            p.add_constraint(
                LinExpr::terms(&(0..3).map(|j| (x[j][i], 1.0)).collect::<Vec<_>>()),
                Cmp::Eq,
                1.0,
            );
        }
        let s = Solver::new().solve(&p).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective - 5.0).abs() < 1e-6);
    }

    #[test]
    fn lp_feasible_but_integer_infeasible() {
        // 0.4 <= x <= 0.6 with x binary.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_binary("x");
        p.add_constraint(LinExpr::from(x), Cmp::Ge, 0.4);
        p.add_constraint(LinExpr::from(x), Cmp::Le, 0.6);
        p.set_objective(LinExpr::from(x));
        let s = Solver::new().solve(&p).unwrap();
        assert_eq!(s.status, SolveStatus::Infeasible);
    }

    #[test]
    fn mixed_integer_continuous() {
        // max x + 10y, y binary, x <= 3.7 continuous, x + 4y <= 6.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_continuous("x", 0.0, 3.7);
        let y = p.add_binary("y");
        p.set_objective(LinExpr::terms(&[(x, 1.0), (y, 10.0)]));
        p.add_constraint(LinExpr::terms(&[(x, 1.0), (y, 4.0)]), Cmp::Le, 6.0);
        let s = Solver::new().solve(&p).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        // y = 1, x = 2 -> 12.
        assert!((s.objective - 12.0).abs() < 1e-6);
        assert_eq!(s.int_value(y), 1);
        assert!((s.value(x) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn general_integer_variables() {
        // min 3x + 2y, x,y integer >= 0, 2x + y >= 7, x + 3y >= 9.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_integer("x", 0.0, 100.0);
        let y = p.add_integer("y", 0.0, 100.0);
        p.set_objective(LinExpr::terms(&[(x, 3.0), (y, 2.0)]));
        p.add_constraint(LinExpr::terms(&[(x, 2.0), (y, 1.0)]), Cmp::Ge, 7.0);
        p.add_constraint(LinExpr::terms(&[(x, 1.0), (y, 3.0)]), Cmp::Ge, 9.0);
        let s = Solver::new().solve(&p).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        // Enumerate to verify: best integer point.
        let mut brute = f64::INFINITY;
        for xi in 0..=10 {
            for yi in 0..=10 {
                let (xf, yf) = (xi as f64, yi as f64);
                if 2.0 * xf + yf >= 7.0 && xf + 3.0 * yf >= 9.0 {
                    brute = brute.min(3.0 * xf + 2.0 * yf);
                }
            }
        }
        assert!((s.objective - brute).abs() < 1e-6);
    }

    #[test]
    fn unbounded_detected() {
        // Continuous: an unbounded *integer* is rejected by validation
        // before the solve (branch & bound cannot enumerate it).
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_continuous("x", 0.0, f64::INFINITY);
        p.set_objective(LinExpr::from(x));
        let s = Solver::new().solve(&p).unwrap();
        assert_eq!(s.status, SolveStatus::Unbounded);
    }

    #[test]
    fn unbounded_integer_rejected() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_integer("x", 0.0, f64::INFINITY);
        p.set_objective(LinExpr::from(x));
        assert!(matches!(
            Solver::new().solve(&p),
            Err(MipError::UnboundedInteger { .. })
        ));
    }

    #[test]
    fn node_limit_yields_feasible_or_limit() {
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = (0..12).map(|i| p.add_binary(format!("v{i}"))).collect();
        let mut obj = LinExpr::new();
        let mut cons = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            obj.add_term(v, (i % 5 + 1) as f64);
            cons.add_term(v, ((i * 7) % 11 + 1) as f64);
        }
        p.set_objective(obj);
        p.add_constraint(cons, Cmp::Le, 20.0);
        let s = Solver::new().max_nodes(2).solve(&p).unwrap();
        assert!(matches!(
            s.status,
            SolveStatus::Feasible | SolveStatus::Optimal | SolveStatus::LimitReached
        ));
    }

    #[test]
    fn pure_lp_passthrough() {
        // No integer variables: one node, identical to simplex.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 0.0, 4.0);
        p.set_objective(LinExpr::from(x) * -1.0);
        let s = Solver::new().solve(&p).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective + 4.0).abs() < 1e-9);
        assert_eq!(s.nodes, 1);
    }

    #[test]
    fn presolve_fixes_forced_binaries() {
        // 5a + 5b <= 4 forces a = b = 0; presolve should prove the
        // optimum without branching.
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_binary("a");
        let b = p.add_binary("b");
        let c = p.add_binary("c");
        p.set_objective(LinExpr::terms(&[(a, 1.0), (b, 1.0), (c, 1.0)]));
        p.add_constraint(LinExpr::terms(&[(a, 5.0), (b, 5.0)]), Cmp::Le, 4.0);
        let s = Solver::new().solve(&p).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective - 1.0).abs() < 1e-6);
        assert_eq!((s.int_value(a), s.int_value(b), s.int_value(c)), (0, 0, 1));
    }

    #[test]
    fn presolve_detects_plain_infeasibility() {
        // a + b >= 3 over two binaries is impossible; presolve catches it
        // before any simplex runs.
        let mut p = Problem::new(Sense::Minimize);
        let a = p.add_binary("a");
        let b = p.add_binary("b");
        p.set_objective(LinExpr::from(a));
        p.add_constraint(LinExpr::terms(&[(a, 1.0), (b, 1.0)]), Cmp::Ge, 3.0);
        let s = Solver::new().solve(&p).unwrap();
        assert_eq!(s.status, SolveStatus::Infeasible);
        assert_eq!(s.nodes, 0);
    }

    #[test]
    fn presolve_tightens_integer_bounds() {
        // 3x <= 10 with x integer -> x <= 3.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_integer("x", 0.0, 100.0);
        p.set_objective(LinExpr::from(x));
        p.add_constraint(LinExpr::from(x) * 3.0, Cmp::Le, 10.0);
        let s = Solver::new().solve(&p).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_eq!(s.int_value(x), 3);
        // Presolve makes the relaxation integral: exactly one node.
        assert_eq!(s.nodes, 1);
    }

    #[test]
    fn warm_start_seeds_incumbent() {
        // A tight node limit with a good warm start still yields the
        // seeded solution (or better); without it the search may time out
        // solutionless.
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = (0..14).map(|i| p.add_binary(format!("v{i}"))).collect();
        let mut obj = LinExpr::new();
        let mut cons = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            obj.add_term(v, ((i * 3) % 7 + 1) as f64);
            cons.add_term(v, ((i * 5) % 9 + 1) as f64);
        }
        p.set_objective(obj.clone());
        p.add_constraint(cons, Cmp::Le, 11.0);
        // Greedy feasible seed: take nothing (trivially feasible).
        let seed = vec![0.0; 14];
        let s = Solver::new()
            .max_nodes(1)
            .warm_start(seed.clone())
            .solve(&p)
            .unwrap();
        assert!(s.has_solution());
        assert!(s.objective >= 0.0);

        // Infeasible seeds are ignored without error.
        let bad = vec![1.0; 14];
        let s2 = Solver::new().warm_start(bad).solve(&p).unwrap();
        assert_eq!(s2.status, SolveStatus::Optimal);
    }

    #[test]
    fn warm_start_never_worsens_result() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_integer("x", 0.0, 50.0);
        let y = p.add_integer("y", 0.0, 50.0);
        p.set_objective(LinExpr::terms(&[(x, 3.0), (y, 2.0)]));
        p.add_constraint(LinExpr::terms(&[(x, 2.0), (y, 1.0)]), Cmp::Ge, 7.0);
        let plain = Solver::new().solve(&p).unwrap();
        let seeded = Solver::new().warm_start(vec![4.0, 0.0]).solve(&p).unwrap();
        assert!(seeded.objective <= plain.objective + 1e-9);
        assert_eq!(seeded.status, SolveStatus::Optimal);
    }

    #[test]
    fn determinism() {
        let build = || {
            let mut p = Problem::new(Sense::Maximize);
            let vars: Vec<_> = (0..8).map(|i| p.add_binary(format!("v{i}"))).collect();
            let mut obj = LinExpr::new();
            let mut c1 = LinExpr::new();
            for (i, &v) in vars.iter().enumerate() {
                obj.add_term(v, ((i * 3) % 7 + 1) as f64);
                c1.add_term(v, ((i * 5) % 9 + 1) as f64);
            }
            p.set_objective(obj);
            p.add_constraint(c1, Cmp::Le, 15.0);
            p
        };
        let a = Solver::new().solve(&build()).unwrap();
        let b = Solver::new().solve(&build()).unwrap();
        assert_eq!(a.values(), b.values());
        assert_eq!(a.nodes, b.nodes);
    }

    #[test]
    fn solve_records_obs_counters() {
        // Counters are process-global and sibling tests may also solve
        // while this runs, so assert presence, not exact totals.
        obs::set_level(obs::Level::Summary);
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_integer("x", 0.0, 10.0);
        let y = p.add_integer("y", 0.0, 10.0);
        p.set_objective(LinExpr::terms(&[(x, 5.0), (y, 4.0)]));
        p.add_constraint(LinExpr::terms(&[(x, 6.0), (y, 4.0)]), Cmp::Le, 24.0);
        p.add_constraint(LinExpr::terms(&[(x, 1.0), (y, 2.0)]), Cmp::Le, 6.0);
        let sol = Solver::new().solve(&p).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);

        let report = obs::snapshot();
        assert!(report.counter("mip.simplex.solves").unwrap_or(0) > 0);
        assert!(report.counter("mip.bnb.nodes").unwrap_or(0) > 0);
        assert!(report.counter("mip.bnb.incumbents").unwrap_or(0) > 0);
        assert!(report.span("mip.solve").is_some());
        obs::set_level(obs::Level::Off);
    }
}
