//! Best-first branch & bound over the LP relaxation.
//!
//! # Engine shape
//!
//! The solve runs in three layers:
//!
//! 1. **Presolve** ([`crate::presolve`]) shrinks the problem (bound
//!    tightening, variable fixing, row elimination, coefficient
//!    reduction) and may prove infeasibility or fix every variable
//!    outright — in either case no simplex runs at all. Incumbents found
//!    on the reduced problem are mapped back through the postsolve map
//!    and re-priced against the *original* objective, so the reported
//!    objective is bit-identical with presolve on or off.
//! 2. **Relaxations**: each node's LP is solved either cold
//!    ([`crate::simplex::solve_lp`]) or warm from its parent's basis
//!    ([`crate::warmstart::solve_lp_warm`]), falling back to cold on any
//!    typed basis rejection. Warm starts are a pure accelerator — both
//!    paths certify optimality with the same primal phase-2 — so the
//!    node relaxation values they produce are interchangeable.
//! 3. **Wave-parallel search**: open nodes are expanded in *waves* of at
//!    most [`WAVE`] child LPs. Node selection, pruning, and incumbent
//!    updates happen serially in a fixed order; only the (pure,
//!    per-task deterministic) LP solves are fanned out on a
//!    [`NodePool`]. The wave size is a constant — never a function of
//!    the thread count — so the explored tree, the incumbent sequence,
//!    and every reported number are bit-identical at any thread count.
//!
//! # Deterministic incumbent protocol
//!
//! * Nodes are explored best-first by relaxation bound; ties break by
//!   insertion sequence number (earlier wins). Within a wave, children
//!   are generated parent-by-parent, down-branch before up-branch.
//! * The branching variable is the most fractional integer variable;
//!   ties break toward the lowest variable index.
//! * An incumbent is replaced only by a *strictly better* key (internal
//!   minimize sense); on equal objective the first-found incumbent in
//!   the fixed serial order wins. Incumbent keys are always recomputed
//!   as `sign * objective.eval(postsolved values)` in the original
//!   variable space.
//!
//! These rules are what `mip/tests/metamorphic.rs` pins down.

use crate::presolve::{presolve, Presolved, PresolveResult, PresolveStats};
use crate::problem::{MipError, Problem, Sense, VarKind};
use crate::simplex::{solve_lp, Basis, LpOutcome, LpSolve};
use crate::warmstart::{solve_lp_warm, Warm};
use crate::{Solution, SolveStatus};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Mutex;
use std::thread;
// Wall-clock reads feed only the optional `time_limit` cut-off, never the
// search order or the incumbent; lint: allow(nondet-time)
use std::time::{Duration, Instant};

/// Child LPs evaluated per wave. A constant (never derived from the
/// thread count) so the search tree is identical for any pool size.
const WAVE: usize = 8;

/// Search limits for [`Solver`].
#[derive(Debug, Clone, Copy)]
pub struct SolverLimits {
    /// Maximum branch-and-bound nodes to explore.
    pub max_nodes: u64,
    /// Wall-clock budget.
    pub time_limit: Duration,
    /// Integrality tolerance: `|x - round(x)| <= int_tol` counts as integer.
    pub int_tol: f64,
    /// Relative optimality gap at which the search stops early.
    pub rel_gap: f64,
}

impl Default for SolverLimits {
    fn default() -> Self {
        Self {
            max_nodes: 200_000,
            time_limit: Duration::from_secs(60),
            int_tol: 1e-6,
            rel_gap: 1e-6,
        }
    }
}

/// Per-solve statistics, returned on [`Solution::stats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveStats {
    /// Branch-and-bound nodes whose LP relaxation was solved (root
    /// included).
    pub nodes: u64,
    /// Simplex solves run (a warm rejection followed by a cold re-solve
    /// counts twice).
    pub lp_solves: u64,
    /// Total simplex pivots across all solves.
    pub pivots: u64,
    /// Child LPs solved from the parent basis.
    pub warm_hits: u64,
    /// Warm attempts that fell back to a cold solve.
    pub warm_rejects: u64,
    /// Waves dispatched to the node pool.
    pub waves: u64,
    /// Nodes pruned by bound.
    pub pruned: u64,
    /// Presolve reduction counters.
    pub presolve: PresolveStats,
}

/// Execution substrate for one wave of node relaxations.
///
/// `run` must call `eval(i)` exactly once for each `i in 0..tasks` and
/// return the results in task order. `eval` is pure per index, so any
/// scheduling (including fully serial) yields identical results; a pool
/// may return a lost sentinel (`eval` result withheld) for a task whose
/// worker died — the engine re-evaluates it inline.
pub trait NodePool {
    /// Worker count (1 = serial).
    fn threads(&self) -> usize;
    /// Evaluates `tasks` tasks, returning results in task order.
    fn run(&self, tasks: usize, eval: &(dyn Fn(usize) -> WaveEval + Sync)) -> Vec<WaveEval>;
}

/// Opaque result of one node-relaxation task. Constructed only by the
/// engine's task closure; pools just move it around.
#[derive(Debug)]
pub struct WaveEval {
    pub(crate) inner: Option<TaskOut>,
}

/// How a task's relaxation was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WarmTag {
    Hit,
    Reject,
    Cold,
}

#[derive(Debug)]
pub(crate) struct TaskOut {
    pub result: Result<LpSolve, MipError>,
    pub warm: WarmTag,
}

/// The built-in scoped-thread pool used by [`Solver::solve`]: a minimal
/// sibling of `autoseg::dse::DsePool` (same order-preserving,
/// index-driven contract) so `mip` stays dependency-free. Sized by
/// [`Solver::threads`] (the `MIP_THREADS` environment variable by
/// default).
#[derive(Debug, Clone, Copy)]
pub struct BuiltinPool {
    threads: usize,
}

impl BuiltinPool {
    /// A pool running `threads` workers (minimum 1; 1 = fully serial).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }
}

impl NodePool for BuiltinPool {
    fn threads(&self) -> usize {
        self.threads
    }

    fn run(&self, tasks: usize, eval: &(dyn Fn(usize) -> WaveEval + Sync)) -> Vec<WaveEval> {
        if self.threads <= 1 || tasks <= 1 {
            return (0..tasks).map(eval).collect();
        }
        let slots: Vec<Mutex<Option<WaveEval>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(tasks);
        // The trace id is thread-local: re-set the caller's id in every
        // worker so telemetry emitted inside node evaluation stays
        // attributed to the request that fanned out.
        let trace = obs::current_trace();
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    obs::set_trace(trace);
                    loop {
                        let i = next.fetch_add(1, AtomicOrdering::Relaxed);
                        if i >= tasks {
                            break;
                        }
                        // Each slot is written exactly once, so a panic in
                        // another worker cannot leave it half-written.
                        *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(eval(i));
                    }
                });
            }
        });
        // A slot left empty (a worker died between claiming and writing)
        // becomes the lost sentinel; the engine's fixed-order recovery
        // pass re-evaluates it inline.
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .unwrap_or(WaveEval { inner: None })
            })
            .collect()
    }
}

/// The default thread count for the built-in pool: the `MIP_THREADS`
/// environment variable if set to a positive integer, otherwise 1
/// (serial). The engine is bit-identical at any value; this only sets
/// how wide each wave fans out.
pub fn default_threads() -> usize {
    std::env::var("MIP_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// `true` unless `MIP_PRESOLVE` is set to `off`/`0`/`false` (the escape
/// hatch for debugging a suspected presolve reduction).
fn presolve_default() -> bool {
    !matches!(
        std::env::var("MIP_PRESOLVE").ok().as_deref().map(str::trim),
        Some("off" | "0" | "false")
    )
}

/// MILP solver: best-first branch & bound on the simplex relaxation,
/// with presolve, warm-started node LPs, and wave-parallel node
/// evaluation.
///
/// See the crate-level example. Determinism: the search is fully
/// deterministic for a given problem at any thread count (see the module
/// docs for the exact tie-break protocol).
#[derive(Debug, Clone)]
pub struct Solver {
    limits: SolverLimits,
    warm_start: Option<Vec<f64>>,
    root_basis: Option<Basis>,
    presolve: bool,
    warm_lp: bool,
    threads: usize,
}

impl Default for Solver {
    fn default() -> Self {
        Self {
            limits: SolverLimits::default(),
            warm_start: None,
            root_basis: None,
            presolve: presolve_default(),
            warm_lp: true,
            threads: default_threads(),
        }
    }
}

/// An open node: its relaxation value (already solved) and bounds overlay.
struct Node {
    /// Internal-minimize key of the node's LP relaxation.
    bound: f64,
    /// LP solution values (used for branching), in reduced space.
    values: Vec<f64>,
    /// Per-variable bounds of this subproblem, in reduced space.
    bounds: Vec<(f64, f64)>,
    /// Optimal basis of this node's relaxation (warm-start seed for its
    /// children). `None` when the relaxation came back basis-less.
    basis: Option<Basis>,
    /// Insertion counter for deterministic tie-breaking.
    seq: u64,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.seq == other.seq
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; we want the *smallest* bound first.
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}

/// One wave task: re-solve the relaxation under `bounds`, warm from
/// `parent_basis` when available.
struct Task {
    bounds: Vec<(f64, f64)>,
    parent_basis: Option<Basis>,
    /// Global per-solve task counter, the `mip.node` fault-point index.
    fault_idx: u64,
}

impl Solver {
    /// Creates a solver with default limits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the node budget.
    pub fn max_nodes(mut self, n: u64) -> Self {
        self.limits.max_nodes = n;
        self
    }

    /// Sets the wall-clock budget.
    pub fn time_limit(mut self, d: Duration) -> Self {
        self.limits.time_limit = d;
        self
    }

    /// Sets the relative optimality gap for early stopping.
    pub fn rel_gap(mut self, g: f64) -> Self {
        self.limits.rel_gap = g;
        self
    }

    /// Seeds the search with a known assignment. If it is feasible it
    /// becomes the initial incumbent, letting branch & bound prune
    /// immediately (infeasible seeds are silently ignored).
    pub fn warm_start(mut self, values: Vec<f64>) -> Self {
        self.warm_start = Some(values);
        self
    }

    /// Seeds the *root relaxation* with an optimal basis from a previous
    /// solve of a structurally identical problem (the next cell of a
    /// sweep). On any shape mismatch the basis is rejected typed and the
    /// root is solved cold — correctness never depends on the seed.
    pub fn warm_basis(mut self, basis: Basis) -> Self {
        self.root_basis = Some(basis);
        self
    }

    /// Enables or disables the presolve pass (default: on unless
    /// `MIP_PRESOLVE=off`).
    pub fn presolve(mut self, on: bool) -> Self {
        self.presolve = on;
        self
    }

    /// Enables or disables warm-started node relaxations (default: on).
    pub fn warm_lp(mut self, on: bool) -> Self {
        self.warm_lp = on;
        self
    }

    /// Sets the built-in pool's worker count (default: [`default_threads`]).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Current limits.
    pub fn limits(&self) -> SolverLimits {
        self.limits
    }

    /// Solves the MILP on the built-in pool (sized by
    /// [`Solver::threads`], i.e. `MIP_THREADS`).
    ///
    /// # Errors
    ///
    /// Returns [`MipError`] if the problem fails validation (inverted
    /// bounds, unknown variables, non-finite data).
    pub fn solve(&self, p: &Problem) -> Result<Solution, MipError> {
        let pool = BuiltinPool::new(self.threads);
        self.solve_with_pool(p, &pool)
    }

    /// Solves the MILP, fanning each wave of node relaxations out on
    /// `pool`. The result is bit-identical to [`Solver::solve`] for any
    /// pool.
    ///
    /// # Errors
    ///
    /// Returns [`MipError`] if the problem fails validation.
    pub fn solve_with_pool<P: NodePool + ?Sized>(
        &self,
        p: &Problem,
        pool: &P,
    ) -> Result<Solution, MipError> {
        p.validate()?;
        let _span = obs::span!("mip.solve", vars = p.num_vars(), threads = pool.threads());
        let start = Instant::now(); // time_limit cut-off only; lint: allow(nondet-time)
        let mut stats = SolveStats::default();

        // Presolve: may shrink the problem or finish the solve outright.
        let presolved: Option<Presolved> = if self.presolve {
            match presolve(p) {
                PresolveResult::Reduced(r) => {
                    stats.presolve = r.stats;
                    Some(r)
                }
                PresolveResult::Infeasible { reason } => {
                    stats.presolve.rounds = stats.presolve.rounds.max(1);
                    obs::event("mip.presolve.infeasible", &[("reason", reason.into())]);
                    record_presolve(&stats);
                    return Ok(Solution::new(
                        SolveStatus::Infeasible,
                        f64::NAN,
                        vec![],
                        stats,
                        None,
                    ));
                }
                PresolveResult::FixedAll {
                    values,
                    objective,
                    stats: ps,
                } => {
                    stats.presolve = ps;
                    incumbent_event(objective, 0, "presolve");
                    record_presolve(&stats);
                    return Ok(Solution::new(
                        SolveStatus::Optimal,
                        objective,
                        values,
                        stats,
                        None,
                    ));
                }
            }
        } else {
            None
        };
        // The problem the search actually runs on (reduced space).
        let q: &Problem = presolved.as_ref().map_or(p, Presolved::problem);
        record_presolve(&stats);
        // Maps a reduced-space point back to original space.
        let to_original = |vals: &[f64]| -> Vec<f64> {
            match &presolved {
                Some(pre) => pre.postsolve(vals),
                None => vals.to_vec(),
            }
        };

        let sign = match p.sense() {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        let int_vars: Vec<usize> = (0..q.num_vars())
            .filter(|&i| q.vars[i].kind == VarKind::Integer)
            .collect();
        let tol = self.limits.int_tol;

        // Root relaxation, warm from a caller-provided sweep basis when
        // one is set and accepted.
        let root_bounds: Vec<(f64, f64)> = q.vars.iter().map(|v| (v.lo, v.hi)).collect();
        let root = match (&self.root_basis, self.warm_lp) {
            (Some(b), true) => match solve_lp_warm(q, &root_bounds, b)? {
                Warm::Hit(ls) => {
                    stats.warm_hits += 1;
                    stats.lp_solves += 1;
                    ls
                }
                Warm::Reject(_) => {
                    stats.warm_rejects += 1;
                    stats.lp_solves += 2;
                    solve_lp(q, &root_bounds)?
                }
            },
            _ => {
                stats.lp_solves += 1;
                solve_lp(q, &root_bounds)?
            }
        };
        stats.pivots += root.pivots;
        stats.nodes = 1;
        let root_basis_out = root.basis.clone();
        let (root_values, root_key) = match root.outcome {
            LpOutcome::Optimal { objective, values } => (values, sign * objective),
            LpOutcome::Infeasible => {
                record_search(&stats);
                return Ok(Solution::new(
                    SolveStatus::Infeasible,
                    f64::NAN,
                    vec![],
                    stats,
                    None,
                ));
            }
            LpOutcome::Unbounded => {
                record_search(&stats);
                return Ok(Solution::new(
                    SolveStatus::Unbounded,
                    f64::NAN,
                    vec![],
                    stats,
                    None,
                ));
            }
        };

        // Incumbent: `(internal-minimize key, original-space values)`.
        // Keys are ALWAYS re-priced on the original objective so presolve
        // cannot shift the reported objective by a rounding bit.
        let mut best: Option<(f64, Vec<f64>)> = None;
        if let Some(seed) = &self.warm_start {
            if p.is_feasible(seed, 1e-6) {
                let key = sign * p.objective.eval(seed);
                best = Some((key, seed.clone()));
                incumbent_event(sign * key, 0, "warm_start");
            }
        }
        // Rounding heuristic on the root relaxation.
        {
            let mut rounded = root_values.clone();
            for &i in &int_vars {
                // `+ 0.0` folds -0.0 (a round of -1e-17) into +0.0 so the
                // incumbent bits cannot depend on which engine path
                // produced the zero.
                rounded[i] = rounded[i].round().clamp(root_bounds[i].0, root_bounds[i].1) + 0.0;
            }
            let orig = to_original(&rounded);
            if p.is_feasible(&orig, 1e-6) {
                let key = sign * p.objective.eval(&orig);
                if best.as_ref().is_none_or(|(inc, _)| key < *inc) {
                    best = Some((key, orig));
                    incumbent_event(sign * key, 0, "rounding");
                }
            }
        }

        let mut heap = BinaryHeap::new();
        let mut seq = 0u64;
        heap.push(Node {
            bound: root_key,
            values: root_values,
            bounds: root_bounds,
            basis: root_basis_out.clone(),
            seq,
        });

        let mut limit_hit = false;
        let mut fault_idx = 0u64;
        'search: while !heap.is_empty() {
            // ---- Serial collection: pop nodes, settle integral ones,
            // turn fractional ones into at most WAVE child tasks. ----
            let mut tasks: Vec<Task> = Vec::with_capacity(WAVE);
            while tasks.len() < WAVE {
                let Some(node) = heap.pop() else { break };
                if let Some((inc, _)) = &best {
                    // Prune by bound (with relative-gap early stop).
                    let cutoff = inc - self.limits.rel_gap * inc.abs().max(1.0);
                    if node.bound >= cutoff - 1e-12 {
                        obs::add("mip.bnb.pruned", 1);
                        stats.pruned += 1;
                        continue;
                    }
                }
                if stats.nodes >= self.limits.max_nodes
                    || start.elapsed() >= self.limits.time_limit
                {
                    limit_hit = true;
                    break 'search;
                }

                // Branching variable: most fractional integer variable,
                // ties toward the lowest index.
                let frac_of = |x: f64| (x - x.round()).abs();
                let branch_var = int_vars
                    .iter()
                    .copied()
                    .filter(|&i| frac_of(node.values[i]) > tol)
                    .max_by(|&a, &b| {
                        frac_of(node.values[a])
                            .partial_cmp(&frac_of(node.values[b]))
                            .unwrap_or(Ordering::Equal)
                            .then(b.cmp(&a)) // deterministic: lower index wins ties
                    });

                let Some(bv) = branch_var else {
                    // Integral relaxation: candidate incumbent, re-priced
                    // in original space.
                    let mut v = node.values.clone();
                    for &i in &int_vars {
                        v[i] = v[i].round() + 0.0; // -0.0 -> +0.0
                    }
                    let orig = to_original(&v);
                    let key = sign * p.objective.eval(&orig);
                    if best.as_ref().is_none_or(|(inc, _)| key < *inc) {
                        best = Some((key, orig));
                        incumbent_event(sign * key, stats.nodes, "branch");
                    }
                    continue;
                };

                // Down-branch then up-branch, in that order.
                let x = node.values[bv];
                for (lo, hi) in [
                    (node.bounds[bv].0, x.floor()),
                    (x.ceil(), node.bounds[bv].1),
                ] {
                    if hi < lo - 1e-9 {
                        continue;
                    }
                    let mut child_bounds = node.bounds.clone();
                    child_bounds[bv] = (lo, hi);
                    tasks.push(Task {
                        bounds: child_bounds,
                        parent_basis: node.basis.clone(),
                        fault_idx,
                    });
                    fault_idx += 1;
                }
            }
            if tasks.is_empty() {
                continue;
            }

            // ---- Parallel evaluation: pure per-task LP solves. ----
            stats.waves += 1;
            let warm_lp = self.warm_lp;
            let eval_task = |t: &Task| -> WaveEval {
                let out = match (&t.parent_basis, warm_lp) {
                    (Some(basis), true) => match solve_lp_warm(q, &t.bounds, basis) {
                        Ok(Warm::Hit(ls)) => TaskOut {
                            result: Ok(ls),
                            warm: WarmTag::Hit,
                        },
                        Ok(Warm::Reject(_)) => TaskOut {
                            result: solve_lp(q, &t.bounds),
                            warm: WarmTag::Reject,
                        },
                        Err(e) => TaskOut {
                            result: Err(e),
                            warm: WarmTag::Reject,
                        },
                    },
                    _ => TaskOut {
                        result: solve_lp(q, &t.bounds),
                        warm: WarmTag::Cold,
                    },
                };
                WaveEval { inner: Some(out) }
            };
            let mut evals = pool.run(tasks.len(), &|i| {
                // `mip.node` fault point: a scripted mid-wave worker death
                // loses this task's result; the fixed-order recovery pass
                // below recomputes it inline, bit-identically.
                if faultsim::armed() && faultsim::hit_at("mip.node", tasks[i].fault_idx) {
                    record_fault("fault.injected");
                    return WaveEval { inner: None };
                }
                eval_task(&tasks[i])
            });
            // Defensive: a pool returning the wrong shape loses tasks.
            while evals.len() < tasks.len() {
                evals.push(WaveEval { inner: None });
            }

            // ---- Fixed-order recovery: lost tasks re-evaluate inline, so
            // a worker fault never changes the result. ----
            for (ev, task) in evals.iter_mut().zip(&tasks) {
                if ev.inner.is_none() {
                    record_fault("fault.recovered");
                    *ev = eval_task(task);
                }
            }

            // ---- Serial application, in task order. ----
            for (ev, task) in evals.into_iter().zip(tasks) {
                let Some(out) = ev.inner else { continue };
                match out.warm {
                    WarmTag::Hit => {
                        stats.warm_hits += 1;
                        stats.lp_solves += 1;
                    }
                    WarmTag::Reject => {
                        stats.warm_rejects += 1;
                        stats.lp_solves += 2;
                    }
                    WarmTag::Cold => stats.lp_solves += 1,
                }
                let ls = out.result?;
                stats.nodes += 1;
                stats.pivots += ls.pivots;
                match ls.outcome {
                    LpOutcome::Optimal { objective, values } => {
                        let key = sign * objective;
                        let worth = match &best {
                            Some((inc, _)) => key < *inc - 1e-12,
                            None => true,
                        };
                        if worth {
                            seq += 1;
                            heap.push(Node {
                                bound: key,
                                values,
                                bounds: task.bounds,
                                basis: ls.basis,
                                seq,
                            });
                        } else {
                            obs::add("mip.bnb.pruned", 1);
                            stats.pruned += 1;
                        }
                    }
                    LpOutcome::Infeasible => {}
                    LpOutcome::Unbounded => {
                        // The root was bounded, so children are too; treat
                        // defensively as unbounded problem.
                        record_search(&stats);
                        return Ok(Solution::new(
                            SolveStatus::Unbounded,
                            f64::NAN,
                            vec![],
                            stats,
                            root_basis_out,
                        ));
                    }
                }
            }
            if start.elapsed() >= self.limits.time_limit {
                limit_hit = true;
                break;
            }
        }

        record_search(&stats);
        Ok(match best {
            Some((key, values)) => {
                let status = if limit_hit {
                    SolveStatus::Feasible
                } else {
                    SolveStatus::Optimal
                };
                Solution::new(status, sign * key, values, stats, root_basis_out)
            }
            None => {
                if limit_hit {
                    Solution::new(
                        SolveStatus::LimitReached,
                        f64::NAN,
                        vec![],
                        stats,
                        root_basis_out,
                    )
                } else {
                    Solution::new(
                        SolveStatus::Infeasible,
                        f64::NAN,
                        vec![],
                        stats,
                        root_basis_out,
                    )
                }
            }
        })
    }
}

/// Emits one point of the incumbent trajectory (`source` says which
/// mechanism improved it: presolve, warm start, root rounding, or
/// branching).
fn incumbent_event(objective: f64, node: u64, source: &'static str) {
    obs::add("mip.bnb.incumbents", 1);
    obs::event(
        "mip.incumbent",
        &[
            ("objective", objective.into()),
            ("node", node.into()),
            ("source", source.into()),
        ],
    );
}

/// Publishes presolve reduction counters (no-ops at zero).
fn record_presolve(stats: &SolveStats) {
    let ps = stats.presolve;
    if ps.bounds_tightened > 0 {
        obs::add("mip.presolve.bounds_tightened", ps.bounds_tightened);
    }
    if ps.vars_fixed > 0 {
        obs::add("mip.presolve.vars_fixed", ps.vars_fixed);
    }
    if ps.rows_dropped > 0 {
        obs::add("mip.presolve.rows_dropped", ps.rows_dropped);
    }
    if ps.coef_reductions > 0 {
        obs::add("mip.presolve.coef_reductions", ps.coef_reductions);
    }
}

/// Publishes end-of-search counters.
fn record_search(stats: &SolveStats) {
    obs::add("mip.bnb.nodes", stats.nodes);
    if stats.warm_hits > 0 {
        obs::add("mip.warm.hits", stats.warm_hits);
    }
    if stats.warm_rejects > 0 {
        obs::add("mip.warm.rejects", stats.warm_rejects);
    }
}

/// Bumps the given fault counter and emits the matching `obs` event for
/// the `mip.node` fault point (injection and recovery share the shape).
fn record_fault(what: &'static str) {
    obs::add(what, 1);
    obs::event(what, &[("point", "mip.node".into())]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::problem::Cmp;

    #[test]
    fn knapsack_optimum() {
        // max 10a + 13b + 7c, 3a + 4b + 2c <= 6 -> {a, c} = 17? or {b, c} = 20.
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_binary("a");
        let b = p.add_binary("b");
        let c = p.add_binary("c");
        p.set_objective(LinExpr::terms(&[(a, 10.0), (b, 13.0), (c, 7.0)]));
        p.add_constraint(LinExpr::terms(&[(a, 3.0), (b, 4.0), (c, 2.0)]), Cmp::Le, 6.0);
        let s = Solver::new().solve(&p).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective - 20.0).abs() < 1e-6);
        assert_eq!((s.int_value(a), s.int_value(b), s.int_value(c)), (0, 1, 1));
    }

    #[test]
    fn assignment_problem() {
        // 3x3 assignment, cost matrix with known optimum 5 (1 + 1 + 3).
        let cost = [[1.0, 4.0, 5.0], [3.0, 1.0, 9.0], [9.0, 7.0, 3.0]];
        let mut p = Problem::new(Sense::Minimize);
        let mut x = vec![];
        for (i, row) in cost.iter().enumerate() {
            let mut r = vec![];
            for (j, _) in row.iter().enumerate() {
                r.push(p.add_binary(format!("x{i}{j}")));
            }
            x.push(r);
        }
        let mut obj = LinExpr::new();
        for i in 0..3 {
            for j in 0..3 {
                obj.add_term(x[i][j], cost[i][j]);
            }
        }
        p.set_objective(obj);
        for i in 0..3 {
            p.add_constraint(
                LinExpr::terms(&(0..3).map(|j| (x[i][j], 1.0)).collect::<Vec<_>>()),
                Cmp::Eq,
                1.0,
            );
            p.add_constraint(
                LinExpr::terms(&(0..3).map(|j| (x[j][i], 1.0)).collect::<Vec<_>>()),
                Cmp::Eq,
                1.0,
            );
        }
        let s = Solver::new().solve(&p).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective - 5.0).abs() < 1e-6);
    }

    #[test]
    fn lp_feasible_but_integer_infeasible() {
        // 0.4 <= x <= 0.6 with x binary.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_binary("x");
        p.add_constraint(LinExpr::from(x), Cmp::Ge, 0.4);
        p.add_constraint(LinExpr::from(x), Cmp::Le, 0.6);
        p.set_objective(LinExpr::from(x));
        let s = Solver::new().solve(&p).unwrap();
        assert_eq!(s.status, SolveStatus::Infeasible);
    }

    #[test]
    fn mixed_integer_continuous() {
        // max x + 10y, y binary, x <= 3.7 continuous, x + 4y <= 6.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_continuous("x", 0.0, 3.7);
        let y = p.add_binary("y");
        p.set_objective(LinExpr::terms(&[(x, 1.0), (y, 10.0)]));
        p.add_constraint(LinExpr::terms(&[(x, 1.0), (y, 4.0)]), Cmp::Le, 6.0);
        let s = Solver::new().solve(&p).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        // y = 1, x = 2 -> 12.
        assert!((s.objective - 12.0).abs() < 1e-6);
        assert_eq!(s.int_value(y), 1);
        assert!((s.value(x) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn general_integer_variables() {
        // min 3x + 2y, x,y integer >= 0, 2x + y >= 7, x + 3y >= 9.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_integer("x", 0.0, 100.0);
        let y = p.add_integer("y", 0.0, 100.0);
        p.set_objective(LinExpr::terms(&[(x, 3.0), (y, 2.0)]));
        p.add_constraint(LinExpr::terms(&[(x, 2.0), (y, 1.0)]), Cmp::Ge, 7.0);
        p.add_constraint(LinExpr::terms(&[(x, 1.0), (y, 3.0)]), Cmp::Ge, 9.0);
        let s = Solver::new().solve(&p).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        // Enumerate to verify: best integer point.
        let mut brute = f64::INFINITY;
        for xi in 0..=10 {
            for yi in 0..=10 {
                let (xf, yf) = (xi as f64, yi as f64);
                if 2.0 * xf + yf >= 7.0 && xf + 3.0 * yf >= 9.0 {
                    brute = brute.min(3.0 * xf + 2.0 * yf);
                }
            }
        }
        assert!((s.objective - brute).abs() < 1e-6);
    }

    #[test]
    fn unbounded_detected() {
        // Continuous: an unbounded *integer* is rejected by validation
        // before the solve (branch & bound cannot enumerate it).
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_continuous("x", 0.0, f64::INFINITY);
        p.set_objective(LinExpr::from(x));
        let s = Solver::new().solve(&p).unwrap();
        assert_eq!(s.status, SolveStatus::Unbounded);
    }

    #[test]
    fn unbounded_integer_rejected() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_integer("x", 0.0, f64::INFINITY);
        p.set_objective(LinExpr::from(x));
        assert!(matches!(
            Solver::new().solve(&p),
            Err(MipError::UnboundedInteger { .. })
        ));
    }

    #[test]
    fn node_limit_yields_feasible_or_limit() {
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = (0..12).map(|i| p.add_binary(format!("v{i}"))).collect();
        let mut obj = LinExpr::new();
        let mut cons = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            obj.add_term(v, (i % 5 + 1) as f64);
            cons.add_term(v, ((i * 7) % 11 + 1) as f64);
        }
        p.set_objective(obj);
        p.add_constraint(cons, Cmp::Le, 20.0);
        let s = Solver::new().max_nodes(2).solve(&p).unwrap();
        assert!(matches!(
            s.status,
            SolveStatus::Feasible | SolveStatus::Optimal | SolveStatus::LimitReached
        ));
    }

    #[test]
    fn pure_lp_passthrough() {
        // No integer variables: one node, identical to simplex.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 0.0, 4.0);
        p.set_objective(LinExpr::from(x) * -1.0);
        let s = Solver::new().solve(&p).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective + 4.0).abs() < 1e-9);
        assert_eq!(s.nodes, 1);
    }

    #[test]
    fn presolve_fixes_forced_binaries() {
        // 5a + 5b <= 4 forces a = b = 0; presolve should prove the
        // optimum without branching.
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_binary("a");
        let b = p.add_binary("b");
        let c = p.add_binary("c");
        p.set_objective(LinExpr::terms(&[(a, 1.0), (b, 1.0), (c, 1.0)]));
        p.add_constraint(LinExpr::terms(&[(a, 5.0), (b, 5.0)]), Cmp::Le, 4.0);
        let s = Solver::new().solve(&p).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective - 1.0).abs() < 1e-6);
        assert_eq!((s.int_value(a), s.int_value(b), s.int_value(c)), (0, 0, 1));
        assert_eq!(s.stats.presolve.vars_fixed, 2);
    }

    #[test]
    fn presolve_detects_plain_infeasibility() {
        // a + b >= 3 over two binaries is impossible; presolve catches it
        // before any simplex runs.
        let mut p = Problem::new(Sense::Minimize);
        let a = p.add_binary("a");
        let b = p.add_binary("b");
        p.set_objective(LinExpr::from(a));
        p.add_constraint(LinExpr::terms(&[(a, 1.0), (b, 1.0)]), Cmp::Ge, 3.0);
        let s = Solver::new().solve(&p).unwrap();
        assert_eq!(s.status, SolveStatus::Infeasible);
        assert_eq!(s.nodes, 0);
    }

    #[test]
    fn presolve_tightens_integer_bounds() {
        // 3x <= 10 with x integer -> x <= 3.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_integer("x", 0.0, 100.0);
        p.set_objective(LinExpr::from(x));
        p.add_constraint(LinExpr::from(x) * 3.0, Cmp::Le, 10.0);
        let s = Solver::new().solve(&p).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_eq!(s.int_value(x), 3);
        // Presolve makes the relaxation integral: exactly one node.
        assert_eq!(s.nodes, 1);
    }

    #[test]
    fn warm_start_seeds_incumbent() {
        // A tight node limit with a good warm start still yields the
        // seeded solution (or better); without it the search may time out
        // solutionless.
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = (0..14).map(|i| p.add_binary(format!("v{i}"))).collect();
        let mut obj = LinExpr::new();
        let mut cons = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            obj.add_term(v, ((i * 3) % 7 + 1) as f64);
            cons.add_term(v, ((i * 5) % 9 + 1) as f64);
        }
        p.set_objective(obj.clone());
        p.add_constraint(cons, Cmp::Le, 11.0);
        // Greedy feasible seed: take nothing (trivially feasible).
        let seed = vec![0.0; 14];
        let s = Solver::new()
            .max_nodes(1)
            .warm_start(seed.clone())
            .solve(&p)
            .unwrap();
        assert!(s.has_solution());
        assert!(s.objective >= 0.0);

        // Infeasible seeds are ignored without error.
        let bad = vec![1.0; 14];
        let s2 = Solver::new().warm_start(bad).solve(&p).unwrap();
        assert_eq!(s2.status, SolveStatus::Optimal);
    }

    #[test]
    fn warm_start_never_worsens_result() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_integer("x", 0.0, 50.0);
        let y = p.add_integer("y", 0.0, 50.0);
        p.set_objective(LinExpr::terms(&[(x, 3.0), (y, 2.0)]));
        p.add_constraint(LinExpr::terms(&[(x, 2.0), (y, 1.0)]), Cmp::Ge, 7.0);
        let plain = Solver::new().solve(&p).unwrap();
        let seeded = Solver::new().warm_start(vec![4.0, 0.0]).solve(&p).unwrap();
        assert!(seeded.objective <= plain.objective + 1e-9);
        assert_eq!(seeded.status, SolveStatus::Optimal);
    }

    #[test]
    fn determinism() {
        let build = || {
            let mut p = Problem::new(Sense::Maximize);
            let vars: Vec<_> = (0..8).map(|i| p.add_binary(format!("v{i}"))).collect();
            let mut obj = LinExpr::new();
            let mut c1 = LinExpr::new();
            for (i, &v) in vars.iter().enumerate() {
                obj.add_term(v, ((i * 3) % 7 + 1) as f64);
                c1.add_term(v, ((i * 5) % 9 + 1) as f64);
            }
            p.set_objective(obj);
            p.add_constraint(c1, Cmp::Le, 15.0);
            p
        };
        let a = Solver::new().solve(&build()).unwrap();
        let b = Solver::new().solve(&build()).unwrap();
        assert_eq!(a.values(), b.values());
        assert_eq!(a.nodes, b.nodes);
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        // The wave engine's core contract: the explored tree, the node
        // count, and every value bit are identical for any pool width.
        let build = || {
            let mut p = Problem::new(Sense::Maximize);
            let vars: Vec<_> = (0..10).map(|i| p.add_binary(format!("v{i}"))).collect();
            let mut obj = LinExpr::new();
            let mut c1 = LinExpr::new();
            let mut c2 = LinExpr::new();
            for (i, &v) in vars.iter().enumerate() {
                obj.add_term(v, ((i * 3) % 7 + 1) as f64);
                c1.add_term(v, ((i * 5) % 9 + 1) as f64);
                c2.add_term(v, ((i * 2) % 5 + 1) as f64);
            }
            p.set_objective(obj);
            p.add_constraint(c1, Cmp::Le, 17.0);
            p.add_constraint(c2, Cmp::Le, 12.0);
            p
        };
        let serial = Solver::new().threads(1).solve(&build()).unwrap();
        for threads in [2, 4] {
            let par = Solver::new().threads(threads).solve(&build()).unwrap();
            assert_eq!(par.status, serial.status, "threads {threads}");
            assert_eq!(
                par.objective.to_bits(),
                serial.objective.to_bits(),
                "threads {threads}"
            );
            assert_eq!(par.values(), serial.values(), "threads {threads}");
            assert_eq!(par.nodes, serial.nodes, "threads {threads}");
        }
    }

    #[test]
    fn warm_basis_chains_across_sweep_cells() {
        // Re-solving a structurally identical problem from the previous
        // cell's root basis must reproduce the cold answer and register a
        // warm hit (presolve off so the shapes line up exactly).
        let build = |budget: f64| {
            let mut p = Problem::new(Sense::Maximize);
            let vars: Vec<_> = (0..6).map(|i| p.add_binary(format!("v{i}"))).collect();
            let mut obj = LinExpr::new();
            let mut cons = LinExpr::new();
            for (i, &v) in vars.iter().enumerate() {
                obj.add_term(v, ((i * 3) % 7 + 2) as f64);
                cons.add_term(v, ((i * 5) % 9 + 1) as f64);
            }
            p.set_objective(obj);
            p.add_constraint(cons, Cmp::Le, budget);
            p
        };
        let first = Solver::new().presolve(false).solve(&build(9.0)).unwrap();
        let basis = first.root_basis().cloned().expect("root basis captured");
        let cold = Solver::new().presolve(false).solve(&build(11.0)).unwrap();
        let warm = Solver::new()
            .presolve(false)
            .warm_basis(basis)
            .solve(&build(11.0))
            .unwrap();
        assert_eq!(warm.status, cold.status);
        assert_eq!(warm.objective.to_bits(), cold.objective.to_bits());
        assert_eq!(warm.values(), cold.values());
        assert!(
            warm.stats.warm_hits + warm.stats.warm_rejects > 0,
            "warm attempt recorded"
        );
    }

    #[test]
    fn solve_records_obs_counters() {
        // Counters are process-global and sibling tests may also solve
        // while this runs, so assert presence, not exact totals.
        obs::set_level(obs::Level::Summary);
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_integer("x", 0.0, 10.0);
        let y = p.add_integer("y", 0.0, 10.0);
        p.set_objective(LinExpr::terms(&[(x, 5.0), (y, 4.0)]));
        p.add_constraint(LinExpr::terms(&[(x, 6.0), (y, 4.0)]), Cmp::Le, 24.0);
        p.add_constraint(LinExpr::terms(&[(x, 1.0), (y, 2.0)]), Cmp::Le, 6.0);
        let sol = Solver::new().solve(&p).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);

        let report = obs::snapshot();
        assert!(report.counter("mip.simplex.solves").unwrap_or(0) > 0);
        assert!(report.counter("mip.bnb.nodes").unwrap_or(0) > 0);
        assert!(report.counter("mip.bnb.incumbents").unwrap_or(0) > 0);
        assert!(report.span("mip.solve").is_some());
        obs::set_level(obs::Level::Off);
    }
}
