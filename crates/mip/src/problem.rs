//! Problem construction: variables, constraints, objective.

use crate::expr::{LinExpr, VarId};
use std::fmt;

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Constraint comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

/// Integrality class of a variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VarKind {
    /// Continuous within its bounds.
    Continuous,
    /// Integer within its bounds.
    Integer,
}

/// A single variable definition.
#[derive(Debug, Clone)]
pub(crate) struct VarDef {
    pub name: String,
    pub kind: VarKind,
    pub lo: f64,
    pub hi: f64,
}

/// One linear constraint `expr cmp rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Left-hand side.
    pub expr: LinExpr,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand side constant.
    pub rhs: f64,
}

/// Errors raised by problem construction or solving.
#[derive(Debug, Clone, PartialEq)]
pub enum MipError {
    /// A variable's lower bound exceeds its upper bound.
    InvalidBounds {
        /// Variable name.
        name: String,
        /// The offending bounds.
        bounds: (f64, f64),
    },
    /// A lower bound of negative infinity (unsupported by the dense
    /// simplex shift transformation).
    UnboundedBelow {
        /// Variable name.
        name: String,
    },
    /// An expression referenced a variable not in the problem.
    UnknownVariable {
        /// Index referenced.
        index: usize,
    },
    /// A non-finite coefficient or bound was supplied.
    NonFinite,
    /// An integer variable with an infinite upper bound: branch-and-bound
    /// cannot enumerate an unbounded integer lattice.
    UnboundedInteger {
        /// Variable name.
        name: String,
    },
    /// The objective has no terms, so "optimal" would be meaningless —
    /// every feasible point ties.
    EmptyObjective,
}

impl fmt::Display for MipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MipError::InvalidBounds { name, bounds } => {
                write!(f, "variable {name}: lower bound {} > upper bound {}", bounds.0, bounds.1)
            }
            MipError::UnboundedBelow { name } => {
                write!(f, "variable {name}: lower bound must be finite")
            }
            MipError::UnknownVariable { index } => {
                write!(f, "expression references unknown variable x{index}")
            }
            MipError::NonFinite => write!(f, "non-finite coefficient or bound"),
            MipError::UnboundedInteger { name } => {
                write!(f, "integer variable {name}: upper bound must be finite")
            }
            MipError::EmptyObjective => write!(f, "objective has no terms"),
        }
    }
}

impl std::error::Error for MipError {}

/// A mixed-integer linear program.
#[derive(Debug, Clone)]
pub struct Problem {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<VarDef>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) objective: LinExpr,
}

impl Problem {
    /// Creates an empty problem with the given optimization direction.
    pub fn new(sense: Sense) -> Self {
        Self {
            sense,
            vars: Vec::new(),
            constraints: Vec::new(),
            objective: LinExpr::new(),
        }
    }

    /// Adds a binary (0/1 integer) variable.
    pub fn add_binary(&mut self, name: impl Into<String>) -> VarId {
        self.push_var(name.into(), VarKind::Integer, 0.0, 1.0)
    }

    /// Adds a bounded integer variable.
    pub fn add_integer(&mut self, name: impl Into<String>, lo: f64, hi: f64) -> VarId {
        self.push_var(name.into(), VarKind::Integer, lo, hi)
    }

    /// Adds a bounded continuous variable (`hi` may be `f64::INFINITY`).
    pub fn add_continuous(&mut self, name: impl Into<String>, lo: f64, hi: f64) -> VarId {
        self.push_var(name.into(), VarKind::Continuous, lo, hi)
    }

    fn push_var(&mut self, name: String, kind: VarKind, lo: f64, hi: f64) -> VarId {
        let id = VarId(self.vars.len());
        self.vars.push(VarDef { name, kind, lo, hi });
        id
    }

    /// Adds the constraint `expr cmp rhs`.
    pub fn add_constraint(&mut self, expr: LinExpr, cmp: Cmp, rhs: f64) {
        self.constraints.push(Constraint { expr, cmp, rhs });
    }

    /// Sets the objective expression.
    pub fn set_objective(&mut self, obj: LinExpr) {
        self.objective = obj;
    }

    /// Optimization direction.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.index()].name
    }

    /// Bounds of a variable.
    pub fn var_bounds(&self, v: VarId) -> (f64, f64) {
        let d = &self.vars[v.index()];
        (d.lo, d.hi)
    }

    /// Integrality of a variable.
    pub fn var_kind(&self, v: VarId) -> VarKind {
        self.vars[v.index()].kind
    }

    /// Checks whether a dense assignment satisfies all constraints, bounds
    /// and integrality within `tol`.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.vars.len() {
            return false;
        }
        for (i, d) in self.vars.iter().enumerate() {
            let v = values[i];
            if v < d.lo - tol || v > d.hi + tol {
                return false;
            }
            if d.kind == VarKind::Integer && (v - v.round()).abs() > tol {
                return false;
            }
        }
        self.constraints.iter().all(|c| {
            let lhs = c.expr.eval(values);
            match c.cmp {
                Cmp::Le => lhs <= c.rhs + tol,
                Cmp::Ge => lhs >= c.rhs - tol,
                Cmp::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }

    /// Validates the problem structure.
    ///
    /// # Errors
    ///
    /// Returns an error for inverted or `-inf` lower bounds, unbounded
    /// integer variables, an empty objective, non-finite data, or
    /// expressions referencing foreign variables.
    pub fn validate(&self) -> Result<(), MipError> {
        for d in &self.vars {
            if !d.lo.is_finite() {
                return Err(MipError::UnboundedBelow {
                    name: d.name.clone(),
                });
            }
            if d.hi < d.lo {
                return Err(MipError::InvalidBounds {
                    name: d.name.clone(),
                    bounds: (d.lo, d.hi),
                });
            }
            if d.hi.is_nan() {
                return Err(MipError::NonFinite);
            }
            if d.kind == VarKind::Integer && !d.hi.is_finite() {
                return Err(MipError::UnboundedInteger {
                    name: d.name.clone(),
                });
            }
        }
        if self.objective.iter().next().is_none() {
            return Err(MipError::EmptyObjective);
        }
        let width = self.vars.len();
        let check_expr = |e: &LinExpr| -> Result<(), MipError> {
            if let Some(m) = e.max_var() {
                if m >= width {
                    return Err(MipError::UnknownVariable { index: m });
                }
            }
            if e.iter().any(|(_, c)| !c.is_finite()) || !e.offset().is_finite() {
                return Err(MipError::NonFinite);
            }
            Ok(())
        };
        check_expr(&self.objective)?;
        for c in &self.constraints {
            check_expr(&c.expr)?;
            if !c.rhs.is_finite() {
                return Err(MipError::NonFinite);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_binary("x");
        let y = p.add_continuous("y", 0.0, 5.0);
        p.add_constraint(LinExpr::terms(&[(x, 1.0), (y, 1.0)]), Cmp::Le, 3.0);
        p.set_objective(LinExpr::from(y));
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_constraints(), 1);
        assert_eq!(p.var_name(x), "x");
        assert_eq!(p.var_bounds(y), (0.0, 5.0));
        assert_eq!(p.var_kind(x), VarKind::Integer);
        p.validate().unwrap();
    }

    #[test]
    fn feasibility_check_covers_integrality() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_binary("x");
        p.add_constraint(LinExpr::from(x), Cmp::Ge, 1.0);
        assert!(p.is_feasible(&[1.0], 1e-6));
        assert!(!p.is_feasible(&[0.5], 1e-6)); // fractional binary
        assert!(!p.is_feasible(&[0.0], 1e-6)); // violates constraint
        assert!(!p.is_feasible(&[2.0], 1e-6)); // violates bound
    }

    #[test]
    fn validate_rejects_bad_bounds() {
        let mut p = Problem::new(Sense::Minimize);
        p.add_continuous("y", 2.0, 1.0);
        assert!(matches!(p.validate(), Err(MipError::InvalidBounds { .. })));
    }

    #[test]
    fn validate_rejects_minus_infinity() {
        let mut p = Problem::new(Sense::Minimize);
        p.add_continuous("y", f64::NEG_INFINITY, 1.0);
        assert!(matches!(p.validate(), Err(MipError::UnboundedBelow { .. })));
    }

    #[test]
    fn validate_rejects_foreign_vars() {
        let mut p = Problem::new(Sense::Minimize);
        let _x = p.add_binary("x");
        p.set_objective(LinExpr::from(VarId(9)));
        assert!(matches!(
            p.validate(),
            Err(MipError::UnknownVariable { index: 9 })
        ));
    }

    #[test]
    fn validate_rejects_nan() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_binary("x");
        p.set_objective(LinExpr::from(x));
        p.add_constraint(LinExpr::terms(&[(x, f64::NAN)]), Cmp::Le, 1.0);
        assert_eq!(p.validate(), Err(MipError::NonFinite));
    }

    #[test]
    fn validate_rejects_unbounded_integer() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_integer("x", 0.0, f64::INFINITY);
        p.set_objective(LinExpr::from(x));
        assert!(matches!(
            p.validate(),
            Err(MipError::UnboundedInteger { .. })
        ));
    }

    #[test]
    fn validate_rejects_empty_objective() {
        let mut p = Problem::new(Sense::Minimize);
        p.add_binary("x");
        assert_eq!(p.validate(), Err(MipError::EmptyObjective));
    }

    #[test]
    fn error_display() {
        let e = MipError::UnknownVariable { index: 3 };
        assert!(e.to_string().contains("x3"));
    }
}
