//! A small, dependency-free mixed-integer linear programming (MILP) solver.
//!
//! DeepBurning-SEG formulates DNN model segmentation as a MIP (Section V-A
//! of the paper) and solves it with Gurobi. This crate is the from-scratch
//! substitute: a dense two-phase primal simplex LP solver wrapped in a
//! best-first branch-and-bound search over the integer variables.
//!
//! It is sized for the segmentation problems AutoSeg generates (hundreds of
//! binaries, a few hundred constraints), not for industrial instances.
//!
//! # Example
//!
//! A tiny knapsack: maximize `3x + 4y + 2z` with `2x + 3y + z <= 4`.
//!
//! ```
//! use mip::{Problem, Sense, Cmp, LinExpr, Solver, SolveStatus};
//!
//! let mut p = Problem::new(Sense::Maximize);
//! let x = p.add_binary("x");
//! let y = p.add_binary("y");
//! let z = p.add_binary("z");
//! p.set_objective(LinExpr::terms(&[(x, 3.0), (y, 4.0), (z, 2.0)]));
//! p.add_constraint(LinExpr::terms(&[(x, 2.0), (y, 3.0), (z, 1.0)]), Cmp::Le, 4.0);
//!
//! let sol = Solver::new().solve(&p)?;
//! assert_eq!(sol.status, SolveStatus::Optimal);
//! assert!((sol.objective - 6.0).abs() < 1e-6); // y + z
//! # Ok::<(), mip::MipError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod branch;
mod expr;
mod presolve;
mod problem;
mod simplex;
mod warmstart;

pub use branch::{default_threads, BuiltinPool, NodePool, SolveStats, Solver, SolverLimits, WaveEval};
pub use expr::{LinExpr, VarId};
pub use presolve::{presolve, Presolved, PresolveResult, PresolveStats};
pub use problem::{Cmp, Constraint, MipError, Problem, Sense, VarKind};
pub use simplex::{Basis, LpOutcome};
pub use warmstart::WarmReject;

/// Termination status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// Proven optimal within tolerances.
    Optimal,
    /// A feasible incumbent was found but a limit stopped the proof of
    /// optimality.
    Feasible,
    /// The problem has no feasible solution.
    Infeasible,
    /// The relaxation is unbounded in the optimization direction.
    Unbounded,
    /// A limit was hit before any feasible solution was found.
    LimitReached,
}

/// Result of a MILP solve.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Termination status.
    pub status: SolveStatus,
    /// Objective value of the incumbent (in the problem's original sense).
    /// Meaningful only when `status` is `Optimal` or `Feasible`.
    pub objective: f64,
    /// Value of every variable in the incumbent.
    values: Vec<f64>,
    /// Number of branch-and-bound nodes explored (`stats.nodes`,
    /// duplicated here for convenience).
    pub nodes: u64,
    /// Per-solve engine statistics (LP solves, pivots, warm-start hit
    /// counts, presolve reductions, ...).
    pub stats: SolveStats,
    /// Optimal basis of the root relaxation, when one was reached.
    root_basis: Option<Basis>,
}

impl Solution {
    pub(crate) fn new(
        status: SolveStatus,
        objective: f64,
        values: Vec<f64>,
        stats: SolveStats,
        root_basis: Option<Basis>,
    ) -> Self {
        Self {
            status,
            objective,
            values,
            nodes: stats.nodes,
            stats,
            root_basis,
        }
    }

    /// Value of a variable in the incumbent solution.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to the solved problem.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// Value of a variable rounded to the nearest integer (useful for
    /// binaries, where LP arithmetic leaves values like `0.9999999`).
    pub fn int_value(&self, var: VarId) -> i64 {
        self.value(var).round() as i64 // saturating round of an LP value; lint: allow(as-cast)
    }

    /// `true` if the status carries a usable assignment.
    pub fn has_solution(&self) -> bool {
        matches!(self.status, SolveStatus::Optimal | SolveStatus::Feasible)
    }

    /// All variable values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Optimal basis of the root relaxation, if the root solved to
    /// optimality. Feed it to [`Solver::warm_basis`] when solving the
    /// next structurally identical problem of a sweep.
    pub fn root_basis(&self) -> Option<&Basis> {
        self.root_basis.as_ref()
    }
}
