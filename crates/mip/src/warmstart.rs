//! Dual-simplex warm starts from a parent basis.
//!
//! A branch-and-bound child differs from its parent only in one variable's
//! bounds, and consecutive sweep cells often differ only in a handful of
//! rhs values. Both perturbations leave the constraint matrix and the
//! objective untouched, so the parent's optimal basis stays *dual* feasible
//! and only the rhs column must be repaired — the textbook dual-simplex
//! setting. Warm solves skip phase 1 entirely.
//!
//! Lifecycle: every optimal LP solve snapshots its [`Basis`] (basic columns
//! plus row orientations). A warm solve (1) rebuilds a tableau with the
//! *parent's* row orientations so the column layout matches, (2) realizes
//! the parent basis by Gaussian elimination restricted to the target
//! columns with partial pivoting, (3) runs the dual simplex (leaving row =
//! most negative rhs, entering column by the dual ratio test, deterministic
//! lowest-index tie-breaks) until the rhs is nonnegative, then (4) polishes
//! with the primal phase 2 and certifies that every artificial sits at
//! zero.
//!
//! Any of those steps can fail — shape drift, a numerically singular basis,
//! a pivot-budget stall, or a nonzero artificial — and each failure is a
//! typed [`WarmReject`]; the caller falls back to the cold two-phase solve,
//! which is always correct. A warm solve therefore never changes *what* is
//! computed, only how fast.

use crate::problem::{MipError, Problem};
use crate::simplex::{
    build_tableau, extract, optimize, phase2_cost, pivot, Basis, Build, LpOutcome, LpSolve,
    Pivoted, EPS, FEAS_TOL,
};

/// Why a warm start was refused. The caller falls back to a cold solve;
/// rejection is an efficiency event, never a correctness one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarmReject {
    /// The tableau shape differs from the basis' origin (different
    /// variable count, row count, or finite-upper-bound structure).
    Shape,
    /// The basis matrix was numerically singular when realized on the new
    /// tableau.
    Singular,
    /// The dual simplex (or the primal polish) exceeded its pivot budget
    /// or otherwise failed to converge.
    Stall,
    /// An artificial variable remained at a nonzero level, so feasibility
    /// cannot be certified from this basis.
    Artificial,
}

/// Result of a warm-start attempt.
pub(crate) enum Warm {
    /// The basis was accepted and the LP solved from it.
    Hit(LpSolve),
    /// The basis was rejected; solve cold instead.
    Reject(WarmReject),
}

/// Re-solves the LP relaxation of `p` under `bounds` starting from
/// `parent`, a basis snapshotted by a previous optimal solve of a
/// same-shaped problem.
pub(crate) fn solve_lp_warm(
    p: &Problem,
    bounds: &[(f64, f64)],
    parent: &Basis,
) -> Result<Warm, MipError> {
    // Shape pre-check: the column layout is determined by the structural
    // count, the row count/orientations, and which variables carry a
    // finite-upper-bound row. Any drift and the basis indices are
    // meaningless here.
    if parent.n != p.num_vars() {
        return Ok(Warm::Reject(WarmReject::Shape));
    }
    let ub_now: Vec<usize> = bounds
        .iter()
        .enumerate()
        .filter(|&(_, b)| b.1.is_finite())
        .map(|(i, _)| i)
        .collect();
    if ub_now != parent.ub_vars
        || parent.flips.len() != p.constraints.len() + ub_now.len()
        || parent.cols.len() != parent.flips.len()
    {
        return Ok(Warm::Reject(WarmReject::Shape));
    }

    obs::add("mip.simplex.solves", 1);
    let mut tab = match build_tableau(p, bounds, Some(&parent.flips))? {
        Build::Ready(t) => t,
        Build::Infeasible => {
            return Ok(Warm::Hit(LpSolve {
                outcome: LpOutcome::Infeasible,
                basis: None,
                pivots: 0,
            }))
        }
    };
    let m = tab.t.len();
    let total = tab.total();
    let art_start = tab.art_start();
    if tab.n_slack != parent.n_slack || tab.n_art != parent.n_art {
        return Ok(Warm::Reject(WarmReject::Shape));
    }
    let mut pivots = 0u64;

    // Realize the parent basis: Gaussian elimination restricted to the
    // target columns, partial pivoting over the still-unrealized rows.
    // The constraint matrix here equals the parent's initial matrix (same
    // coefficients, same orientations — only the rhs differs), for which
    // the target columns form a nonsingular basis; a near-zero pivot can
    // still arise numerically and rejects the warm start.
    for &c in &parent.cols {
        if c >= total {
            return Ok(Warm::Reject(WarmReject::Shape));
        }
    }
    let mut in_target = vec![false; total];
    for &c in &parent.cols {
        in_target[c] = true;
    }
    let mut row_done: Vec<bool> = tab.basis.iter().map(|&b| in_target[b]).collect();
    for &c in &parent.cols {
        if tab.basis.contains(&c) {
            continue;
        }
        let mut best: Option<(usize, f64)> = None;
        for (r, &done) in row_done.iter().enumerate() {
            if done {
                continue;
            }
            let a = tab.t[r][c].abs();
            if best.is_none_or(|(_, ba)| a > ba) {
                best = Some((r, a));
            }
        }
        let Some((r, a)) = best else {
            return Ok(Warm::Reject(WarmReject::Singular));
        };
        if a <= 1e-7 {
            return Ok(Warm::Reject(WarmReject::Singular));
        }
        pivot(&mut tab.t, &mut tab.basis, r, c);
        pivots += 1;
        row_done[r] = true;
    }

    // Dual simplex: repair primal feasibility (negative rhs entries) while
    // the realized basis is (near-)dual feasible. Artificials are banned
    // from entering — a row with negative rhs and no admissible negative
    // entry is then a certificate of infeasibility, since every admissible
    // variable is nonnegative and every nonbasic artificial is zero.
    let cost = phase2_cost(p, total);
    let stall_budget = 50 * (m + total);
    let mut iters = 0usize;
    loop {
        // Leaving row: most negative rhs, lowest row index on ties.
        let mut leave: Option<(usize, f64)> = None;
        for (i, row) in tab.t.iter().enumerate() {
            let r = row[total];
            if r < -EPS && leave.is_none_or(|(_, lr)| r < lr) {
                leave = Some((i, r));
            }
        }
        let Some((l, _)) = leave else {
            break; // primal feasible
        };
        iters += 1;
        if iters > stall_budget {
            return Ok(Warm::Reject(WarmReject::Stall));
        }
        // Entering column: dual ratio test over admissible columns with a
        // negative entry in the leaving row; lowest index on ties.
        let cb: Vec<f64> = tab.basis.iter().map(|&b| cost[b]).collect();
        let mut entering: Option<(usize, f64)> = None;
        for j in 0..art_start {
            if tab.basis.contains(&j) {
                continue;
            }
            let a = tab.t[l][j];
            if a < -EPS {
                let mut rc = cost[j];
                for i in 0..m {
                    // exact-zero skip; lint: allow(float-eq)
                    if cb[i] != 0.0 {
                        rc -= cb[i] * tab.t[i][j];
                    }
                }
                let ratio = rc / (-a);
                let better = match entering {
                    None => true,
                    Some((ej, er)) => ratio < er - EPS || (ratio < er + EPS && j < ej),
                };
                if better {
                    entering = Some((j, ratio));
                }
            }
        }
        let Some((e, _)) = entering else {
            return Ok(Warm::Hit(LpSolve {
                outcome: LpOutcome::Infeasible,
                basis: None,
                pivots,
            }));
        };
        pivot(&mut tab.t, &mut tab.basis, l, e);
        pivots += 1;
    }

    // Primal polish: the realization can leave residual negative reduced
    // costs (it only guarantees primal feasibility was just repaired);
    // phase 2 from a feasible basis finishes the job and certifies
    // optimality regardless of the dual trajectory above.
    let (st, pv) = optimize(&mut tab.t, &mut tab.basis, &cost, Some(art_start));
    pivots += pv;
    if matches!(st, Pivoted::Unbounded) {
        // Bounds only shrink between related solves, so an unbounded ray
        // here signals a numerically bad basis, not a real ray.
        return Ok(Warm::Reject(WarmReject::Stall));
    }
    // Feasibility certificate: every artificial must sit at zero (phase 1
    // would have guaranteed this; the warm path has to check).
    let art_level: f64 = tab
        .basis
        .iter()
        .enumerate()
        .filter(|&(_, &b)| b >= art_start)
        .map(|(i, _)| tab.t[i][total].abs())
        .sum();
    if art_level > FEAS_TOL {
        return Ok(Warm::Reject(WarmReject::Artificial));
    }

    let outcome = extract(p, bounds, &tab);
    let basis = tab.snapshot();
    Ok(Warm::Hit(LpSolve {
        outcome,
        basis: Some(basis),
        pivots,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::problem::{Cmp, Problem, Sense};
    use crate::simplex::solve_lp;

    fn knapsackish() -> (Problem, Vec<(f64, f64)>) {
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = (0..6).map(|i| p.add_binary(format!("v{i}"))).collect();
        let mut obj = LinExpr::new();
        let mut cons = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            obj.add_term(v, ((i * 3) % 7 + 1) as f64);
            cons.add_term(v, ((i * 5) % 9 + 1) as f64);
        }
        p.set_objective(obj);
        p.add_constraint(cons, Cmp::Le, 9.0);
        let bounds = vec![(0.0, 1.0); 6];
        (p, bounds)
    }

    #[test]
    fn warm_solve_matches_cold_on_tightened_bounds() {
        let (p, bounds) = knapsackish();
        let root = solve_lp(&p, &bounds).expect("valid");
        let basis = root.basis.expect("optimal");
        // Tighten one variable's bounds (a branch step) and compare.
        for (var, lo, hi) in [(0, 0.0, 0.0), (0, 1.0, 1.0), (3, 1.0, 1.0)] {
            let mut child = bounds.clone();
            child[var] = (lo, hi);
            let cold = solve_lp(&p, &child).expect("valid").outcome;
            match solve_lp_warm(&p, &child, &basis).expect("valid") {
                Warm::Hit(ls) => match (ls.outcome, cold) {
                    (
                        LpOutcome::Optimal { objective: a, .. },
                        LpOutcome::Optimal { objective: b, .. },
                    ) => {
                        assert!((a - b).abs() < 1e-7, "var {var}: warm {a} vs cold {b}");
                    }
                    (w, c) => assert_eq!(w, c, "var {var}"),
                },
                Warm::Reject(r) => panic!("unexpected rejection {r:?} for var {var}"),
            }
        }
    }

    #[test]
    fn warm_solve_detects_child_infeasibility() {
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_binary("a");
        let b = p.add_binary("b");
        p.set_objective(LinExpr::terms(&[(a, 2.0), (b, 3.0)]));
        p.add_constraint(LinExpr::terms(&[(a, 1.0), (b, 1.0)]), Cmp::Ge, 1.0);
        let bounds = vec![(0.0, 1.0), (0.0, 1.0)];
        let root = solve_lp(&p, &bounds).expect("valid");
        let basis = root.basis.expect("optimal");
        // Force both to zero: violates a + b >= 1.
        let child = vec![(0.0, 0.0), (0.0, 0.0)];
        match solve_lp_warm(&p, &child, &basis).expect("valid") {
            Warm::Hit(ls) => assert_eq!(ls.outcome, LpOutcome::Infeasible),
            Warm::Reject(r) => panic!("unexpected rejection {r:?}"),
        }
    }

    #[test]
    fn shape_drift_is_a_typed_rejection() {
        let (p, bounds) = knapsackish();
        let basis = solve_lp(&p, &bounds).expect("valid").basis.expect("optimal");
        // A different problem (one more variable) cannot use this basis.
        let mut q = Problem::new(Sense::Maximize);
        let xs: Vec<_> = (0..7).map(|i| q.add_binary(format!("w{i}"))).collect();
        q.set_objective(LinExpr::terms(
            &xs.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>(),
        ));
        let qb = vec![(0.0, 1.0); 7];
        match solve_lp_warm(&q, &qb, &basis).expect("valid") {
            Warm::Reject(WarmReject::Shape) => {}
            other => panic!(
                "expected shape rejection, got {:?}",
                match other {
                    Warm::Hit(_) => "hit",
                    Warm::Reject(_) => "other reject",
                }
            ),
        }
    }

    #[test]
    fn rhs_perturbation_reuses_the_basis() {
        // The "next sweep cell" case: same matrix, perturbed rhs via bounds.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 0.0, 50.0);
        let y = p.add_continuous("y", 0.0, 50.0);
        p.set_objective(LinExpr::terms(&[(x, 3.0), (y, 2.0)]));
        p.add_constraint(LinExpr::terms(&[(x, 2.0), (y, 1.0)]), Cmp::Ge, 7.0);
        p.add_constraint(LinExpr::terms(&[(x, 1.0), (y, 3.0)]), Cmp::Ge, 9.0);
        let bounds = vec![(0.0, 50.0), (0.0, 50.0)];
        let mut basis = solve_lp(&p, &bounds).expect("valid").basis.expect("optimal");
        for step in 1..=4 {
            let f = f64::from(step);
            let child = vec![(f, 50.0), (0.0, 50.0)]; // push x's lower bound up
            let cold = solve_lp(&p, &child).expect("valid").outcome;
            match solve_lp_warm(&p, &child, &basis).expect("valid") {
                Warm::Hit(ls) => {
                    match (&ls.outcome, &cold) {
                        (
                            LpOutcome::Optimal { objective: a, .. },
                            LpOutcome::Optimal { objective: b, .. },
                        ) => assert!((a - b).abs() < 1e-7, "step {step}: {a} vs {b}"),
                        (w, c) => assert_eq!(w, c, "step {step}"),
                    }
                    if let Some(b) = ls.basis {
                        basis = b; // chain: each cell warms the next
                    }
                }
                Warm::Reject(r) => panic!("step {step}: unexpected rejection {r:?}"),
            }
        }
    }
}
