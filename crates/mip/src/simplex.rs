//! Dense two-phase primal simplex over the standard form.
//!
//! The LP relaxation solver behind branch & bound. Variables are shifted by
//! their (finite) lower bounds to non-negativity; finite upper bounds become
//! explicit rows; `>=`/`==` rows receive artificial variables driven out in
//! phase 1. Dantzig pricing with a permanent switch to Bland's rule after a
//! stall guarantees termination.
//!
//! Every optimal solve also snapshots its final [`Basis`] (basic column per
//! row plus the tableau layout), which [`crate::warmstart`] uses to re-solve
//! a bounds-perturbed sibling problem with the dual simplex instead of a
//! cold two-phase run.

use crate::problem::{Cmp, MipError, Problem, Sense};

/// Outcome of an LP relaxation solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// Optimal basic solution found.
    Optimal {
        /// Objective in the problem's original sense.
        objective: f64,
        /// Value of every structural variable.
        values: Vec<f64>,
    },
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
}

pub(crate) const EPS: f64 = 1e-9;
pub(crate) const FEAS_TOL: f64 = 1e-7;

/// A simplex basis snapshot: the basic column of every tableau row plus the
/// layout data (row orientations, column-block sizes, which variables
/// contributed upper-bound rows) needed to rebuild an identically-shaped
/// tableau for a related problem. Opaque to callers; produced by an optimal
/// LP solve and consumed by the dual-simplex warm start.
#[derive(Debug, Clone)]
pub struct Basis {
    /// Basic column index per row.
    pub(crate) cols: Vec<usize>,
    /// Row orientation chosen at build time (`true` = the row was negated).
    pub(crate) flips: Vec<bool>,
    /// Structural variable count.
    pub(crate) n: usize,
    /// Slack/surplus column count.
    pub(crate) n_slack: usize,
    /// Artificial column count.
    pub(crate) n_art: usize,
    /// Variables that contributed a finite-upper-bound row, in row order.
    pub(crate) ub_vars: Vec<usize>,
}

/// An LP solve result: outcome plus the optimal basis (for warm-starting
/// related solves) and the pivot count (for stats).
#[derive(Debug)]
pub(crate) struct LpSolve {
    pub outcome: LpOutcome,
    pub basis: Option<Basis>,
    pub pivots: u64,
}

/// The dense tableau plus its column layout. `t` is `m x (total + 1)` with
/// the rhs in the last column; columns are structurals, then slacks, then
/// artificials.
pub(crate) struct Tab {
    pub t: Vec<Vec<f64>>,
    pub basis: Vec<usize>,
    pub n: usize,
    pub n_slack: usize,
    pub n_art: usize,
    pub flips: Vec<bool>,
    pub ub_vars: Vec<usize>,
}

impl Tab {
    pub fn art_start(&self) -> usize {
        self.n + self.n_slack
    }
    pub fn total(&self) -> usize {
        self.n + self.n_slack + self.n_art
    }
    /// Snapshot of the current basis together with the build layout.
    pub fn snapshot(&self) -> Basis {
        Basis {
            cols: self.basis.clone(),
            flips: self.flips.clone(),
            n: self.n,
            n_slack: self.n_slack,
            n_art: self.n_art,
            ub_vars: self.ub_vars.clone(),
        }
    }
}

pub(crate) enum Build {
    Ready(Tab),
    /// A bounds pair with `hi < lo`: trivially infeasible, no tableau.
    Infeasible,
}

/// Builds the initial tableau for `p` under `bounds`.
///
/// With `forced_flips = None` rows are normalized to `rhs >= 0` (the cold
/// path: phase 1 needs a feasible starting basis) and the chosen
/// orientations are recorded. With `forced_flips = Some(..)` the given
/// orientations are applied verbatim so the column layout matches the solve
/// that produced them — rhs entries may then be negative, which is exactly
/// what the dual simplex expects.
pub(crate) fn build_tableau(
    p: &Problem,
    bounds: &[(f64, f64)],
    forced_flips: Option<&[bool]>,
) -> Result<Build, MipError> {
    debug_assert_eq!(bounds.len(), p.num_vars());
    let n = p.num_vars();

    for (i, &(lo, hi)) in bounds.iter().enumerate() {
        if !lo.is_finite() {
            return Err(MipError::UnboundedBelow {
                name: p.vars[i].name.clone(),
            });
        }
        if hi < lo - EPS {
            return Ok(Build::Infeasible);
        }
    }

    // Rows in `(coeffs over shifted structurals, cmp, rhs)` form.
    struct Row {
        coef: Vec<f64>,
        cmp: Cmp,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(p.constraints.len() + n);
    for c in &p.constraints {
        let mut coef = vec![0.0; n];
        let mut rhs = c.rhs - c.expr.offset();
        for (v, k) in c.expr.iter() {
            coef[v.index()] += k;
            rhs -= k * bounds[v.index()].0; // shift x = lo + x'
        }
        rows.push(Row {
            coef,
            cmp: c.cmp,
            rhs,
        });
    }
    // Finite upper bounds as x' <= hi - lo rows (the shifted var is
    // otherwise free upward).
    let mut ub_vars = Vec::new();
    for (i, &(lo, hi)) in bounds.iter().enumerate() {
        if hi.is_finite() {
            let mut coef = vec![0.0; n];
            coef[i] = 1.0;
            ub_vars.push(i);
            rows.push(Row {
                coef,
                cmp: Cmp::Le,
                rhs: hi - lo,
            });
        }
    }

    // Orient rows: cold solves normalize to rhs >= 0 (and record the
    // choice); warm solves replay the parent's orientations.
    let mut flips = vec![false; rows.len()];
    for (ri, r) in rows.iter_mut().enumerate() {
        let flip = match forced_flips {
            Some(f) => f.get(ri).copied().unwrap_or(false),
            None => r.rhs < 0.0,
        };
        if flip {
            for k in &mut r.coef {
                *k = -*k;
            }
            r.rhs = -r.rhs;
            r.cmp = match r.cmp {
                Cmp::Le => Cmp::Ge,
                Cmp::Ge => Cmp::Le,
                Cmp::Eq => Cmp::Eq,
            };
            flips[ri] = true;
        }
    }

    let m = rows.len();
    let n_slack = rows
        .iter()
        .filter(|r| matches!(r.cmp, Cmp::Le | Cmp::Ge))
        .count();
    let n_art = rows
        .iter()
        .filter(|r| matches!(r.cmp, Cmp::Ge | Cmp::Eq))
        .count();
    let total = n + n_slack + n_art;

    let mut t = vec![vec![0.0; total + 1]; m];
    let mut basis = vec![0usize; m];
    let art_start = n + n_slack;
    let mut slack_i = 0;
    let mut art_i = 0;
    for (i, r) in rows.iter().enumerate() {
        t[i][..n].copy_from_slice(&r.coef);
        t[i][total] = r.rhs;
        match r.cmp {
            Cmp::Le => {
                t[i][n + slack_i] = 1.0;
                basis[i] = n + slack_i;
                slack_i += 1;
            }
            Cmp::Ge => {
                t[i][n + slack_i] = -1.0;
                slack_i += 1;
                t[i][art_start + art_i] = 1.0;
                basis[i] = art_start + art_i;
                art_i += 1;
            }
            Cmp::Eq => {
                t[i][art_start + art_i] = 1.0;
                basis[i] = art_start + art_i;
                art_i += 1;
            }
        }
    }

    Ok(Build::Ready(Tab {
        t,
        basis,
        n,
        n_slack,
        n_art,
        flips,
        ub_vars,
    }))
}

/// The sense-adjusted phase-2 cost vector (internal minimize form).
pub(crate) fn phase2_cost(p: &Problem, total: usize) -> Vec<f64> {
    let sign = match p.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let mut cost = vec![0.0; total];
    for (v, k) in p.objective.iter() {
        cost[v.index()] += sign * k;
    }
    cost
}

/// Extracts the structural solution from an optimal tableau (undoing the
/// lower-bound shift) and evaluates the objective in the original sense.
pub(crate) fn extract(p: &Problem, bounds: &[(f64, f64)], tab: &Tab) -> LpOutcome {
    let total = tab.total();
    let mut values: Vec<f64> = bounds.iter().map(|&(lo, _)| lo).collect();
    for (i, &b) in tab.basis.iter().enumerate() {
        if b < tab.n {
            values[b] = bounds[b].0 + tab.t[i][total];
        }
    }
    let objective = p.objective.eval(&values);
    LpOutcome::Optimal { objective, values }
}

/// Solves the LP relaxation of `p` with variable bounds overridden by
/// `bounds` (one `(lo, hi)` pair per variable), cold: two-phase from the
/// all-slack basis.
pub(crate) fn solve_lp(p: &Problem, bounds: &[(f64, f64)]) -> Result<LpSolve, MipError> {
    obs::add("mip.simplex.solves", 1);
    let mut tab = match build_tableau(p, bounds, None)? {
        Build::Ready(t) => t,
        Build::Infeasible => {
            return Ok(LpSolve {
                outcome: LpOutcome::Infeasible,
                basis: None,
                pivots: 0,
            })
        }
    };
    let m = tab.t.len();
    let total = tab.total();
    let art_start = tab.art_start();
    let mut pivots = 0u64;

    // Phase 1: minimize the sum of artificials.
    if tab.n_art > 0 {
        let mut cost = vec![0.0; total];
        for j in art_start..total {
            cost[j] = 1.0;
        }
        let (st, pv) = optimize(&mut tab.t, &mut tab.basis, &cost, None);
        pivots += pv;
        match st {
            Pivoted::Optimal => {}
            Pivoted::Unbounded => {
                // Cannot happen: phase-1 is bounded below by 0.
                return Ok(LpSolve {
                    outcome: LpOutcome::Infeasible,
                    basis: None,
                    pivots,
                });
            }
        }
        let phase1: f64 = tab
            .basis
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b >= art_start)
            .map(|(i, _)| tab.t[i][total])
            .sum();
        if phase1 > FEAS_TOL {
            return Ok(LpSolve {
                outcome: LpOutcome::Infeasible,
                basis: None,
                pivots,
            });
        }
        // Drive zero-level artificials out of the basis where possible.
        for i in 0..m {
            if tab.basis[i] >= art_start {
                if let Some(j) = (0..art_start).find(|&j| tab.t[i][j].abs() > 1e-7) {
                    pivot(&mut tab.t, &mut tab.basis, i, j);
                    pivots += 1;
                }
            }
        }
    }

    // Phase 2: minimize the (sense-adjusted) structural objective.
    // Artificial columns are banned from entering.
    let cost = phase2_cost(p, total);
    let (st, pv) = optimize(&mut tab.t, &mut tab.basis, &cost, Some(art_start));
    pivots += pv;
    match st {
        Pivoted::Optimal => {}
        Pivoted::Unbounded => {
            return Ok(LpSolve {
                outcome: LpOutcome::Unbounded,
                basis: None,
                pivots,
            })
        }
    }

    let outcome = extract(p, bounds, &tab);
    Ok(LpSolve {
        outcome,
        basis: Some(tab.snapshot()),
        pivots,
    })
}

pub(crate) enum Pivoted {
    Optimal,
    Unbounded,
}

/// Runs the primal simplex on an already-canonical feasible tableau.
/// `banned_from` excludes columns `>= banned_from` from entering (used to
/// freeze artificials in phase 2). Returns the status and pivot count.
pub(crate) fn optimize(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    cost: &[f64],
    banned_from: Option<usize>,
) -> (Pivoted, u64) {
    let m = t.len();
    let total = cost.len();
    let rhs_col = total;
    let enter_limit = banned_from.unwrap_or(total);
    // Dantzig pricing, switching permanently to Bland's rule after a stall
    // budget to guarantee termination on degenerate problems.
    let stall_budget = 50 * (m + total);
    let mut iters = 0usize;
    loop {
        iters += 1;
        let bland = iters > stall_budget;
        // Reduced costs r_j = c_j - sum_i c_B[i] * t[i][j].
        let cb: Vec<f64> = basis.iter().map(|&b| cost[b]).collect();
        let mut entering: Option<(usize, f64)> = None;
        for j in 0..enter_limit {
            if basis.contains(&j) {
                continue;
            }
            let mut r = cost[j];
            for i in 0..m {
                // exact-zero skip: a basic cost of literal 0.0 contributes
                // nothing; lint: allow(float-eq)
                if cb[i] != 0.0 {
                    r -= cb[i] * t[i][j];
                }
            }
            if r < -1e-9 {
                match (bland, entering) {
                    (true, _) => {
                        entering = Some((j, r));
                        break; // Bland: first eligible column
                    }
                    (false, Some((_, best))) if r >= best => {}
                    (false, _) => entering = Some((j, r)),
                }
            }
        }
        let done = u64::try_from(iters - 1).unwrap_or(u64::MAX);
        let Some((e, _)) = entering else {
            obs::add("mip.simplex.pivots", done);
            return (Pivoted::Optimal, done);
        };
        // Ratio test.
        let mut leave: Option<(usize, f64)> = None;
        for i in 0..m {
            if t[i][e] > EPS {
                let ratio = t[i][rhs_col] / t[i][e];
                let better = match leave {
                    None => true,
                    Some((li, lr)) => {
                        ratio < lr - EPS || (ratio < lr + EPS && basis[i] < basis[li])
                    }
                };
                if better {
                    leave = Some((i, ratio));
                }
            }
        }
        let Some((l, _)) = leave else {
            obs::add("mip.simplex.pivots", done);
            return (Pivoted::Unbounded, done);
        };
        pivot(t, basis, l, e);
    }
}

/// Pivots on `(row, col)`: normalizes the pivot row and eliminates the
/// column from every other row.
pub(crate) fn pivot(t: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize) {
    let piv = t[row][col];
    debug_assert!(piv.abs() > EPS, "pivot on a (near-)zero element");
    let width = t[row].len();
    for j in 0..width {
        t[row][j] /= piv;
    }
    for i in 0..t.len() {
        if i != row {
            let factor = t[i][col];
            // exact-zero skip; lint: allow(float-eq)
            if factor != 0.0 {
                for j in 0..width {
                    t[i][j] -= factor * t[row][j];
                }
            }
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::problem::{Cmp, Problem, Sense};

    fn lp(p: &Problem) -> LpOutcome {
        let bounds: Vec<(f64, f64)> = (0..p.num_vars())
            .map(|i| p.var_bounds(crate::VarId(i)))
            .collect();
        solve_lp(p, &bounds).expect("valid problem").outcome
    }

    #[test]
    fn textbook_maximize() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> 36 at (2, 6).
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_continuous("x", 0.0, f64::INFINITY);
        let y = p.add_continuous("y", 0.0, f64::INFINITY);
        p.set_objective(LinExpr::terms(&[(x, 3.0), (y, 5.0)]));
        p.add_constraint(LinExpr::from(x), Cmp::Le, 4.0);
        p.add_constraint(LinExpr::from(y) * 2.0, Cmp::Le, 12.0);
        p.add_constraint(LinExpr::terms(&[(x, 3.0), (y, 2.0)]), Cmp::Le, 18.0);
        match lp(&p) {
            LpOutcome::Optimal { objective, values } => {
                assert!((objective - 36.0).abs() < 1e-6);
                assert!((values[0] - 2.0).abs() < 1e-6);
                assert!((values[1] - 6.0).abs() < 1e-6);
            }
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn minimize_with_ge_constraints() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2 -> 2*10? optimum x=10,y=0: 20.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 0.0, f64::INFINITY);
        let y = p.add_continuous("y", 0.0, f64::INFINITY);
        p.set_objective(LinExpr::terms(&[(x, 2.0), (y, 3.0)]));
        p.add_constraint(LinExpr::terms(&[(x, 1.0), (y, 1.0)]), Cmp::Ge, 10.0);
        p.add_constraint(LinExpr::from(x), Cmp::Ge, 2.0);
        match lp(&p) {
            LpOutcome::Optimal { objective, .. } => assert!((objective - 20.0).abs() < 1e-6),
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y == 4, x - y == 1 -> x=2, y=1, obj 3.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 0.0, f64::INFINITY);
        let y = p.add_continuous("y", 0.0, f64::INFINITY);
        p.set_objective(LinExpr::terms(&[(x, 1.0), (y, 1.0)]));
        p.add_constraint(LinExpr::terms(&[(x, 1.0), (y, 2.0)]), Cmp::Eq, 4.0);
        p.add_constraint(LinExpr::terms(&[(x, 1.0), (y, -1.0)]), Cmp::Eq, 1.0);
        match lp(&p) {
            LpOutcome::Optimal { objective, values } => {
                assert!((objective - 3.0).abs() < 1e-6);
                assert!((values[0] - 2.0).abs() < 1e-6);
                assert!((values[1] - 1.0).abs() < 1e-6);
            }
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn detects_infeasible() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 0.0, 1.0);
        p.add_constraint(LinExpr::from(x), Cmp::Ge, 5.0);
        assert_eq!(lp(&p), LpOutcome::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_continuous("x", 0.0, f64::INFINITY);
        p.set_objective(LinExpr::from(x));
        assert_eq!(lp(&p), LpOutcome::Unbounded);
    }

    #[test]
    fn respects_shifted_lower_bounds() {
        // min x with x in [3, 10] -> 3.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 3.0, 10.0);
        p.set_objective(LinExpr::from(x));
        match lp(&p) {
            LpOutcome::Optimal { objective, values } => {
                assert!((objective - 3.0).abs() < 1e-9);
                assert!((values[0] - 3.0).abs() < 1e-9);
            }
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn negative_lower_bounds_work() {
        // max x + y, x in [-5, -1], y in [-2, 3], x + y <= 0 -> x=-1, y=1? no:
        // max at y=3 gives x+y = 2 > 0, so binding x+y=0 with y=3, x=-3: obj 0.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_continuous("x", -5.0, -1.0);
        let y = p.add_continuous("y", -2.0, 3.0);
        p.set_objective(LinExpr::terms(&[(x, 1.0), (y, 1.0)]));
        p.add_constraint(LinExpr::terms(&[(x, 1.0), (y, 1.0)]), Cmp::Le, 0.0);
        match lp(&p) {
            LpOutcome::Optimal { objective, .. } => assert!(objective.abs() < 1e-6),
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn fixed_variable() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 2.5, 2.5);
        let y = p.add_continuous("y", 0.0, 10.0);
        p.set_objective(LinExpr::from(y));
        p.add_constraint(LinExpr::terms(&[(x, 1.0), (y, -1.0)]), Cmp::Le, 0.0);
        match lp(&p) {
            LpOutcome::Optimal { values, .. } => {
                assert!((values[0] - 2.5).abs() < 1e-9);
                assert!((values[1] - 2.5).abs() < 1e-6);
            }
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: several redundant constraints through the
        // optimum.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_continuous("x", 0.0, f64::INFINITY);
        let y = p.add_continuous("y", 0.0, f64::INFINITY);
        p.set_objective(LinExpr::terms(&[(x, 1.0), (y, 1.0)]));
        p.add_constraint(LinExpr::terms(&[(x, 1.0), (y, 1.0)]), Cmp::Le, 1.0);
        p.add_constraint(LinExpr::terms(&[(x, 2.0), (y, 2.0)]), Cmp::Le, 2.0);
        p.add_constraint(LinExpr::terms(&[(x, 1.0)]), Cmp::Le, 1.0);
        match lp(&p) {
            LpOutcome::Optimal { objective, .. } => assert!((objective - 1.0).abs() < 1e-6),
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn objective_constant_offset_carries_through() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 1.0, 5.0);
        p.set_objective(LinExpr::from(x) + LinExpr::constant(10.0));
        match lp(&p) {
            LpOutcome::Optimal { objective, .. } => assert!((objective - 11.0).abs() < 1e-9),
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn optimal_solve_snapshots_a_basis() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_continuous("x", 0.0, 4.0);
        let y = p.add_continuous("y", 0.0, 6.0);
        p.set_objective(LinExpr::terms(&[(x, 3.0), (y, 5.0)]));
        p.add_constraint(LinExpr::terms(&[(x, 3.0), (y, 2.0)]), Cmp::Le, 18.0);
        let bounds = vec![(0.0, 4.0), (0.0, 6.0)];
        let ls = solve_lp(&p, &bounds).expect("valid");
        assert!(matches!(ls.outcome, LpOutcome::Optimal { .. }));
        let basis = ls.basis.expect("optimal solves carry a basis");
        // 1 constraint row + 2 upper-bound rows.
        assert_eq!(basis.cols.len(), 3);
        assert_eq!(basis.flips.len(), 3);
        assert_eq!(basis.ub_vars, vec![0, 1]);
    }
}
