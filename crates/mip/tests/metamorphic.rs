//! Metamorphic tests: solution-preserving problem transformations.
//!
//! Each transformation below provably maps a MILP onto an equivalent one;
//! a correct solver must report the *same answer* on both. To make "same"
//! checkable at the bit level the generated instances carry a tie-free
//! objective (`coef_i = base_i * 4096 + 2^i`, small exact integers): the
//! optimum assignment is unique, so the incumbent is fully determined and
//! the transformations below cannot legitimately change it.
//!
//! Transformations covered:
//!
//! * **Constraint row permutation** — reordering `add_constraint` calls.
//! * **Variable reindexing** — adding the variables (and every term) in a
//!   permuted order; the incumbent must map through the permutation.
//! * **Positive objective scaling** — multiplying the objective by `k > 0`
//!   scales the optimal value by exactly `k` (exact in f64 for these
//!   integer instances) and leaves the argmax untouched.
//!
//! # The pinned tie-break rule
//!
//! On instances *with* objective ties the engine's choice is still
//! deterministic, by the following documented protocol (see
//! `crates/mip/src/branch.rs` module docs):
//!
//! 1. nodes are explored best-first by LP bound, ties by insertion order;
//! 2. the branching variable is the most fractional integer variable,
//!    ties toward the lowest variable index;
//! 3. the down-branch (`floor`) is enqueued before the up-branch;
//! 4. an incumbent is replaced only by a *strictly better* objective —
//!    on a tie, the first incumbent found in this fixed order wins.
//!
//! The `tie_break_is_pinned` test freezes that choice on a crafted tying
//! instance so any change to the protocol is a visible diff, not a silent
//! reshuffle.

use mip::{Cmp, LinExpr, Problem, Sense, SolveStatus, Solver};

/// SplitMix64: deterministic, seedable, no external deps.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    /// Small signed integer coefficient in `-5..=5`, exactly representable.
    fn coef(&mut self) -> f64 {
        let raw = self.below(11);
        let centered = i64::try_from(raw).expect("raw < 11") - 5;
        let mut x = 0.0f64;
        for _ in 0..centered.unsigned_abs() {
            x += 1.0;
        }
        if centered < 0 {
            -x
        } else {
            x
        }
    }
}

/// Raw data of one tie-free instance; `build` variants assemble it into a
/// [`Problem`] under different presentations.
struct Raw {
    n: usize,
    sense: Sense,
    /// Tie-free objective coefficients (see module docs).
    obj: Vec<f64>,
    /// Rows as `(coefficients, cmp, rhs)`.
    rows: Vec<(Vec<f64>, Cmp, f64)>,
}

fn random_raw(rng: &mut Rng) -> Raw {
    let n = usize::try_from(3 + rng.below(8)).expect("≤ 10"); // 3..=10 binaries
    let m = usize::try_from(2 + rng.below(4)).expect("small"); // 2..=5 rows
    let sense = if rng.below(2) == 0 {
        Sense::Minimize
    } else {
        Sense::Maximize
    };
    let obj: Vec<f64> = (0..n)
        .map(|i| {
            let fingerprint = f64::from(1u32 << u32::try_from(i).expect("i ≤ 9"));
            rng.coef() * 4096.0 + fingerprint
        })
        .collect();
    let mut rows = Vec::with_capacity(m);
    for _ in 0..m {
        let coefs: Vec<f64> = (0..n).map(|_| rng.coef()).collect();
        let cmp = match rng.below(8) {
            0 => Cmp::Eq,
            1..=4 => Cmp::Le,
            _ => Cmp::Ge,
        };
        let lo: f64 = coefs.iter().map(|c| c.min(0.0)).sum();
        let hi: f64 = coefs.iter().map(|c| c.max(0.0)).sum();
        let span = u64::try_from((hi - lo).abs().round() as i64).unwrap_or(0); // small exact int; lint: allow(as-cast)
        let rhs = lo + {
            let raw = rng.below(span + 3);
            let mut x = 0.0f64;
            for _ in 0..raw {
                x += 1.0;
            }
            x - 1.0
        };
        rows.push((coefs, cmp, rhs));
    }
    Raw {
        n,
        sense,
        obj,
        rows,
    }
}

/// Builds the instance with rows in `row_order`, variables in
/// `var_order` (`var_order[j]` = original index of the j-th added
/// variable), and the objective scaled by `scale`.
fn build(raw: &Raw, row_order: &[usize], var_order: &[usize], scale: f64) -> Problem {
    let mut p = Problem::new(raw.sense);
    // vid_of[original index] = VarId in the permuted problem.
    let mut vid_of = vec![None; raw.n];
    for &oi in var_order {
        vid_of[oi] = Some(p.add_binary(format!("x{oi}")));
    }
    let vid = |oi: usize| vid_of[oi].expect("every var added");
    let mut obj = LinExpr::new();
    for &oi in var_order {
        obj.add_term(vid(oi), raw.obj[oi] * scale);
    }
    p.set_objective(obj);
    for &ri in row_order {
        let (coefs, cmp, rhs) = &raw.rows[ri];
        let mut e = LinExpr::new();
        for &oi in var_order {
            e.add_term(vid(oi), coefs[oi]);
        }
        p.add_constraint(e, *cmp, *rhs);
    }
    p
}

fn identity(n: usize) -> Vec<usize> {
    (0..n).collect()
}

/// A deterministic shuffle of `0..n` derived from the rng.
fn permutation(rng: &mut Rng, n: usize) -> Vec<usize> {
    let mut p = identity(n);
    for i in (1..n).rev() {
        let j = usize::try_from(rng.below(u64::try_from(i + 1).expect("small"))).expect("≤ i");
        p.swap(i, j);
    }
    p
}

#[test]
fn constraint_row_permutation_leaves_the_incumbent_invariant() {
    let mut rng = Rng(0x0e7a_0001);
    let solver = Solver::new();
    let mut optimal = 0u32;
    for case in 0..60 {
        let raw = random_raw(&mut rng);
        let rows = identity(raw.rows.len());
        let vars = identity(raw.n);
        let base = solver
            .solve(&build(&raw, &rows, &vars, 1.0))
            .expect("valid problem");
        for (pname, order) in [
            ("reversed", rows.iter().rev().copied().collect::<Vec<_>>()),
            ("rotated", {
                let mut r = rows.clone();
                r.rotate_left(1);
                r
            }),
            ("shuffled", permutation(&mut rng, raw.rows.len())),
        ] {
            let sol = solver
                .solve(&build(&raw, &order, &vars, 1.0))
                .expect("valid problem");
            assert_eq!(sol.status, base.status, "case {case} [{pname}]");
            if base.status == SolveStatus::Optimal {
                optimal += 1;
                assert_eq!(
                    sol.objective.to_bits(),
                    base.objective.to_bits(),
                    "case {case} [{pname}]: objective changed under row permutation"
                );
                assert_eq!(
                    sol.values(),
                    base.values(),
                    "case {case} [{pname}]: incumbent changed under row permutation"
                );
            }
        }
    }
    assert!(optimal >= 30, "too few optimal cases ({optimal}) to be meaningful");
}

#[test]
fn variable_reindexing_maps_the_incumbent_through_the_permutation() {
    let mut rng = Rng(0x0e7a_0002);
    let solver = Solver::new();
    let mut optimal = 0u32;
    for case in 0..60 {
        let raw = random_raw(&mut rng);
        let rows = identity(raw.rows.len());
        let base = solver
            .solve(&build(&raw, &rows, &identity(raw.n), 1.0))
            .expect("valid problem");
        let perm = permutation(&mut rng, raw.n);
        let sol = solver
            .solve(&build(&raw, &rows, &perm, 1.0))
            .expect("valid problem");
        assert_eq!(sol.status, base.status, "case {case}");
        if base.status == SolveStatus::Optimal {
            optimal += 1;
            assert_eq!(
                sol.objective.to_bits(),
                base.objective.to_bits(),
                "case {case}: objective changed under variable reindexing"
            );
            // The j-th variable of the permuted problem is original
            // variable perm[j]; its value must match bit-for-bit.
            for (j, &oi) in perm.iter().enumerate() {
                assert_eq!(
                    sol.values()[j].to_bits(),
                    base.values()[oi].to_bits(),
                    "case {case}: value of original var {oi} moved under reindexing"
                );
            }
        }
    }
    assert!(optimal >= 20, "too few optimal cases ({optimal}) to be meaningful");
}

#[test]
fn positive_objective_scaling_preserves_the_argmax_exactly() {
    let mut rng = Rng(0x0e7a_0003);
    let solver = Solver::new();
    let mut optimal = 0u32;
    for case in 0..40 {
        let raw = random_raw(&mut rng);
        let rows = identity(raw.rows.len());
        let vars = identity(raw.n);
        let base = solver
            .solve(&build(&raw, &rows, &vars, 1.0))
            .expect("valid problem");
        // Powers of two are exact rescalings of every f64; 3.0 is exact
        // here because all coefficients and sums are small integers.
        for scale in [2.0, 4.0, 32.0, 3.0] {
            let sol = solver
                .solve(&build(&raw, &rows, &vars, scale))
                .expect("valid problem");
            assert_eq!(sol.status, base.status, "case {case} [scale {scale}]");
            if base.status == SolveStatus::Optimal {
                optimal += 1;
                assert_eq!(
                    sol.objective.to_bits(),
                    (base.objective * scale).to_bits(),
                    "case {case} [scale {scale}]: objective is not the exact rescaling"
                );
                assert_eq!(
                    sol.values(),
                    base.values(),
                    "case {case} [scale {scale}]: argmax changed under objective scaling"
                );
            }
        }
    }
    assert!(optimal >= 20, "too few optimal cases ({optimal}) to be meaningful");
}

/// Freezes the documented tie-break (module docs, rule 4: first-found
/// incumbent wins on equal objective) on the canonical tying instance
/// `max x0 + x1 s.t. x0 + x1 <= 1`: both `(1,0)` and `(0,1)` are optimal,
/// the engine must pick one deterministically at every thread count — and
/// the pick itself is pinned so a protocol change cannot hide.
#[test]
fn tie_break_is_pinned() {
    let build_tie = || {
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_binary("a");
        let b = p.add_binary("b");
        p.set_objective(LinExpr::terms(&[(a, 1.0), (b, 1.0)]));
        p.add_constraint(LinExpr::terms(&[(a, 1.0), (b, 1.0)]), Cmp::Le, 1.0);
        p
    };
    let reference = Solver::new().threads(1).solve(&build_tie()).expect("solves");
    assert_eq!(reference.status, SolveStatus::Optimal);
    assert!((reference.objective - 1.0).abs() < 1e-9);
    // Pin the actual choice: the down-branch-first, lowest-index protocol
    // lands on x0 = 1, x1 = 0. If this assertion starts failing the
    // tie-break protocol changed — update the module docs *and* this pin
    // together, and expect golden results downstream to move.
    assert_eq!(reference.values(), &[1.0, 0.0], "pinned tie-break choice");
    for threads in [2, 4] {
        let sol = Solver::new()
            .threads(threads)
            .solve(&build_tie())
            .expect("solves");
        assert_eq!(sol.values(), reference.values(), "threads {threads}");
        assert_eq!(sol.objective.to_bits(), reference.objective.to_bits());
    }
    // Repeat solves are bit-stable.
    let again = Solver::new().threads(1).solve(&build_tie()).expect("solves");
    assert_eq!(again.values(), reference.values());
}
