//! Structure-aware fuzz: degenerate problems get typed outcomes, never
//! panics.
//!
//! The generator deliberately produces the problem shapes that break
//! naive solvers — empty objectives, inverted and non-finite bounds,
//! unbounded integer lattices, singleton and zero-coefficient rows,
//! contradictory constraint pairs — and pins three contracts:
//!
//! 1. **No panics**: every generated problem either validates and solves
//!    or fails with a typed [`mip::MipError`]. (The suite running to
//!    completion *is* the assertion; any panic fails the test.)
//! 2. **`Problem::validate` agrees with the solver**: `solve` errors
//!    exactly when `validate` errors, and with the same variant —
//!    validation is the single gate, not a best-effort hint.
//! 3. **Presolve agrees with the full engine**: a typed
//!    `PresolveResult::Infeasible` must match a presolve-less solve
//!    reporting `Infeasible`, a `FixedAll` must match its `Optimal`
//!    objective, and a `Reduced` problem must re-validate cleanly.

use mip::{
    presolve, Cmp, LinExpr, MipError, PresolveResult, Problem, Sense, SolveStatus, Solver, VarId,
};

/// SplitMix64: deterministic, seedable, no external deps.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    fn coef(&mut self) -> f64 {
        let raw = self.below(11);
        let centered = i64::try_from(raw).expect("raw < 11") - 5;
        let mut x = 0.0f64;
        for _ in 0..centered.unsigned_abs() {
            x += 1.0;
        }
        if centered < 0 {
            -x
        } else {
            x
        }
    }
}

/// Degeneracy classes the generator injects (one per instance, plus
/// whatever the random structure produces on its own).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Degeneracy {
    None,
    EmptyObjective,
    InvertedBounds,
    NanBound,
    InfiniteCoef,
    UnboundedInteger,
    UnboundedBelow,
    NanRhs,
    ContradictorySingletons,
    ZeroRow,
}

const CLASSES: [Degeneracy; 10] = [
    Degeneracy::None,
    Degeneracy::EmptyObjective,
    Degeneracy::InvertedBounds,
    Degeneracy::NanBound,
    Degeneracy::InfiniteCoef,
    Degeneracy::UnboundedInteger,
    Degeneracy::UnboundedBelow,
    Degeneracy::NanRhs,
    Degeneracy::ContradictorySingletons,
    Degeneracy::ZeroRow,
];

fn generate(rng: &mut Rng, class: Degeneracy) -> Problem {
    let n = usize::try_from(1 + rng.below(7)).expect("≤ 8");
    let sense = if rng.below(2) == 0 {
        Sense::Minimize
    } else {
        Sense::Maximize
    };
    let mut p = Problem::new(sense);
    let bad_var = usize::try_from(rng.below(u64::try_from(n).expect("small"))).expect("< n");
    let mut vars: Vec<VarId> = Vec::with_capacity(n);
    for i in 0..n {
        let injected = i == bad_var;
        let v = match rng.below(3) {
            0 => p.add_binary(format!("b{i}")),
            1 => {
                let lo = rng.coef().min(0.0);
                let hi = lo + f64::from(u32::try_from(rng.below(5)).expect("small"));
                match class {
                    Degeneracy::InvertedBounds if injected => {
                        p.add_integer(format!("i{i}"), hi + 2.0, lo)
                    }
                    Degeneracy::UnboundedInteger if injected => {
                        p.add_integer(format!("i{i}"), lo, f64::INFINITY)
                    }
                    Degeneracy::NanBound if injected => {
                        p.add_integer(format!("i{i}"), lo, f64::NAN)
                    }
                    _ => p.add_integer(format!("i{i}"), lo, hi),
                }
            }
            _ => {
                let lo = rng.coef().min(0.0);
                let hi = lo + f64::from(u32::try_from(rng.below(6)).expect("small"));
                match class {
                    Degeneracy::UnboundedBelow if injected => {
                        p.add_continuous(format!("c{i}"), f64::NEG_INFINITY, hi)
                    }
                    _ => p.add_continuous(format!("c{i}"), lo, hi),
                }
            }
        };
        vars.push(v);
    }

    if class != Degeneracy::EmptyObjective {
        let mut obj = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            let mut c = rng.coef();
            // Regenerate literal zeros so the objective genuinely
            // references every variable; lint: allow(float-eq)
            if c == 0.0 {
                c = 1.0;
            }
            if class == Degeneracy::InfiniteCoef && i == bad_var {
                c = f64::INFINITY;
            }
            obj.add_term(v, c);
        }
        p.set_objective(obj);
    }

    let m = usize::try_from(rng.below(5)).expect("≤ 4");
    for _ in 0..m {
        let mut e = LinExpr::new();
        // Structure-aware row shapes: full rows, singletons, zero rows.
        match rng.below(4) {
            0 => {
                // Singleton row.
                e.add_term(vars[bad_var], rng.coef());
            }
            1 => { /* zero row: no terms at all */ }
            _ => {
                for &v in &vars {
                    e.add_term(v, rng.coef());
                }
            }
        }
        let cmp = match rng.below(3) {
            0 => Cmp::Eq,
            1 => Cmp::Le,
            _ => Cmp::Ge,
        };
        let rhs = if class == Degeneracy::NanRhs {
            f64::NAN
        } else {
            rng.coef()
        };
        p.add_constraint(e, cmp, rhs);
    }
    match class {
        Degeneracy::ContradictorySingletons => {
            // x >= 2 and x <= 1 on the same variable.
            p.add_constraint(LinExpr::from(vars[bad_var]), Cmp::Ge, 2.0);
            p.add_constraint(LinExpr::from(vars[bad_var]), Cmp::Le, 1.0);
        }
        Degeneracy::ZeroRow => {
            // An explicitly false empty row: 0 >= 1.
            p.add_constraint(LinExpr::new(), Cmp::Ge, 1.0);
        }
        _ => {}
    }
    p
}

/// A fully pinned instance: every variable is forced by a singleton
/// equality row, so presolve must short-circuit to `FixedAll` without
/// the branch-and-bound engine ever running.
fn generate_pinned(rng: &mut Rng) -> Problem {
    let n = usize::try_from(1 + rng.below(5)).expect("≤ 6");
    let sense = if rng.below(2) == 0 {
        Sense::Minimize
    } else {
        Sense::Maximize
    };
    let mut p = Problem::new(sense);
    let mut obj = LinExpr::new();
    for i in 0..n {
        let lo = rng.coef().min(0.0);
        let v = if rng.below(2) == 0 {
            p.add_integer(format!("i{i}"), lo, lo + 4.0)
        } else {
            p.add_continuous(format!("c{i}"), lo, lo + 4.0)
        };
        obj.add_term(v, rng.coef() + 7.0); // nonzero, all positive
        let pin = lo + f64::from(u32::try_from(rng.below(5)).expect("small"));
        p.add_constraint(LinExpr::from(v), Cmp::Eq, pin);
    }
    p.set_objective(obj);
    p
}

/// The same error *variant* (field values may carry names/indices that
/// differ in formatting, the variant is the typed contract).
fn same_variant(a: &MipError, b: &MipError) -> bool {
    matches!(
        (a, b),
        (MipError::InvalidBounds { .. }, MipError::InvalidBounds { .. })
            | (MipError::UnboundedBelow { .. }, MipError::UnboundedBelow { .. })
            | (MipError::UnknownVariable { .. }, MipError::UnknownVariable { .. })
            | (MipError::NonFinite, MipError::NonFinite)
            | (MipError::UnboundedInteger { .. }, MipError::UnboundedInteger { .. })
            | (MipError::EmptyObjective, MipError::EmptyObjective)
    )
}

#[test]
fn degenerate_problems_get_typed_outcomes_and_validate_agrees() {
    let mut rng = Rng(0xfa22_0001);
    let (mut valid, mut invalid) = (0u32, 0u32);
    for case in 0..400 {
        let class = CLASSES[usize::try_from(rng.below(10)).expect("< 10")];
        let p = generate(&mut rng, class);
        let validation = p.validate();
        let solved = Solver::new().solve(&p);
        match (&validation, &solved) {
            (Ok(()), Ok(sol)) => {
                valid += 1;
                // Typed statuses only, and usable incumbents are feasible.
                if sol.has_solution() {
                    assert!(
                        p.is_feasible(sol.values(), 1e-6),
                        "case {case} [{class:?}]: incumbent violates constraints"
                    );
                    assert!(
                        sol.objective.is_finite(),
                        "case {case} [{class:?}]: non-finite objective on a solution"
                    );
                } else {
                    assert!(
                        matches!(
                            sol.status,
                            SolveStatus::Infeasible
                                | SolveStatus::Unbounded
                                | SolveStatus::LimitReached
                        ),
                        "case {case} [{class:?}]: untyped status {:?}",
                        sol.status
                    );
                }
            }
            (Err(ve), Err(se)) => {
                invalid += 1;
                assert!(
                    same_variant(ve, se),
                    "case {case} [{class:?}]: validate said {ve:?}, solve said {se:?}"
                );
            }
            (Ok(()), Err(se)) => {
                panic!("case {case} [{class:?}]: validate passed but solve errored: {se:?}")
            }
            (Err(ve), Ok(sol)) => panic!(
                "case {case} [{class:?}]: validate rejected ({ve:?}) but solve returned {:?}",
                sol.status
            ),
        }
    }
    assert!(
        valid >= 100 && invalid >= 100,
        "generator imbalance: {valid} valid / {invalid} invalid"
    );
}

#[test]
fn presolve_outcomes_agree_with_the_presolve_less_engine() {
    let mut rng = Rng(0xfa22_0002);
    let reference = Solver::new().presolve(false).warm_lp(false).threads(1);
    let (mut infeasible, mut fixed_all, mut reduced) = (0u32, 0u32, 0u32);
    for case in 0..400 {
        let class = CLASSES[usize::try_from(rng.below(10)).expect("< 10")];
        let p = if case % 16 == 5 {
            generate_pinned(&mut rng)
        } else {
            generate(&mut rng, class)
        };
        if p.validate().is_err() {
            continue; // presolve's contract starts at a validated problem
        }
        match presolve(&p) {
            PresolveResult::Infeasible { reason } => {
                infeasible += 1;
                assert!(!reason.is_empty(), "case {case}: empty infeasibility reason");
                let sol = reference.solve(&p).expect("validated problem");
                assert_eq!(
                    sol.status,
                    SolveStatus::Infeasible,
                    "case {case} [{class:?}]: presolve says infeasible ({reason}), engine says {:?}",
                    sol.status
                );
            }
            PresolveResult::FixedAll { values, objective, .. } => {
                fixed_all += 1;
                assert!(
                    p.is_feasible(&values, 1e-6),
                    "case {case} [{class:?}]: FixedAll point is infeasible"
                );
                let sol = reference.solve(&p).expect("validated problem");
                assert_eq!(sol.status, SolveStatus::Optimal, "case {case} [{class:?}]");
                assert!(
                    (sol.objective - objective).abs() <= 1e-6,
                    "case {case} [{class:?}]: FixedAll objective {objective} vs engine {}",
                    sol.objective
                );
            }
            PresolveResult::Reduced(r) => {
                reduced += 1;
                // The reduced problem must be well-formed...
                r.problem()
                    .validate()
                    .unwrap_or_else(|e| panic!("case {case} [{class:?}]: reduced problem invalid: {e:?}"));
                // ...and postsolve must produce original-width vectors.
                let probe: Vec<f64> = (0..r.problem().num_vars())
                    .map(|_| 0.0)
                    .collect();
                assert_eq!(
                    r.postsolve(&probe).len(),
                    p.num_vars(),
                    "case {case}: postsolve width mismatch"
                );
            }
        }
    }
    assert!(
        infeasible >= 10 && fixed_all >= 5 && reduced >= 50,
        "generator imbalance: {infeasible} infeasible / {fixed_all} fixed-all / {reduced} reduced"
    );
}
