//! Differential test: branch & bound vs exhaustive enumeration.
//!
//! The B&B solver is the trusted oracle behind every `mip-*` codesign
//! method, so this suite cross-checks it against a solver that cannot be
//! subtly wrong: brute-force enumeration of all `2^n` assignments on
//! randomized small binary ILPs (≤ 12 variables, 200 seeded instances).
//!
//! Pinned agreements, per instance:
//!
//! * **Status**: the solver reports `Optimal` exactly when enumeration
//!   finds a feasible assignment, `Infeasible` exactly when it finds
//!   none — typed, never a panic or a stalled `LimitReached`.
//! * **Objective**: optimal objectives agree to `OBJ_TOL = 1e-6` (the
//!   solver's own integrality/gap tolerance class; LP arithmetic means
//!   bit-equality is not the contract, and the tolerance is asserted,
//!   not assumed).
//! * **Feasibility**: the solver's incumbent satisfies every constraint
//!   under [`mip::Problem::is_feasible`] with the same tolerance.
//!
//! Unboundedness cannot arise in pure-binary instances (every variable
//! has finite bounds), so typed `Unbounded` agreement is pinned on
//! constructed instances with a free continuous direction instead.

use mip::{Cmp, LinExpr, Problem, Sense, SolveStatus, Solver, VarId};

/// Absolute objective-agreement tolerance (see module docs).
const OBJ_TOL: f64 = 1e-6;

/// Feasibility tolerance handed to [`Problem::is_feasible`] — matches the
/// solver's default integrality tolerance.
const FEAS_TOL: f64 = 1e-6;

/// SplitMix64: deterministic, seedable, no external deps.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..bound`.
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    /// Small signed integer coefficient in `-5..=5`.
    fn coef(&mut self) -> f64 {
        let raw = self.below(11);
        let centered = i64::try_from(raw).expect("raw < 11") - 5;
        // Exact small integers: every arithmetic step downstream is
        // float-exact, keeping the brute-force objective bit-clean.
        let mut x = 0.0f64;
        let steps = centered.unsigned_abs();
        for _ in 0..steps {
            x += 1.0;
        }
        if centered < 0 {
            -x
        } else {
            x
        }
    }
}

/// One randomized instance: the problem plus the raw data needed to
/// re-evaluate it independently of the crate's `LinExpr::eval`.
struct Instance {
    problem: Problem,
    vars: Vec<VarId>,
    objective: Vec<f64>,
    constraints: Vec<(Vec<f64>, Cmp, f64)>,
    sense: Sense,
}

fn random_instance(rng: &mut Rng) -> Instance {
    let n = usize::try_from(2 + rng.below(11)).expect("≤ 12"); // 2..=12 binaries
    let m = usize::try_from(1 + rng.below(6)).expect("small"); // 1..=6 constraints
    let sense = if rng.below(2) == 0 {
        Sense::Minimize
    } else {
        Sense::Maximize
    };
    let mut p = Problem::new(sense);
    let vars: Vec<VarId> = (0..n).map(|i| p.add_binary(format!("x{i}"))).collect();
    let objective: Vec<f64> = (0..n).map(|_| rng.coef()).collect();
    let mut obj = LinExpr::new();
    for (v, c) in vars.iter().zip(&objective) {
        obj.add_term(*v, *c);
    }
    p.set_objective(obj);
    let mut constraints = Vec::with_capacity(m);
    for _ in 0..m {
        let coefs: Vec<f64> = (0..n).map(|_| rng.coef()).collect();
        // Bias toward satisfiable-but-tight inequalities; equalities are
        // rarer (1 in 8) because they make most instances infeasible,
        // and the suite wants both outcomes well represented.
        let cmp = match rng.below(8) {
            0 => Cmp::Eq,
            1..=4 => Cmp::Le,
            _ => Cmp::Ge,
        };
        let lo: f64 = coefs.iter().map(|c| c.min(0.0)).sum();
        let hi: f64 = coefs.iter().map(|c| c.max(0.0)).sum();
        let span = u64::try_from((hi - lo).abs().round() as i64).unwrap_or(0); // small exact int; lint: allow(as-cast)
        let rhs = lo + {
            let raw = rng.below(span + 3);
            let mut x = 0.0f64;
            for _ in 0..raw {
                x += 1.0;
            }
            x - 1.0
        };
        let mut e = LinExpr::new();
        for (v, c) in vars.iter().zip(&coefs) {
            e.add_term(*v, *c);
        }
        p.add_constraint(e, cmp, rhs);
        constraints.push((coefs, cmp, rhs));
    }
    Instance {
        problem: p,
        vars,
        objective,
        constraints,
        sense,
    }
}

/// Exhaustive oracle: the optimal objective over all `2^n` assignments,
/// or `None` if no assignment is feasible. Feasibility is evaluated from
/// the raw coefficient data, independent of the crate's expression code.
fn brute_force(inst: &Instance) -> Option<(f64, Vec<f64>)> {
    let n = inst.vars.len();
    let mut best: Option<(f64, Vec<f64>)> = None;
    for mask in 0u32..(1u32 << n) {
        let assign: Vec<f64> = (0..n)
            .map(|i| if mask & (1 << i) != 0 { 1.0 } else { 0.0 })
            .collect();
        let feasible = inst.constraints.iter().all(|(coefs, cmp, rhs)| {
            let lhs: f64 = coefs.iter().zip(&assign).map(|(c, x)| c * x).sum();
            match cmp {
                Cmp::Le => lhs <= rhs + FEAS_TOL,
                Cmp::Ge => lhs >= rhs - FEAS_TOL,
                Cmp::Eq => (lhs - rhs).abs() <= FEAS_TOL,
            }
        });
        if !feasible {
            continue;
        }
        // `+ 0.0`: `Sum<f64>` seeds from the first element, so an
        // all-zero row sums to -0.0; fold it to +0.0 to match the
        // solver's normalized zeros bit-for-bit.
        let obj: f64 = inst.objective.iter().zip(&assign).map(|(c, x)| c * x).sum::<f64>() + 0.0;
        let better = match &best {
            None => true,
            Some((incumbent, _)) => match inst.sense {
                Sense::Minimize => obj < *incumbent,
                Sense::Maximize => obj > *incumbent,
            },
        };
        if better {
            best = Some((obj, assign));
        }
    }
    best
}

#[test]
fn branch_and_bound_matches_exhaustive_enumeration_on_200_instances() {
    let mut rng = Rng(0x5eed_0001);
    let solver = Solver::new();
    let (mut feasible_count, mut infeasible_count) = (0u32, 0u32);
    for case in 0..200 {
        let inst = random_instance(&mut rng);
        let oracle = brute_force(&inst);
        let sol = solver
            .solve(&inst.problem)
            .unwrap_or_else(|e| panic!("case {case}: solver error {e:?}"));
        match oracle {
            Some((best_obj, _)) => {
                feasible_count += 1;
                assert_eq!(
                    sol.status,
                    SolveStatus::Optimal,
                    "case {case}: oracle found a feasible point, solver said {:?}",
                    sol.status
                );
                assert!(
                    (sol.objective - best_obj).abs() <= OBJ_TOL,
                    "case {case}: objective mismatch: solver {} vs exhaustive {} (> {OBJ_TOL})",
                    sol.objective,
                    best_obj
                );
                assert!(
                    inst.problem.is_feasible(sol.values(), FEAS_TOL),
                    "case {case}: solver incumbent violates its own constraints"
                );
            }
            None => {
                infeasible_count += 1;
                assert_eq!(
                    sol.status,
                    SolveStatus::Infeasible,
                    "case {case}: no feasible assignment exists, solver said {:?}",
                    sol.status
                );
            }
        }
    }
    // The generator must actually exercise both outcome classes, or the
    // differential claim is hollow.
    assert!(
        feasible_count >= 40 && infeasible_count >= 10,
        "generator imbalance: {feasible_count} feasible / {infeasible_count} infeasible"
    );
}

/// A randomized instance whose objective is *tie-free by construction*:
/// `coef_i = base_i * 4096 + 2^i` with `base_i ∈ -5..=5`. The `2^i` part
/// is a unique binary fingerprint of the chosen assignment (it is
/// recoverable mod 4096), so two distinct assignments can never share an
/// objective value, every objective gap is ≥ 1, and all sums stay small
/// exact integers — f64 arithmetic on them is associative and exact.
/// With a unique optimum, *every* correct engine configuration must
/// return the identical incumbent, which is what makes bit-level
/// differential comparison meaningful.
fn fingerprint_instance(rng: &mut Rng) -> Instance {
    let n = usize::try_from(2 + rng.below(11)).expect("≤ 12"); // 2..=12 binaries
    let m = usize::try_from(1 + rng.below(6)).expect("small"); // 1..=6 constraints
    let sense = if rng.below(2) == 0 {
        Sense::Minimize
    } else {
        Sense::Maximize
    };
    let mut p = Problem::new(sense);
    let vars: Vec<VarId> = (0..n).map(|i| p.add_binary(format!("x{i}"))).collect();
    let objective: Vec<f64> = (0..n)
        .map(|i| {
            let fingerprint = f64::from(1u32 << u32::try_from(i).expect("i ≤ 11"));
            rng.coef() * 4096.0 + fingerprint
        })
        .collect();
    let mut obj = LinExpr::new();
    for (v, c) in vars.iter().zip(&objective) {
        obj.add_term(*v, *c);
    }
    p.set_objective(obj);
    let mut constraints = Vec::with_capacity(m);
    for _ in 0..m {
        let coefs: Vec<f64> = (0..n).map(|_| rng.coef()).collect();
        let cmp = match rng.below(8) {
            0 => Cmp::Eq,
            1..=4 => Cmp::Le,
            _ => Cmp::Ge,
        };
        let lo: f64 = coefs.iter().map(|c| c.min(0.0)).sum();
        let hi: f64 = coefs.iter().map(|c| c.max(0.0)).sum();
        let span = u64::try_from((hi - lo).abs().round() as i64).unwrap_or(0); // small exact int; lint: allow(as-cast)
        let rhs = lo + {
            let raw = rng.below(span + 3);
            let mut x = 0.0f64;
            for _ in 0..raw {
                x += 1.0;
            }
            x - 1.0
        };
        let mut e = LinExpr::new();
        for (v, c) in vars.iter().zip(&coefs) {
            e.add_term(*v, *c);
        }
        p.add_constraint(e, cmp, rhs);
        constraints.push((coefs, cmp, rhs));
    }
    Instance {
        problem: p,
        vars,
        objective,
        constraints,
        sense,
    }
}

/// The tentpole differential claim: the four engine configurations —
/// cold-serial (no presolve, no warm starts), presolved, warm-started,
/// and fully-enabled parallel at 1/2/4 threads — agree *bit-identically*
/// on status, objective, and every incumbent value, on ≥ 200 seeded
/// instances, and the shared answer is the brute-force optimum.
#[test]
fn four_engine_configurations_agree_bitwise_on_200_instances() {
    let mut rng = Rng(0x5eed_0b17);
    let configs: Vec<(&str, Solver)> = vec![
        (
            "cold-serial",
            Solver::new().presolve(false).warm_lp(false).threads(1),
        ),
        (
            "presolved",
            Solver::new().presolve(true).warm_lp(false).threads(1),
        ),
        (
            "warm-started",
            Solver::new().presolve(false).warm_lp(true).threads(1),
        ),
        (
            "parallel-1",
            Solver::new().presolve(true).warm_lp(true).threads(1),
        ),
        (
            "parallel-2",
            Solver::new().presolve(true).warm_lp(true).threads(2),
        ),
        (
            "parallel-4",
            Solver::new().presolve(true).warm_lp(true).threads(4),
        ),
    ];
    let (mut feasible_count, mut infeasible_count, mut warm_hits) = (0u32, 0u32, 0u64);
    for case in 0..200 {
        let inst = fingerprint_instance(&mut rng);
        let oracle = brute_force(&inst);
        let reference = configs[0]
            .1
            .solve(&inst.problem)
            .unwrap_or_else(|e| panic!("case {case} [cold-serial]: solver error {e:?}"));
        // Cold-serial vs the exhaustive oracle (exact integer data, same
        // index-order summation: equality is exact, not approximate).
        match &oracle {
            Some((best_obj, best_assign)) => {
                feasible_count += 1;
                assert_eq!(reference.status, SolveStatus::Optimal, "case {case}");
                assert_eq!(
                    reference.objective.to_bits(),
                    best_obj.to_bits(),
                    "case {case}: cold-serial objective {} vs oracle {}",
                    reference.objective,
                    best_obj
                );
                assert_eq!(
                    reference.values(),
                    best_assign.as_slice(),
                    "case {case}: unique optimum, incumbent must match the oracle"
                );
            }
            None => {
                infeasible_count += 1;
                assert_eq!(reference.status, SolveStatus::Infeasible, "case {case}");
            }
        }
        for (name, solver) in configs.iter().skip(1) {
            let sol = solver
                .solve(&inst.problem)
                .unwrap_or_else(|e| panic!("case {case} [{name}]: solver error {e:?}"));
            warm_hits += sol.stats.warm_hits;
            assert_eq!(sol.status, reference.status, "case {case} [{name}]");
            if reference.status == SolveStatus::Optimal {
                assert_eq!(
                    sol.objective.to_bits(),
                    reference.objective.to_bits(),
                    "case {case} [{name}]: objective {} vs cold-serial {}",
                    sol.objective,
                    reference.objective
                );
                let same = sol
                    .values()
                    .iter()
                    .zip(reference.values())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(
                    same && sol.values().len() == reference.values().len(),
                    "case {case} [{name}]: incumbent values diverge from cold-serial: {:?} vs {:?}",
                    sol.values(),
                    reference.values()
                );
            }
        }
    }
    assert!(
        feasible_count >= 40 && infeasible_count >= 10,
        "generator imbalance: {feasible_count} feasible / {infeasible_count} infeasible"
    );
    // The warm-started configurations must actually exercise the warm
    // path, or the equivalence claim is vacuous.
    assert!(warm_hits > 0, "no warm-start hits across the whole sweep");
}

#[test]
fn solver_is_deterministic_across_repeat_solves() {
    let mut rng = Rng(0xd5ee_d002);
    let solver = Solver::new();
    for _ in 0..20 {
        let inst = random_instance(&mut rng);
        let a = solver.solve(&inst.problem).expect("solve");
        let b = solver.solve(&inst.problem).expect("solve");
        assert_eq!(a.status, b.status);
        assert_eq!(a.objective.to_bits(), b.objective.to_bits(), "bit-identical repeats");
        let same = a
            .values()
            .iter()
            .zip(b.values())
            .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same, "assignments must be bit-identical across solves");
    }
}

#[test]
fn unbounded_directions_are_reported_typed() {
    // Pure-binary problems cannot be unbounded; a free continuous
    // improving direction is the canonical construction.
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_continuous("x", 0.0, f64::INFINITY);
    let b = p.add_binary("b");
    let mut obj = LinExpr::new();
    obj.add_term(x, 1.0);
    obj.add_term(b, 1.0);
    p.set_objective(obj);
    // A constraint that does not bound x from above.
    let mut e = LinExpr::new();
    e.add_term(b, 1.0);
    p.add_constraint(e, Cmp::Le, 1.0);
    let sol = Solver::new().solve(&p).expect("valid problem");
    assert_eq!(sol.status, SolveStatus::Unbounded);

    // The minimize twin is bounded (x ≥ 0): optimal at 0, not unbounded.
    let mut p2 = Problem::new(Sense::Minimize);
    let x2 = p2.add_continuous("x", 0.0, f64::INFINITY);
    let mut obj2 = LinExpr::new();
    obj2.add_term(x2, 1.0);
    p2.set_objective(obj2);
    let sol2 = Solver::new().solve(&p2).expect("valid problem");
    assert_eq!(sol2.status, SolveStatus::Optimal);
    assert!(sol2.objective.abs() <= OBJ_TOL);
}
