//! Property tests: the MILP solver against brute-force enumeration on
//! random small binary programs, plus LP invariants.

use mip::{Cmp, LinExpr, Problem, Sense, SolveStatus, Solver};
use proptest::prelude::*;

/// A random binary program: n <= 8 binaries, up to 4 <=-constraints with
/// small integer coefficients.
#[derive(Debug, Clone)]
struct RandomBip {
    n: usize,
    obj: Vec<i32>,
    rows: Vec<(Vec<i32>, i32)>,
    maximize: bool,
}

fn random_bip() -> impl Strategy<Value = RandomBip> {
    (2usize..=8, any::<bool>())
        .prop_flat_map(|(n, maximize)| {
            // At least one nonzero coefficient: an all-zero objective is an
            // empty LinExpr, which Problem::validate rejects by design.
            let obj = proptest::collection::vec(-9i32..=9, n)
                .prop_filter("objective must have a nonzero term", |o| {
                    o.iter().any(|&c| c != 0)
                });
            let row = (proptest::collection::vec(-5i32..=5, n), -6i32..=20);
            let rows = proptest::collection::vec(row, 0..=4);
            (Just(n), obj, rows, Just(maximize))
        })
        .prop_map(|(n, obj, rows, maximize)| RandomBip {
            n,
            obj,
            rows,
            maximize,
        })
}

fn build(p: &RandomBip) -> (Problem, Vec<mip::VarId>) {
    let mut prob = Problem::new(if p.maximize {
        Sense::Maximize
    } else {
        Sense::Minimize
    });
    let vars: Vec<_> = (0..p.n).map(|i| prob.add_binary(format!("b{i}"))).collect();
    let mut obj = LinExpr::new();
    for (i, &c) in p.obj.iter().enumerate() {
        obj.add_term(vars[i], c as f64);
    }
    prob.set_objective(obj);
    for (coefs, rhs) in &p.rows {
        let mut e = LinExpr::new();
        for (i, &c) in coefs.iter().enumerate() {
            e.add_term(vars[i], c as f64);
        }
        prob.add_constraint(e, Cmp::Le, *rhs as f64);
    }
    (prob, vars)
}

/// Brute-force optimum over all 2^n assignments; `None` if infeasible.
fn brute_force(p: &RandomBip) -> Option<f64> {
    let mut best: Option<f64> = None;
    for mask in 0u32..(1 << p.n) {
        let x: Vec<f64> = (0..p.n)
            .map(|i| if mask & (1 << i) != 0 { 1.0 } else { 0.0 })
            .collect();
        let feasible = p.rows.iter().all(|(coefs, rhs)| {
            coefs
                .iter()
                .zip(&x)
                .map(|(&c, &v)| c as f64 * v)
                .sum::<f64>()
                <= *rhs as f64 + 1e-9
        });
        if !feasible {
            continue;
        }
        let val: f64 = p.obj.iter().zip(&x).map(|(&c, &v)| c as f64 * v).sum();
        best = Some(match best {
            None => val,
            Some(b) if p.maximize => b.max(val),
            Some(b) => b.min(val),
        });
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solver_matches_brute_force(bip in random_bip()) {
        let (prob, _vars) = build(&bip);
        let sol = Solver::new().solve(&prob).unwrap();
        match brute_force(&bip) {
            Some(opt) => {
                prop_assert_eq!(sol.status, SolveStatus::Optimal);
                prop_assert!((sol.objective - opt).abs() < 1e-5,
                    "solver {} vs brute force {}", sol.objective, opt);
                // The reported assignment must itself be feasible & match.
                prop_assert!(prob.is_feasible(sol.values(), 1e-5));
            }
            None => prop_assert_eq!(sol.status, SolveStatus::Infeasible),
        }
    }

    #[test]
    fn lp_relaxation_bounds_the_milp(bip in random_bip()) {
        // Make all variables continuous in [0,1]: the relaxation optimum
        // must weakly dominate the integer optimum.
        let (prob, _) = build(&bip);
        let mut relaxed = Problem::new(prob.sense());
        let vars: Vec<_> = (0..bip.n)
            .map(|i| relaxed.add_continuous(format!("c{i}"), 0.0, 1.0))
            .collect();
        let mut obj = LinExpr::new();
        for (i, &c) in bip.obj.iter().enumerate() {
            obj.add_term(vars[i], c as f64);
        }
        relaxed.set_objective(obj);
        for (coefs, rhs) in &bip.rows {
            let mut e = LinExpr::new();
            for (i, &c) in coefs.iter().enumerate() {
                e.add_term(vars[i], c as f64);
            }
            relaxed.add_constraint(e, Cmp::Le, *rhs as f64);
        }
        let lp = Solver::new().solve(&relaxed).unwrap();
        if let Some(int_opt) = brute_force(&bip) {
            prop_assert_eq!(lp.status, SolveStatus::Optimal);
            if bip.maximize {
                prop_assert!(lp.objective >= int_opt - 1e-5);
            } else {
                prop_assert!(lp.objective <= int_opt + 1e-5);
            }
        }
    }
}
