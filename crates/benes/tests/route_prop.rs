//! Property tests for the Benes looping algorithm and the multicast
//! backtracking router, on seeded random permutations and demand sets.
//!
//! Pinned properties:
//!
//! * **Permutations** (sizes 4..=64, powers of two and not): the looping
//!   algorithm always succeeds, the produced switch settings are
//!   conflict-free, and every input traces to exactly its permuted
//!   output — each external output driven exactly once.
//! * **Unicast demand sets**: always routable (rearrangeable
//!   non-blockingness), traces match the demands.
//! * **Multicast demand sets**: when the router succeeds, every source
//!   traces to exactly its sorted destination set; when it refuses, the
//!   refusal is the typed [`RouteError::Unroutable`] (never a panic, and
//!   only for fanout patterns the fabric provably cannot duplicate).
//! * **Pruning**: a fabric pruned to a set of routings supports exactly
//!   those routings' selections; a routing needing a pruned-away
//!   selection is refused by [`PrunedFabric::supports`].

use benes::{BenesNetwork, Demand, RouteError, Routing};

/// SplitMix64 — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        usize::try_from(self.next() % u64::try_from(bound.max(1)).expect("usize fits")).expect("bounded")
    }

    /// Fisher-Yates shuffle of `0..n`.
    fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            p.swap(i, self.below(i + 1));
        }
        p
    }
}

/// Checks that under `routing` every input of `perm` reaches exactly its
/// permuted output and every output is driven exactly once.
fn assert_realizes_permutation(net: &BenesNetwork, routing: &Routing, perm: &[usize]) {
    let mut driven = vec![0usize; net.ports()];
    for (i, &o) in perm.iter().enumerate() {
        let outs = net.trace(routing, i);
        assert_eq!(outs, vec![o], "input {i} must reach exactly output {o}");
        for &out in &outs {
            driven[out] += 1;
        }
    }
    for (o, &n) in driven.iter().enumerate().take(perm.len()) {
        assert_eq!(n, 1, "output {o} driven {n} times; settings conflict");
    }
}

#[test]
fn random_permutations_route_conflict_free_at_all_sizes() {
    let mut rng = Rng(0xbe5e_0001);
    // Powers of two and ragged sizes alike; the fabric pads internally.
    for &ports in &[4usize, 5, 7, 8, 12, 16, 23, 32, 48, 64] {
        let net = BenesNetwork::new(ports);
        for _ in 0..8 {
            let perm = rng.permutation(ports);
            let routing = net
                .route_permutation(&perm)
                .unwrap_or_else(|e| panic!("{ports}-port permutation must route: {e:?}"));
            assert_realizes_permutation(&net, &routing, &perm);
            assert!(
                routing.active_muxes() <= net.total_muxes(),
                "active muxes cannot exceed the fabric"
            );
        }
    }
}

#[test]
fn unicast_demand_sets_always_route() {
    let mut rng = Rng(0xbe5e_0002);
    for &ports in &[4usize, 6, 8, 13, 16, 32] {
        let net = BenesNetwork::new(ports);
        for _ in 0..6 {
            // A partial matching: k sources to k distinct outputs. The
            // multicast router is exhaustive backtracking, so demand
            // density is capped to keep the search tractable at 32
            // ports; full-density permutations go through the looping
            // algorithm above instead.
            let k = 1 + rng.below(ports.min(8));
            let srcs = rng.permutation(ports);
            let dsts = rng.permutation(ports);
            let demands: Vec<Demand> = (0..k).map(|i| Demand::unicast(srcs[i], dsts[i])).collect();
            let routing = net
                .route(&demands)
                .unwrap_or_else(|e| panic!("unicast set on {ports} ports must route: {e:?}"));
            for d in &demands {
                assert_eq!(
                    net.trace(&routing, d.src),
                    d.dsts,
                    "unicast {}->{:?} mis-traced",
                    d.src,
                    d.dsts
                );
            }
        }
    }
}

#[test]
fn multicast_traces_match_or_refuse_typed() {
    let mut rng = Rng(0xbe5e_0003);
    let (mut routed, mut refused) = (0u32, 0u32);
    for &ports in &[4usize, 8, 16] {
        let net = BenesNetwork::new(ports);
        for _ in 0..12 {
            // Partition a random subset of outputs among a few sources,
            // with fanouts from 1 up to aggressive (which may exceed the
            // fabric's duplication capacity — the refusal path).
            let outputs = rng.permutation(ports);
            let n_src = 1 + rng.below(ports / 2);
            let srcs = rng.permutation(ports);
            let mut demands: Vec<Demand> = Vec::new();
            let mut next = 0usize;
            for s in 0..n_src {
                if next >= outputs.len() {
                    break;
                }
                let fanout = 1 + rng.below(4.min(outputs.len() - next));
                let dsts: Vec<usize> = outputs[next..next + fanout].to_vec();
                next += fanout;
                demands.push(Demand::multicast(srcs[s], dsts));
            }
            match net.route(&demands) {
                Ok(routing) => {
                    routed += 1;
                    for d in &demands {
                        let mut want = d.dsts.clone();
                        want.sort_unstable();
                        assert_eq!(
                            net.trace(&routing, d.src),
                            want,
                            "multicast from {} mis-traced",
                            d.src
                        );
                    }
                }
                Err(RouteError::Unroutable { src, dst }) => {
                    refused += 1;
                    // The refusal must name a transfer that was actually
                    // demanded — typed and attributable, not arbitrary.
                    assert!(
                        demands.iter().any(|d| d.src == src && d.dsts.contains(&dst)),
                        "refusal names an undemanded transfer {src}->{dst}"
                    );
                }
                Err(other) => panic!("well-formed demand set failed typed-ly wrong: {other:?}"),
            }
        }
    }
    assert!(routed >= 10, "generator should mostly produce routable sets ({routed})");
    // Multicast refusal is legal but rare at these fanouts; nothing to
    // assert on `refused` beyond it not panicking.
    let _ = refused;
}

#[test]
fn demand_conflicts_are_typed() {
    let net = BenesNetwork::new(8);
    let dup_out = [Demand::unicast(0, 3), Demand::unicast(1, 3)];
    assert_eq!(net.route(&dup_out), Err(RouteError::OutputConflict { dst: 3 }));
    let dup_src = [Demand::unicast(2, 3), Demand::unicast(2, 4)];
    assert_eq!(net.route(&dup_src), Err(RouteError::SourceConflict { src: 2 }));
    let oob = [Demand::unicast(0, 9)];
    assert_eq!(
        net.route(&oob),
        Err(RouteError::PortOutOfRange { port: 9, ports: 8 })
    );
    let not_perm = net.route_permutation(&[0, 0, 1, 2]);
    assert_eq!(not_perm, Err(RouteError::NotAPermutation));
}

#[test]
fn pruned_fabric_supports_its_generating_routings_and_refuses_others() {
    let mut rng = Rng(0xbe5e_0004);
    let net = BenesNetwork::new(16);
    let perms: Vec<Vec<usize>> = (0..3).map(|_| rng.permutation(16)).collect();
    let routings: Vec<Routing> = perms
        .iter()
        .map(|p| net.route_permutation(p).expect("permutations route"))
        .collect();
    let refs: Vec<&Routing> = routings.iter().collect();
    let pruned = net.prune(&refs);
    for (i, r) in routings.iter().enumerate() {
        assert!(pruned.supports(r), "pruned fabric must support generator {i}");
    }
    assert!(pruned.nodes() <= pruned.total_nodes());
    assert!(pruned.muxes() + pruned.wires() > 0, "something survives pruning");
    // A routing that needs selections outside the generating set must be
    // refused. Across 20 fresh random permutations at least one needs a
    // pruned-away selection; every refusal is consistent: re-checking a
    // generator never flips.
    let mut refused_any = false;
    for _ in 0..20 {
        let p = rng.permutation(16);
        if perms.contains(&p) {
            continue;
        }
        let r = net.route_permutation(&p).expect("routes");
        if !pruned.supports(&r) {
            refused_any = true;
            break;
        }
    }
    assert!(
        refused_any,
        "a 3-permutation pruning of a 16-port fabric cannot support 20 fresh random permutations"
    );
}
