//! Property tests: the Benes fabric routes arbitrary permutations and
//! random demand sets, and pruning preserves the routings it was built
//! from.

use benes::{BenesNetwork, Demand};
use proptest::prelude::*;

fn permutation(n: usize) -> impl Strategy<Value = Vec<usize>> {
    Just((0..n).collect::<Vec<usize>>()).prop_shuffle()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn routes_any_permutation_8(perm in permutation(8)) {
        let net = BenesNetwork::new(8);
        let r = net.route_permutation(&perm).unwrap();
        for (i, &o) in perm.iter().enumerate() {
            prop_assert_eq!(net.trace(&r, i), vec![o]);
        }
    }

    #[test]
    fn routes_any_permutation_16(perm in permutation(16)) {
        let net = BenesNetwork::new(16);
        let r = net.route_permutation(&perm).unwrap();
        for (i, &o) in perm.iter().enumerate() {
            prop_assert_eq!(net.trace(&r, i), vec![o]);
        }
    }

    #[test]
    fn routes_any_permutation_32(perm in permutation(32)) {
        let net = BenesNetwork::new(32);
        let r = net.route_permutation(&perm).unwrap();
        for (i, &o) in perm.iter().enumerate() {
            prop_assert_eq!(net.trace(&r, i), vec![o]);
        }
    }

    /// Random *unicast* demand sets always route (partial permutations are
    /// routable on any rearrangeably non-blocking network). The generator
    /// pairs a shuffled source list with a shuffled destination list so
    /// conflicts never arise by construction.
    #[test]
    fn routes_random_unicast_sets(
        srcs in permutation(8),
        dsts in permutation(8),
        n_demands in 1usize..=8,
    ) {
        let net = BenesNetwork::new(8);
        let demands: Vec<Demand> = srcs
            .iter()
            .zip(&dsts)
            .take(n_demands)
            .map(|(&s, &d)| Demand::unicast(s, d))
            .collect();
        let r = net.route(&demands).unwrap();
        for d in &demands {
            prop_assert_eq!(net.trace(&r, d.src), d.dsts.clone(), "demand {:?}", d);
        }
    }

    /// Random demand sets *with multicast*: a Benes network is not
    /// multicast-nonblocking, so the router may legitimately report
    /// `Unroutable` for heavy fanout — but whenever it answers `Ok`, every
    /// transfer must be realized exactly.
    #[test]
    fn multicast_routings_are_correct_when_found(
        srcs in permutation(8),
        dsts in permutation(8),
        n_demands in 1usize..=4,
        fanouts in proptest::collection::vec(1usize..=3, 4),
    ) {
        let net = BenesNetwork::new(8);
        let mut demands = Vec::new();
        let mut d_iter = dsts.into_iter();
        for (k, &src) in srcs.iter().take(n_demands).enumerate() {
            let fan = fanouts[k];
            let dsts: Vec<usize> = d_iter.by_ref().take(fan).collect();
            if dsts.is_empty() {
                break;
            }
            demands.push(Demand::multicast(src, dsts));
        }
        match net.route(&demands) {
            Ok(r) => {
                for d in &demands {
                    let mut want = d.dsts.clone();
                    want.sort_unstable();
                    prop_assert_eq!(net.trace(&r, d.src), want, "demand {:?}", d);
                }
            }
            Err(e) => {
                // Only multicast sets may fail.
                prop_assert!(demands.iter().any(|d| d.dsts.len() > 1), "unicast set failed: {e}");
            }
        }
    }

    #[test]
    fn pruning_supports_its_inputs(
        p1 in permutation(8),
        p2 in permutation(8),
        p3 in permutation(8),
    ) {
        let net = BenesNetwork::new(8);
        let r1 = net.route_permutation(&p1).unwrap();
        let r2 = net.route_permutation(&p2).unwrap();
        let r3 = net.route_permutation(&p3).unwrap();
        let pruned = net.prune(&[&r1, &r2, &r3]);
        prop_assert!(pruned.supports(&r1));
        prop_assert!(pruned.supports(&r2));
        prop_assert!(pruned.supports(&r3));
        prop_assert!(pruned.nodes() <= net.num_nodes());
        prop_assert!(pruned.muxes() + pruned.wires() <= net.total_muxes());
    }
}
