//! Permutation routing (looping algorithm), multicast demand routing, and
//! fabric pruning.

use crate::network::{BenesNetwork, Frame, Target};
use std::fmt;

/// A data-transfer demand: one source port driving one or more destination
/// ports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Demand {
    /// Source (producer) port.
    pub src: usize,
    /// Destination (consumer) ports.
    pub dsts: Vec<usize>,
}

impl Demand {
    /// One-to-one transfer.
    pub fn unicast(src: usize, dst: usize) -> Self {
        Self {
            src,
            dsts: vec![dst],
        }
    }

    /// One-to-many transfer.
    pub fn multicast(src: usize, dsts: Vec<usize>) -> Self {
        Self { src, dsts }
    }
}

/// Routing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// A port index was out of range.
    PortOutOfRange {
        /// The offending port.
        port: usize,
        /// Number of ports in the fabric.
        ports: usize,
    },
    /// Two demands drive the same destination.
    OutputConflict {
        /// The doubly-driven destination.
        dst: usize,
    },
    /// Two demands share the same source port.
    SourceConflict {
        /// The doubly-used source.
        src: usize,
    },
    /// A permutation argument was not a permutation.
    NotAPermutation,
    /// The demand set could not be placed (only possible for multicast
    /// sets exceeding the fabric's duplication capacity; unicast sets are
    /// always routable).
    Unroutable {
        /// The source whose transfer failed.
        src: usize,
        /// The unreachable destination.
        dst: usize,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::PortOutOfRange { port, ports } => {
                write!(f, "port {port} out of range for a {ports}-port fabric")
            }
            RouteError::OutputConflict { dst } => {
                write!(f, "destination {dst} driven by more than one demand")
            }
            RouteError::SourceConflict { src } => {
                write!(f, "source {src} used by more than one demand")
            }
            RouteError::NotAPermutation => write!(f, "argument is not a permutation"),
            RouteError::Unroutable { src, dst } => {
                write!(f, "could not route transfer {src} -> {dst}")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// A complete switch configuration: for every node, which input port each
/// of the two output muxes selects (`None` = mux idle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Routing {
    pub(crate) states: Vec<[Option<u8>; 2]>,
}

impl Routing {
    /// The input port selected by `(node, port)`'s output mux under this
    /// routing, or `None` if the mux is idle.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or `port > 1`.
    pub fn selection(&self, node: crate::NodeId, port: u8) -> Option<u8> {
        self.states[node.index()][port as usize]
    }

    /// Number of active muxes (output ports with a selection).
    pub fn active_muxes(&self) -> usize {
        self.states
            .iter()
            .flat_map(|s| s.iter())
            .filter(|s| s.is_some())
            .count()
    }

    /// Number of nodes with at least one active mux.
    pub fn active_nodes(&self) -> usize {
        self.states
            .iter()
            .filter(|s| s.iter().any(Option::is_some))
            .count()
    }
}

impl BenesNetwork {
    /// Routes a full permutation with the looping algorithm. `perm[i]` is
    /// the output for input `i`; its length may be [`BenesNetwork::ports`]
    /// (shorter permutations are completed over the padding).
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::NotAPermutation`] on malformed input. Routing
    /// itself always succeeds — a Benes network is rearrangeably
    /// non-blocking.
    pub fn route_permutation(&self, perm: &[usize]) -> Result<Routing, RouteError> {
        let padded = self.padded_ports();
        if perm.len() > padded {
            return Err(RouteError::NotAPermutation);
        }
        let mut full: Vec<usize> = perm.to_vec();
        let mut used = vec![false; padded];
        for &o in perm {
            if o >= padded || used[o] {
                return Err(RouteError::NotAPermutation);
            }
            used[o] = true;
        }
        let mut free_outs = (0..padded).filter(|&o| !used[o]);
        for _ in perm.len()..padded {
            full.push(free_outs.next().expect("enough free outputs"));
        }
        let mut states = vec![[None, None]; self.nodes.len()];
        let idx: Vec<usize> = (0..padded).collect();
        self.loop_route(&self.frame, &idx, &full, &mut states);
        Ok(Routing { states })
    }

    /// Recursive looping algorithm. `inputs` are global input labels of
    /// this sub-network in position order; `perm` maps position -> position.
    fn loop_route(
        &self,
        frame: &Frame,
        _inputs: &[usize],
        perm: &[usize],
        states: &mut [[Option<u8>; 2]],
    ) {
        match frame {
            Frame::Leaf(node) => {
                // perm over 2 positions: identity or cross.
                if perm[0] == 0 {
                    states[*node] = [Some(0), Some(1)];
                } else {
                    states[*node] = [Some(1), Some(0)];
                }
            }
            Frame::Split {
                entry,
                exit,
                top,
                bottom,
            } => {
                let n = perm.len();
                let mut inv = vec![0usize; n];
                for (i, &o) in perm.iter().enumerate() {
                    inv[o] = i;
                }
                // 2-color the inputs: siblings at entry nodes differ; the
                // sources of sibling outputs differ. The constraint graph is
                // a union of even cycles, so BFS coloring always works.
                let mut color: Vec<Option<u8>> = vec![None; n];
                for start in 0..n {
                    if color[start].is_some() {
                        continue;
                    }
                    let mut stack = vec![(start, 0u8)];
                    while let Some((i, c)) = stack.pop() {
                        match color[i] {
                            Some(existing) => {
                                debug_assert_eq!(existing, c, "benes 2-coloring conflict");
                                continue;
                            }
                            None => color[i] = Some(c),
                        }
                        // Entry sibling must take the other color.
                        stack.push((i ^ 1, 1 - c));
                        // The source of our output's sibling must take the
                        // other color.
                        stack.push((inv[perm[i] ^ 1], 1 - c));
                    }
                }
                let color: Vec<u8> = color.into_iter().map(|c| c.expect("colored")).collect();

                // Entry node j: out port 0 (top) takes its color-0 input.
                let half = n / 2;
                let mut top_perm = vec![0usize; half];
                let mut bot_perm = vec![0usize; half];
                for j in 0..half {
                    let (a, b) = (2 * j, 2 * j + 1);
                    let top_in = if color[a] == 0 { a } else { b };
                    let bot_in = a + b - top_in;
                    states[entry[j]] = [Some((top_in % 2) as u8), Some((bot_in % 2) as u8)];
                    top_perm[j] = perm[top_in] / 2;
                    bot_perm[j] = perm[bot_in] / 2;
                }
                // Exit node j: output port p selects the subnet its source
                // was colored into (0 = top arrives on in port 0).
                for j in 0..half {
                    states[exit[j]] = [
                        Some(color[inv[2 * j]]),
                        Some(color[inv[2 * j + 1]]),
                    ];
                }
                let positions: Vec<usize> = (0..half).collect();
                self.loop_route(top, &positions, &top_perm, states);
                self.loop_route(bottom, &positions, &bot_perm, states);
            }
        }
    }

    /// Routes a set of (possibly multicast) demands.
    ///
    /// Every `(source, destination)` transfer is placed by a complete
    /// backtracking search over the switch graph; a copy may share the
    /// prefix of a link already carrying the same source (which is how a
    /// node's two output muxes realize multicast). The search is exhaustive,
    /// so unicast demand sets — routable on any Benes network by
    /// non-blockingness — always succeed; heavily-fanned multicast sets can
    /// exceed duplication capacity and fail.
    ///
    /// # Errors
    ///
    /// Port-range and conflict errors, or [`RouteError::Unroutable`] if no
    /// placement exists.
    pub fn route(&self, demands: &[Demand]) -> Result<Routing, RouteError> {
        let ports = self.ports();
        let mut out_used = vec![false; ports];
        let mut src_used = vec![false; ports];
        for d in demands {
            if d.src >= ports {
                return Err(RouteError::PortOutOfRange { port: d.src, ports });
            }
            if src_used[d.src] {
                return Err(RouteError::SourceConflict { src: d.src });
            }
            src_used[d.src] = true;
            for &o in &d.dsts {
                if o >= ports {
                    return Err(RouteError::PortOutOfRange { port: o, ports });
                }
                if out_used[o] {
                    return Err(RouteError::OutputConflict { dst: o });
                }
                out_used[o] = true;
            }
        }

        // Flatten to (src, dst) transfers; larger-fanout demands first so
        // the constrained multicasts claim duplication capacity early.
        let mut order: Vec<usize> = (0..demands.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(demands[i].dsts.len()));
        let pairs: Vec<(usize, usize)> = order
            .iter()
            .flat_map(|&i| demands[i].dsts.iter().map(move |&o| (demands[i].src, o)))
            .collect();
        let mut routing = Routing {
            states: vec![[None, None]; self.nodes.len()],
        };
        if self.solve(&mut routing, &pairs, 0) {
            Ok(routing)
        } else {
            // Report the first transfer of the most constrained demand.
            let &(src, dst) = pairs.first().expect("nonempty on failure");
            Err(RouteError::Unroutable { src, dst })
        }
    }

    /// Places transfer `pairs[idx]` and recursively the rest, with full
    /// backtracking.
    fn solve(&self, routing: &mut Routing, pairs: &[(usize, usize)], idx: usize) -> bool {
        let Some(&(src, dst)) = pairs.get(idx) else {
            return true;
        };
        let (nd, port) = self.ext_in[src];
        self.explore(routing, nd, port, dst, pairs, idx)
    }

    /// Tries every way of extending the path for `pairs[idx]` from
    /// `(nd, in_port)` toward `dst`, continuing with the remaining pairs on
    /// success. A mux already selecting `in_port` is shared for free (same
    /// source data); a free mux is claimed tentatively.
    fn explore(
        &self,
        routing: &mut Routing,
        nd: usize,
        in_port: u8,
        dst: usize,
        pairs: &[(usize, usize)],
        idx: usize,
    ) -> bool {
        for p in 0..2 {
            match routing.states[nd][p] {
                Some(sel) if sel == in_port => {
                    let ok = match self.nodes[nd].out_to[p] {
                        Target::Ext(o) => o == dst && self.solve(routing, pairs, idx + 1),
                        Target::Port(n2, p2) => self.explore(routing, n2, p2, dst, pairs, idx),
                        Target::Unset => unreachable!("constructed networks are fully wired"),
                    };
                    if ok {
                        return true;
                    }
                }
                Some(_) => {}
                None => {
                    routing.states[nd][p] = Some(in_port);
                    let ok = match self.nodes[nd].out_to[p] {
                        Target::Ext(o) => o == dst && self.solve(routing, pairs, idx + 1),
                        Target::Port(n2, p2) => self.explore(routing, n2, p2, dst, pairs, idx),
                        Target::Unset => unreachable!("constructed networks are fully wired"),
                    };
                    if ok {
                        return true;
                    }
                    routing.states[nd][p] = None;
                }
            }
        }
        false
    }

    /// Returns the sorted external outputs reached by `input` under
    /// `routing` (empty if the input is idle).
    pub fn trace(&self, routing: &Routing, input: usize) -> Vec<usize> {
        let mut outs = Vec::new();
        let (nd, port) = self.ext_in[input];
        self.trace_from(routing, nd, port, &mut outs);
        outs.sort_unstable();
        outs
    }

    fn trace_from(&self, routing: &Routing, nd: usize, in_port: u8, outs: &mut Vec<usize>) {
        for p in 0..2 {
            if routing.states[nd][p] == Some(in_port) {
                match self.nodes[nd].out_to[p] {
                    Target::Ext(o) => outs.push(o),
                    Target::Port(n2, p2) => self.trace_from(routing, n2, p2, outs),
                    Target::Unset => unreachable!(),
                }
            }
        }
    }

    /// Prunes the fabric down to the hardware needed by the given set of
    /// per-segment routings (Figure 10 of the paper): muxes never selected
    /// are removed; muxes that only ever take a single selection degrade to
    /// wires.
    pub fn prune(&self, routings: &[&Routing]) -> PrunedFabric {
        let mut sel_sets: Vec<[SelSet; 2]> = vec![[SelSet::Unused; 2]; self.nodes.len()];
        for r in routings {
            for (n, st) in r.states.iter().enumerate() {
                for p in 0..2 {
                    if let Some(s) = st[p] {
                        sel_sets[n][p] = sel_sets[n][p].add(s);
                    }
                }
            }
        }
        let mut muxes = 0;
        let mut wires = 0;
        let mut nodes = 0;
        for s in &sel_sets {
            let any = s.iter().any(|x| !matches!(x, SelSet::Unused));
            if any {
                nodes += 1;
            }
            for x in s {
                match x {
                    SelSet::Unused => {}
                    SelSet::One(_) => wires += 1,
                    SelSet::Both => muxes += 1,
                }
            }
        }
        PrunedFabric {
            total_nodes: self.num_nodes(),
            nodes,
            muxes,
            wires,
            sel_sets,
        }
    }
}

/// Which selections a mux was observed taking across all routings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SelSet {
    Unused,
    One(u8),
    Both,
}

impl SelSet {
    fn add(self, s: u8) -> Self {
        match self {
            SelSet::Unused => SelSet::One(s),
            SelSet::One(x) if x == s => self,
            _ => SelSet::Both,
        }
    }
}

/// Result of pruning: the hardware retained by the customized fabric.
#[derive(Debug, Clone)]
pub struct PrunedFabric {
    total_nodes: usize,
    nodes: usize,
    muxes: usize,
    wires: usize,
    sel_sets: Vec<[SelSet; 2]>,
}

/// What remains of one output-port mux after pruning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MuxState {
    /// Never used by any routing: the mux (and its wiring) is removed.
    Removed,
    /// Used with a single selection: degenerates to a fixed wire from the
    /// given input port.
    Wire(u8),
    /// Used with both selections: a real 2:1 mux with a config bit.
    Mux,
}

impl PrunedFabric {
    /// Post-pruning state of `(node, port)`'s output mux.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or `port > 1`.
    pub fn mux_state(&self, node: crate::NodeId, port: u8) -> MuxState {
        match self.sel_sets[node.index()][port as usize] {
            SelSet::Unused => MuxState::Removed,
            SelSet::One(s) => MuxState::Wire(s),
            SelSet::Both => MuxState::Mux,
        }
    }

    /// Nodes retained (at least one active output).
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Nodes of the original, unpruned fabric.
    pub fn total_nodes(&self) -> usize {
        self.total_nodes
    }

    /// True 2-input muxes retained (output ports that switch between both
    /// inputs across segments).
    pub fn muxes(&self) -> usize {
        self.muxes
    }

    /// Output ports frozen to a single selection (plain wires after
    /// pruning).
    pub fn wires(&self) -> usize {
        self.wires
    }

    /// `true` if the pruned hardware can still realize `routing`.
    pub fn supports(&self, routing: &Routing) -> bool {
        routing.states.iter().enumerate().all(|(n, st)| {
            (0..2).all(|p| match st[p] {
                None => true,
                Some(s) => match self.sel_sets[n][p] {
                    SelSet::Unused => false,
                    SelSet::One(x) => x == s,
                    SelSet::Both => true,
                },
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn identity_permutation_routes() {
        for n in [2usize, 4, 8, 16] {
            let net = BenesNetwork::new(n);
            let r = net.route_permutation(&identity(n)).unwrap();
            for i in 0..n {
                assert_eq!(net.trace(&r, i), vec![i], "N={n} input {i}");
            }
        }
    }

    #[test]
    fn reversal_permutation_routes() {
        let n = 8;
        let net = BenesNetwork::new(n);
        let perm: Vec<usize> = (0..n).rev().collect();
        let r = net.route_permutation(&perm).unwrap();
        for i in 0..n {
            assert_eq!(net.trace(&r, i), vec![n - 1 - i]);
        }
    }

    #[test]
    fn all_permutations_of_4_route() {
        // Exhaustive: every 4-element permutation must route (non-blocking).
        let net = BenesNetwork::new(4);
        let mut perm = [0usize, 1, 2, 3];
        let mut count = 0;
        permute(&mut perm, 0, &mut |p| {
            let r = net.route_permutation(p).unwrap();
            for (i, &o) in p.iter().enumerate() {
                assert_eq!(net.trace(&r, i), vec![o], "perm {p:?}");
            }
            count += 1;
        });
        assert_eq!(count, 24);

        fn permute(a: &mut [usize; 4], k: usize, f: &mut impl FnMut(&[usize])) {
            if k == 4 {
                f(a);
                return;
            }
            for i in k..4 {
                a.swap(k, i);
                permute(a, k + 1, f);
                a.swap(k, i);
            }
        }
    }

    #[test]
    fn rejects_non_permutations() {
        let net = BenesNetwork::new(4);
        assert_eq!(
            net.route_permutation(&[0, 0, 1, 2]),
            Err(RouteError::NotAPermutation)
        );
        assert_eq!(
            net.route_permutation(&[0, 1, 2, 9]),
            Err(RouteError::NotAPermutation)
        );
    }

    #[test]
    fn partial_demands_route_minimally() {
        let net = BenesNetwork::new(8);
        let r = net
            .route(&[Demand::unicast(0, 3), Demand::unicast(5, 1)])
            .unwrap();
        assert_eq!(net.trace(&r, 0), vec![3]);
        assert_eq!(net.trace(&r, 5), vec![1]);
        // Undemanded inputs are idle.
        assert_eq!(net.trace(&r, 2), Vec::<usize>::new());
        // Minimal: far fewer active muxes than a full permutation.
        let full = net.route_permutation(&identity(8)).unwrap();
        assert!(r.active_muxes() < full.active_muxes());
    }

    #[test]
    fn multicast_reaches_all_destinations() {
        let net = BenesNetwork::new(8);
        let r = net
            .route(&[
                Demand::multicast(0, vec![1, 4, 6]),
                Demand::unicast(2, 0),
            ])
            .unwrap();
        assert_eq!(net.trace(&r, 0), vec![1, 4, 6]);
        assert_eq!(net.trace(&r, 2), vec![0]);
    }

    #[test]
    fn demand_validation() {
        let net = BenesNetwork::new(4);
        assert!(matches!(
            net.route(&[Demand::unicast(9, 0)]),
            Err(RouteError::PortOutOfRange { .. })
        ));
        assert!(matches!(
            net.route(&[Demand::unicast(0, 1), Demand::unicast(2, 1)]),
            Err(RouteError::OutputConflict { dst: 1 })
        ));
        assert!(matches!(
            net.route(&[Demand::unicast(0, 1), Demand::unicast(0, 2)]),
            Err(RouteError::SourceConflict { src: 0 })
        ));
    }

    #[test]
    fn pruning_keeps_routability() {
        let net = BenesNetwork::new(8);
        let r1 = net
            .route(&[Demand::unicast(0, 1), Demand::unicast(1, 2)])
            .unwrap();
        let r2 = net
            .route(&[Demand::unicast(0, 2), Demand::multicast(1, vec![0, 3])])
            .unwrap();
        let pruned = net.prune(&[&r1, &r2]);
        assert!(pruned.supports(&r1));
        assert!(pruned.supports(&r2));
        assert!(pruned.nodes() <= net.num_nodes());
        // A routing the pruned fabric never saw generally isn't supported.
        let foreign = net.route(&[Demand::unicast(5, 7)]).unwrap();
        assert!(!pruned.supports(&foreign));
    }

    #[test]
    fn pruning_degrades_single_selection_muxes_to_wires() {
        let net = BenesNetwork::new(4);
        let r = net.route(&[Demand::unicast(0, 0)]).unwrap();
        let pruned = net.prune(&[&r]);
        // One path, each hop used with a single selection: all wires.
        assert_eq!(pruned.muxes(), 0);
        assert!(pruned.wires() > 0);
    }

    #[test]
    fn non_power_of_two_port_counts() {
        let net = BenesNetwork::new(5);
        let r = net
            .route(&[Demand::unicast(4, 0), Demand::unicast(0, 4)])
            .unwrap();
        assert_eq!(net.trace(&r, 4), vec![0]);
        assert_eq!(net.trace(&r, 0), vec![4]);
    }

    #[test]
    fn empty_demand_set_is_idle() {
        let net = BenesNetwork::new(4);
        let r = net.route(&[]).unwrap();
        assert_eq!(r.active_muxes(), 0);
        let pruned = net.prune(&[&r]);
        assert_eq!(pruned.nodes(), 0);
    }
}
