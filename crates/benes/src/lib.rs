//! Benes-network inter-PU fabric (Section IV-C of DeepBurning-SEG).
//!
//! The SPA accelerator streams results between processing units through a
//! pruned N-input N-output Benes network: a non-blocking multistage
//! interconnect with `2*log2(N) - 1` stages of `N/2` two-by-two switching
//! nodes, each node being a pair of 2-input muxes.
//!
//! This crate provides:
//!
//! * [`BenesNetwork`] — explicit construction of the node/link graph;
//! * [`BenesNetwork::route_permutation`] — exact permutation routing with
//!   the classic *looping algorithm* (always succeeds: Benes is
//!   rearrangeably non-blocking);
//! * [`BenesNetwork::route`] — routing of partial demand sets including
//!   multicast (a producer feeding several consumers), as required when a
//!   model segment's layer DAG is mapped onto the PU pipeline;
//! * [`BenesNetwork::prune`] — removal of nodes and muxes unused by a set
//!   of per-segment routings, reproducing the Figure 10 pruning flow;
//! * [`FabricCost`] — mux-count-based area/energy estimation in 28 nm.
//!
//! # Example
//!
//! ```
//! use benes::{BenesNetwork, Demand};
//!
//! let net = BenesNetwork::new(4);
//! // Segment wiring: PU0 -> PU1, PU1 -> {PU2, PU3} (multicast).
//! let routing = net.route(&[
//!     Demand::unicast(0, 1),
//!     Demand::multicast(1, vec![2, 3]),
//! ])?;
//! assert_eq!(net.trace(&routing, 1), vec![2, 3]);
//! let pruned = net.prune(&[&routing]);
//! assert!(pruned.muxes() <= net.total_muxes());
//! # Ok::<(), benes::RouteError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cost;
mod network;
mod routing;

pub use cost::{FabricCost, FabricCostModel};
pub use network::{BenesNetwork, NodeId, PortTarget};
pub use routing::{Demand, MuxState, PrunedFabric, RouteError, Routing};
