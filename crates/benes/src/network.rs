//! Benes network topology construction.

use std::fmt;

/// Identifier of a 2x2 switching node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Dense index of the node.
    pub const fn index(self) -> usize {
        self.0
    }

    /// Rebuilds a node id from a dense index (e.g. one read back from a
    /// design manifest). Validity is checked at first use.
    pub const fn from_index(index: usize) -> Self {
        NodeId(index)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Where a node's output port drives data to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Target {
    /// Input port `(node, port)` of a downstream node.
    Port(usize, u8),
    /// External output terminal.
    Ext(usize),
    /// Unconnected (only transiently during construction).
    Unset,
}

#[derive(Debug, Clone)]
pub(crate) struct Node {
    /// Stage index (0-based from the inputs).
    pub stage: usize,
    /// Where each of the two output ports goes.
    pub out_to: [Target; 2],
}

/// Recursive frame structure mirroring the Benes construction, used by the
/// looping algorithm.
#[derive(Debug, Clone)]
pub(crate) enum Frame {
    /// A single 2x2 node.
    Leaf(usize),
    /// Entry column, exit column, and the two half-size subnetworks.
    Split {
        entry: Vec<usize>,
        exit: Vec<usize>,
        top: Box<Frame>,
        bottom: Box<Frame>,
    },
}

/// An N-input, N-output Benes network (N rounded up to a power of two).
#[derive(Debug, Clone)]
pub struct BenesNetwork {
    ports: usize,
    padded: usize,
    stages: usize,
    pub(crate) nodes: Vec<Node>,
    /// `ext_in[i]` = the `(node, port)` fed by external input `i`.
    pub(crate) ext_in: Vec<(usize, u8)>,
    pub(crate) frame: Frame,
}

impl BenesNetwork {
    /// Builds a Benes network with at least `ports` inputs and outputs.
    ///
    /// `ports` is rounded up to the next power of two (minimum 2), exactly
    /// as a hardware instantiation would pad the fabric.
    ///
    /// # Panics
    ///
    /// Panics if `ports == 0`.
    pub fn new(ports: usize) -> Self {
        assert!(ports > 0, "a fabric needs at least one port");
        let padded = ports.max(2).next_power_of_two();
        let k = padded.trailing_zeros() as usize;
        let stages = 2 * k - 1;
        let mut net = Self {
            ports,
            padded,
            stages,
            nodes: Vec::new(),
            ext_in: vec![(usize::MAX, 0); padded],
            frame: Frame::Leaf(usize::MAX),
        };
        let (frame, inputs, outputs) = net.build(padded, 0);
        for (i, &(nd, p)) in inputs.iter().enumerate() {
            net.ext_in[i] = (nd, p);
        }
        for (o, &(nd, p)) in outputs.iter().enumerate() {
            net.nodes[nd].out_to[p as usize] = Target::Ext(o);
        }
        net.frame = frame;
        net
    }

    /// Recursively builds a sub-network of `n` ports starting at `stage`.
    /// Returns the frame plus the `(node, port)` lists for its external
    /// input and output terminals.
    #[allow(clippy::type_complexity)]
    fn build(
        &mut self,
        n: usize,
        stage: usize,
    ) -> (Frame, Vec<(usize, u8)>, Vec<(usize, u8)>) {
        if n == 2 {
            let id = self.nodes.len();
            self.nodes.push(Node {
                stage,
                out_to: [Target::Unset; 2],
            });
            return (Frame::Leaf(id), vec![(id, 0), (id, 1)], vec![(id, 0), (id, 1)]);
        }
        let half = n / 2;
        let entry: Vec<usize> = (0..half)
            .map(|_| {
                let id = self.nodes.len();
                self.nodes.push(Node {
                    stage,
                    out_to: [Target::Unset; 2],
                });
                id
            })
            .collect();
        let sub_stages = 2 * (half.trailing_zeros() as usize) - 1;
        let exit_stage = stage + 1 + sub_stages;
        let (top, tin, tout) = self.build(half, stage + 1);
        let (bottom, bin, bout) = self.build(half, stage + 1);
        let exit: Vec<usize> = (0..half)
            .map(|_| {
                let id = self.nodes.len();
                self.nodes.push(Node {
                    stage: exit_stage,
                    out_to: [Target::Unset; 2],
                });
                id
            })
            .collect();
        for j in 0..half {
            // Entry node j: port 0 to top subnet input j, port 1 to bottom.
            self.nodes[entry[j]].out_to[0] = Target::Port(tin[j].0, tin[j].1);
            self.nodes[entry[j]].out_to[1] = Target::Port(bin[j].0, bin[j].1);
            // Subnet outputs j feed exit node j's ports 0 (top) / 1 (bottom).
            let (tn, tp) = tout[j];
            self.nodes[tn].out_to[tp as usize] = Target::Port(exit[j], 0);
            let (bn, bp) = bout[j];
            self.nodes[bn].out_to[bp as usize] = Target::Port(exit[j], 1);
        }
        let inputs: Vec<(usize, u8)> = (0..n).map(|i| (entry[i / 2], (i % 2) as u8)).collect();
        let outputs: Vec<(usize, u8)> = (0..n).map(|o| (exit[o / 2], (o % 2) as u8)).collect();
        (
            Frame::Split {
                entry,
                exit,
                top: Box::new(top),
                bottom: Box::new(bottom),
            },
            inputs,
            outputs,
        )
    }

    /// Number of usable (requested) ports.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Power-of-two padded port count actually instantiated.
    pub fn padded_ports(&self) -> usize {
        self.padded
    }

    /// Number of switching stages (`2*log2(N) - 1`).
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Total number of 2x2 switching nodes (`stages * N/2`).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of 2-input muxes in the unpruned fabric (two per node).
    pub fn total_muxes(&self) -> usize {
        2 * self.nodes.len()
    }

    /// Where node `id`'s two output ports drive data (for netlist
    /// generation and topology inspection).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this network.
    pub fn node_targets(&self, id: NodeId) -> [PortTarget; 2] {
        let n = &self.nodes[id.0];
        [n.out_to[0].into(), n.out_to[1].into()]
    }

    /// The `(node, input port)` fed by external input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= padded_ports()`.
    pub fn input_port(&self, i: usize) -> (NodeId, u8) {
        let (nd, p) = self.ext_in[i];
        (NodeId(nd), p)
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Stage index of node `id` (0-based from the inputs).
    pub fn node_stage(&self, id: NodeId) -> usize {
        self.nodes[id.0].stage
    }
}

/// Public view of a node output port's destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortTarget {
    /// Drives input `port` of another node.
    Node(NodeId, u8),
    /// Drives external output `index`.
    Output(usize),
}

impl From<Target> for PortTarget {
    fn from(t: Target) -> Self {
        match t {
            Target::Port(n, p) => PortTarget::Node(NodeId(n), p),
            Target::Ext(o) => PortTarget::Output(o),
            Target::Unset => unreachable!("constructed networks are fully wired"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count_matches_formula() {
        for k in 1..=5 {
            let n = 1usize << k;
            let net = BenesNetwork::new(n);
            let stages = 2 * k - 1;
            assert_eq!(net.stages(), stages);
            assert_eq!(net.num_nodes(), stages * n / 2, "N={n}");
            assert_eq!(net.total_muxes(), 2 * net.num_nodes());
        }
    }

    #[test]
    fn pads_to_power_of_two() {
        let net = BenesNetwork::new(5);
        assert_eq!(net.ports(), 5);
        assert_eq!(net.padded_ports(), 8);
        assert_eq!(BenesNetwork::new(1).padded_ports(), 2);
    }

    #[test]
    fn all_ports_wired() {
        let net = BenesNetwork::new(8);
        // Every external input lands on a real node.
        for &(nd, p) in &net.ext_in {
            assert!(nd < net.nodes.len());
            assert!(p < 2);
        }
        // Every node output is connected (no Unset left).
        for n in &net.nodes {
            for t in n.out_to {
                assert_ne!(t, Target::Unset);
            }
        }
        // Exactly N external outputs exist.
        let ext_outs = net
            .nodes
            .iter()
            .flat_map(|n| n.out_to)
            .filter(|t| matches!(t, Target::Ext(_)))
            .count();
        assert_eq!(ext_outs, 8);
    }

    #[test]
    fn stage_indices_are_consistent() {
        let net = BenesNetwork::new(8);
        for n in &net.nodes {
            assert!(n.stage < net.stages());
            for t in n.out_to {
                if let Target::Port(next, _) = t {
                    assert_eq!(net.nodes[next].stage, n.stage + 1, "links go stage k -> k+1");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_panics() {
        BenesNetwork::new(0);
    }
}
