//! Area / energy model of the (pruned) fabric.
//!
//! The paper synthesizes the inter-PU connection in TSMC 28 nm and reports
//! that fabric plus dataflow muxes account for under 3% of design energy
//! (Section VI-E). We model the fabric as datapath muxes (one 2:1 mux per
//! retained output port and data bit), pass-through wires for ports pruned
//! to a single selection, and a 2-bit configuration register per retained
//! node. The default constants are representative 28 nm standard-cell
//! figures (NAND2-equivalent area ~0.49 um^2; a 2:1 mux ~= 2.5 gate
//! equivalents; ~1 fJ/bit dynamic switching at nominal voltage).

use crate::routing::PrunedFabric;

/// Technology constants for fabric cost estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricCostModel {
    /// Area of a 2:1 mux, per data bit (um^2).
    pub mux_area_um2: f64,
    /// Area of a pass-through wire/buffer, per data bit (um^2).
    pub wire_area_um2: f64,
    /// Area of one configuration flip-flop (um^2).
    pub config_ff_area_um2: f64,
    /// Switching energy of one mux hop (pJ per bit).
    pub mux_energy_pj_per_bit: f64,
    /// Switching energy of a wire hop (pJ per bit).
    pub wire_energy_pj_per_bit: f64,
}

impl FabricCostModel {
    /// Representative TSMC 28 nm constants.
    pub fn tsmc28() -> Self {
        Self {
            mux_area_um2: 1.2,
            wire_area_um2: 0.15,
            config_ff_area_um2: 2.8,
            mux_energy_pj_per_bit: 0.0012,
            wire_energy_pj_per_bit: 0.0004,
        }
    }
}

impl Default for FabricCostModel {
    fn default() -> Self {
        Self::tsmc28()
    }
}

/// Estimated hardware cost of a pruned fabric instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricCost {
    /// Total area (um^2) of the datapath plus configuration state.
    pub area_um2: f64,
    /// Energy to move one byte across the fabric end to end (pJ), i.e. the
    /// per-hop energies summed over the stages a word traverses.
    pub energy_pj_per_byte: f64,
}

impl PrunedFabric {
    /// Estimates the area and per-byte transfer energy of this pruned
    /// fabric for a `width_bits`-wide datapath under `model`, assuming
    /// `stages` switching stages on an average path.
    pub fn cost(&self, width_bits: usize, stages: usize, model: &FabricCostModel) -> FabricCost {
        let w = width_bits as f64;
        let area_um2 = self.muxes() as f64 * model.mux_area_um2 * w
            + self.wires() as f64 * model.wire_area_um2 * w
            + self.nodes() as f64 * 2.0 * model.config_ff_area_um2;
        // A byte traverses `stages` hops; weight by the retained mux/wire
        // mix (idle fabric transfers nothing).
        let active_count = self.muxes() + self.wires();
        let energy_pj_per_byte = if active_count == 0 {
            0.0
        } else {
            let active = active_count as f64;
            let mux_frac = self.muxes() as f64 / active;
            let per_hop_bit = mux_frac * model.mux_energy_pj_per_bit
                + (1.0 - mux_frac) * model.wire_energy_pj_per_bit;
            per_hop_bit * 8.0 * stages as f64
        };
        FabricCost {
            area_um2,
            energy_pj_per_byte,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{BenesNetwork, Demand, FabricCostModel};

    #[test]
    fn pruned_cost_below_full_cost() {
        let net = BenesNetwork::new(8);
        let r = net
            .route(&[Demand::unicast(0, 1), Demand::unicast(1, 2)])
            .unwrap();
        let pruned = net.prune(&[&r]);
        // Full fabric: every permutation exercised -> all muxes retained.
        let mut routings = Vec::new();
        let perms: Vec<Vec<usize>> = vec![
            (0..8).collect(),
            (0..8).rev().collect(),
            vec![1, 0, 3, 2, 5, 4, 7, 6],
            vec![4, 5, 6, 7, 0, 1, 2, 3],
            vec![2, 3, 0, 1, 6, 7, 4, 5],
        ];
        for p in &perms {
            routings.push(net.route_permutation(p).unwrap());
        }
        let refs: Vec<&_> = routings.iter().collect();
        let full = net.prune(&refs);
        let m = FabricCostModel::tsmc28();
        let c_pruned = pruned.cost(8, net.stages(), &m);
        let c_full = full.cost(8, net.stages(), &m);
        assert!(c_pruned.area_um2 < c_full.area_um2);
        assert!(c_pruned.area_um2 > 0.0);
    }

    #[test]
    fn idle_fabric_costs_nothing_to_transfer() {
        let net = BenesNetwork::new(4);
        let r = net.route(&[]).unwrap();
        let pruned = net.prune(&[&r]);
        let c = pruned.cost(8, net.stages(), &FabricCostModel::tsmc28());
        assert_eq!(c.energy_pj_per_byte, 0.0);
        assert_eq!(c.area_um2, 0.0);
    }

    #[test]
    fn wider_datapath_scales_area() {
        let net = BenesNetwork::new(4);
        let r = net.route(&[Demand::unicast(0, 3)]).unwrap();
        let pruned = net.prune(&[&r]);
        let m = FabricCostModel::tsmc28();
        let c8 = pruned.cost(8, net.stages(), &m);
        let c16 = pruned.cost(16, net.stages(), &m);
        assert!(c16.area_um2 > c8.area_um2);
    }
}
