//! Property tests over randomly generated DNN graphs: the workload fold
//! and the access accounting must uphold their invariants on *any* valid
//! model, not just the zoo.

use nnmodel::{analysis, Dtype, Graph, GraphBuilder, TensorShape, Workload};
use proptest::prelude::*;

/// Specification of one randomly generated block.
#[derive(Debug, Clone)]
enum Block {
    Conv { out_c: usize, kernel: usize, stride: usize },
    Separable { out_c: usize },
    Residual { width: usize },
    FirePair { squeeze: usize, expand: usize },
    Pool,
}

fn block() -> impl Strategy<Value = Block> {
    prop_oneof![
        (1usize..=4, 0usize..3, 1usize..=2).prop_map(|(c, k, s)| Block::Conv {
            out_c: 4 * c,
            kernel: [1, 3, 5][k],
            stride: s,
        }),
        (1usize..=4).prop_map(|c| Block::Separable { out_c: 4 * c }),
        (1usize..=3).prop_map(|w| Block::Residual { width: 4 * w }),
        (1usize..=2, 1usize..=3).prop_map(|(s, e)| Block::FirePair {
            squeeze: 4 * s,
            expand: 4 * e,
        }),
        Just(Block::Pool),
    ]
}

fn random_graph() -> impl Strategy<Value = Graph> {
    proptest::collection::vec(block(), 1..8).prop_map(|blocks| {
        let mut b = GraphBuilder::new("prop", Dtype::Int8, TensorShape::new(4, 64, 64));
        let mut x = b.input();
        let mut idx = 0;
        for blk in blocks {
            idx += 1;
            // Keep spatial extent large enough for the next block.
            match blk {
                Block::Conv { out_c, kernel, stride } => {
                    x = b
                        .conv(format!("c{idx}"), x, out_c, kernel, stride, kernel / 2)
                        .expect("valid conv");
                }
                Block::Separable { out_c } => {
                    let dw = b.dw_conv(format!("dw{idx}"), x, 3, 1, 1).expect("valid");
                    x = b.conv(format!("pw{idx}"), dw, out_c, 1, 1, 0).expect("valid");
                }
                Block::Residual { width } => {
                    let a = b
                        .conv(format!("r{idx}a"), x, width, 3, 1, 1)
                        .expect("valid");
                    let c = b
                        .conv(format!("r{idx}b"), a, width, 3, 1, 1)
                        .expect("valid");
                    x = b.add(format!("r{idx}s"), a, c).expect("same shape");
                }
                Block::FirePair { squeeze, expand } => {
                    let s = b
                        .conv(format!("f{idx}s"), x, squeeze, 1, 1, 0)
                        .expect("valid");
                    let e1 = b
                        .conv(format!("f{idx}e1"), s, expand, 1, 1, 0)
                        .expect("valid");
                    let e3 = b
                        .conv(format!("f{idx}e3"), s, expand, 3, 1, 1)
                        .expect("valid");
                    x = b.concat(format!("f{idx}c"), &[e1, e3]).expect("same spatial");
                }
                Block::Pool => {
                    x = b.max_pool(format!("p{idx}"), x, 2, 2);
                }
            }
        }
        let _ = b.fc("fc", x, 10);
        b.finish()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// MACs are conserved through the workload fold, and every item is
    /// topologically wired.
    #[test]
    fn workload_fold_preserves_structure(g in random_graph()) {
        let w = Workload::from_graph(&g);
        prop_assert_eq!(w.total_ops(), g.total_ops());
        prop_assert!(!w.is_empty());
        for item in w.items() {
            prop_assert!(item.extern_in_bytes > 0 || !item.preds.is_empty());
            for &(p, bytes) in &item.preds {
                prop_assert!(p < item.index, "{} reads later item", item.name);
                prop_assert!(bytes > 0);
            }
        }
    }

    /// Pipelined access of the full model equals the irreducible floor
    /// (weights + external inputs + terminal outputs) and never exceeds
    /// the layerwise total.
    #[test]
    fn pipelined_access_bounds(g in random_graph()) {
        let w = Workload::from_graph(&g);
        let all: Vec<usize> = (0..w.len()).collect();
        let pipe = w.pipelined_access(&all);
        prop_assert!(pipe <= w.total_layerwise_access());
        let weights: u64 = w.items().iter().map(|i| i.w_bytes).sum();
        prop_assert!(pipe >= weights);
    }

    /// Any contiguous segmentation's total DRAM traffic sits between the
    /// full-pipeline floor and the layerwise ceiling, and coarser
    /// segmentations never increase traffic.
    #[test]
    fn segmentation_traffic_is_monotone(g in random_graph(), per in 1usize..6) {
        let w = Workload::from_graph(&g);
        let segs = analysis::even_segments(&w, per);
        let total: u64 = segs.iter().map(|s| w.pipelined_access(s)).sum();
        let all: Vec<usize> = (0..w.len()).collect();
        prop_assert!(total >= w.pipelined_access(&all));
        prop_assert!(total <= w.total_layerwise_access());
        // Doubling the segment length never increases traffic.
        let coarse = analysis::even_segments(&w, per * 2);
        let coarse_total: u64 = coarse.iter().map(|s| w.pipelined_access(s)).sum();
        prop_assert!(coarse_total <= total + 1); // +1 for rounding freedom
    }

    /// Per-item access equals the singleton-segment pipelined access.
    #[test]
    fn singleton_consistency(g in random_graph()) {
        let w = Workload::from_graph(&g);
        for i in 0..w.len() {
            prop_assert_eq!(w.pipelined_access(&[i]), w.items()[i].access());
        }
    }

    /// The CTC hierarchy holds: layerwise <= segmented <= full pipeline.
    #[test]
    fn ctc_hierarchy(g in random_graph(), per in 2usize..6) {
        let w = Workload::from_graph(&g);
        let lw = analysis::layerwise_ctc(&w);
        let seg = analysis::segmented_ctc(&w, &analysis::even_segments(&w, per));
        let full = analysis::full_pipeline_ctc(&w);
        prop_assert!(seg >= lw - 1e-9);
        prop_assert!(full >= seg - 1e-9);
    }
}
