//! DNN graph construction with shape inference.

use crate::layer::{Layer, LayerId, LayerKind, PoolKind};
use crate::shape::{conv_out_dim, Dtype, TensorShape};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error raised while building or validating a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// Two inputs of an elementwise add had different shapes.
    ShapeMismatch {
        /// Name of the offending layer.
        layer: String,
        /// The conflicting shapes.
        shapes: (TensorShape, TensorShape),
    },
    /// `Concat` inputs disagreed on spatial extent.
    SpatialMismatch {
        /// Name of the offending layer.
        layer: String,
    },
    /// Grouped convolution whose input channels are not divisible by the
    /// group count.
    BadGroups {
        /// Name of the offending layer.
        layer: String,
        /// Input channel count.
        in_c: usize,
        /// Requested groups.
        groups: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::ShapeMismatch { layer, shapes } => write!(
                f,
                "layer {layer}: elementwise inputs have different shapes {} vs {}",
                shapes.0, shapes.1
            ),
            GraphError::SpatialMismatch { layer } => {
                write!(f, "layer {layer}: concat inputs differ in spatial extent")
            }
            GraphError::BadGroups { layer, in_c, groups } => write!(
                f,
                "layer {layer}: input channels {in_c} not divisible by groups {groups}"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

/// Handle to a tensor produced during graph construction — either the
/// network input or the output of a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(Node);

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Node {
    Input,
    Layer(LayerId),
}

/// A complete DNN model: layers in topological order plus the input shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    name: String,
    dtype: Dtype,
    input_shape: TensorShape,
    layers: Vec<Layer>,
}

impl Graph {
    /// Model name (e.g. `"alexnet"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Element datatype of all tensors in the model.
    pub fn dtype(&self) -> Dtype {
        self.dtype
    }

    /// Shape of the network input.
    pub fn input_shape(&self) -> TensorShape {
        self.input_shape
    }

    /// All layers, in topological order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// The layer with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn layer(&self, id: LayerId) -> &Layer {
        &self.layers[id.0]
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` if the graph has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Iterates over all data-dependency edges `(producer, consumer)`.
    pub fn edges(&self) -> impl Iterator<Item = (LayerId, LayerId)> + '_ {
        self.layers
            .iter()
            .flat_map(|l| l.inputs.iter().map(move |&p| (p, l.id)))
    }

    /// Ids of layers that consume the output of `id`.
    pub fn successors(&self, id: LayerId) -> Vec<LayerId> {
        self.layers
            .iter()
            .filter(|l| l.inputs.contains(&id))
            .map(|l| l.id)
            .collect()
    }

    /// Total MAC count of the model.
    pub fn total_ops(&self) -> u64 {
        self.layers.iter().map(Layer::ops).sum()
    }

    /// Total weight bytes of the model.
    pub fn total_weight_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.weight_bytes(self.dtype)).sum()
    }

    /// Total DRAM bytes under layerwise execution (sum of `access(l)`).
    pub fn total_access(&self) -> u64 {
        self.layers.iter().map(|l| l.access(self.dtype)).sum()
    }

    /// Renders the graph in Graphviz DOT format (layers as nodes labelled
    /// with name, kind and output shape; data dependencies as edges) for
    /// debugging and documentation.
    ///
    /// ```
    /// # use nnmodel::zoo;
    /// let dot = zoo::squeezenet1_0().to_dot();
    /// assert!(dot.starts_with("digraph"));
    /// assert!(dot.contains("fire2_squeeze"));
    /// ```
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph {} {{", self.name.replace('-', "_"));
        let _ = writeln!(out, "  rankdir=TB;");
        let _ = writeln!(out, "  node [shape=box, fontsize=10];");
        for l in &self.layers {
            let kind = match l.kind {
                crate::LayerKind::Conv { kernel, stride, groups, .. } => {
                    if groups > 1 && groups == l.input_shape.c {
                        format!("dwconv {kernel}x{kernel}/{stride}")
                    } else if groups > 1 {
                        format!("gconv {kernel}x{kernel}/{stride} g{groups}")
                    } else {
                        format!("conv {kernel}x{kernel}/{stride}")
                    }
                }
                crate::LayerKind::Pool { kernel, stride, .. } => {
                    format!("pool {kernel}x{kernel}/{stride}")
                }
                crate::LayerKind::GlobalAvgPool => "gap".to_string(),
                crate::LayerKind::Fc { out } => format!("fc {out}"),
                crate::LayerKind::Add => "add".to_string(),
                crate::LayerKind::Concat => "concat".to_string(),
            };
            let _ = writeln!(
                out,
                "  n{} [label=\"{}\\n{} -> {}\"];",
                l.id.index(),
                format!("{} ({kind})", l.name),
                l.input_shape,
                l.output_shape
            );
        }
        for (from, to) in self.edges() {
            let _ = writeln!(out, "  n{} -> n{};", from.index(), to.index());
        }
        out.push_str("}\n");
        out
    }
}

/// Incremental builder for a [`Graph`] with shape inference.
///
/// Because a layer can only reference tensors that already exist, layer ids
/// come out in topological order by construction.
///
/// # Example
///
/// ```
/// use nnmodel::{GraphBuilder, TensorShape, Dtype};
///
/// let mut b = GraphBuilder::new("tiny", Dtype::Int8, TensorShape::new(3, 32, 32));
/// let x = b.input();
/// let c1 = b.conv("conv1", x, 16, 3, 1, 1)?;
/// let p1 = b.max_pool("pool1", c1, 2, 2);
/// let c2 = b.conv("conv2", p1, 32, 3, 1, 1)?;
/// let g = b.finish();
/// assert_eq!(g.len(), 3);
/// assert_eq!(g.layers()[2].output_shape, TensorShape::new(32, 16, 16));
/// # Ok::<(), nnmodel::GraphError>(())
/// ```
#[derive(Debug)]
pub struct GraphBuilder {
    graph: Graph,
}

impl GraphBuilder {
    /// Starts a new model with the given input shape.
    pub fn new(name: impl Into<String>, dtype: Dtype, input_shape: TensorShape) -> Self {
        Self {
            graph: Graph {
                name: name.into(),
                dtype,
                input_shape,
                layers: Vec::new(),
            },
        }
    }

    /// Handle to the network input tensor.
    pub fn input(&self) -> NodeId {
        NodeId(Node::Input)
    }

    fn shape_of(&self, node: NodeId) -> TensorShape {
        match node.0 {
            Node::Input => self.graph.input_shape,
            Node::Layer(id) => self.graph.layers[id.0].output_shape,
        }
    }

    fn push(
        &mut self,
        name: impl Into<String>,
        kind: LayerKind,
        inputs: &[NodeId],
        input_shape: TensorShape,
        output_shape: TensorShape,
    ) -> NodeId {
        let id = LayerId(self.graph.layers.len());
        let preds = inputs
            .iter()
            .filter_map(|n| match n.0 {
                Node::Input => None,
                Node::Layer(p) => Some(p),
            })
            .collect();
        self.graph.layers.push(Layer {
            id,
            name: name.into(),
            kind,
            inputs: preds,
            input_shape,
            output_shape,
        });
        NodeId(Node::Layer(id))
    }

    /// Adds a grouped 2-D convolution.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::BadGroups`] if the input channel count is not
    /// divisible by `groups`.
    #[allow(clippy::too_many_arguments)]
    pub fn conv_grouped(
        &mut self,
        name: impl Into<String>,
        from: NodeId,
        out_c: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        groups: usize,
    ) -> Result<NodeId, GraphError> {
        let name = name.into();
        let in_shape = self.shape_of(from);
        if groups == 0 || in_shape.c % groups != 0 || out_c % groups != 0 {
            return Err(GraphError::BadGroups {
                layer: name,
                in_c: in_shape.c,
                groups,
            });
        }
        let out = TensorShape::new(
            out_c,
            conv_out_dim(in_shape.h, kernel, stride, pad),
            conv_out_dim(in_shape.w, kernel, stride, pad),
        );
        Ok(self.push(
            name,
            LayerKind::Conv {
                out_c,
                kernel,
                stride,
                pad,
                groups,
            },
            &[from],
            in_shape,
            out,
        ))
    }

    /// Adds a dense 2-D convolution (`groups == 1`).
    ///
    /// # Errors
    ///
    /// See [`GraphBuilder::conv_grouped`].
    pub fn conv(
        &mut self,
        name: impl Into<String>,
        from: NodeId,
        out_c: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> Result<NodeId, GraphError> {
        self.conv_grouped(name, from, out_c, kernel, stride, pad, 1)
    }

    /// Adds a depthwise convolution (`groups == in_channels`).
    ///
    /// # Errors
    ///
    /// See [`GraphBuilder::conv_grouped`].
    pub fn dw_conv(
        &mut self,
        name: impl Into<String>,
        from: NodeId,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> Result<NodeId, GraphError> {
        let c = self.shape_of(from).c;
        self.conv_grouped(name, from, c, kernel, stride, pad, c)
    }

    /// Adds a max-pooling layer (no padding).
    pub fn max_pool(
        &mut self,
        name: impl Into<String>,
        from: NodeId,
        kernel: usize,
        stride: usize,
    ) -> NodeId {
        self.pool(name, from, kernel, stride, 0, PoolKind::Max)
    }

    /// Adds a padded pooling layer.
    pub fn pool(
        &mut self,
        name: impl Into<String>,
        from: NodeId,
        kernel: usize,
        stride: usize,
        pad: usize,
        kind: PoolKind,
    ) -> NodeId {
        let in_shape = self.shape_of(from);
        let out = TensorShape::new(
            in_shape.c,
            conv_out_dim(in_shape.h, kernel, stride, pad),
            conv_out_dim(in_shape.w, kernel, stride, pad),
        );
        self.push(
            name,
            LayerKind::Pool {
                kernel,
                stride,
                pad,
                kind,
            },
            &[from],
            in_shape,
            out,
        )
    }

    /// Adds a global average pooling layer (output is `c x 1 x 1`).
    pub fn global_avg_pool(&mut self, name: impl Into<String>, from: NodeId) -> NodeId {
        let in_shape = self.shape_of(from);
        let out = TensorShape::vector(in_shape.c);
        self.push(name, LayerKind::GlobalAvgPool, &[from], in_shape, out)
    }

    /// Adds a fully-connected layer over the flattened input.
    pub fn fc(&mut self, name: impl Into<String>, from: NodeId, out: usize) -> NodeId {
        let in_shape = self.shape_of(from);
        self.push(
            name,
            LayerKind::Fc { out },
            &[from],
            in_shape,
            TensorShape::vector(out),
        )
    }

    /// Adds an elementwise residual addition of two tensors.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::ShapeMismatch`] if the operands differ in shape.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        a: NodeId,
        b: NodeId,
    ) -> Result<NodeId, GraphError> {
        let name = name.into();
        let (sa, sb) = (self.shape_of(a), self.shape_of(b));
        if sa != sb {
            return Err(GraphError::ShapeMismatch {
                layer: name,
                shapes: (sa, sb),
            });
        }
        Ok(self.push(name, LayerKind::Add, &[a, b], sa, sa))
    }

    /// Adds a channel concatenation of two or more tensors.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SpatialMismatch`] if the operands differ in
    /// spatial extent.
    pub fn concat(
        &mut self,
        name: impl Into<String>,
        parts: &[NodeId],
    ) -> Result<NodeId, GraphError> {
        let name = name.into();
        assert!(parts.len() >= 2, "concat requires at least two inputs");
        let first = self.shape_of(parts[0]);
        let mut c = 0;
        for p in parts {
            let s = self.shape_of(*p);
            if (s.h, s.w) != (first.h, first.w) {
                return Err(GraphError::SpatialMismatch { layer: name });
            }
            c += s.c;
        }
        let shape = TensorShape::new(c, first.h, first.w);
        Ok(self.push(name, LayerKind::Concat, parts, shape, shape))
    }

    /// Finalizes the graph.
    pub fn finish(self) -> Graph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn builder() -> GraphBuilder {
        GraphBuilder::new("t", Dtype::Int8, TensorShape::new(3, 8, 8))
    }

    #[test]
    fn chain_topology_and_edges() {
        let mut b = builder();
        let x = b.input();
        let a = b.conv("a", x, 4, 3, 1, 1).unwrap();
        let p = b.max_pool("p", a, 2, 2);
        let _c = b.conv("c", p, 8, 3, 1, 1).unwrap();
        let g = b.finish();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(LayerId(0), LayerId(1)), (LayerId(1), LayerId(2))]);
        assert_eq!(g.successors(LayerId(0)), vec![LayerId(1)]);
        assert_eq!(g.layer(LayerId(2)).input_shape, TensorShape::new(4, 4, 4));
    }

    #[test]
    fn residual_add_checks_shapes() {
        let mut b = builder();
        let x = b.input();
        let a = b.conv("a", x, 4, 3, 1, 1).unwrap();
        let c = b.conv("c", a, 4, 3, 1, 1).unwrap();
        let s = b.add("s", a, c).unwrap();
        let bad = b.conv("d", s, 8, 3, 2, 1).unwrap();
        assert!(matches!(
            b.add("bad", s, bad),
            Err(GraphError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn concat_sums_channels() {
        let mut b = builder();
        let x = b.input();
        let a = b.conv("a", x, 4, 1, 1, 0).unwrap();
        let c = b.conv("c", x, 6, 1, 1, 0).unwrap();
        let cat = b.concat("cat", &[a, c]).unwrap();
        let g = b.finish();
        let _ = cat;
        assert_eq!(g.layers().last().unwrap().output_shape, TensorShape::new(10, 8, 8));
    }

    #[test]
    fn concat_rejects_spatial_mismatch() {
        let mut b = builder();
        let x = b.input();
        let a = b.conv("a", x, 4, 1, 1, 0).unwrap();
        let c = b.conv("c", x, 4, 3, 2, 1).unwrap();
        assert!(matches!(
            b.concat("cat", &[a, c]),
            Err(GraphError::SpatialMismatch { .. })
        ));
    }

    #[test]
    fn grouped_conv_validation() {
        let mut b = builder();
        let x = b.input();
        assert!(matches!(
            b.conv_grouped("g", x, 4, 3, 1, 1, 2),
            Err(GraphError::BadGroups { .. })
        ));
        // Depthwise on 3 channels is fine.
        let d = b.dw_conv("dw", x, 3, 1, 1).unwrap();
        let g = b.finish();
        let _ = d;
        let l = g.layers().last().unwrap();
        assert_eq!(l.output_shape.c, 3);
        assert_eq!(l.weight_elems(), 3 * 9);
    }

    #[test]
    fn totals_sum_layers() {
        let mut b = builder();
        let x = b.input();
        let a = b.conv("a", x, 4, 3, 1, 1).unwrap();
        let _ = b.conv("b", a, 8, 3, 1, 1).unwrap();
        let g = b.finish();
        assert_eq!(g.total_ops(), g.layers()[0].ops() + g.layers()[1].ops());
        assert_eq!(
            g.total_access(),
            g.layers()[0].access(Dtype::Int8) + g.layers()[1].access(Dtype::Int8)
        );
    }

    #[test]
    fn error_display() {
        let e = GraphError::BadGroups {
            layer: "x".into(),
            in_c: 3,
            groups: 2,
        };
        assert!(e.to_string().contains("not divisible"));
    }
}
