//! AlexNet and VGG16.

use super::{imagenet_input, ZOO_DTYPE};
use crate::graph::{Graph, GraphBuilder, NodeId};

/// AlexNet (Krizhevsky et al.), with the original two-group structure on
/// conv2/conv4/conv5 expressed as grouped convolutions.
pub fn alexnet() -> Graph {
    let mut b = GraphBuilder::new("alexnet", ZOO_DTYPE, imagenet_input());
    let x = b.input();
    let c1 = b.conv("conv1", x, 96, 11, 4, 2).expect("valid conv");
    let p1 = b.max_pool("pool1", c1, 3, 2);
    let c2 = b
        .conv_grouped("conv2", p1, 256, 5, 1, 2, 2)
        .expect("valid conv");
    let p2 = b.max_pool("pool2", c2, 3, 2);
    let c3 = b.conv("conv3", p2, 384, 3, 1, 1).expect("valid conv");
    let c4 = b
        .conv_grouped("conv4", c3, 384, 3, 1, 1, 2)
        .expect("valid conv");
    let c5 = b
        .conv_grouped("conv5", c4, 256, 3, 1, 1, 2)
        .expect("valid conv");
    let p5 = b.max_pool("pool5", c5, 3, 2);
    let f6 = b.fc("fc6", p5, 4096);
    let f7 = b.fc("fc7", f6, 4096);
    let _f8 = b.fc("fc8", f7, 1000);
    b.finish()
}

/// The convolution-only AlexNet of the paper's case study (Tables IV-VI),
/// with every convolution split into its two historical GPU groups
/// `convN_a` / `convN_b` — ten convolution work items in total.
///
/// Group wiring follows the original network: conv2 and conv4/5 groups read
/// only their own half, while conv3 reads both halves.
pub fn alexnet_conv() -> Graph {
    let mut b = GraphBuilder::new("alexnet_conv", ZOO_DTYPE, imagenet_input());
    let x = b.input();
    let half = |b: &mut GraphBuilder, name: &str, from: NodeId, out_c, k, s, p| {
        b.conv(name, from, out_c, k, s, p).expect("valid conv")
    };
    let c1a = half(&mut b, "conv1_a", x, 48, 11, 4, 2);
    let c1b = half(&mut b, "conv1_b", x, 48, 11, 4, 2);
    let p1a = b.max_pool("pool1_a", c1a, 3, 2);
    let p1b = b.max_pool("pool1_b", c1b, 3, 2);
    let c2a = half(&mut b, "conv2_a", p1a, 128, 5, 1, 2);
    let c2b = half(&mut b, "conv2_b", p1b, 128, 5, 1, 2);
    let p2a = b.max_pool("pool2_a", c2a, 3, 2);
    let p2b = b.max_pool("pool2_b", c2b, 3, 2);
    let cat2 = b.concat("concat2", &[p2a, p2b]).expect("same spatial");
    let c3a = half(&mut b, "conv3_a", cat2, 192, 3, 1, 1);
    let c3b = half(&mut b, "conv3_b", cat2, 192, 3, 1, 1);
    let c4a = half(&mut b, "conv4_a", c3a, 192, 3, 1, 1);
    let c4b = half(&mut b, "conv4_b", c3b, 3 * 64, 3, 1, 1);
    let c5a = half(&mut b, "conv5_a", c4a, 128, 3, 1, 1);
    let c5b = half(&mut b, "conv5_b", c4b, 128, 3, 1, 1);
    let p5a = b.max_pool("pool5_a", c5a, 3, 2);
    let _p5b = b.max_pool("pool5_b", c5b, 3, 2);
    let _ = p5a;
    b.finish()
}

/// VGG16 (Simonyan & Zisserman, configuration D).
pub fn vgg16() -> Graph {
    vgg("vgg16", &[(2, 64), (2, 128), (3, 256), (3, 512), (3, 512)])
}

/// VGG19 (configuration E).
pub fn vgg19() -> Graph {
    vgg("vgg19", &[(2, 64), (2, 128), (4, 256), (4, 512), (4, 512)])
}

fn vgg(name: &str, stages: &[(usize, usize)]) -> Graph {
    let mut b = GraphBuilder::new(name, ZOO_DTYPE, imagenet_input());
    let mut x = b.input();
    for (si, &(n, c)) in stages.iter().enumerate() {
        for li in 0..n {
            x = b
                .conv(format!("conv{}_{}", si + 1, li + 1), x, c, 3, 1, 1)
                .expect("valid conv");
        }
        x = b.max_pool(format!("pool{}", si + 1), x, 2, 2);
    }
    let f6 = b.fc("fc6", x, 4096);
    let f7 = b.fc("fc7", f6, 4096);
    let _f8 = b.fc("fc8", f7, 1000);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    #[test]
    fn alexnet_conv1_shape() {
        let g = alexnet();
        let c1 = &g.layers()[0];
        assert_eq!(c1.output_shape.h, 55);
        assert_eq!(c1.output_shape.c, 96);
        // conv1 is ~105 MMACs.
        assert!((100e6..110e6).contains(&(c1.ops() as f64)));
    }

    #[test]
    fn alexnet_fc_dominates_weights() {
        let g = alexnet();
        let fc: u64 = g
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Fc { .. }))
            .map(|l| l.weight_elems())
            .sum();
        assert!(fc as f64 / g.total_weight_bytes() as f64 > 0.9);
    }

    #[test]
    fn split_alexnet_matches_grouped_conv_ops() {
        // The a/b split reproduces the grouped network's conv MACs.
        let full = alexnet();
        let conv_ops: u64 = full
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Conv { .. }))
            .map(|l| l.ops())
            .sum();
        let split_ops = alexnet_conv().total_ops();
        let ratio = split_ops as f64 / conv_ops as f64;
        assert!(
            (0.95..1.25).contains(&ratio),
            "split/grouped ops ratio {ratio}"
        );
    }

    #[test]
    fn vgg16_has_13_convs_and_3_fcs() {
        let g = vgg16();
        let convs = g
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Conv { .. }))
            .count();
        let fcs = g
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Fc { .. }))
            .count();
        assert_eq!((convs, fcs), (13, 3));
    }

    #[test]
    fn vgg16_final_fmap_is_7x7() {
        let g = vgg16();
        let last_pool = g
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Pool { .. }))
            .next_back()
            .expect("has pools");
        assert_eq!(last_pool.output_shape.h, 7);
        assert_eq!(last_pool.output_shape.c, 512);
    }
}
