//! SqueezeNet 1.0 and InceptionV1 (GoogLeNet).

use super::{imagenet_input, ZOO_DTYPE};
use crate::graph::{Graph, GraphBuilder, NodeId};
use crate::layer::PoolKind;

/// One Fire module: squeeze 1x1, then parallel expand 1x1 / expand 3x3,
/// concatenated.
fn fire(
    b: &mut GraphBuilder,
    name: &str,
    x: NodeId,
    squeeze: usize,
    expand1: usize,
    expand3: usize,
) -> NodeId {
    let s = b
        .conv(format!("{name}_squeeze"), x, squeeze, 1, 1, 0)
        .expect("valid conv");
    let e1 = b
        .conv(format!("{name}_expand1x1"), s, expand1, 1, 1, 0)
        .expect("valid conv");
    let e3 = b
        .conv(format!("{name}_expand3x3"), s, expand3, 3, 1, 1)
        .expect("valid conv");
    b.concat(format!("{name}_concat"), &[e1, e3])
        .expect("same spatial")
}

/// SqueezeNet 1.0 (Iandola et al.): 26 convolution layers — conv1, eight
/// Fire modules of three convolutions each, and conv10.
pub fn squeezenet1_0() -> Graph {
    let mut b = GraphBuilder::new("squeezenet1_0", ZOO_DTYPE, imagenet_input());
    let x = b.input();
    let c1 = b.conv("conv1", x, 96, 7, 2, 0).expect("valid conv");
    let p1 = b.max_pool("pool1", c1, 3, 2);
    let f2 = fire(&mut b, "fire2", p1, 16, 64, 64);
    let f3 = fire(&mut b, "fire3", f2, 16, 64, 64);
    let f4 = fire(&mut b, "fire4", f3, 32, 128, 128);
    let p4 = b.max_pool("pool4", f4, 3, 2);
    let f5 = fire(&mut b, "fire5", p4, 32, 128, 128);
    let f6 = fire(&mut b, "fire6", f5, 48, 192, 192);
    let f7 = fire(&mut b, "fire7", f6, 48, 192, 192);
    let f8 = fire(&mut b, "fire8", f7, 64, 256, 256);
    let p8 = b.max_pool("pool8", f8, 3, 2);
    let f9 = fire(&mut b, "fire9", p8, 64, 256, 256);
    let c10 = b.conv("conv10", f9, 1000, 1, 1, 0).expect("valid conv");
    let _g = b.global_avg_pool("avgpool", c10);
    b.finish()
}

/// One Inception module with the four canonical branches.
#[allow(clippy::too_many_arguments)]
fn inception(
    b: &mut GraphBuilder,
    name: &str,
    x: NodeId,
    c1: usize,
    c3r: usize,
    c3: usize,
    c5r: usize,
    c5: usize,
    cp: usize,
) -> NodeId {
    let b1 = b
        .conv(format!("{name}_1x1"), x, c1, 1, 1, 0)
        .expect("valid conv");
    let r3 = b
        .conv(format!("{name}_3x3_reduce"), x, c3r, 1, 1, 0)
        .expect("valid conv");
    let b3 = b
        .conv(format!("{name}_3x3"), r3, c3, 3, 1, 1)
        .expect("valid conv");
    let r5 = b
        .conv(format!("{name}_5x5_reduce"), x, c5r, 1, 1, 0)
        .expect("valid conv");
    let b5 = b
        .conv(format!("{name}_5x5"), r5, c5, 5, 1, 2)
        .expect("valid conv");
    let pp = b.pool(format!("{name}_pool"), x, 3, 1, 1, PoolKind::Max);
    let bp = b
        .conv(format!("{name}_pool_proj"), pp, cp, 1, 1, 0)
        .expect("valid conv");
    b.concat(format!("{name}_concat"), &[b1, b3, b5, bp])
        .expect("same spatial")
}

/// InceptionV1 / GoogLeNet (Szegedy et al.), auxiliary heads omitted.
pub fn inception_v1() -> Graph {
    let mut b = GraphBuilder::new("inception_v1", ZOO_DTYPE, imagenet_input());
    let x = b.input();
    let c1 = b.conv("conv1", x, 64, 7, 2, 3).expect("valid conv");
    let p1 = b.pool("pool1", c1, 3, 2, 1, PoolKind::Max);
    let c2r = b.conv("conv2_reduce", p1, 64, 1, 1, 0).expect("valid conv");
    let c2 = b.conv("conv2", c2r, 192, 3, 1, 1).expect("valid conv");
    let p2 = b.pool("pool2", c2, 3, 2, 1, PoolKind::Max);
    let i3a = inception(&mut b, "3a", p2, 64, 96, 128, 16, 32, 32);
    let i3b = inception(&mut b, "3b", i3a, 128, 128, 192, 32, 96, 64);
    let p3 = b.pool("pool3", i3b, 3, 2, 1, PoolKind::Max);
    let i4a = inception(&mut b, "4a", p3, 192, 96, 208, 16, 48, 64);
    let i4b = inception(&mut b, "4b", i4a, 160, 112, 224, 24, 64, 64);
    let i4c = inception(&mut b, "4c", i4b, 128, 128, 256, 24, 64, 64);
    let i4d = inception(&mut b, "4d", i4c, 112, 144, 288, 32, 64, 64);
    let i4e = inception(&mut b, "4e", i4d, 256, 160, 320, 32, 128, 128);
    let p4 = b.pool("pool4", i4e, 3, 2, 1, PoolKind::Max);
    let i5a = inception(&mut b, "5a", p4, 256, 160, 320, 32, 128, 128);
    let i5b = inception(&mut b, "5b", i5a, 384, 192, 384, 48, 128, 128);
    let g = b.global_avg_pool("avgpool", i5b);
    let _fc = b.fc("fc", g, 1000);
    b.finish()
}

/// Alias for [`inception_v1`]; Table III of the paper calls the same model
/// "GoogleNet".
pub fn googlenet() -> Graph {
    inception_v1()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;
    use crate::workload::Workload;

    #[test]
    fn squeezenet_fire_channel_math() {
        let g = squeezenet1_0();
        // fire2 concat output is 128 channels at 55x55 (conv1 7x7/2 no pad
        // on 224 gives 109 -> pool 3/2 -> 54).
        let cat = g
            .layers()
            .iter()
            .find(|l| l.name == "fire2_concat")
            .expect("exists");
        assert_eq!(cat.output_shape.c, 128);
    }

    #[test]
    fn googlenet_inception_counts() {
        let g = inception_v1();
        let convs = g
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Conv { .. }))
            .count();
        // 3 stem convs + 9 modules x 6 convs = 57.
        assert_eq!(convs, 57);
        // 57 convs + 1 fc anchors.
        assert_eq!(Workload::from_graph(&g).len(), 58);
    }

    #[test]
    fn inception_concat_channels() {
        let g = inception_v1();
        let cat3a = g
            .layers()
            .iter()
            .find(|l| l.name == "3a_concat")
            .expect("exists");
        assert_eq!(cat3a.output_shape.c, 64 + 128 + 32 + 32);
    }

    #[test]
    fn branch_pool_folds_forward_into_projection() {
        // The pool-proj conv of each module streams the pre-pool concat.
        let w = Workload::from_graph(&inception_v1());
        let proj = w
            .items()
            .iter()
            .find(|i| i.name == "3a_pool_proj")
            .expect("exists");
        // It reads the four producers of the *previous* concat... for 3a the
        // input is pool2 which folds back to conv2.
        assert!(!proj.preds.is_empty());
    }
}
