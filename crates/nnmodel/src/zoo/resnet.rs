//! ResNet-18/50/152 (He et al.).

use super::{imagenet_input, ZOO_DTYPE};
use crate::graph::{Graph, GraphBuilder, NodeId};

fn stem(b: &mut GraphBuilder) -> NodeId {
    let x = b.input();
    let c = b.conv("conv1", x, 64, 7, 2, 3).expect("valid conv");
    b.pool("pool1", c, 3, 2, 1, crate::layer::PoolKind::Max)
}

fn head(b: &mut GraphBuilder, x: NodeId) {
    let g = b.global_avg_pool("avgpool", x);
    let _ = b.fc("fc", g, 1000);
}

/// A basic residual block (two 3x3 convs), as used by ResNet-18/34.
fn basic_block(
    b: &mut GraphBuilder,
    name: &str,
    x: NodeId,
    out_c: usize,
    stride: usize,
    downsample: bool,
) -> NodeId {
    let c1 = b
        .conv(format!("{name}_conv1"), x, out_c, 3, stride, 1)
        .expect("valid conv");
    let c2 = b
        .conv(format!("{name}_conv2"), c1, out_c, 3, 1, 1)
        .expect("valid conv");
    let skip = if downsample {
        b.conv(format!("{name}_down"), x, out_c, 1, stride, 0)
            .expect("valid conv")
    } else {
        x
    };
    b.add(format!("{name}_add"), skip, c2).expect("same shape")
}

/// A bottleneck residual block (1x1 reduce, 3x3, 1x1 expand x4), as used by
/// ResNet-50/101/152.
fn bottleneck_block(
    b: &mut GraphBuilder,
    name: &str,
    x: NodeId,
    mid_c: usize,
    stride: usize,
    downsample: bool,
) -> NodeId {
    let out_c = mid_c * 4;
    let c1 = b
        .conv(format!("{name}_conv1"), x, mid_c, 1, 1, 0)
        .expect("valid conv");
    let c2 = b
        .conv(format!("{name}_conv2"), c1, mid_c, 3, stride, 1)
        .expect("valid conv");
    let c3 = b
        .conv(format!("{name}_conv3"), c2, out_c, 1, 1, 0)
        .expect("valid conv");
    let skip = if downsample {
        b.conv(format!("{name}_down"), x, out_c, 1, stride, 0)
            .expect("valid conv")
    } else {
        x
    };
    b.add(format!("{name}_add"), skip, c3).expect("same shape")
}

/// ResNet-18.
pub fn resnet18() -> Graph {
    let mut b = GraphBuilder::new("resnet18", ZOO_DTYPE, imagenet_input());
    let mut x = stem(&mut b);
    let stages: &[(usize, usize)] = &[(64, 2), (128, 2), (256, 2), (512, 2)];
    for (si, &(c, n)) in stages.iter().enumerate() {
        for bi in 0..n {
            let first = bi == 0;
            let stride = if first && si > 0 { 2 } else { 1 };
            let down = first && si > 0;
            x = basic_block(&mut b, &format!("layer{}_{}", si + 1, bi + 1), x, c, stride, down);
        }
    }
    head(&mut b, x);
    b.finish()
}

fn resnet_bottleneck(name: &str, blocks: [usize; 4]) -> Graph {
    let mut b = GraphBuilder::new(name, ZOO_DTYPE, imagenet_input());
    let mut x = stem(&mut b);
    let mids = [64usize, 128, 256, 512];
    for (si, (&mid, &n)) in mids.iter().zip(blocks.iter()).enumerate() {
        for bi in 0..n {
            let first = bi == 0;
            let stride = if first && si > 0 { 2 } else { 1 };
            // The first block of every stage changes channel count (64 ->
            // 256 in stage 1), so it always needs a projection shortcut.
            let down = first;
            x = bottleneck_block(
                &mut b,
                &format!("layer{}_{}", si + 1, bi + 1),
                x,
                mid,
                stride,
                down,
            );
        }
    }
    head(&mut b, x);
    b.finish()
}

/// ResNet-34 (`[3, 4, 6, 3]` basic blocks).
pub fn resnet34() -> Graph {
    let mut b = GraphBuilder::new("resnet34", ZOO_DTYPE, imagenet_input());
    let mut x = stem(&mut b);
    let stages: &[(usize, usize)] = &[(64, 3), (128, 4), (256, 6), (512, 3)];
    for (si, &(c, n)) in stages.iter().enumerate() {
        for bi in 0..n {
            let first = bi == 0;
            let stride = if first && si > 0 { 2 } else { 1 };
            let down = first && si > 0;
            x = basic_block(&mut b, &format!("layer{}_{}", si + 1, bi + 1), x, c, stride, down);
        }
    }
    head(&mut b, x);
    b.finish()
}

/// ResNet-50 (`[3, 4, 6, 3]` bottleneck blocks).
pub fn resnet50() -> Graph {
    resnet_bottleneck("resnet50", [3, 4, 6, 3])
}

/// ResNet-101 (`[3, 4, 23, 3]` bottleneck blocks).
pub fn resnet101() -> Graph {
    resnet_bottleneck("resnet101", [3, 4, 23, 3])
}

/// ResNet-152 (`[3, 8, 36, 3]` bottleneck blocks).
pub fn resnet152() -> Graph {
    resnet_bottleneck("resnet152", [3, 8, 36, 3])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;
    use crate::workload::Workload;

    fn conv_count(g: &Graph) -> usize {
        g.layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Conv { .. }))
            .count()
    }

    #[test]
    fn resnet18_structure() {
        let g = resnet18();
        // 1 stem + 8 blocks x 2 convs + 3 downsample projections = 20.
        assert_eq!(conv_count(&g), 20);
        let w = Workload::from_graph(&g);
        // 20 convs + 1 fc.
        assert_eq!(w.len(), 21);
    }

    #[test]
    fn resnet50_structure() {
        let g = resnet50();
        // 1 stem + 16 blocks x 3 convs + 4 projections = 53.
        assert_eq!(conv_count(&g), 53);
    }

    #[test]
    fn resnet152_structure() {
        let g = resnet152();
        // 1 stem + 50 blocks x 3 convs + 4 projections = 155.
        assert_eq!(conv_count(&g), 155);
    }

    #[test]
    fn stage_shapes_halve() {
        let g = resnet18();
        // Final pre-pool fmap is 512x7x7.
        let fc_in = g
            .layers()
            .iter()
            .find(|l| matches!(l.kind, LayerKind::GlobalAvgPool))
            .expect("has gap");
        assert_eq!(fc_in.input_shape.c, 512);
        assert_eq!(fc_in.input_shape.h, 7);
    }

    #[test]
    fn residuals_fold_without_extra_items() {
        let g = resnet50();
        let w = Workload::from_graph(&g);
        // conv anchors + fc only.
        assert_eq!(w.len(), conv_count(&g) + 1);
    }
}
