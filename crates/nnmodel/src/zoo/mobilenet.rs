//! MobileNetV1, MobileNetV2 and EfficientNet-B0 — the depthwise-separable
//! family whose large intermediate feature maps make them the paper's
//! headline SPA winners (Section VI-B).

use super::{imagenet_input, ZOO_DTYPE};
use crate::graph::{Graph, GraphBuilder, NodeId};

/// MobileNetV1 (Howard et al.), width multiplier 1.0.
pub fn mobilenet_v1() -> Graph {
    mobilenet_v1_width("mobilenet_v1", 4)
}

/// MobileNetV1 with a 0.5 width multiplier (`MobileNetV1-0.50`), a common
/// edge-deployment configuration.
pub fn mobilenet_v1_050() -> Graph {
    mobilenet_v1_width("mobilenet_v1_050", 2)
}

/// MobileNetV1 with channel counts scaled by `scale_quarters / 4`.
fn mobilenet_v1_width(name: &str, scale_quarters: usize) -> Graph {
    let sc = |c: usize| (c * scale_quarters / 4).max(8);
    let mut b = GraphBuilder::new(name, ZOO_DTYPE, imagenet_input());
    let x = b.input();
    let mut x = b.conv("conv1", x, sc(32), 3, 2, 1).expect("valid conv");
    // (stride of the depthwise conv, output channels of the pointwise conv)
    let blocks: &[(usize, usize)] = &[
        (1, 64),
        (2, 128),
        (1, 128),
        (2, 256),
        (1, 256),
        (2, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (2, 1024),
        (1, 1024),
    ];
    for (i, &(s, c)) in blocks.iter().enumerate() {
        let n = i + 1;
        let dw = b
            .dw_conv(format!("dw{n}"), x, 3, s, 1)
            .expect("valid conv");
        x = b
            .conv(format!("pw{n}"), dw, sc(c), 1, 1, 0)
            .expect("valid conv");
    }
    let g = b.global_avg_pool("avgpool", x);
    let _ = b.fc("fc", g, 1000);
    b.finish()
}

/// One inverted-residual (MBConv) block: 1x1 expand, depthwise `k`x`k`,
/// 1x1 project, with a residual add when the stride is 1 and channels
/// match.
#[allow(clippy::too_many_arguments)]
fn mbconv(
    b: &mut GraphBuilder,
    name: &str,
    x: NodeId,
    in_c: usize,
    out_c: usize,
    expand: usize,
    kernel: usize,
    stride: usize,
) -> NodeId {
    let mid = in_c * expand;
    let mut t = x;
    if expand != 1 {
        t = b
            .conv(format!("{name}_expand"), t, mid, 1, 1, 0)
            .expect("valid conv");
    }
    let dw = b
        .dw_conv(format!("{name}_dw"), t, kernel, stride, kernel / 2)
        .expect("valid conv");
    let proj = b
        .conv(format!("{name}_project"), dw, out_c, 1, 1, 0)
        .expect("valid conv");
    if stride == 1 && in_c == out_c {
        b.add(format!("{name}_add"), x, proj).expect("same shape")
    } else {
        proj
    }
}

/// MobileNetV2 (Sandler et al.), width multiplier 1.0.
pub fn mobilenet_v2() -> Graph {
    let mut b = GraphBuilder::new("mobilenet_v2", ZOO_DTYPE, imagenet_input());
    let x = b.input();
    let mut x = b.conv("conv1", x, 32, 3, 2, 1).expect("valid conv");
    let mut in_c = 32;
    // (expand factor t, output channels c, repeats n, first stride s)
    let cfg: &[(usize, usize, usize, usize)] = &[
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut bi = 0;
    for &(t, c, n, s) in cfg {
        for r in 0..n {
            bi += 1;
            let stride = if r == 0 { s } else { 1 };
            x = mbconv(&mut b, &format!("block{bi}"), x, in_c, c, t, 3, stride);
            in_c = c;
        }
    }
    x = b.conv("conv_head", x, 1280, 1, 1, 0).expect("valid conv");
    let g = b.global_avg_pool("avgpool", x);
    let _ = b.fc("fc", g, 1000);
    b.finish()
}

/// EfficientNet-B0 (Tan & Le), squeeze-and-excite omitted (<1% of MACs).
pub fn efficientnet_b0() -> Graph {
    let mut b = GraphBuilder::new("efficientnet_b0", ZOO_DTYPE, imagenet_input());
    let x = b.input();
    let mut x = b.conv("stem", x, 32, 3, 2, 1).expect("valid conv");
    let mut in_c = 32;
    // (expand t, output channels c, repeats n, first stride s, kernel k)
    let cfg: &[(usize, usize, usize, usize, usize)] = &[
        (1, 16, 1, 1, 3),
        (6, 24, 2, 2, 3),
        (6, 40, 2, 2, 5),
        (6, 80, 3, 2, 3),
        (6, 112, 3, 1, 5),
        (6, 192, 4, 2, 5),
        (6, 320, 1, 1, 3),
    ];
    let mut bi = 0;
    for &(t, c, n, s, k) in cfg {
        for r in 0..n {
            bi += 1;
            let stride = if r == 0 { s } else { 1 };
            x = mbconv(&mut b, &format!("mb{bi}"), x, in_c, c, t, k, stride);
            in_c = c;
        }
    }
    x = b.conv("head", x, 1280, 1, 1, 0).expect("valid conv");
    let g = b.global_avg_pool("avgpool", x);
    let _ = b.fc("fc", g, 1000);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;
    use crate::workload::Workload;

    #[test]
    fn mobilenet_v1_has_13_separable_blocks() {
        let g = mobilenet_v1();
        let dw = g
            .layers()
            .iter()
            .filter(
                |l| matches!(l.kind, LayerKind::Conv { groups, .. } if groups > 1),
            )
            .count();
        assert_eq!(dw, 13);
        // 1 stem + 13 dw + 13 pw + 1 fc anchors.
        assert_eq!(Workload::from_graph(&g).len(), 28);
    }

    #[test]
    fn mobilenet_v1_final_fmap() {
        let g = mobilenet_v1();
        let gap = g
            .layers()
            .iter()
            .find(|l| matches!(l.kind, LayerKind::GlobalAvgPool))
            .expect("has gap");
        assert_eq!(gap.input_shape.c, 1024);
        assert_eq!(gap.input_shape.h, 7);
    }

    #[test]
    fn mobilenet_v2_has_17_blocks_and_residuals() {
        let g = mobilenet_v2();
        let adds = g
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Add))
            .count();
        // Residual adds only where stride 1 and in==out: 1+2+3+2+2 = 10.
        assert_eq!(adds, 10);
    }

    #[test]
    fn efficientnet_b0_block_count() {
        let g = efficientnet_b0();
        // 16 MBConv blocks.
        let dw = g
            .layers()
            .iter()
            .filter(
                |l| matches!(l.kind, LayerKind::Conv { groups, .. } if groups > 1),
            )
            .count();
        assert_eq!(dw, 16);
    }

    #[test]
    fn depthwise_layers_have_low_ctc() {
        // Depthwise convs are extremely memory-bound: the alternating
        // high/low CTC pattern of Section II-B.
        let w = Workload::from_graph(&mobilenet_v1());
        let dw_ctc: Vec<f64> = w
            .items()
            .iter()
            .filter(|i| i.groups > 1)
            .map(|i| i.ctc())
            .collect();
        let pw_ctc: Vec<f64> = w
            .items()
            .iter()
            .filter(|i| i.groups == 1 && !i.is_fc && i.kernel == 1)
            .map(|i| i.ctc())
            .collect();
        let dw_mean = dw_ctc.iter().sum::<f64>() / dw_ctc.len() as f64;
        let pw_mean = pw_ctc.iter().sum::<f64>() / pw_ctc.len() as f64;
        assert!(pw_mean > 4.0 * dw_mean, "pw {pw_mean:.2} vs dw {dw_mean:.2}");
    }
}
