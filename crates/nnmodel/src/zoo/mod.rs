//! The benchmark model zoo of the paper's evaluation (Section VI-A):
//! AlexNet, VGG16, MobileNetV1/V2, ResNet18/50/152, SqueezeNet1.0,
//! InceptionV1 (GoogLeNet), plus EfficientNet-B0 used by the motivation
//! figures (Figure 3).
//!
//! All models take a 3x224x224 int8 input frame. Squeeze-and-excite blocks
//! of EfficientNet are omitted (sub-1% of its MACs and weight-less from the
//! dataflow's perspective); auxiliary classifier heads of GoogLeNet are
//! omitted as in every deployment setting.

mod classic;
mod mobilenet;
mod resnet;
mod squeeze_inception;

pub use classic::{alexnet, alexnet_conv, vgg16, vgg19};
pub use mobilenet::{efficientnet_b0, mobilenet_v1, mobilenet_v1_050, mobilenet_v2};
pub use resnet::{resnet101, resnet18, resnet152, resnet34, resnet50};
pub use squeeze_inception::{googlenet, inception_v1, squeezenet1_0};

use crate::graph::Graph;
use crate::shape::{Dtype, TensorShape};

/// Standard ImageNet input frame.
pub(crate) fn imagenet_input() -> TensorShape {
    TensorShape::new(3, 224, 224)
}

/// Default element type for the zoo (the paper evaluates int8 designs).
pub(crate) const ZOO_DTYPE: Dtype = Dtype::Int8;

/// All nine evaluation models of Figure 12, in the paper's order.
pub fn evaluation_models() -> Vec<Graph> {
    vec![
        alexnet(),
        vgg16(),
        mobilenet_v1(),
        mobilenet_v2(),
        resnet18(),
        resnet50(),
        resnet152(),
        squeezenet1_0(),
        inception_v1(),
    ]
}

/// Looks a zoo model up by name (as reported by [`Graph::name`]).
///
/// Recognized names: `alexnet`, `alexnet_conv`, `vgg16`, `vgg19`,
/// `mobilenet_v1`, `mobilenet_v1_050`, `mobilenet_v2`, `resnet18`,
/// `resnet34`, `resnet50`, `resnet101`, `resnet152`, `squeezenet1_0`,
/// `inception_v1` / `googlenet`, `efficientnet_b0`.
pub fn by_name(name: &str) -> Option<Graph> {
    Some(match name {
        "alexnet" => alexnet(),
        "alexnet_conv" => alexnet_conv(),
        "vgg16" => vgg16(),
        "vgg19" => vgg19(),
        "mobilenet_v1" => mobilenet_v1(),
        "mobilenet_v1_050" => mobilenet_v1_050(),
        "mobilenet_v2" => mobilenet_v2(),
        "resnet18" => resnet18(),
        "resnet34" => resnet34(),
        "resnet101" => resnet101(),
        "resnet50" => resnet50(),
        "resnet152" => resnet152(),
        "squeezenet1_0" => squeezenet1_0(),
        "inception_v1" | "googlenet" => inception_v1(),
        "efficientnet_b0" => efficientnet_b0(),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;

    /// Published MAC counts (per 224x224 frame), with generous tolerance:
    /// implementations differ on padding conventions and head details.
    #[test]
    fn mac_counts_match_published_figures() {
        let cases: &[(&str, f64, f64)] = &[
            ("alexnet", 0.6e9, 0.9e9),
            ("vgg16", 14.0e9, 16.5e9),
            ("mobilenet_v1", 0.5e9, 0.65e9),
            ("mobilenet_v2", 0.27e9, 0.36e9),
            ("resnet18", 1.6e9, 2.0e9),
            ("resnet50", 3.6e9, 4.4e9),
            ("resnet152", 10.5e9, 12.5e9),
            ("squeezenet1_0", 0.3e9, 0.95e9),
            ("inception_v1", 1.3e9, 1.7e9),
            ("efficientnet_b0", 0.32e9, 0.45e9),
        ];
        for &(name, lo, hi) in cases {
            let g = by_name(name).expect("model exists");
            let macs = g.total_ops() as f64;
            assert!(
                (lo..hi).contains(&macs),
                "{name}: {macs:.3e} MACs outside [{lo:.2e}, {hi:.2e})"
            );
        }
    }

    /// Published parameter counts (weights), coarse sanity bounds.
    #[test]
    fn weight_counts_match_published_figures() {
        let cases: &[(&str, f64, f64)] = &[
            ("alexnet", 55e6, 65e6),
            ("vgg16", 130e6, 140e6),
            ("mobilenet_v1", 3.5e6, 4.5e6),
            ("mobilenet_v2", 2.8e6, 3.8e6),
            ("resnet18", 10e6, 13e6),
            ("resnet50", 23e6, 27e6),
            ("resnet152", 55e6, 62e6),
            ("squeezenet1_0", 1.0e6, 1.5e6),
            ("inception_v1", 5.5e6, 7.5e6),
        ];
        for &(name, lo, hi) in cases {
            let g = by_name(name).expect("model exists");
            let w = g.total_weight_bytes() as f64; // int8: 1 byte / param
            assert!(
                (lo..hi).contains(&w),
                "{name}: {w:.3e} params outside [{lo:.2e}, {hi:.2e})"
            );
        }
    }

    #[test]
    fn squeezenet_has_26_conv_anchors() {
        // Figure 4 of the paper plots exactly 26 layers.
        let w = Workload::from_graph(&squeezenet1_0());
        assert_eq!(w.len(), 26);
    }

    #[test]
    fn alexnet_case_study_has_10_split_convs() {
        // Tables IV-VI use conv1_a/b .. conv5_a/b.
        let w = Workload::from_graph(&alexnet_conv());
        assert_eq!(w.len(), 10);
        assert!(w.items().iter().all(|i| !i.is_fc));
    }

    #[test]
    fn all_models_have_consistent_workloads() {
        for g in evaluation_models() {
            let w = Workload::from_graph(&g);
            assert!(!w.is_empty(), "{}", g.name());
            assert_eq!(w.total_ops(), g.total_ops(), "{}", g.name());
            // Every non-entry item has at least one producer.
            for item in w.items() {
                assert!(
                    item.extern_in_bytes > 0 || !item.preds.is_empty(),
                    "{}: item {} is disconnected",
                    g.name(),
                    item.name
                );
                // Producers precede consumers (topological order).
                for &(p, _) in &item.preds {
                    assert!(p < item.index, "{}: {} reads later item", g.name(), item.name);
                }
            }
        }
    }

    #[test]
    fn mobilenets_are_fmap_dominated() {
        // Section VI-B: "in MobileNetV1/V2, intermediate fmaps are
        // responsible for ~65% of the total memory footprint".
        for g in [mobilenet_v1(), mobilenet_v2()] {
            let w = Workload::from_graph(&g);
            let weights: u64 = w.items().iter().map(|i| i.w_bytes).sum();
            let fmaps: u64 = w.total_layerwise_access() - weights;
            let frac = fmaps as f64 / w.total_layerwise_access() as f64;
            assert!(frac > 0.55, "{}: fmap fraction {frac:.2}", g.name());
        }
    }

    #[test]
    fn by_name_rejects_unknown() {
        assert!(by_name("lenet5").is_none());
    }

    #[test]
    fn googlenet_is_inception_v1() {
        assert_eq!(googlenet().total_ops(), inception_v1().total_ops());
    }

    #[test]
    fn extended_zoo_variants_scale_sensibly() {
        // VGG19 adds 3 convs over VGG16.
        assert!(vgg19().total_ops() > vgg16().total_ops());
        // ResNet depth ordering.
        assert!(resnet34().total_ops() > resnet18().total_ops());
        assert!(resnet50().total_ops() > resnet34().total_ops());
        assert!(resnet101().total_ops() > resnet50().total_ops());
        assert!(resnet152().total_ops() > resnet101().total_ops());
        // Width-halved MobileNetV1 is roughly a quarter of the MACs
        // (channels enter MAC counts twice on pointwise layers).
        let full = mobilenet_v1().total_ops() as f64;
        let half = mobilenet_v1_050().total_ops() as f64;
        assert!((0.15..0.5).contains(&(half / full)), "{}", half / full);
        // All are resolvable by name.
        for n in ["vgg19", "resnet34", "resnet101", "mobilenet_v1_050"] {
            assert!(by_name(n).is_some(), "{n}");
        }
    }
}
