//! The compute view of a graph: anchor work items with reduction layers
//! folded in.
//!
//! The paper's segmentation operates on convolution/fully-connected layers
//! (Figure 4 plots exactly the 26 conv layers of SqueezeNet; the AlexNet
//! case study uses "only Conv layer"). Pooling, residual adds and
//! concatenations carry no weights and negligible MACs, and real
//! accelerators fuse them with the adjacent convolution. [`Workload`]
//! performs that folding, producing one [`WorkItem`] per anchor layer with
//! the paper's `ops(l)` / `access(l)` constants attached.

use crate::graph::Graph;
use crate::layer::{LayerId, LayerKind};
use crate::shape::{Dtype, TensorShape};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A graph the workload fold cannot lower: a reduction layer fed by
/// tensors that no anchor (conv/FC) produces, so there is no work item to
/// host it. [`crate::validate::validate`] rejects the same graphs with a
/// richer diagnostic; this is the typed error for callers lowering
/// unvalidated graphs via [`Workload::try_from_graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// A residual `Add` with a non-anchor operand (or no operands).
    UnanchoredAdd {
        /// The offending layer's name.
        layer: String,
    },
    /// A `Concat` with an operand that is neither an anchor nor another
    /// concat.
    UnanchoredConcat {
        /// The offending layer's name.
        layer: String,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::UnanchoredAdd { layer } => {
                write!(f, "residual add `{layer}` must be fed by anchor layers")
            }
            WorkloadError::UnanchoredConcat { layer } => {
                write!(f, "concat `{layer}` must be fed by anchor layers")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

/// One unit of schedulable work: an anchor (conv/FC) layer plus any folded
/// reduction layers (pooling after it, residual adds into it, pooling on its
/// input stream).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkItem {
    /// Index of this item inside its [`Workload`].
    pub index: usize,
    /// Id of the anchor layer in the source graph.
    pub anchor: LayerId,
    /// Name of the anchor layer.
    pub name: String,
    /// MAC count (`ops(l)` in the paper).
    pub ops: u64,
    /// Weight bytes read from DRAM.
    pub w_bytes: u64,
    /// Bytes read from the network input tensor (nonzero only for entry
    /// items).
    pub extern_in_bytes: u64,
    /// Producing items and the bytes read from each: `(producer index,
    /// bytes)`.
    pub preds: Vec<(usize, u64)>,
    /// Bytes of the (post-fold) output feature map.
    pub out_bytes: u64,
    /// Shape streamed into the anchor computation.
    pub in_shape: TensorShape,
    /// Shape of the (post-fold) output.
    pub out_shape: TensorShape,
    /// Kernel extent of the anchor.
    pub kernel: usize,
    /// Stride of the anchor.
    pub stride: usize,
    /// Channel groups of the anchor (`in_c` for depthwise convolutions).
    pub groups: usize,
    /// `true` if the anchor is a fully-connected layer.
    pub is_fc: bool,
}

impl WorkItem {
    /// Total bytes read (input streams plus weights).
    pub fn read_bytes(&self) -> u64 {
        self.extern_in_bytes + self.preds.iter().map(|&(_, b)| b).sum::<u64>() + self.w_bytes
    }

    /// DRAM bytes under layerwise execution — `access(l)`.
    pub fn access(&self) -> u64 {
        self.read_bytes() + self.out_bytes
    }

    /// CTC ratio (MACs per DRAM byte) under layerwise execution.
    pub fn ctc(&self) -> f64 {
        self.ops as f64 / self.access() as f64
    }
}

/// Resolution of "what do you read when you read layer X's output".
#[derive(Debug, Clone)]
enum Source {
    /// A single work item's output.
    Item(usize),
    /// Several items' outputs viewed as one tensor (concat).
    Multi(Vec<usize>, u64),
    /// A forward-folded reduction: read these producers, total `bytes`.
    Folded(Vec<(usize, u64)>, u64),
}

/// The compute view of a [`Graph`]: a DAG of [`WorkItem`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    name: String,
    dtype: Dtype,
    items: Vec<WorkItem>,
}

impl Workload {
    /// Builds the compute view of `graph` by folding every non-anchor layer
    /// into an adjacent anchor.
    ///
    /// Folding rules:
    /// * pooling / global pooling whose producer is a single anchor is
    ///   folded *backward* (the anchor's output becomes the pooled tensor);
    /// * pooling fed by a concat or the network input is folded *forward*
    ///   (its consumer streams the pre-pool tensor and pools on the fly);
    /// * residual `Add` is folded into its latest producing anchor, which
    ///   gains the skip connection as an extra input stream;
    /// * `Concat` disappears: consumers read all concatenated producers.
    ///
    /// # Panics
    ///
    /// Panics on graphs [`try_from_graph`](Self::try_from_graph) rejects;
    /// zoo and builder-validated graphs never do.
    pub fn from_graph(graph: &Graph) -> Self {
        Self::try_from_graph(graph).expect("graph is fold-compatible")
    }

    /// Fallible form of [`from_graph`](Self::from_graph) for graphs that
    /// did not come from a validated source.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] when a reduction layer is not fed by
    /// anchor tensors, which leaves the fold with no host item.
    pub fn try_from_graph(graph: &Graph) -> Result<Self, WorkloadError> {
        let dtype = graph.dtype();
        let mut items: Vec<WorkItem> = Vec::new();
        let mut source: Vec<Source> = Vec::with_capacity(graph.len());

        // Resolve what reading `node`'s tensor means right now.
        fn resolve(
            source: &[Source],
            items: &[WorkItem],
            inputs: &[LayerId],
            input_tensor_bytes: u64,
        ) -> (Vec<(usize, u64)>, u64) {
            if inputs.is_empty() {
                return (Vec::new(), input_tensor_bytes);
            }
            let mut preds = Vec::new();
            let mut ext = 0u64;
            for &p in inputs {
                match &source[p.index()] {
                    Source::Item(i) => preds.push((*i, items[*i].out_bytes)),
                    Source::Multi(v, _total) => {
                        for &i in v {
                            preds.push((i, items[i].out_bytes));
                        }
                    }
                    Source::Folded(v, bytes) => {
                        // Any stream volume not covered by in-graph
                        // producers is read from the network input (e.g. a
                        // pool folded forward off the input tensor).
                        let covered: u64 = v.iter().map(|&(_, b)| b).sum();
                        ext += bytes.saturating_sub(covered);
                        preds.extend(v.iter().copied());
                    }
                }
            }
            (preds, ext)
        }

        let input_bytes = graph.input_shape().bytes(dtype);
        for layer in graph.layers() {
            match layer.kind {
                LayerKind::Conv {
                    kernel,
                    stride,
                    groups,
                    ..
                } => {
                    let (preds, ext) = resolve(&source, &items, &layer.inputs, input_bytes);
                    let idx = items.len();
                    items.push(WorkItem {
                        index: idx,
                        anchor: layer.id,
                        name: layer.name.clone(),
                        ops: layer.ops(),
                        w_bytes: layer.weight_bytes(dtype),
                        extern_in_bytes: ext,
                        preds,
                        out_bytes: layer.output_shape.bytes(dtype),
                        in_shape: layer.input_shape,
                        out_shape: layer.output_shape,
                        kernel,
                        stride,
                        groups,
                        is_fc: false,
                    });
                    source.push(Source::Item(idx));
                }
                LayerKind::Fc { .. } => {
                    let (preds, ext) = resolve(&source, &items, &layer.inputs, input_bytes);
                    let idx = items.len();
                    items.push(WorkItem {
                        index: idx,
                        anchor: layer.id,
                        name: layer.name.clone(),
                        ops: layer.ops(),
                        w_bytes: layer.weight_bytes(dtype),
                        extern_in_bytes: ext,
                        preds,
                        out_bytes: layer.output_shape.bytes(dtype),
                        in_shape: layer.input_shape,
                        out_shape: layer.output_shape,
                        kernel: 1,
                        stride: 1,
                        groups: 1,
                        is_fc: true,
                    });
                    source.push(Source::Item(idx));
                }
                LayerKind::Pool { .. } | LayerKind::GlobalAvgPool => {
                    let producer = layer.inputs.first().copied();
                    match producer.map(|p| source[p.index()].clone()) {
                        Some(Source::Item(i)) => {
                            // Backward fold: the anchor now emits the pooled
                            // tensor.
                            items[i].out_bytes = layer.output_shape.bytes(dtype);
                            items[i].out_shape = layer.output_shape;
                            source.push(Source::Item(i));
                        }
                        other => {
                            // Forward fold: consumers stream the pre-pool
                            // tensor.
                            let (preds, ext) = match other {
                                Some(Source::Multi(v, total)) => {
                                    let per = v.iter().map(|&i| (i, items[i].out_bytes)).collect();
                                    let _ = total;
                                    (per, 0)
                                }
                                Some(Source::Folded(v, _)) => (v, 0),
                                None => (Vec::new(), input_bytes),
                                Some(Source::Item(_)) => unreachable!(),
                            };
                            let bytes = layer.input_shape.bytes(dtype).max(ext);
                            source.push(Source::Folded(preds, bytes));
                        }
                    }
                }
                LayerKind::Add => {
                    // Fold into the latest producing anchor; the other
                    // operand becomes a skip-connection input stream.
                    let mut resolved: Vec<(usize, u64)> = Vec::new();
                    for &p in &layer.inputs {
                        match &source[p.index()] {
                            Source::Item(i) => resolved.push((*i, items[*i].out_bytes)),
                            _ => {
                                return Err(WorkloadError::UnanchoredAdd {
                                    layer: layer.name.clone(),
                                })
                            }
                        }
                    }
                    let host = match resolved.iter().map(|&(i, _)| i).max() {
                        Some(h) => h,
                        None => {
                            return Err(WorkloadError::UnanchoredAdd {
                                layer: layer.name.clone(),
                            })
                        }
                    };
                    // The skip operand is a genuine extra read of the
                    // producer's tensor (duplicate pred entries are allowed
                    // so the bytes are counted per read).
                    for &(p, b) in &resolved {
                        if p != host {
                            items[host].preds.push((p, b));
                        }
                    }
                    source.push(Source::Item(host));
                }
                LayerKind::Concat => {
                    let mut v = Vec::new();
                    for &p in &layer.inputs {
                        match &source[p.index()] {
                            Source::Item(i) => v.push(*i),
                            Source::Multi(inner, _) => v.extend(inner.iter().copied()),
                            _ => {
                                return Err(WorkloadError::UnanchoredConcat {
                                    layer: layer.name.clone(),
                                })
                            }
                        }
                    }
                    let total = layer.output_shape.bytes(dtype);
                    source.push(Source::Multi(v, total));
                }
            }
        }

        Ok(Self {
            name: graph.name().to_string(),
            dtype,
            items,
        })
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Element datatype.
    pub fn dtype(&self) -> Dtype {
        self.dtype
    }

    /// All work items in topological order.
    pub fn items(&self) -> &[WorkItem] {
        &self.items
    }

    /// Number of work items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if there are no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total MAC count.
    pub fn total_ops(&self) -> u64 {
        self.items.iter().map(|i| i.ops).sum()
    }

    /// Total DRAM bytes under layerwise execution.
    pub fn total_layerwise_access(&self) -> u64 {
        self.items.iter().map(WorkItem::access).sum()
    }

    /// Items that consume item `i`'s output.
    pub fn consumers(&self, i: usize) -> Vec<usize> {
        self.items
            .iter()
            .filter(|it| it.preds.iter().any(|&(p, _)| p == i))
            .map(|it| it.index)
            .collect()
    }

    /// DRAM bytes of a *pipelined* execution of the item set `members`
    /// (intra-set feature-map traffic is eliminated; weights, external
    /// inputs, and outputs consumed outside the set are still DRAM traffic).
    ///
    /// With `members` = all items this gives the full-pipeline access; with
    /// a segment's items it gives the paper's per-segment access used in the
    /// CTC objective (Eq. 5).
    pub fn pipelined_access(&self, members: &[usize]) -> u64 {
        let inset = {
            let mut v = vec![false; self.items.len()];
            for &m in members {
                v[m] = true;
            }
            v
        };
        let mut bytes = 0;
        for &m in members {
            let it = &self.items[m];
            bytes += it.w_bytes + it.extern_in_bytes;
            // Inputs produced outside the set are read from DRAM.
            for &(p, b) in &it.preds {
                if !inset[p] {
                    bytes += b;
                }
            }
            // Output written to DRAM if anyone outside the set (or nobody at
            // all — the network output) consumes it.
            let consumers = self.consumers(m);
            if consumers.is_empty() || consumers.iter().any(|&c| !inset[c]) {
                bytes += it.out_bytes;
            }
        }
        bytes
    }

    /// CTC ratio of the pipelined execution of `members`.
    pub fn pipelined_ctc(&self, members: &[usize]) -> f64 {
        let ops: u64 = members.iter().map(|&m| self.items[m].ops).sum();
        ops as f64 / self.pipelined_access(members) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::shape::{Dtype, TensorShape};

    fn chain() -> Graph {
        let mut b = GraphBuilder::new("chain", Dtype::Int8, TensorShape::new(3, 16, 16));
        let x = b.input();
        let c1 = b.conv("c1", x, 8, 3, 1, 1).unwrap();
        let p1 = b.max_pool("p1", c1, 2, 2);
        let c2 = b.conv("c2", p1, 16, 3, 1, 1).unwrap();
        let _f = b.fc("fc", c2, 10);
        b.finish()
    }

    #[test]
    fn pool_folds_backward() {
        let w = Workload::from_graph(&chain());
        assert_eq!(w.len(), 3);
        // c1's output became the pooled 8x8x8 tensor.
        assert_eq!(w.items()[0].out_shape, TensorShape::new(8, 8, 8));
        assert_eq!(w.items()[0].out_bytes, 8 * 8 * 8);
        // c2 reads it.
        assert_eq!(w.items()[1].preds, vec![(0, 8 * 8 * 8)]);
        // fc reads c2.
        assert!(w.items()[2].is_fc);
    }

    #[test]
    fn entry_item_reads_network_input() {
        let w = Workload::from_graph(&chain());
        assert_eq!(w.items()[0].extern_in_bytes, 3 * 16 * 16);
        assert!(w.items()[0].preds.is_empty());
    }

    #[test]
    fn residual_folds_into_latest_anchor() {
        let mut b = GraphBuilder::new("res", Dtype::Int8, TensorShape::new(4, 8, 8));
        let x = b.input();
        let c1 = b.conv("c1", x, 4, 3, 1, 1).unwrap();
        let c2 = b.conv("c2", c1, 4, 3, 1, 1).unwrap();
        let s = b.add("add", c1, c2).unwrap();
        let _c3 = b.conv("c3", s, 4, 3, 1, 1).unwrap();
        let w = Workload::from_graph(&b.finish());
        assert_eq!(w.len(), 3);
        // c2 hosts the add and gains c1 as a skip input.
        let c2i = &w.items()[1];
        assert!(c2i.preds.iter().any(|&(p, _)| p == 0));
        assert_eq!(c2i.preds.len(), 1 + 1);
        // c3 reads only c2 (the add host).
        assert_eq!(w.items()[2].preds.len(), 1);
        assert_eq!(w.items()[2].preds[0].0, 1);
    }

    #[test]
    fn concat_consumers_read_all_parts() {
        let mut b = GraphBuilder::new("cat", Dtype::Int8, TensorShape::new(4, 8, 8));
        let x = b.input();
        let a = b.conv("a", x, 4, 1, 1, 0).unwrap();
        let c = b.conv("c", x, 6, 1, 1, 0).unwrap();
        let cat = b.concat("cat", &[a, c]).unwrap();
        let _d = b.conv("d", cat, 8, 3, 1, 1).unwrap();
        let w = Workload::from_graph(&b.finish());
        assert_eq!(w.len(), 3);
        let d = &w.items()[2];
        assert_eq!(d.preds.len(), 2);
        assert_eq!(d.in_shape.c, 10);
    }

    #[test]
    fn pool_after_concat_folds_forward() {
        let mut b = GraphBuilder::new("cpc", Dtype::Int8, TensorShape::new(4, 8, 8));
        let x = b.input();
        let a = b.conv("a", x, 4, 1, 1, 0).unwrap();
        let c = b.conv("c", x, 4, 1, 1, 0).unwrap();
        let cat = b.concat("cat", &[a, c]).unwrap();
        let p = b.max_pool("p", cat, 2, 2);
        let _d = b.conv("d", p, 8, 3, 1, 1).unwrap();
        let w = Workload::from_graph(&b.finish());
        assert_eq!(w.len(), 3);
        // d reads both concat parts (pre-pool tensors stream through it).
        let d = &w.items()[2];
        assert_eq!(d.preds.len(), 2);
        // d's anchor input shape is the post-pool tensor.
        assert_eq!(d.in_shape, TensorShape::new(8, 4, 4));
    }

    #[test]
    fn pipelined_access_eliminates_internal_fmaps() {
        let w = Workload::from_graph(&chain());
        let all: Vec<usize> = (0..w.len()).collect();
        let pipe = w.pipelined_access(&all);
        let layerwise = w.total_layerwise_access();
        assert!(pipe < layerwise);
        // Pipelined = input + all weights + final output.
        let expect: u64 = w.items()[0].extern_in_bytes
            + w.items().iter().map(|i| i.w_bytes).sum::<u64>()
            + w.items().last().unwrap().out_bytes;
        assert_eq!(pipe, expect);
    }

    #[test]
    fn pipelined_ctc_never_below_layerwise() {
        let w = Workload::from_graph(&chain());
        let all: Vec<usize> = (0..w.len()).collect();
        let layerwise = w.total_ops() as f64 / w.total_layerwise_access() as f64;
        assert!(w.pipelined_ctc(&all) >= layerwise);
    }

    #[test]
    fn singleton_segment_matches_layerwise_access() {
        let w = Workload::from_graph(&chain());
        for i in 0..w.len() {
            assert_eq!(w.pipelined_access(&[i]), w.items()[i].access());
        }
    }

    #[test]
    fn consumers_inverse_of_preds() {
        let w = Workload::from_graph(&chain());
        assert_eq!(w.consumers(0), vec![1]);
        assert_eq!(w.consumers(2), Vec::<usize>::new());
    }
}
