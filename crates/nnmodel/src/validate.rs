//! Pre-flight semantic validation of a [`Graph`].
//!
//! The segmentation engine and the cost model assume structurally sound
//! graphs: dense topologically-ordered layer ids (which is what makes the
//! graph a DAG), per-edge shape and channel consistency, positive
//! geometry, and fold-compatible reduction wiring. The builder upholds
//! these by construction, but graphs can also arrive from
//! [`crate::spec`] files or future external importers; validating up
//! front turns a deep engine panic into a `file:line`-quality diagnostic.
//!
//! This is Layer 2 of the repo's static-analysis story (see
//! `DESIGN.md` §"Static analysis & invariants"): `cargo run -p lint`
//! validates the whole model zoo, and `autoseg::AutoSeg::run` calls
//! [`validate`] before searching.

use crate::graph::Graph;
use crate::layer::{LayerId, LayerKind};
use crate::shape::TensorShape;
use std::fmt;

/// A structural defect found in a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// The graph has no layers.
    Empty,
    /// A layer's id does not match its position (ids must be dense and
    /// topologically ordered).
    MisplacedId {
        /// Position in the layer list.
        position: usize,
        /// The id stored there.
        found: LayerId,
    },
    /// A layer consumes a tensor produced at or after its own position,
    /// which would make the graph cyclic.
    ForwardReference {
        /// The consuming layer's name.
        layer: String,
        /// The offending input id.
        input: LayerId,
    },
    /// A layer's recorded input shape disagrees with its producer's
    /// output shape (or the network input shape for entry layers).
    EdgeShapeMismatch {
        /// The consuming layer's name.
        layer: String,
        /// Shape the producer emits.
        produced: TensorShape,
        /// Shape the layer recorded.
        recorded: TensorShape,
    },
    /// Zero kernel, stride or tensor dimension.
    DegenerateGeometry {
        /// The offending layer's name.
        layer: String,
        /// What collapsed.
        what: &'static str,
    },
    /// The kernel (plus padding) does not fit the input extent.
    KernelExceedsInput {
        /// The offending layer's name.
        layer: String,
    },
    /// Grouped convolution with channels not divisible by the group
    /// count.
    BadGroups {
        /// The offending layer's name.
        layer: String,
        /// Input channels.
        in_c: usize,
        /// Output channels.
        out_c: usize,
        /// Group count.
        groups: usize,
    },
    /// A layer's output shape disagrees with what its kind and input
    /// shape imply.
    OutputShapeMismatch {
        /// The offending layer's name.
        layer: String,
        /// Shape the operator implies.
        expected: TensorShape,
        /// Shape the layer recorded.
        recorded: TensorShape,
    },
    /// A residual `Add` with fewer than two operands or operand shapes
    /// that disagree.
    BadAdd {
        /// The offending layer's name.
        layer: String,
    },
    /// A `Concat` whose parts disagree on spatial extent or whose
    /// channels don't sum to the recorded output.
    BadConcat {
        /// The offending layer's name.
        layer: String,
    },
    /// A reduction (`Add`) fed by something the workload fold cannot
    /// anchor (e.g. an `Add` directly off the network input).
    UnanchoredReduction {
        /// The offending layer's name.
        layer: String,
    },
    /// A layer unreachable from the network input.
    Unreachable {
        /// The offending layer's name.
        layer: String,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::Empty => write!(f, "graph has no layers"),
            ValidateError::MisplacedId { position, found } => {
                write!(f, "layer at position {position} carries id {found}")
            }
            ValidateError::ForwardReference { layer, input } => {
                write!(f, "layer {layer}: consumes {input}, which is not an earlier layer")
            }
            ValidateError::EdgeShapeMismatch {
                layer,
                produced,
                recorded,
            } => write!(
                f,
                "layer {layer}: producer emits {produced} but layer records input {recorded}"
            ),
            ValidateError::DegenerateGeometry { layer, what } => {
                write!(f, "layer {layer}: {what} is zero")
            }
            ValidateError::KernelExceedsInput { layer } => {
                write!(f, "layer {layer}: kernel exceeds padded input extent")
            }
            ValidateError::BadGroups {
                layer,
                in_c,
                out_c,
                groups,
            } => write!(
                f,
                "layer {layer}: {groups} groups do not divide channels {in_c} -> {out_c}"
            ),
            ValidateError::OutputShapeMismatch {
                layer,
                expected,
                recorded,
            } => write!(
                f,
                "layer {layer}: operator implies output {expected} but layer records {recorded}"
            ),
            ValidateError::BadAdd { layer } => {
                write!(f, "layer {layer}: residual add needs >= 2 same-shape operands")
            }
            ValidateError::BadConcat { layer } => write!(
                f,
                "layer {layer}: concat parts disagree spatially or channels don't sum"
            ),
            ValidateError::UnanchoredReduction { layer } => write!(
                f,
                "layer {layer}: reduction is not fed by anchor (conv/FC) tensors, so the \
                 workload fold cannot place it"
            ),
            ValidateError::Unreachable { layer } => {
                write!(f, "layer {layer}: unreachable from the network input")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// What a layer's output tensor resolves to under the workload fold —
/// mirrors `Workload::from_graph` so validation rejects exactly the
/// graphs the fold cannot handle.
#[derive(Clone, Copy, PartialEq, Eq)]
enum FoldKind {
    /// A single anchor's output (conv/FC, or a pool folded backward).
    Anchor,
    /// Several anchors viewed as one tensor (concat).
    Multi,
    /// A forward-folded stream (pool off a concat or the input).
    Stream,
}

/// Validates `graph`: DAG ordering, per-edge shape/channel consistency,
/// operator geometry, fold compatibility and reachability of every layer
/// from the network input.
///
/// # Errors
///
/// The first [`ValidateError`] encountered, in topological order.
pub fn validate(graph: &Graph) -> Result<(), ValidateError> {
    if graph.is_empty() {
        return Err(ValidateError::Empty);
    }
    let layers = graph.layers();
    let mut fold: Vec<FoldKind> = Vec::with_capacity(layers.len());
    for (position, layer) in layers.iter().enumerate() {
        let name = || layer.name.clone();
        if layer.id.index() != position {
            return Err(ValidateError::MisplacedId {
                position,
                found: layer.id,
            });
        }
        // Acyclicity: inputs must reference strictly earlier layers.
        for &input in &layer.inputs {
            if input.index() >= position {
                return Err(ValidateError::ForwardReference {
                    layer: name(),
                    input,
                });
            }
        }
        // Edge consistency: the producer's output is what this layer
        // records as input (concat checks per part below).
        let produced = |id: LayerId| layers[id.index()].output_shape;
        if !matches!(layer.kind, LayerKind::Concat) {
            let upstream = layer
                .inputs
                .first()
                .map(|&p| produced(p))
                .unwrap_or_else(|| graph.input_shape());
            if upstream != layer.input_shape {
                return Err(ValidateError::EdgeShapeMismatch {
                    layer: name(),
                    produced: upstream,
                    recorded: layer.input_shape,
                });
            }
        }
        for shape in [layer.input_shape, layer.output_shape] {
            if shape.c == 0 || shape.h == 0 || shape.w == 0 {
                return Err(ValidateError::DegenerateGeometry {
                    layer: name(),
                    what: "a tensor dimension",
                });
            }
        }
        // Operator geometry and output-shape consistency.
        let expect_out = match layer.kind {
            LayerKind::Conv {
                out_c,
                kernel,
                stride,
                pad,
                groups,
            } => {
                if kernel == 0 || stride == 0 {
                    return Err(ValidateError::DegenerateGeometry {
                        layer: name(),
                        what: "kernel or stride",
                    });
                }
                if out_c == 0 {
                    return Err(ValidateError::DegenerateGeometry {
                        layer: name(),
                        what: "output channel count",
                    });
                }
                if groups == 0 || layer.input_shape.c % groups != 0 || out_c % groups != 0 {
                    return Err(ValidateError::BadGroups {
                        layer: name(),
                        in_c: layer.input_shape.c,
                        out_c,
                        groups,
                    });
                }
                TensorShape::new(
                    out_c,
                    checked_out_dim(layer.input_shape.h, kernel, stride, pad)
                        .ok_or_else(|| ValidateError::KernelExceedsInput { layer: name() })?,
                    checked_out_dim(layer.input_shape.w, kernel, stride, pad)
                        .ok_or_else(|| ValidateError::KernelExceedsInput { layer: name() })?,
                )
            }
            LayerKind::Pool {
                kernel, stride, pad, ..
            } => {
                if kernel == 0 || stride == 0 {
                    return Err(ValidateError::DegenerateGeometry {
                        layer: name(),
                        what: "kernel or stride",
                    });
                }
                TensorShape::new(
                    layer.input_shape.c,
                    checked_out_dim(layer.input_shape.h, kernel, stride, pad)
                        .ok_or_else(|| ValidateError::KernelExceedsInput { layer: name() })?,
                    checked_out_dim(layer.input_shape.w, kernel, stride, pad)
                        .ok_or_else(|| ValidateError::KernelExceedsInput { layer: name() })?,
                )
            }
            LayerKind::GlobalAvgPool => TensorShape::vector(layer.input_shape.c),
            LayerKind::Fc { out } => {
                if out == 0 {
                    return Err(ValidateError::DegenerateGeometry {
                        layer: name(),
                        what: "output feature count",
                    });
                }
                TensorShape::vector(out)
            }
            LayerKind::Add => {
                if layer.inputs.len() < 2 {
                    return Err(ValidateError::BadAdd { layer: name() });
                }
                let first = produced(layer.inputs[0]);
                if layer.inputs.iter().any(|&p| produced(p) != first) {
                    return Err(ValidateError::BadAdd { layer: name() });
                }
                first
            }
            LayerKind::Concat => {
                if layer.inputs.len() < 2 {
                    return Err(ValidateError::BadConcat { layer: name() });
                }
                let first = produced(layer.inputs[0]);
                let mut c = 0usize;
                for &p in &layer.inputs {
                    let s = produced(p);
                    if (s.h, s.w) != (first.h, first.w) {
                        return Err(ValidateError::BadConcat { layer: name() });
                    }
                    c += s.c;
                }
                TensorShape::new(c, first.h, first.w)
            }
        };
        if expect_out != layer.output_shape {
            return Err(ValidateError::OutputShapeMismatch {
                layer: name(),
                expected: expect_out,
                recorded: layer.output_shape,
            });
        }
        // Fold compatibility, mirroring `Workload::from_graph`.
        let kind_of = |id: LayerId| fold[id.index()];
        let fk = match layer.kind {
            LayerKind::Conv { .. } | LayerKind::Fc { .. } => FoldKind::Anchor,
            LayerKind::Pool { .. } | LayerKind::GlobalAvgPool => match layer.inputs.first() {
                Some(&p) if kind_of(p) == FoldKind::Anchor => FoldKind::Anchor,
                _ => FoldKind::Stream,
            },
            LayerKind::Add => {
                if layer.inputs.iter().any(|&p| kind_of(p) != FoldKind::Anchor) {
                    return Err(ValidateError::UnanchoredReduction { layer: name() });
                }
                FoldKind::Anchor
            }
            LayerKind::Concat => {
                if layer
                    .inputs
                    .iter()
                    .any(|&p| kind_of(p) == FoldKind::Stream)
                {
                    return Err(ValidateError::UnanchoredReduction { layer: name() });
                }
                FoldKind::Multi
            }
        };
        fold.push(fk);
    }
    // Reachability: flood forward from entry layers (those reading the
    // network input); every layer — and so every network output — must be
    // reached.
    let mut reached = vec![false; layers.len()];
    for layer in layers {
        let from_input = layer.inputs.is_empty();
        let from_reached = layer.inputs.iter().any(|&p| reached[p.index()]);
        if from_input || from_reached {
            reached[layer.id.index()] = true;
        }
    }
    if let Some(position) = reached.iter().position(|&r| !r) {
        return Err(ValidateError::Unreachable {
            layer: layers[position].name.clone(),
        });
    }
    Ok(())
}

/// `conv_out_dim` with failure instead of panic: `None` when the kernel
/// does not fit the padded input or the result collapses to zero.
fn checked_out_dim(input: usize, kernel: usize, stride: usize, pad: usize) -> Option<usize> {
    let padded = input + 2 * pad;
    if kernel == 0 || stride == 0 || kernel > padded {
        return None;
    }
    Some((padded - kernel) / stride + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::shape::Dtype;
    use crate::zoo;

    fn tiny() -> Graph {
        let mut b = GraphBuilder::new("t", Dtype::Int8, TensorShape::new(3, 8, 8));
        let x = b.input();
        let c = b.conv("c", x, 4, 3, 1, 1).expect("valid conv");
        let _p = b.max_pool("p", c, 2, 2);
        b.finish()
    }

    #[test]
    fn builder_graphs_pass() {
        validate(&tiny()).expect("builder output is valid");
        validate(&zoo::squeezenet1_0()).expect("zoo model is valid");
    }

    #[test]
    fn empty_graph_rejected() {
        let g = GraphBuilder::new("e", Dtype::Int8, TensorShape::new(3, 8, 8)).finish();
        assert_eq!(validate(&g), Err(ValidateError::Empty));
    }

    #[test]
    fn unanchored_add_rejected() {
        // An Add fed by a pool folded forward off the network input has no
        // anchor to host it — exactly the case the workload fold used to
        // panic on.
        let mut b = GraphBuilder::new("bad", Dtype::Int8, TensorShape::new(4, 8, 8));
        let x = b.input();
        let p = b.max_pool("p", x, 2, 2);
        let c = b.conv("c", p, 4, 1, 1, 0).expect("valid conv");
        let c2 = b.conv("c2", c, 4, 1, 1, 0).expect("valid conv");
        let p2 = b.max_pool("p2", x, 2, 2);
        let _s = b.add("s", c2, p2);
        // `add` on mismatched sources errors in the builder only for
        // shape; wire shapes to agree so only anchoring is at issue.
        let g = b.finish();
        let _ = c2;
        assert!(matches!(
            validate(&g),
            Err(ValidateError::UnanchoredReduction { .. }) | Err(ValidateError::BadAdd { .. })
        ));
    }

    #[test]
    fn reachability_check_fires_on_orphans() {
        // Hand-assemble a graph with an orphan by serializing a valid one
        // is overkill — instead check the reachability logic directly on a
        // builder graph (all reachable).
        validate(&zoo::resnet18()).expect("resnet18 fully reachable");
    }
}
