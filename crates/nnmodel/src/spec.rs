//! A small line-oriented text format for defining custom models — so
//! downstream users (and the `spa-gen` CLI) can feed AutoSeg a network
//! without writing Rust.
//!
//! # Format
//!
//! One directive per line; `#` starts a comment. The first directive must
//! be `input C H W`. Every layer directive starts with an op keyword and a
//! unique layer name; the layer reads the *previous* layer by default, or
//! an explicit producer with a trailing `from=<name>` (two `from=`s for
//! `add`; two or more for `concat`).
//!
//! ```text
//! # a tiny fire-style model
//! input 3 32 32
//! conv     stem     16 3 2 1
//! conv     squeeze   4 1 1 0
//! conv     e1        8 1 1 0
//! conv     e3        8 3 1 1  from=squeeze
//! concat   cat      from=e1 from=e3
//! dwconv   dw        3 1 1
//! gap      pool
//! fc       head     10
//! ```
//!
//! | directive | arguments |
//! |---|---|
//! | `input` | `C H W` |
//! | `conv` | `name out_c kernel stride pad [from=..]` |
//! | `gconv` | `name out_c kernel stride pad groups [from=..]` |
//! | `dwconv` | `name kernel stride pad [from=..]` |
//! | `maxpool` / `avgpool` | `name kernel stride pad [from=..]` |
//! | `gap` | `name [from=..]` |
//! | `fc` | `name out [from=..]` |
//! | `add` | `name from=a from=b` |
//! | `concat` | `name from=a from=b [from=c ...]` |

use crate::graph::{Graph, GraphBuilder, GraphError, NodeId};
use crate::layer::PoolKind;
use crate::shape::{Dtype, TensorShape};
use std::collections::BTreeMap;
use std::fmt;

/// Parse failure, with the offending 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The spec did not begin with an `input` directive.
    MissingInput,
    /// Unknown op keyword.
    UnknownOp {
        /// Line number.
        line: usize,
        /// The keyword found.
        op: String,
    },
    /// Wrong argument count or unparsable number.
    BadArgs {
        /// Line number.
        line: usize,
        /// What was expected.
        expected: &'static str,
    },
    /// A `from=` target that was never defined.
    UnknownLayer {
        /// Line number.
        line: usize,
        /// The missing name.
        name: String,
    },
    /// Two layers share a name.
    DuplicateName {
        /// Line number.
        line: usize,
        /// The duplicated name.
        name: String,
    },
    /// The graph builder rejected the layer (shape mismatch etc.).
    Graph {
        /// Line number.
        line: usize,
        /// Underlying error.
        source: GraphError,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::MissingInput => write!(f, "spec must start with `input C H W`"),
            SpecError::UnknownOp { line, op } => write!(f, "line {line}: unknown op `{op}`"),
            SpecError::BadArgs { line, expected } => {
                write!(f, "line {line}: expected {expected}")
            }
            SpecError::UnknownLayer { line, name } => {
                write!(f, "line {line}: unknown layer `{name}`")
            }
            SpecError::DuplicateName { line, name } => {
                write!(f, "line {line}: duplicate layer name `{name}`")
            }
            SpecError::Graph { line, source } => write!(f, "line {line}: {source}"),
        }
    }
}

impl std::error::Error for SpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpecError::Graph { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Parses a model spec (see the module docs for the format).
///
/// # Errors
///
/// A [`SpecError`] identifying the offending line.
pub fn parse_spec(name: &str, text: &str) -> Result<Graph, SpecError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.split('#').next().unwrap_or("").trim()))
        .filter(|(_, l)| !l.is_empty());

    // Input directive.
    let (first_no, first) = lines.next().ok_or(SpecError::MissingInput)?;
    let toks: Vec<&str> = first.split_whitespace().collect();
    if toks.len() != 4 || toks[0] != "input" {
        return Err(SpecError::MissingInput);
    }
    let dims: Vec<usize> = toks[1..]
        .iter()
        .map(|t| t.parse())
        .collect::<Result<_, _>>()
        .map_err(|_| SpecError::BadArgs {
            line: first_no,
            expected: "input C H W",
        })?;
    let mut b = GraphBuilder::new(name, Dtype::Int8, TensorShape::new(dims[0], dims[1], dims[2]));
    let mut by_name: BTreeMap<String, NodeId> = BTreeMap::new();
    let mut prev = b.input();

    for (line, raw) in lines {
        let mut toks: Vec<&str> = raw.split_whitespace().collect();
        let op = toks.remove(0).to_lowercase();
        // Split off `from=` references.
        let mut froms: Vec<&str> = Vec::new();
        toks.retain(|t| {
            if let Some(f) = t.strip_prefix("from=") {
                froms.push(f);
                false
            } else {
                true
            }
        });
        let lookup = |n: &str| -> Result<NodeId, SpecError> {
            by_name.get(n).copied().ok_or_else(|| SpecError::UnknownLayer {
                line,
                name: n.to_string(),
            })
        };
        let from = match froms.first() {
            Some(f) => lookup(f)?,
            None => prev,
        };
        let lname = toks
            .first()
            .ok_or(SpecError::BadArgs {
                line,
                expected: "a layer name",
            })?
            .to_string();
        if by_name.contains_key(&lname) {
            return Err(SpecError::DuplicateName { line, name: lname });
        }
        let nums: Vec<usize> = toks[1..]
            .iter()
            .map(|t| t.parse())
            .collect::<Result<_, _>>()
            .map_err(|_| SpecError::BadArgs {
                line,
                expected: "numeric arguments",
            })?;
        let need = |n: usize, what: &'static str| -> Result<(), SpecError> {
            if nums.len() == n {
                Ok(())
            } else {
                Err(SpecError::BadArgs {
                    line,
                    expected: what,
                })
            }
        };
        let gerr = |source: GraphError| SpecError::Graph { line, source };
        let node = match op.as_str() {
            "conv" => {
                need(4, "conv name out_c kernel stride pad")?;
                b.conv(&lname, from, nums[0], nums[1], nums[2], nums[3])
                    .map_err(gerr)?
            }
            "gconv" => {
                need(5, "gconv name out_c kernel stride pad groups")?;
                b.conv_grouped(&lname, from, nums[0], nums[1], nums[2], nums[3], nums[4])
                    .map_err(gerr)?
            }
            "dwconv" => {
                need(3, "dwconv name kernel stride pad")?;
                b.dw_conv(&lname, from, nums[0], nums[1], nums[2])
                    .map_err(gerr)?
            }
            "maxpool" | "avgpool" => {
                need(3, "pool name kernel stride pad")?;
                let kind = if op == "maxpool" {
                    PoolKind::Max
                } else {
                    PoolKind::Avg
                };
                b.pool(&lname, from, nums[0], nums[1], nums[2], kind)
            }
            "gap" => {
                need(0, "gap name")?;
                b.global_avg_pool(&lname, from)
            }
            "fc" => {
                need(1, "fc name out")?;
                b.fc(&lname, from, nums[0])
            }
            "add" => {
                need(0, "add name from=a from=b")?;
                if froms.len() != 2 {
                    return Err(SpecError::BadArgs {
                        line,
                        expected: "add with exactly two from= references",
                    });
                }
                let a = lookup(froms[0])?;
                let c = lookup(froms[1])?;
                b.add(&lname, a, c).map_err(gerr)?
            }
            "concat" => {
                need(0, "concat name from=a from=b ...")?;
                if froms.len() < 2 {
                    return Err(SpecError::BadArgs {
                        line,
                        expected: "concat with two or more from= references",
                    });
                }
                let parts: Vec<NodeId> = froms
                    .iter()
                    .map(|f| lookup(f))
                    .collect::<Result<_, _>>()?;
                b.concat(&lname, &parts).map_err(gerr)?
            }
            other => {
                return Err(SpecError::UnknownOp {
                    line,
                    op: other.to_string(),
                })
            }
        };
        by_name.insert(lname, node);
        prev = node;
    }
    Ok(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;

    const FIRE: &str = "\
# a tiny fire-style model
input 3 32 32
conv     stem     16 3 2 1
conv     squeeze   4 1 1 0
conv     e1        8 1 1 0
conv     e3        8 3 1 1  from=squeeze
concat   cat      from=e1 from=e3
dwconv   dw        3 1 1
gap      pool
fc       head     10
";

    #[test]
    fn parses_branchy_model() {
        let g = parse_spec("fire", FIRE).unwrap();
        assert_eq!(g.name(), "fire");
        // stem, squeeze, e1, e3, concat, dw, gap, fc = 8 layers.
        assert_eq!(g.len(), 8);
        let w = Workload::from_graph(&g);
        // Anchors: stem, squeeze, e1, e3, dw, fc.
        assert_eq!(w.len(), 6);
        // The concat consumers read both expand branches.
        let dw = w.items().iter().find(|i| i.name == "dw").unwrap();
        assert_eq!(dw.preds.len(), 2);
    }

    #[test]
    fn residual_spec() {
        let g = parse_spec(
            "res",
            "input 4 16 16\nconv a 4 3 1 1\nconv b 4 3 1 1\nadd s from=a from=b\nconv c 8 3 2 1\n",
        )
        .unwrap();
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn error_reporting_is_precise() {
        let e = parse_spec("x", "input 3 8 8\nconv a 4 3 1\n").unwrap_err();
        assert!(matches!(e, SpecError::BadArgs { line: 2, .. }), "{e}");

        let e = parse_spec("x", "input 3 8 8\nwarp a 1\n").unwrap_err();
        assert!(matches!(e, SpecError::UnknownOp { line: 2, .. }));

        let e = parse_spec("x", "input 3 8 8\nconv a 4 3 1 1\nconv a 4 3 1 1\n").unwrap_err();
        assert!(matches!(e, SpecError::DuplicateName { line: 3, .. }));

        let e = parse_spec("x", "input 3 8 8\nconv a 4 3 1 1 from=ghost\n").unwrap_err();
        assert!(matches!(e, SpecError::UnknownLayer { line: 2, .. }));

        let e = parse_spec("x", "conv a 4 3 1 1\n").unwrap_err();
        assert_eq!(e, SpecError::MissingInput);
    }

    #[test]
    fn graph_errors_carry_line_numbers() {
        // Elementwise add of mismatched shapes.
        let e = parse_spec(
            "x",
            "input 3 8 8\nconv a 4 3 1 1\nconv b 4 3 2 1\nadd s from=a from=b\n",
        )
        .unwrap_err();
        assert!(matches!(e, SpecError::Graph { line: 4, .. }), "{e}");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let g = parse_spec("x", "\n# head\ninput 3 8 8\n\nconv a 4 3 1 1 # tail\n").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn spec_models_run_through_the_full_flow() {
        let g = parse_spec("fire", FIRE).unwrap();
        let w = Workload::from_graph(&g);
        assert!(w.total_ops() > 0);
        let all: Vec<usize> = (0..w.len()).collect();
        assert!(w.pipelined_access(&all) < w.total_layerwise_access());
    }
}
