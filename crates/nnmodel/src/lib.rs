//! DNN graph intermediate representation and cost accounting for
//! DeepBurning-SEG.
//!
//! This crate provides the workload side of the AutoSeg co-design flow:
//!
//! * [`Graph`] — a directed acyclic graph of DNN [`Layer`]s built with
//!   [`GraphBuilder`], with exact shape inference for every layer.
//! * [`Workload`] — the *compute view* of a graph used by the segmentation
//!   engine: convolution/fully-connected anchors with pooling, residual adds
//!   and concatenations folded in, each carrying the paper's two constants
//!   `ops(l)` (MAC count) and `access(l)` (DRAM bytes under layerwise
//!   execution).
//! * [`zoo`] — the nine benchmark models evaluated in the paper (AlexNet,
//!   VGG16, MobileNetV1/V2, ResNet18/50/152, SqueezeNet1.0, InceptionV1)
//!   plus EfficientNet-B0 used by the motivation figures.
//! * [`analysis`] — CTC-ratio analytics (Figures 3–5 of the paper).
//! * [`validate`] — pre-flight structural validation (DAG ordering,
//!   per-edge shape consistency, reachability) so malformed graphs fail
//!   with a diagnostic instead of panicking inside the engine.
//!
//! # Example
//!
//! ```
//! use nnmodel::{zoo, analysis};
//!
//! let net = zoo::squeezenet1_0();
//! let workload = nnmodel::Workload::from_graph(&net);
//! // SqueezeNet1.0 has 26 convolution anchors (conv1 + 8 fire modules x 3
//! // convs + conv10), exactly the units Figure 4 of the paper plots.
//! assert_eq!(workload.len(), 26);
//! let ctc = analysis::layerwise_ctc(&workload);
//! assert!(ctc > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
mod graph;
mod layer;
mod shape;
pub mod spec;
pub mod validate;
mod workload;
pub mod zoo;

pub use graph::{Graph, GraphBuilder, GraphError, NodeId};
pub use layer::{Layer, LayerId, LayerKind, PoolKind};
pub use shape::{Dtype, TensorShape};
pub use spec::{parse_spec, SpecError};
pub use validate::{validate, ValidateError};
pub use workload::{WorkItem, Workload, WorkloadError};
