//! CTC-ratio analytics — the workload characterization of Section II of the
//! paper (Figures 3, 4 and 5).
//!
//! The *computation-to-communication* (CTC) ratio measures MAC operations
//! per DRAM byte. Layerwise (no-pipeline) execution pays DRAM traffic for
//! every intermediate feature map; pipelined execution forwards them
//! producer-to-consumer on chip, so segmenting a model raises its CTC ratio
//! toward the full-pipeline bound.

use crate::workload::Workload;

/// CTC ratio of each work item under layerwise execution (the bars of
/// Figure 4, "no-pipeline").
pub fn per_item_ctc(w: &Workload) -> Vec<f64> {
    w.items().iter().map(|i| i.ctc()).collect()
}

/// Aggregate CTC ratio of the whole model under layerwise execution.
///
/// ```
/// # use nnmodel::{zoo, Workload, analysis};
/// let w = Workload::from_graph(&zoo::squeezenet1_0());
/// let lw = analysis::layerwise_ctc(&w);
/// let fp = analysis::full_pipeline_ctc(&w);
/// assert!(fp > lw, "pipelining must raise the CTC ratio");
/// ```
pub fn layerwise_ctc(w: &Workload) -> f64 {
    w.total_ops() as f64 / w.total_layerwise_access() as f64
}

/// CTC ratio when the *entire* model runs as one hardware pipeline (the
/// "full-pipeline" bars of Figure 3): only the network input, all weights
/// and the final output touch DRAM.
pub fn full_pipeline_ctc(w: &Workload) -> f64 {
    let all: Vec<usize> = (0..w.len()).collect();
    w.pipelined_ctc(&all)
}

/// Splits the items into contiguous segments of `per_seg` items each (the
/// naive "evenly divide" segmentation the motivation figures use; the last
/// segment absorbs the remainder if it would otherwise be shorter than
/// `per_seg / 2`).
///
/// # Panics
///
/// Panics if `per_seg == 0`.
pub fn even_segments(w: &Workload, per_seg: usize) -> Vec<Vec<usize>> {
    assert!(per_seg > 0, "per_seg must be positive");
    let n = w.len();
    let mut segs: Vec<Vec<usize>> = (0..n)
        .collect::<Vec<_>>()
        .chunks(per_seg)
        .map(|c| c.to_vec())
        .collect();
    if segs.len() >= 2 && segs.last().map_or(0, Vec::len) < per_seg.div_ceil(2) {
        let tail = segs.pop().expect("checked non-empty");
        segs.last_mut().expect("checked len >= 2").extend(tail);
    }
    segs
}

/// Total MACs of a segment.
pub fn segment_ops(w: &Workload, seg: &[usize]) -> u64 {
    seg.iter().map(|&i| w.items()[i].ops).sum()
}

/// CTC ratio of each segment under segment-grained pipelining.
pub fn segment_ctcs(w: &Workload, segs: &[Vec<usize>]) -> Vec<f64> {
    segs.iter().map(|s| w.pipelined_ctc(s)).collect()
}

/// The minimum segment CTC — the quantity the paper's MIP objective
/// maximizes (Eq. 5): the memory-bound-ness of a segment-pipelined design
/// is governed by its worst segment.
pub fn min_segment_ctc(w: &Workload, segs: &[Vec<usize>]) -> f64 {
    segment_ctcs(w, segs)
        .into_iter()
        .fold(f64::INFINITY, f64::min)
}

/// Aggregate CTC of a segment-pipelined execution (total ops over total
/// DRAM bytes across segments) — the "segment-grained" bars of Figure 3.
pub fn segmented_ctc(w: &Workload, segs: &[Vec<usize>]) -> f64 {
    let bytes: u64 = segs.iter().map(|s| w.pipelined_access(s)).sum();
    w.total_ops() as f64 / bytes as f64
}

/// Normalized per-PU operation distribution of a segment given a PU
/// assignment (`assign[k]` is the PU of segment item `seg[k]`) — the paper's
/// `V_s` vector (Eq. 10).
pub fn ops_distribution(w: &Workload, seg: &[usize], assign: &[usize], n_pu: usize) -> Vec<f64> {
    assert_eq!(seg.len(), assign.len(), "one PU per segment item");
    let mut per_pu = vec![0u64; n_pu];
    for (&item, &pu) in seg.iter().zip(assign) {
        per_pu[pu] += w.items()[item].ops;
    }
    let total: u64 = per_pu.iter().sum();
    if total == 0 {
        return vec![0.0; n_pu];
    }
    per_pu.iter().map(|&o| o as f64 / total as f64).collect()
}

/// Sum of pairwise Manhattan distances between operation distributions —
/// the paper's segment-operational-distance `SOD` (Eq. 11).
///
/// # Panics
///
/// Panics if the distributions have different lengths.
pub fn sod(dists: &[Vec<f64>]) -> f64 {
    let mut total = 0.0;
    for (a, d1) in dists.iter().enumerate() {
        for d2 in dists.iter().skip(a + 1) {
            assert_eq!(d1.len(), d2.len(), "distributions must be same length");
            total += d1
                .iter()
                .zip(d2)
                .map(|(x, y)| (x - y).abs())
                .sum::<f64>();
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::shape::{Dtype, TensorShape};

    fn workload(n: usize) -> Workload {
        let mut b = GraphBuilder::new("w", Dtype::Int8, TensorShape::new(4, 16, 16));
        let mut x = b.input();
        for i in 0..n {
            x = b.conv(format!("c{i}"), x, 8, 3, 1, 1).unwrap();
        }
        Workload::from_graph(&b.finish())
    }

    #[test]
    fn even_segments_cover_all_items_once() {
        let w = workload(10);
        for per in 1..=10 {
            let segs = even_segments(&w, per);
            let mut seen: Vec<usize> = segs.concat();
            seen.sort_unstable();
            assert_eq!(seen, (0..10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn short_tail_is_merged() {
        let w = workload(7);
        let segs = even_segments(&w, 3);
        // 3 + 3 + 1 -> tail of 1 < ceil(3/2) merges: 3 + 4.
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[1].len(), 4);
    }

    #[test]
    fn segmenting_monotonically_improves_ctc() {
        let w = workload(12);
        let lw = layerwise_ctc(&w);
        let s3 = segmented_ctc(&w, &even_segments(&w, 3));
        let s6 = segmented_ctc(&w, &even_segments(&w, 6));
        let fp = full_pipeline_ctc(&w);
        assert!(s3 > lw);
        assert!(s6 >= s3);
        assert!(fp >= s6);
    }

    #[test]
    fn min_segment_ctc_is_a_lower_bound() {
        let w = workload(12);
        let segs = even_segments(&w, 4);
        let min = min_segment_ctc(&w, &segs);
        for c in segment_ctcs(&w, &segs) {
            assert!(c >= min);
        }
    }

    #[test]
    fn ops_distribution_is_normalized() {
        let w = workload(6);
        let seg = vec![0, 1, 2];
        let assign = vec![0, 1, 1];
        let d = ops_distribution(&w, &seg, &assign, 2);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn sod_zero_for_identical_distributions() {
        let d = vec![vec![0.5, 0.5], vec![0.5, 0.5], vec![0.5, 0.5]];
        assert_eq!(sod(&d), 0.0);
    }

    #[test]
    fn sod_is_pairwise_manhattan() {
        let d = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        assert!((sod(&d) - 2.0).abs() < 1e-12);
        let d3 = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.5, 0.5]];
        // pairs: (1,2)=2, (1,3)=1, (2,3)=1.
        assert!((sod(&d3) - 4.0).abs() < 1e-12);
    }
}
