//! Layer definitions: operator kinds and per-layer cost accounting.

use crate::shape::{Dtype, TensorShape};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a layer inside a [`crate::Graph`].
///
/// Layer ids are dense indices in topological order (the builder only allows
/// wiring a layer to already-constructed predecessors, so construction order
/// is a topological order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LayerId(pub usize);

impl LayerId {
    /// The dense index of this layer.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for LayerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Pooling flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling.
    Avg,
}

/// The operator computed by a layer.
///
/// Convolutions cover standard, grouped and depthwise variants through the
/// `groups` field (depthwise convolution has `groups == in_channels`), which
/// is how MobileNet's depthwise/pointwise split — a key workload property
/// exploited by the paper's load balancing — is expressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// 2-D convolution.
    Conv {
        /// Number of output channels.
        out_c: usize,
        /// Square kernel extent.
        kernel: usize,
        /// Stride in both spatial dimensions.
        stride: usize,
        /// Zero padding on each border.
        pad: usize,
        /// Channel groups; `1` is a dense conv, `in_c` is depthwise.
        groups: usize,
    },
    /// Spatial pooling.
    Pool {
        /// Square window extent.
        kernel: usize,
        /// Stride in both spatial dimensions.
        stride: usize,
        /// Zero padding on each border.
        pad: usize,
        /// Max or average.
        kind: PoolKind,
    },
    /// Global average pooling to `c x 1 x 1`.
    GlobalAvgPool,
    /// Fully-connected layer over the flattened input.
    Fc {
        /// Number of output features.
        out: usize,
    },
    /// Elementwise addition of all inputs (residual connections).
    Add,
    /// Channel-wise concatenation of all inputs (Inception / Fire expand).
    Concat,
}

impl LayerKind {
    /// `true` for layers that own weights and dominate compute
    /// (convolutions and fully-connected layers). These are the *anchor*
    /// layers that segmentation assigns to PUs; everything else is folded
    /// into an anchor by [`crate::Workload`].
    pub const fn is_anchor(&self) -> bool {
        matches!(self, LayerKind::Conv { .. } | LayerKind::Fc { .. })
    }
}

/// A node of the DNN graph: an operator plus its inferred shapes and wiring.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layer {
    /// Dense topological id.
    pub id: LayerId,
    /// Human-readable unique name (e.g. `"conv2_a"`).
    pub name: String,
    /// The operator.
    pub kind: LayerKind,
    /// Producing layers this layer reads from. Empty for layers fed by the
    /// network input.
    pub inputs: Vec<LayerId>,
    /// Combined input shape (channels summed for [`LayerKind::Concat`]).
    pub input_shape: TensorShape,
    /// Inferred output shape.
    pub output_shape: TensorShape,
}

impl Layer {
    /// Number of multiply-accumulate operations — the paper's `ops(l)`.
    ///
    /// Pooling, elementwise add and concat contribute zero MACs (the paper's
    /// Figure 4/5 enumerate conv layers only); their cost shows up through
    /// memory traffic instead.
    ///
    /// ```
    /// # use nnmodel::{zoo, LayerKind};
    /// let g = zoo::alexnet();
    /// let total: u64 = g.layers().iter().map(|l| l.ops()).sum();
    /// // AlexNet is ~0.7 GMACs.
    /// assert!((6e8..9e8).contains(&(total as f64)));
    /// ```
    pub fn ops(&self) -> u64 {
        match self.kind {
            LayerKind::Conv {
                out_c,
                kernel,
                groups,
                ..
            } => {
                let in_c_per_group = (self.input_shape.c / groups) as u64;
                (out_c as u64)
                    * (self.output_shape.h as u64)
                    * (self.output_shape.w as u64)
                    * in_c_per_group
                    * (kernel as u64)
                    * (kernel as u64)
            }
            LayerKind::Fc { out } => self.input_shape.elems() * out as u64,
            LayerKind::Pool { .. }
            | LayerKind::GlobalAvgPool
            | LayerKind::Add
            | LayerKind::Concat => 0,
        }
    }

    /// Number of weight parameters (zero for weight-less operators).
    pub fn weight_elems(&self) -> u64 {
        match self.kind {
            LayerKind::Conv {
                out_c,
                kernel,
                groups,
                ..
            } => {
                let in_c_per_group = (self.input_shape.c / groups) as u64;
                (out_c as u64) * in_c_per_group * (kernel as u64) * (kernel as u64)
            }
            LayerKind::Fc { out } => self.input_shape.elems() * out as u64,
            _ => 0,
        }
    }

    /// Weight bytes for the given datatype.
    pub fn weight_bytes(&self, dtype: Dtype) -> u64 {
        self.weight_elems() * dtype.bytes()
    }

    /// DRAM bytes moved by this layer under layerwise (no-pipeline)
    /// execution — the paper's `access(l)`: the input feature map is read,
    /// the weights are read, and the output feature map is written.
    pub fn access(&self, dtype: Dtype) -> u64 {
        self.input_shape.bytes(dtype) + self.weight_bytes(dtype) + self.output_shape.bytes(dtype)
    }

    /// The layer's CTC ratio in MACs per DRAM byte under layerwise
    /// execution (the quantity plotted in Figure 4 of the paper).
    pub fn ctc(&self, dtype: Dtype) -> f64 {
        self.ops() as f64 / self.access(dtype) as f64
    }

    /// Sliding-window geometry `(kernel, stride)` for operators that have
    /// one; `(1, 1)` for pointwise-like operators (FC, add, concat).
    pub fn window(&self) -> (usize, usize) {
        match self.kind {
            LayerKind::Conv { kernel, stride, .. } | LayerKind::Pool { kernel, stride, .. } => {
                (kernel, stride)
            }
            LayerKind::GlobalAvgPool => (self.input_shape.h.max(1), 1),
            LayerKind::Fc { .. } | LayerKind::Add | LayerKind::Concat => (1, 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv_layer() -> Layer {
        Layer {
            id: LayerId(0),
            name: "c".into(),
            kind: LayerKind::Conv {
                out_c: 64,
                kernel: 3,
                stride: 1,
                pad: 1,
                groups: 1,
            },
            inputs: vec![],
            input_shape: TensorShape::new(32, 16, 16),
            output_shape: TensorShape::new(64, 16, 16),
        }
    }

    #[test]
    fn conv_ops_and_weights() {
        let l = conv_layer();
        assert_eq!(l.ops(), 64 * 16 * 16 * 32 * 9);
        assert_eq!(l.weight_elems(), 64 * 32 * 9);
    }

    #[test]
    fn depthwise_conv_ops() {
        let mut l = conv_layer();
        l.kind = LayerKind::Conv {
            out_c: 32,
            kernel: 3,
            stride: 1,
            pad: 1,
            groups: 32,
        };
        l.output_shape = TensorShape::new(32, 16, 16);
        // Depthwise: one input channel per output channel.
        assert_eq!(l.ops(), 32 * 16 * 16 * 9);
        assert_eq!(l.weight_elems(), 32 * 9);
    }

    #[test]
    fn fc_ops() {
        let l = Layer {
            id: LayerId(1),
            name: "fc".into(),
            kind: LayerKind::Fc { out: 1000 },
            inputs: vec![LayerId(0)],
            input_shape: TensorShape::vector(4096),
            output_shape: TensorShape::vector(1000),
        };
        assert_eq!(l.ops(), 4096 * 1000);
        assert_eq!(l.weight_elems(), 4096 * 1000);
    }

    #[test]
    fn pool_has_no_macs_but_moves_data() {
        let l = Layer {
            id: LayerId(2),
            name: "p".into(),
            kind: LayerKind::Pool {
                kernel: 2,
                stride: 2,
                pad: 0,
                kind: PoolKind::Max,
            },
            inputs: vec![LayerId(0)],
            input_shape: TensorShape::new(64, 16, 16),
            output_shape: TensorShape::new(64, 8, 8),
        };
        assert_eq!(l.ops(), 0);
        assert_eq!(l.access(Dtype::Int8), 64 * 16 * 16 + 64 * 8 * 8);
    }

    #[test]
    fn access_counts_all_three_streams() {
        let l = conv_layer();
        let ifm = 32 * 16 * 16;
        let w = 64 * 32 * 9;
        let ofm = 64 * 16 * 16;
        assert_eq!(l.access(Dtype::Int8), (ifm + w + ofm) as u64);
        assert_eq!(l.access(Dtype::Fp32), 4 * (ifm + w + ofm) as u64);
    }

    #[test]
    fn ctc_is_ops_per_byte() {
        let l = conv_layer();
        let expect = l.ops() as f64 / l.access(Dtype::Int8) as f64;
        assert!((l.ctc(Dtype::Int8) - expect).abs() < 1e-12);
    }

    #[test]
    fn anchor_classification() {
        assert!(LayerKind::Conv {
            out_c: 1,
            kernel: 1,
            stride: 1,
            pad: 0,
            groups: 1
        }
        .is_anchor());
        assert!(LayerKind::Fc { out: 10 }.is_anchor());
        assert!(!LayerKind::Add.is_anchor());
        assert!(!LayerKind::Concat.is_anchor());
        assert!(!LayerKind::GlobalAvgPool.is_anchor());
    }

    #[test]
    fn window_geometry() {
        let l = conv_layer();
        assert_eq!(l.window(), (3, 1));
    }
}
