//! Tensor shapes and element datatypes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Element datatype of a tensor.
///
/// The paper evaluates all designs in int8 ("all designs are worked in
/// 8-bits", Section VI-B), so [`Dtype::Int8`] is the default everywhere, but
/// the cost model is parametric in the element width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Dtype {
    /// 8-bit integer (1 byte / element). The paper's evaluation setting.
    #[default]
    Int8,
    /// 16-bit integer (2 bytes / element).
    Int16,
    /// 16-bit floating point (2 bytes / element).
    Fp16,
    /// 32-bit floating point (4 bytes / element).
    Fp32,
}

impl Dtype {
    /// Number of bytes occupied by one element.
    ///
    /// ```
    /// use nnmodel::Dtype;
    /// assert_eq!(Dtype::Int8.bytes(), 1);
    /// assert_eq!(Dtype::Fp32.bytes(), 4);
    /// ```
    pub const fn bytes(self) -> u64 {
        match self {
            Dtype::Int8 => 1,
            Dtype::Int16 | Dtype::Fp16 => 2,
            Dtype::Fp32 => 4,
        }
    }
}

impl fmt::Display for Dtype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dtype::Int8 => "int8",
            Dtype::Int16 => "int16",
            Dtype::Fp16 => "fp16",
            Dtype::Fp32 => "fp32",
        };
        f.write_str(s)
    }
}

/// Shape of a feature-map tensor in channel/height/width (CHW) order.
///
/// Batch is handled at the architecture level (Algorithm 1 of the paper
/// scales batch for throughput-oriented designs), so shapes here are
/// per-frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorShape {
    /// Number of channels.
    pub c: usize,
    /// Spatial height.
    pub h: usize,
    /// Spatial width.
    pub w: usize,
}

impl TensorShape {
    /// Creates a new shape.
    ///
    /// ```
    /// use nnmodel::TensorShape;
    /// let s = TensorShape::new(3, 224, 224);
    /// assert_eq!(s.elems(), 3 * 224 * 224);
    /// ```
    pub const fn new(c: usize, h: usize, w: usize) -> Self {
        Self { c, h, w }
    }

    /// A flat vector shape (`c` elements, 1x1 spatial), used for
    /// fully-connected layers.
    pub const fn vector(c: usize) -> Self {
        Self { c, h: 1, w: 1 }
    }

    /// Total number of elements.
    pub const fn elems(&self) -> u64 {
        (self.c as u64) * (self.h as u64) * (self.w as u64)
    }

    /// Total size in bytes for the given element type.
    pub const fn bytes(&self, dtype: Dtype) -> u64 {
        self.elems() * dtype.bytes()
    }

    /// Size in bytes of a single spatial row across all channels
    /// (`c * w` elements). This is the granularity of the piece-based
    /// execution model (Figure 8 of the paper) and of the circular
    /// activation buffer (Eq. 1).
    pub const fn row_bytes(&self, dtype: Dtype) -> u64 {
        (self.c as u64) * (self.w as u64) * dtype.bytes()
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.c, self.h, self.w)
    }
}

/// Computes the output spatial extent of a sliding-window operator.
///
/// Follows the standard `floor((in + 2*pad - kernel) / stride) + 1` rule.
///
/// # Panics
///
/// Panics if `stride == 0` or the padded input is smaller than the kernel;
/// model-zoo constructors guarantee both.
pub(crate) fn conv_out_dim(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    let padded = input + 2 * pad;
    assert!(
        padded >= kernel,
        "padded input {padded} smaller than kernel {kernel}"
    );
    (padded - kernel) / stride + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_bytes() {
        assert_eq!(Dtype::Int8.bytes(), 1);
        assert_eq!(Dtype::Int16.bytes(), 2);
        assert_eq!(Dtype::Fp16.bytes(), 2);
        assert_eq!(Dtype::Fp32.bytes(), 4);
    }

    #[test]
    fn shape_accounting() {
        let s = TensorShape::new(64, 56, 56);
        assert_eq!(s.elems(), 64 * 56 * 56);
        assert_eq!(s.bytes(Dtype::Int8), 64 * 56 * 56);
        assert_eq!(s.bytes(Dtype::Fp32), 4 * 64 * 56 * 56);
        assert_eq!(s.row_bytes(Dtype::Int8), 64 * 56);
    }

    #[test]
    fn vector_shape_is_flat() {
        let v = TensorShape::vector(1000);
        assert_eq!(v, TensorShape::new(1000, 1, 1));
        assert_eq!(v.elems(), 1000);
    }

    #[test]
    fn conv_out_dims_match_standard_networks() {
        // AlexNet conv1: 224 -> 55 with k=11, s=4, pad=2.
        assert_eq!(conv_out_dim(224, 11, 4, 2), 55);
        // VGG 3x3 same-padding conv preserves size.
        assert_eq!(conv_out_dim(224, 3, 1, 1), 224);
        // ResNet stem: 224 -> 112 with k=7, s=2, pad=3.
        assert_eq!(conv_out_dim(224, 7, 2, 3), 112);
        // 2x2/2 max pool halves.
        assert_eq!(conv_out_dim(112, 2, 2, 0), 56);
        // 3x3/2 pool with no padding: 55 -> 27 (AlexNet).
        assert_eq!(conv_out_dim(55, 3, 2, 0), 27);
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_panics() {
        conv_out_dim(10, 3, 0, 0);
    }

    #[test]
    #[should_panic(expected = "smaller than kernel")]
    fn kernel_larger_than_input_panics() {
        conv_out_dim(2, 5, 1, 0);
    }

    #[test]
    fn display_impls() {
        assert_eq!(TensorShape::new(3, 224, 224).to_string(), "3x224x224");
        assert_eq!(Dtype::Int8.to_string(), "int8");
    }
}
