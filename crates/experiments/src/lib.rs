//! Shared harness for the per-figure/per-table experiment binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation (Section VI), printing the series to stdout and
//! writing a CSV under `results/`. `DESIGN.md` maps experiment ids to
//! binaries; `EXPERIMENTS.md` records paper-reported vs measured values.

#![warn(missing_docs)]

pub mod svg;

use autoseg::codesign::CodesignBudgets;
use autoseg::{AutoSeg, AutoSegOutcome, DesignGoal};
use nnmodel::Graph;
use spa_arch::HwBudget;
use std::fs;
use std::path::PathBuf;

/// Looks up `--name value` or `--name=value` in an argument list.
fn flag_value_in(args: &[String], name: &str) -> Option<String> {
    let key = format!("--{name}");
    let prefix = format!("--{name}=");
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix(&prefix) {
            return Some(v.to_string());
        }
        if a == &key {
            return args.get(i + 1).cloned();
        }
    }
    None
}

/// The value of `--name value` / `--name=value` from the process
/// arguments, if the flag is present.
pub fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    flag_value_in(&args, name)
}

/// `true` if `--name` appears anywhere in the process arguments.
pub fn flag_present(name: &str) -> bool {
    let key = format!("--{name}");
    let prefix = format!("--{name}=");
    std::env::args().any(|a| a == key || a.starts_with(&prefix))
}

/// Parses `--name value` into `T`, falling back to `default` when the
/// flag is absent.
///
/// # Panics
///
/// Panics with the flag name on an unparsable value (experiments are
/// command-line tools; a typo should fail loudly, not run the wrong
/// sweep).
pub fn flag_parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    match flag_value(name) {
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("--{name}: cannot parse {v:?}")),
        None => default,
    }
}

/// [`CodesignBudgets`] built from `defaults`, overridden by the
/// `--hw-iters`, `--seg-iters`, `--seed` and `--threads` CLI flags, then
/// shrunk to smoke iterations if `DSE_SMOKE` is set.
pub fn codesign_budgets(defaults: CodesignBudgets) -> CodesignBudgets {
    CodesignBudgets {
        hw_iters: flag_parse("hw-iters", defaults.hw_iters),
        seg_iters: flag_parse("seg-iters", defaults.seg_iters),
        seed: flag_parse("seed", defaults.seed),
        threads: flag_parse("threads", defaults.threads),
    }
    .smoke_if_env()
}

/// Directory experiment CSVs are written to (`<repo>/results`, overridable
/// with `SPA_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("SPA_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("results")
        });
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a text artifact (JSON, SVG, ...) into [`results_dir`] and logs
/// the path — the one place every binary's output files go through.
///
/// # Panics
///
/// Panics on I/O failure (experiments are command-line tools).
pub fn write_text(name: &str, contents: &str) -> PathBuf {
    let path = results_dir().join(name);
    fs::write(&path, contents).unwrap_or_else(|e| panic!("write {name}: {e}"));
    println!("  -> wrote {}", path.display());
    path
}

/// Writes a CSV file into [`results_dir`].
///
/// # Panics
///
/// Panics on I/O failure (experiments are command-line tools).
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for r in rows {
        out.push_str(&r.join(","));
        out.push('\n');
    }
    write_text(name, &out);
}

/// Minimal JSON-object builder for the experiments' flat result files
/// (the workspace carries no JSON serializer; schemas are small).
///
/// Values passed to [`JsonObj::raw`] are emitted verbatim — numbers,
/// booleans, or pre-serialized objects like an obs report.
#[derive(Debug, Default)]
pub struct JsonObj {
    fields: Vec<(String, String)>,
}

impl JsonObj {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a field whose value is already valid JSON.
    pub fn raw(mut self, key: &str, value: impl Into<String>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Adds a string field (quoted; assumes no characters needing escape,
    /// which holds for model/budget names).
    pub fn str(self, key: &str, value: &str) -> Self {
        let quoted = format!("\"{value}\"");
        self.raw(key, quoted)
    }

    /// Serializes with one field per line.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            out.push_str(&format!("  \"{k}\": {v}"));
            out.push_str(if i + 1 < self.fields.len() { ",\n" } else { "\n" });
        }
        out.push_str("}\n");
        out
    }
}

/// Prints an aligned text table.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", line(header.iter().map(|s| s.to_string()).collect()));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for r in rows {
        println!("{}", line(r.clone()));
    }
}

/// Runs the AutoSeg engine with the harness' standard exploration caps.
///
/// Returns `None` when no design fits (reported by the caller).
pub fn design_for(model: &Graph, budget: &HwBudget, goal: DesignGoal) -> Option<AutoSegOutcome> {
    AutoSeg::new(budget.clone())
        .design_goal(goal)
        .max_pus(6)
        .max_segments(10)
        .run(model)
        .ok()
}

/// The nine evaluation models of Figure 12 (paper order), pre-flight
/// validated: a malformed zoo graph aborts here with a diagnostic instead
/// of panicking deep inside the engine or a simulator.
pub fn fig12_models() -> Vec<Graph> {
    let models = nnmodel::zoo::evaluation_models();
    for m in &models {
        preflight_model(m);
    }
    models
}

/// Validates one experiment input graph, aborting with the validator's
/// diagnostic on failure (experiments are command-line tools; the library
/// crates return the error instead).
pub fn preflight_model(model: &Graph) {
    if let Err(e) = nnmodel::validate(model) {
        panic!("model {:?} failed pre-flight validation: {e}", model.name());
    }
}

/// Validates one experiment hardware budget, aborting with the validator's
/// diagnostic on failure.
pub fn preflight_budget(budget: &HwBudget) {
    if let Err(e) = budget.validate() {
        panic!("budget failed pre-flight validation: {e}");
    }
}

/// Short display name for a model.
pub fn short_name(name: &str) -> &str {
    match name {
        "alexnet" => "AlexNet",
        "alexnet_conv" => "AlexNet(conv)",
        "vgg16" => "VGG16",
        "mobilenet_v1" => "MobileNetV1",
        "mobilenet_v2" => "MobileNetV2",
        "resnet18" => "ResNet18",
        "resnet50" => "ResNet50",
        "resnet152" => "ResNet152",
        "squeezenet1_0" => "SqueezeNet",
        "inception_v1" => "InceptionV1",
        "efficientnet_b0" => "EfficientNet-B0",
        other => other,
    }
}

/// Formats a float compactly for tables.
pub fn f3(x: f64) -> String {
    // exact-zero display special case; lint: allow(float-eq)
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f3_formats() {
        assert_eq!(f3(0.0), "0");
        assert_eq!(f3(1234.5), "1234"); // ties-to-even
        assert_eq!(f3(3.14159), "3.14");
        assert_eq!(f3(0.001234), "0.0012");
    }

    #[test]
    fn short_names_cover_zoo() {
        for g in fig12_models() {
            assert_ne!(short_name(g.name()), "");
        }
    }

    #[test]
    fn json_obj_renders_flat_objects() {
        let j = JsonObj::new()
            .str("model", "alexnet")
            .raw("threads", "4")
            .raw("cache", "{\"hits\": 1}")
            .render();
        assert!(j.starts_with("{\n") && j.ends_with("}\n"));
        assert!(j.contains("\"model\": \"alexnet\","));
        assert!(j.contains("\"cache\": {\"hits\": 1}\n"), "{j}");
        assert_eq!(JsonObj::new().render(), "{\n}\n");
    }

    #[test]
    fn flag_lookup_handles_both_spellings() {
        let args: Vec<String> = ["bin", "--seed", "11", "--threads=4", "--quick"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag_value_in(&args, "seed").as_deref(), Some("11"));
        assert_eq!(flag_value_in(&args, "threads").as_deref(), Some("4"));
        assert_eq!(flag_value_in(&args, "quick").as_deref(), None);
        assert_eq!(flag_value_in(&args, "hw-iters"), None);
    }
}
