//! Figure 16: per-frame energy breakdown (DRAM / on-chip buffers / MAC /
//! others) of the layerwise baseline, the fusion-optimized baseline, and
//! the AutoSeg design, plus the resulting energy-efficiency gains.
//!
//! The paper reports 1.65x average efficiency over baselines, 1.32x over
//! fusion, and fabric+mux ("others") under 3% of total energy.

use autoseg::DesignGoal;
use experiments::{design_for, f3, fig12_models, print_table, short_name, write_csv};
use nnmodel::Workload;
use spa_arch::HwBudget;
use pucost::Dataflow;
use spa_sim::{simulate_fusion, simulate_processor, SimReport};

fn breakdown(label: &str, model: &str, r: &SimReport) -> Vec<String> {
    let e = &r.energy;
    vec![
        model.to_string(),
        label.to_string(),
        f3(e.dram_pj / 1e6),
        f3((e.onchip.act_buf_pj + e.onchip.wgt_buf_pj + e.onchip.psum_pj) / 1e6),
        f3(e.onchip.mac_pj / 1e6),
        f3(e.fabric_pj / 1e6),
        f3(e.total_pj() / 1e6),
    ]
}

fn main() {
    println!("== Figure 16: energy breakdown (uJ/frame) on the Eyeriss budget ==");
    let budget = HwBudget::eyeriss();
    let mut rows = Vec::new();
    let mut gain_base = Vec::new();
    let mut gain_fusion = Vec::new();
    for model in fig12_models() {
        let w = Workload::from_graph(&model);
        let name = short_name(model.name());
        let base = simulate_processor(&w, &budget, Dataflow::WeightStationary);
        let fused = simulate_fusion(&w, &budget, Some(Dataflow::WeightStationary));
        rows.push(breakdown("baseline", name, &base));
        rows.push(breakdown("fusion", name, &fused));
        if let Some(out) = design_for(&model, &budget, DesignGoal::Latency) {
            rows.push(breakdown("autoseg", name, &out.report));
            let others_frac = out.report.energy.fabric_pj / out.report.energy.total_pj();
            assert!(others_frac < 0.05, "others {others_frac}");
            gain_base.push(
                base.energy.total_pj() * base.seconds
                    / (out.report.energy.total_pj() * out.report.seconds),
            );
            gain_fusion.push(
                fused.energy.total_pj() * fused.seconds
                    / (out.report.energy.total_pj() * out.report.seconds),
            );
        }
    }
    let header = ["model", "design", "DRAM", "buffers", "MAC", "others", "total"];
    print_table(&header, &rows);
    write_csv("fig16_energy.csv", &header, &rows);

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    // Energy efficiency = perf/W; perf ratio x energy ratio.
    let eff_base: Vec<f64> = gain_base.iter().map(|g| g.sqrt()).collect();
    let _ = eff_base;
    println!(
        "\nenergy-delay gain vs baseline (avg): {} ; vs fusion: {} (paper energy-efficiency: 1.65x / 1.32x)",
        f3(avg(&gain_base)),
        f3(avg(&gain_fusion)),
    );
}
