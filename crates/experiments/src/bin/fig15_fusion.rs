//! Figure 15: speedup of AutoSeg designs over the layer-fusion baseline
//! (Optimus-style fusion applied to the same-budget layerwise processor).

use autoseg::DesignGoal;
use experiments::{design_for, f3, fig12_models, print_table, short_name, write_csv};
use nnmodel::Workload;
use spa_arch::HwBudget;
use pucost::Dataflow;
use spa_sim::simulate_fusion;

fn main() {
    println!("== Figure 15: speedup over layer-fusion baselines ==");
    let budgets = HwBudget::asic_suite();
    let mut rows = Vec::new();
    for model in fig12_models() {
        let w = Workload::from_graph(&model);
        let mut row = vec![short_name(model.name()).to_string()];
        for budget in &budgets {
            let fused = simulate_fusion(&w, budget, Some(Dataflow::WeightStationary));
            let cell = match design_for(&model, budget, DesignGoal::Latency) {
                Some(out) => f3(fused.seconds / out.report.seconds),
                None => "n/a".into(),
            };
            row.push(cell);
        }
        rows.push(row);
    }
    let header = ["model", "eyeriss", "nvdla-small", "nvdla-large", "edge-tpu"];
    print_table(&header, &rows);
    write_csv("fig15_fusion_speedup.csv", &header, &rows);
}
