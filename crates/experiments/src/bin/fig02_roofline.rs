//! Figure 2: the roofline model of the evaluated budgets.
//!
//! Emits the attainable-performance curve of each Table II budget and the
//! ridge point Section II cites for NVDLA (280 OPs/Byte).

use experiments::{f3, preflight_budget, print_table, write_csv};
use spa_arch::HwBudget;
use spa_sim::roofline_series;

fn main() {
    println!("== Figure 2: roofline model ==");
    let budgets = [
        HwBudget::eyeriss(),
        HwBudget::nvdla_small(),
        HwBudget::nvdla_large(),
        HwBudget::edge_tpu(),
    ];
    budgets.iter().for_each(preflight_budget);

    let mut rows = Vec::new();
    for b in &budgets {
        rows.push(vec![
            b.name.clone(),
            f3(b.peak_ops_per_sec() / 1e12),
            f3(b.bandwidth_gbps),
            f3(b.ridge_ops_per_byte()),
        ]);
    }
    print_table(
        &["budget", "peak TOPs", "BW GB/s", "ridge OPs/B"],
        &rows,
    );
    write_csv("fig02_ridge.csv", &["budget", "peak_tops", "bw_gbps", "ridge_ops_per_byte"], &rows);

    // Full curves (log-spaced CTC axis).
    let mut curve_rows = Vec::new();
    for b in &budgets {
        for p in roofline_series(b, 0.1, 100_000.0, 60) {
            curve_rows.push(vec![
                b.name.clone(),
                format!("{:.4}", p.macs_per_byte),
                format!("{:.4e}", p.ops_per_sec),
            ]);
        }
    }
    write_csv(
        "fig02_roofline.csv",
        &["budget", "macs_per_byte", "attainable_ops_per_sec"],
        &curve_rows,
    );
}
