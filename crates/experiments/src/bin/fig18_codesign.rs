//! Figure 18: design points (latency vs energy) discovered by the five
//! co-design methods — AutoSeg's MIP-Heuristic against MIP-Random,
//! MIP-Baye, Baye-Heuristic and Baye-Baye — for AlexNet and MobileNetV1
//! under two hardware budgets.

use autoseg::codesign::{
    baye_baye_with, baye_heuristic_with, mip_baye_with, mip_heuristic_with, mip_random_with,
    CodesignBudgets, DesignPoint,
};
use experiments::{codesign_budgets, f3, print_table, short_name, write_csv};
use nnmodel::zoo;
use pucost::EvalCache;
use spa_arch::HwBudget;

fn main() {
    println!("== Figure 18: co-design method comparison ==");
    let budgets = [HwBudget::eyeriss(), HwBudget::nvdla_small()];
    let models = ["alexnet", "mobilenet_v1"];
    // Defaults overridable via --hw-iters / --seg-iters / --seed /
    // --threads (and shrunk by DSE_SMOKE=1 for CI smoke runs).
    let iters = codesign_budgets(CodesignBudgets {
        hw_iters: 200,
        seg_iters: 400,
        seed: 7,
        threads: 0,
    });
    let pool = iters.pool();
    println!(
        "   ({} hw iters, {} seg iters, seed {}, {} threads)",
        iters.hw_iters,
        iters.seg_iters,
        iters.seed,
        pool.threads()
    );

    let mut scatter: Vec<Vec<String>> = Vec::new();
    let mut summary: Vec<Vec<String>> = Vec::new();
    for model_name in models {
        let model = zoo::by_name(model_name).expect("zoo model");
        for budget in &budgets {
            // One cache per (model, budget) pair: identical layer/PU
            // probes recur heavily across the five methods.
            let cache = EvalCache::default();
            let runs: Vec<Vec<DesignPoint>> = vec![
                mip_heuristic_with(&model, budget, &pool, &cache).expect("run"),
                mip_random_with(&model, budget, &iters, &pool, &cache).expect("run"),
                mip_baye_with(&model, budget, &iters, &pool, &cache).expect("run"),
                baye_heuristic_with(&model, budget, &iters, &pool, &cache).expect("run"),
                baye_baye_with(&model, budget, &iters, &pool, &cache).expect("run"),
            ];
            for pts in &runs {
                let method = pts.first().map(|p| p.method).unwrap_or("none");
                for p in pts {
                    scatter.push(vec![
                        short_name(model_name).to_string(),
                        budget.name.clone(),
                        p.method.to_string(),
                        format!("{:.6e}", p.latency_s),
                        format!("{:.6e}", p.energy_pj),
                        format!("{}x{}", p.shape.0, p.shape.1),
                    ]);
                }
                let best_lat = pts.iter().map(|p| p.latency_s).fold(f64::INFINITY, f64::min);
                let max_e = pts.iter().map(|p| p.energy_pj).fold(0.0f64, f64::max);
                summary.push(vec![
                    short_name(model_name).to_string(),
                    budget.name.clone(),
                    method.to_string(),
                    pts.len().to_string(),
                    f3(best_lat * 1e3),
                    f3(max_e / 1e10),
                ]);
            }
            let stats = cache.stats();
            println!(
                "   cache [{} / {}]: {} entries, {:.1}% hit rate ({} hits / {} misses)",
                short_name(model_name),
                budget.name,
                stats.entries,
                stats.hit_rate * 100.0,
                stats.hits,
                stats.misses
            );
            stats.publish("fig18.cache");
        }
    }
    let header = ["model", "budget", "method", "points", "best ms", "max E (1e10 pJ)"];
    print_table(&header, &summary);
    write_csv("fig18_summary.csv", &header, &summary);
    write_csv(
        "fig18_scatter.csv",
        &["model", "budget", "method", "latency_s", "energy_pj", "shape"],
        &scatter,
    );
    obs::finish();
}
