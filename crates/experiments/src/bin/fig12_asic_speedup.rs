//! Figure 12: speedup of AutoSeg SPA designs over general DNN processors
//! (Eyeriss / NVDLA-Small / NVDLA-Large / EdgeTPU) of the same resource
//! budget, across the nine evaluation models.
//!
//! The paper reports average speedups of 2.71x / 3.55x / 2.21x / 3.89x and
//! an overall range of 1.2x-6.3x.

use autoseg::DesignGoal;
use experiments::svg::{write_svg_chart, Series};
use experiments::{design_for, f3, fig12_models, print_table, short_name, write_csv};
use nnmodel::Workload;
use spa_arch::HwBudget;
use pucost::Dataflow;
use spa_sim::simulate_processor;

fn main() {
    println!("== Figure 12: ASIC speedup over same-budget general processors ==");
    let budgets = HwBudget::asic_suite();
    let mut rows = Vec::new();
    let mut averages = vec![(0.0f64, 0usize); budgets.len()];

    for model in fig12_models() {
        let w = Workload::from_graph(&model);
        let mut row = vec![short_name(model.name()).to_string()];
        for (bi, budget) in budgets.iter().enumerate() {
            let baseline = simulate_processor(&w, budget, Dataflow::WeightStationary);
            let cell = match design_for(&model, budget, DesignGoal::Latency) {
                Some(out) => {
                    let speedup = baseline.seconds / out.report.seconds;
                    averages[bi].0 += speedup;
                    averages[bi].1 += 1;
                    f3(speedup)
                }
                None => "n/a".to_string(),
            };
            row.push(cell);
        }
        rows.push(row);
    }
    let mut avg_row = vec!["AVERAGE".to_string()];
    for (sum, n) in &averages {
        avg_row.push(if *n > 0 { f3(sum / *n as f64) } else { "-".into() });
    }
    rows.push(avg_row);

    let header = ["model", "eyeriss", "nvdla-small", "nvdla-large", "edge-tpu"];
    print_table(&header, &rows);
    write_csv("fig12_asic_speedup.csv", &header, &rows);
    // Figure rendering: one series per budget over the nine models.
    let cats: Vec<&str> = rows[..rows.len() - 1].iter().map(|r| r[0].as_str()).collect();
    let series: Vec<Series> = (0..budgets.len())
        .map(|bi| Series {
            label: budgets[bi].name.clone(),
            values: rows[..rows.len() - 1]
                .iter()
                .map(|r| r[bi + 1].parse().unwrap_or(f64::NAN))
                .collect(),
        })
        .collect();
    write_svg_chart(
        "fig12_asic_speedup.svg",
        "Speedup of AutoSeg SPA over same-budget general processors",
        &cats,
        &series,
    );
    println!("(paper averages: 2.71x, 3.55x, 2.21x, 3.89x; range 1.2x-6.3x)");
}
