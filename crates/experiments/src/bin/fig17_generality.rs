//! Figure 17: generality analysis — each model runs both on its own
//! dedicated SPA design and on designs dedicated to the *other* models
//! (frozen hardware, pruned-fabric connection constraints, latency-target
//! remapping). Performance is reported as speedup over the Eyeriss-budget
//! layerwise baseline.

use autoseg::{generality, DesignGoal};
use experiments::{design_for, f3, print_table, short_name, write_csv};
use nnmodel::{zoo, Workload};
use spa_arch::HwBudget;
use pucost::Dataflow;
use spa_sim::simulate_processor;

fn main() {
    println!("== Figure 17: generality (dedicated vs non-dedicated SPA) ==");
    let budget = HwBudget::eyeriss();
    let names = ["alexnet", "mobilenet_v1", "squeezenet1_0", "resnet18"];

    // Dedicated designs.
    let mut dedicated = Vec::new();
    for name in names {
        let model = zoo::by_name(name).expect("zoo model");
        let out = design_for(&model, &budget, DesignGoal::Latency).expect("feasible design");
        dedicated.push((name, out));
    }

    let mut rows = Vec::new();
    for run_name in names {
        let run_model = zoo::by_name(run_name).expect("zoo model");
        let w = Workload::from_graph(&run_model);
        let baseline = simulate_processor(&w, &budget, Dataflow::WeightStationary);
        let mut row = vec![short_name(run_name).to_string()];
        for (ded_name, ded) in &dedicated {
            let cell = if run_name == *ded_name {
                f3(baseline.seconds / ded.report.seconds)
            } else {
                match generality::remap(&ded.design, &ded.workload, &run_model) {
                    Ok((_, report)) => f3(baseline.seconds / report.seconds),
                    Err(_) => "n/a".into(),
                }
            };
            row.push(cell);
        }
        rows.push(row);
    }
    let header: Vec<String> = std::iter::once("model \\ accel".to_string())
        .chain(names.iter().map(|n| format!("{}-ded", short_name(n))))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print_table(&header_refs, &rows);
    write_csv("fig17_generality.csv", &header_refs, &rows);
    println!("(cells: speedup over the Eyeriss layerwise baseline; diagonal = dedicated)");
}
