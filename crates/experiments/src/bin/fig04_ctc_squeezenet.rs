//! Figure 4: the impact of model segmentation on SqueezeNet's CTC ratio —
//! per-layer CTC (the alternating high/low pattern of Section II-B), naive
//! 3-layer and 6-layer segmentations, and the AutoSeg-optimized
//! segmentation that "further increases the CTC ratio".

use autoseg::segment::{ChainDpSegmenter, Segmenter};
use experiments::{f3, print_table, write_csv};
use nnmodel::{analysis, zoo, Workload};

fn main() {
    println!("== Figure 4: segmentation vs CTC (SqueezeNet) ==");
    let w = Workload::from_graph(&zoo::squeezenet1_0());

    // Per-layer CTC bars (the no-pipeline series).
    let mut layer_rows = Vec::new();
    for (item, ctc) in w.items().iter().zip(analysis::per_item_ctc(&w)) {
        layer_rows.push(vec![item.name.clone(), f3(ctc)]);
    }
    write_csv("fig04_per_layer_ctc.csv", &["layer", "ctc"], &layer_rows);

    // Aggregate CTC of each strategy.
    let no_pipe = analysis::layerwise_ctc(&w);
    let seg3 = analysis::segmented_ctc(&w, &analysis::even_segments(&w, 3));
    let seg6 = analysis::segmented_ctc(&w, &analysis::even_segments(&w, 6));
    let full = analysis::full_pipeline_ctc(&w);
    // AutoSeg segmentation at matching segment counts.
    let dp = ChainDpSegmenter::new();
    let opt_of = |s: usize| {
        let sched = dp.segment(&w, 2, s).expect("feasible");
        let segs: Vec<Vec<usize>> = sched.segments.iter().map(|x| x.items()).collect();
        analysis::segmented_ctc(&w, &segs)
    };
    let opt9 = opt_of(w.len().div_ceil(3)); // ~3-layer segments
    let opt5 = opt_of(w.len().div_ceil(6)); // ~6-layer segments

    let rows = vec![
        vec!["no-pipeline".into(), f3(no_pipe)],
        vec!["segment-grained-1 (3-layer, even)".into(), f3(seg3)],
        vec!["segment-grained-2 (6-layer, even)".into(), f3(seg6)],
        vec!["autoseg (~3-layer, optimized)".into(), f3(opt9)],
        vec!["autoseg (~6-layer, optimized)".into(), f3(opt5)],
        vec!["full-pipeline".into(), f3(full)],
    ];
    print_table(&["strategy", "CTC (MAC/B)"], &rows);
    write_csv("fig04_strategies.csv", &["strategy", "ctc"], &rows);
}
