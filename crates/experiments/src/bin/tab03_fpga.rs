//! Table III: throughput and DSP efficiency of AutoSeg FPGA designs
//! against published state-of-the-art accelerators.
//!
//! The "ours" columns are produced by the simulator under the device
//! budgets; the baseline numbers are the published constants quoted by the
//! paper (shape comparison — who wins and by how much — is the target, not
//! absolute-cycle agreement with other groups' silicon).

use autoseg::DesignGoal;
use experiments::{design_for, f3, print_table, short_name, write_csv};
use nnmodel::zoo;
use spa_arch::HwBudget;

/// Published baseline rows of Table III: (model, design, device, GOP/s,
/// DSP efficiency %).
const PAPER_BASELINES: &[(&str, &str, &str, f64, f64)] = &[
    ("alexnet", "DNNBuilder", "7Z045", 494.0, 76.4),
    ("alexnet", "DNNBuilder", "KU115", 3265.0, 76.4),
    ("alexnet", "TGPA", "VU9P", 2864.0, 80.0),
    ("vgg16", "DNNBuilder", "KU115", 4022.0, 99.1),
    ("vgg16", "TGPA", "VU9P", 3020.0, 87.7),
    ("vgg16", "DNNExplorer", "KU115", 3405.0, 95.8),
    ("resnet152", "TGPA", "VU9P", 2926.0, 89.3),
    ("mobilenet_v2", "DPU", "ZU3EG", 123.0, 28.0),
    ("mobilenet_v2", "Light-OPU", "K325T", 194.0, 35.0),
    ("inception_v1", "DPU", "ZU3EG", 123.0, 28.0),
    ("inception_v1", "Dynamap", "U200", 2000.0, 56.0),
    ("squeezenet1_0", "DPU", "ZU3EG", 123.0, 28.0),
    ("squeezenet1_0", "Light-OPU", "K325T", 193.5, 35.0),
    ("squeezenet1_0", "Multi-CLP", "KU115", 524.0, 47.6),
];

/// Paper-reported "ours" rows for shape comparison: (model, device, GOP/s,
/// DSP eff %).
const PAPER_OURS: &[(&str, &str, f64, f64)] = &[
    ("alexnet_conv", "7z045", 635.0, 94.5),
    ("alexnet_conv", "ku115", 3955.0, 95.2),
    ("vgg16", "zu3eg", 203.0, 96.1),
    ("vgg16", "ku115", 4778.0, 99.2),
    ("resnet152", "ku115", 3166.0, 90.1),
    ("mobilenet_v2", "zu3eg", 188.0, 100.0),
    ("mobilenet_v2", "7z045", 380.0, 85.0),
    ("mobilenet_v2", "ku115", 2125.0, 74.0),
    ("inception_v1", "zu3eg", 205.0, 100.0),
    ("inception_v1", "ku115", 1896.0, 61.0),
    ("squeezenet1_0", "zu3eg", 158.0, 77.5),
    ("squeezenet1_0", "7z045", 245.0, 49.1),
    ("squeezenet1_0", "ku115", 1054.0, 84.6),
];

fn main() {
    println!("== Table III: FPGA throughput and DSP efficiency ==");
    // AlexNet FPGA baselines (DNNBuilder/TGPA) benchmark the conv layers
    // only, so the conv-only case-study model is the faithful workload.
    let models = [
        "alexnet_conv",
        "vgg16",
        "resnet152",
        "mobilenet_v2",
        "inception_v1",
        "squeezenet1_0",
    ];
    let devices = HwBudget::fpga_suite();
    devices.iter().for_each(experiments::preflight_budget);

    let mut rows = Vec::new();
    for name in models {
        let model = zoo::by_name(name).expect("zoo model");
        for device in &devices {
            let Some(out) = design_for(&model, device, DesignGoal::Throughput) else {
                continue;
            };
            let r = &out.report;
            let dsps = out.design.resources().pes;
            // DSP efficiency: achieved GOP/s over the peak of the DSPs the
            // design actually instantiates (2 OPs per DSP per cycle).
            let peak = 2.0 * dsps as f64 * device.freq_mhz * 1e6 / 1e9;
            let eff = 100.0 * r.gops() / peak;
            let paper = PAPER_OURS
                .iter()
                .find(|(m, d, _, _)| *m == name && *d == device.name)
                .map(|&(_, _, g, e)| format!("{g:.0} GOP/s @ {e:.1}%"))
                .unwrap_or_else(|| "-".into());
            rows.push(vec![
                short_name(name).to_string(),
                device.name.clone(),
                dsps.to_string(),
                format!("{:.1}", 100.0 * dsps as f64 / device.pes as f64),
                f3(r.gops()),
                f3(eff),
                r.batch.to_string(),
                paper,
            ]);
        }
    }
    let header = [
        "model", "device", "DSPs", "DSP %", "GOP/s", "DSP eff %", "batch", "paper-ours",
    ];
    print_table(&header, &rows);
    write_csv("tab03_fpga_ours.csv", &header, &rows);

    println!("\npublished baselines quoted by the paper:");
    let base_rows: Vec<Vec<String>> = PAPER_BASELINES
        .iter()
        .map(|&(m, d, dev, g, e)| {
            vec![
                short_name(m).to_string(),
                d.to_string(),
                dev.to_string(),
                f3(g),
                f3(e),
            ]
        })
        .collect();
    print_table(&["model", "design", "device", "GOP/s", "DSP eff %"], &base_rows);
    write_csv(
        "tab03_fpga_baselines.csv",
        &["model", "design", "device", "gops", "dsp_eff"],
        &base_rows,
    );
}
