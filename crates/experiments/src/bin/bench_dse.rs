//! Wall-clock benchmark of the parallel DSE executor + memoized PU-cost
//! cache: runs the Figure 18 co-design search serial (1 thread) and
//! parallel, checks the point clouds are bit-identical, and writes the
//! timings, speedup, cache statistics and (when `OBS_LEVEL` is not `off`)
//! the obs summary report to `results/BENCH_dse.json`.
//!
//! ```text
//! cargo run --release -p experiments --bin bench_dse -- \
//!     [--threads 8] [--hw-iters 200] [--seg-iters 400] [--seed 7] [--model alexnet_conv] \
//!     [--deadline MS] [--checkpoint PATH [--checkpoint-every N]] [--resume PATH]
//! ```
//!
//! `DSE_SMOKE=1` shrinks the iteration budgets for CI smoke runs;
//! `OBS_LEVEL=summary OBS_OUT=results/obs/bench_dse.jsonl` additionally
//! traces the run. `DSE_DEADLINE_MS` / `--deadline` turn the benchmark
//! into an anytime run (each leg gets its own budget from its start);
//! `--checkpoint`/`--resume` persist and restore per-method search state
//! (the method label is appended to the path). `FAULT_PLAN` arms the
//! deterministic fault-injection points (see `crates/faultsim`); every
//! injected fault is listed in the JSON report.

use autoseg::codesign::{run_codesign_with, CodesignBudgets, DesignPoint, Method};
use autoseg::dse::{default_threads, DsePool};
use autoseg::RunCtl;
use experiments::{codesign_budgets, flag_parse, flag_value, write_text, JsonObj};
use nnmodel::zoo;
use pucost::util::f64_of_usize;
use pucost::{
    best_dataflow, best_dataflow_batch, CompiledEval, EnergyModel, EvalCache, LayerDesc, PuBatch,
    PuConfig,
};
use spa_arch::HwBudget;
use std::time::{Duration, Instant};

/// The benchmark's method mix: the heuristic plus the two
/// optimizer-backed searches with the most executor traffic.
const METHODS: [Method; 3] = [Method::MipHeuristic, Method::MipBaye, Method::BayeBaye];

/// Anytime-execution options from the CLI (`--deadline` in milliseconds,
/// `--checkpoint`/`--resume` as base paths that get `.{method}` appended
/// so the three legs never clobber each other's state).
struct Anytime {
    deadline_ms: Option<u64>,
    checkpoint: Option<String>,
    every: u64,
    resume: Option<String>,
}

impl Anytime {
    fn from_flags() -> Self {
        Anytime {
            deadline_ms: flag_value("deadline")
                .map(|v| v.parse().unwrap_or_else(|_| panic!("--deadline: cannot parse {v:?}"))),
            checkpoint: flag_value("checkpoint"),
            every: flag_parse("checkpoint-every", 1),
            resume: flag_value("resume"),
        }
    }

    /// The per-leg policy. The deadline is taken from the leg's start so
    /// serial and parallel runs get equal budgets.
    fn ctl(&self, method: Method) -> RunCtl {
        let mut ctl = RunCtl::none().deadline_from_env();
        if let Some(ms) = self.deadline_ms {
            ctl = ctl.deadline(Duration::from_millis(ms));
        }
        if let Some(base) = &self.checkpoint {
            ctl = ctl.checkpoint(format!("{base}.{method}"), self.every);
        }
        if let Some(base) = &self.resume {
            ctl = ctl.resume(format!("{base}.{method}"));
        }
        ctl
    }
}

/// One full co-design workload on a given pool; every method shares one
/// cache, as the engine wiring does. The `bool` is `true` when every leg
/// ran to completion (no deadline / generation-budget stop).
fn run(
    model: &nnmodel::Graph,
    budget: &HwBudget,
    iters: &CodesignBudgets,
    pool: &DsePool,
    anytime: &Anytime,
) -> (Vec<DesignPoint>, EvalCache, f64, bool) {
    let cache = EvalCache::default();
    let t0 = Instant::now();
    let mut pts = Vec::new();
    let mut complete = true;
    for method in METHODS {
        let r = run_codesign_with(model, budget, iters, method, pool, &cache, &anytime.ctl(method))
            .unwrap_or_else(|e| panic!("{method}: {e}"));
        complete &= r.status.is_complete();
        pts.extend(r.points);
    }
    let secs = t0.elapsed().as_secs_f64();
    (pts, cache, secs, complete)
}

/// Deterministic synthetic layer mix for the pure-eval microbenchmark:
/// dense convs across the spatial pyramid plus the evaluator's edge
/// cases (depthwise, grouped, FC). All 64 descriptors are distinct, so a
/// fresh cache sees every probe cold.
fn microbench_layers() -> Vec<LayerDesc> {
    let mut layers = Vec::with_capacity(64);
    for i in 0..64usize {
        layers.push(match i % 8 {
            3 => {
                // Depthwise 3x3: one channel per group.
                let ch = 32 + 8 * i;
                LayerDesc {
                    in_c: ch,
                    in_h: 28,
                    in_w: 28,
                    out_c: ch,
                    out_h: 28,
                    out_w: 28,
                    kernel: 3,
                    stride: 1,
                    groups: ch,
                    is_fc: false,
                }
            }
            5 => LayerDesc {
                // Grouped conv.
                in_c: 64 + 4 * i,
                in_h: 14,
                in_w: 14,
                out_c: 128 + 4 * i,
                out_h: 14,
                out_w: 14,
                kernel: 3,
                stride: 1,
                groups: 4,
                is_fc: false,
            },
            7 => LayerDesc {
                // FC as 1x1 conv on a 1x1 extent.
                in_c: 256 + 64 * i,
                in_h: 1,
                in_w: 1,
                out_c: 1000,
                out_h: 1,
                out_w: 1,
                kernel: 1,
                stride: 1,
                groups: 1,
                is_fc: true,
            },
            _ => {
                let side = [56, 28, 14, 7][i % 4];
                LayerDesc {
                    in_c: 16 + 4 * i,
                    in_h: side,
                    in_w: side,
                    out_c: 32 + 8 * (i % 24),
                    out_h: side,
                    out_w: side,
                    kernel: if i % 2 == 0 { 3 } else { 1 },
                    stride: 1,
                    groups: 1,
                    is_fc: false,
                }
            }
        });
    }
    layers
}

/// PU candidate sweep for the microbenchmark: the co-design geometries
/// (square through 16:1 slabs) at two clock/buffer corners.
fn microbench_pus() -> Vec<PuConfig> {
    let mut pus = Vec::with_capacity(24);
    for &(r, c) in &[
        (4, 4),
        (4, 8),
        (8, 8),
        (8, 16),
        (16, 8),
        (16, 16),
        (16, 32),
        (32, 16),
        (32, 32),
        (2, 16),
        (16, 2),
        (8, 32),
    ] {
        pus.push(PuConfig::new(r, c).with_buffers(1 << 14, 1 << 14));
        pus.push(PuConfig::new(r, c).with_freq_mhz(400.0).with_buffers(1 << 12, 1 << 12));
    }
    pus
}

/// Pure-eval microbenchmark: cold best-dataflow throughput of the scalar
/// kernel vs the compiled batch kernel (the headline `batch_vs_scalar`
/// ratio), the precompiled-reuse ceiling, the cache-routed cold paths,
/// and the batched cache path's 1/2/4-thread scaling. Every variant is
/// asserted bit-identical to the scalar reference before any timing.
///
/// Timings are best-of-N interleaved: each round times every variant
/// once, and a variant's reported rate is its fastest round. On a shared
/// box the max is the least noisy estimator of the true rate — slow
/// rounds measure the co-tenant, not the kernel. Returns the
/// `eval_throughput` object and the `speedup_curve` array as rendered
/// JSON.
fn eval_microbench() -> (String, String) {
    let layers = microbench_layers();
    let pus = microbench_pus();
    let batch = PuBatch::from_pus(&pus);
    let em = EnergyModel::tsmc28();
    let smoke = matches!(std::env::var("DSE_SMOKE"), Ok(v) if !v.is_empty() && v != "0");
    let rounds = if smoke { 4 } else { 10 };
    // Each best-dataflow pick probes both dataflows.
    let evals_per_round = layers.len() * pus.len() * 2;
    let per_round = f64_of_usize(evals_per_round);
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // Correctness gate: every accelerated path must reproduce the scalar
    // evaluator bit for bit (values and dataflow picks) before its timing
    // counts.
    {
        let scalar_cache = EvalCache::default();
        let batch_cache = EvalCache::default();
        for l in &layers {
            let compiled = CompiledEval::new(l, &em);
            let free = best_dataflow_batch(l, &batch, &em);
            let cached = batch_cache.best_dataflow_batch(l, &batch);
            for (i, pu) in pus.iter().enumerate() {
                let (df, eval) = best_dataflow(l, pu, &em);
                assert_eq!(free.evals()[i], eval, "batch kernel diverged from scalar eval");
                assert_eq!(free.evals()[i].dataflow, df, "batch kernel diverged from scalar pick");
                assert_eq!(compiled.best(pu), (df, eval), "compiled diverged from scalar");
                let (cdf, ceval) = scalar_cache.best_dataflow(l, pu);
                assert_eq!((cdf, ceval), (df, eval), "cache scalar diverged from scalar");
                assert_eq!(cached.evals()[i], eval, "cache batch diverged from scalar eval");
                assert_eq!(cached.evals()[i].dataflow, df, "cache batch diverged from scalar pick");
            }
        }
    }

    let compiled: Vec<CompiledEval> = layers.iter().map(|l| CompiledEval::new(l, &em)).collect();
    // Best-of-N rates: scalar kernel, batch kernel, precompiled reuse,
    // cache scalar (cold), cache batch (cold).
    let mut best = [0.0f64; 5];
    for _ in 0..rounds {
        let t0 = Instant::now();
        for l in &layers {
            for pu in &pus {
                std::hint::black_box(best_dataflow(l, pu, &em));
            }
        }
        best[0] = best[0].max(per_round / t0.elapsed().as_secs_f64().max(1e-9));

        let t0 = Instant::now();
        for l in &layers {
            std::hint::black_box(best_dataflow_batch(l, &batch, &em).len());
        }
        best[1] = best[1].max(per_round / t0.elapsed().as_secs_f64().max(1e-9));

        let t0 = Instant::now();
        for c in &compiled {
            for pu in &pus {
                std::hint::black_box(c.best(pu));
            }
        }
        best[2] = best[2].max(per_round / t0.elapsed().as_secs_f64().max(1e-9));

        let cache = EvalCache::default();
        let t0 = Instant::now();
        for l in &layers {
            for pu in &pus {
                std::hint::black_box(cache.best_dataflow(l, pu));
            }
        }
        best[3] = best[3].max(per_round / t0.elapsed().as_secs_f64().max(1e-9));

        let cache = EvalCache::default();
        let t0 = Instant::now();
        for l in &layers {
            std::hint::black_box(cache.best_dataflow_batch(l, &batch).len());
        }
        best[4] = best[4].max(per_round / t0.elapsed().as_secs_f64().max(1e-9));
    }
    let [scalar_eps, batch_eps, compiled_eps, cache_scalar_eps, cache_batch_eps] = best;
    let ratio = batch_eps / scalar_eps.max(1e-9);
    let compiled_ratio = compiled_eps / scalar_eps.max(1e-9);
    let cache_ratio = cache_batch_eps / cache_scalar_eps.max(1e-9);

    println!("== pure-eval microbenchmark (best of {rounds} interleaved rounds) ==");
    println!(
        "   {} layers x {} PUs x 2 dataflows = {} evals/round, {} host cpus",
        layers.len(),
        pus.len(),
        evals_per_round,
        host_cpus
    );
    println!("   scalar kernel: {scalar_eps:>12.0} evals/s");
    println!("   batch kernel:  {batch_eps:>12.0} evals/s ({ratio:.2}x)");
    println!("   precompiled:   {compiled_eps:>12.0} evals/s ({compiled_ratio:.2}x)");
    println!("   cache scalar:  {cache_scalar_eps:>12.0} evals/s (cold)");
    println!("   cache batch:   {cache_batch_eps:>12.0} evals/s (cold, {cache_ratio:.2}x)");

    // Thread-scaling curve for the batched cache path: layers are split
    // into one contiguous chunk per worker, sharing one cold cache per
    // round; each thread count keeps its fastest round. On a single-CPU
    // host the curve records contention, not scaling — consumers gate on
    // `host_cpus` before expecting 2 threads to beat 1.
    let mut curve: Vec<(usize, f64)> = [1usize, 2, 4].iter().map(|&t| (t, 0.0f64)).collect();
    let pools: Vec<DsePool> = curve.iter().map(|&(t, _)| DsePool::new(t)).collect();
    for _ in 0..rounds {
        for (slot, pool) in curve.iter_mut().zip(&pools) {
            let chunks: Vec<&[LayerDesc]> =
                layers.chunks(layers.len().div_ceil(slot.0)).collect();
            let cache = EvalCache::default();
            let t0 = Instant::now();
            std::hint::black_box(pool.par_map(&chunks, |_, chunk| {
                let mut n = 0usize;
                for l in *chunk {
                    n += cache.best_dataflow_batch(l, &batch).len();
                }
                n
            }));
            slot.1 = slot.1.max(per_round / t0.elapsed().as_secs_f64().max(1e-9));
        }
    }
    let base_eps = curve[0].1.max(1e-9);
    for &(threads, eps) in &curve {
        println!(
            "   batch @ {threads} threads: {eps:>12.0} evals/s ({:.2}x vs 1 thread)",
            eps / base_eps
        );
    }

    let throughput_json = JsonObj::new()
        .raw("layers", layers.len().to_string())
        .raw("pus", pus.len().to_string())
        .raw("evals_per_round", evals_per_round.to_string())
        .raw("rounds", rounds.to_string())
        .raw("host_cpus", host_cpus.to_string())
        .raw("scalar_evals_per_s", format!("{scalar_eps:.1}"))
        .raw("batch_evals_per_s", format!("{batch_eps:.1}"))
        .raw("batch_vs_scalar", format!("{ratio:.3}"))
        .raw("compiled_evals_per_s", format!("{compiled_eps:.1}"))
        .raw("compiled_vs_scalar", format!("{compiled_ratio:.3}"))
        .raw("cache_scalar_evals_per_s", format!("{cache_scalar_eps:.1}"))
        .raw("cache_batch_evals_per_s", format!("{cache_batch_eps:.1}"))
        .raw("cache_batch_vs_scalar", format!("{cache_ratio:.3}"))
        .render();
    let curve_json = format!(
        "[{}]",
        curve
            .iter()
            .map(|&(t, eps)| format!(
                "{{\"threads\": {t}, \"evals_per_s\": {eps:.1}, \"speedup\": {:.3}}}",
                eps / base_eps
            ))
            .collect::<Vec<_>>()
            .join(", ")
    );
    (throughput_json.trim_end().to_string(), curve_json)
}

/// Seeded MILP set for the engine benchmark: branch-heavy tie-free
/// knapsacks (the objective fingerprint `base*4096 + 2^i` makes every
/// optimum unique, so all engine configurations must land on the same
/// bits) plus rounding instances where presolve provably removes all
/// branching by tightening integer bounds across odd right-hand sides.
fn milp_instances() -> Vec<mip::Problem> {
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        fn below(&mut self, bound: u64) -> usize {
            usize::try_from(self.next() % bound).expect("small bound")
        }
    }
    let mut rng = Rng(0x3117_b3ac_0001);
    let mut set = Vec::with_capacity(20);
    for _ in 0..12 {
        let n = 8 + rng.below(5); // 8..=12 binaries
        let mut p = mip::Problem::new(mip::Sense::Maximize);
        let mut obj = mip::LinExpr::new();
        let mut load = mip::LinExpr::new();
        let mut total = 0usize;
        for i in 0..n {
            let x = p.add_binary(format!("x{i}"));
            let base = f64_of_usize(1 + rng.below(9));
            let fingerprint = f64::from(1u32 << u32::try_from(i).expect("i ≤ 11"));
            obj.add_term(x, base * 4096.0 + fingerprint);
            let w = 1 + rng.below(7);
            total += w;
            load.add_term(x, f64_of_usize(w));
        }
        p.set_objective(obj);
        p.add_constraint(load, mip::Cmp::Le, f64_of_usize(total / 2));
        set.push(p);
    }
    for k in 0..8 {
        // maximize Σ x_i with rows `2 x_i <= 2k+1`: the LP optimum sits at
        // the fractional (2k+1)/2 until either branching (cold) or integer
        // bound rounding (presolve) resolves it.
        let mut p = mip::Problem::new(mip::Sense::Maximize);
        let mut obj = mip::LinExpr::new();
        for i in 0..4usize {
            let x = p.add_integer(format!("y{i}"), 0.0, 50.0);
            obj.add_term(x, f64_of_usize(1 + i));
            p.add_constraint(
                mip::LinExpr::terms(&[(x, 2.0)]),
                mip::Cmp::Le,
                f64_of_usize(2 * (k + i) + 1),
            );
        }
        p.set_objective(obj);
        set.push(p);
    }
    set
}

/// MILP engine benchmark: the pinned instance set solved by four engine
/// configurations (cold serial reference, presolve only, presolve+warm
/// starts, and the parallel 2-thread pipeline). Every configuration must
/// reproduce the cold reference bit for bit before its numbers count;
/// the JSON block carries per-config node/pivot aggregates, the presolve
/// reduction counters, the warm-start hit rate and a log2 microsecond
/// histogram of solve times (the histogram is timing, everything else is
/// deterministic).
fn milp_bench() -> String {
    let set = milp_instances();
    let configs: [(&str, mip::Solver); 4] = [
        ("cold", mip::Solver::new().presolve(false).warm_lp(false).threads(1)),
        ("presolved", mip::Solver::new().presolve(true).warm_lp(false).threads(1)),
        ("warm", mip::Solver::new().presolve(true).warm_lp(true).threads(1)),
        ("parallel2", mip::Solver::new().presolve(true).warm_lp(true).threads(2)),
    ];
    #[derive(Default)]
    struct Agg {
        nodes: u64,
        lp_solves: u64,
        pivots: u64,
        warm_hits: u64,
        warm_rejects: u64,
        vars_fixed: u64,
        rows_dropped: u64,
        bounds_tightened: u64,
        coef_reductions: u64,
        hist: [u64; 16],
        secs: f64,
    }
    let mut reference: Vec<mip::Solution> = Vec::with_capacity(set.len());
    let mut aggs: Vec<Agg> = Vec::new();
    for (name, solver) in &configs {
        let mut agg = Agg::default();
        let t0 = Instant::now();
        for (i, p) in set.iter().enumerate() {
            let s0 = Instant::now();
            let sol = solver.solve(p).unwrap_or_else(|e| panic!("milp[{i}] {name}: {e}"));
            let us = u64::try_from(s0.elapsed().as_micros()).unwrap_or(u64::MAX);
            let bucket = usize::try_from(us.max(1).ilog2()).expect("ilog2 < 64").min(15);
            agg.hist[bucket] += 1;
            assert_eq!(sol.status, mip::SolveStatus::Optimal, "milp[{i}] {name}");
            if let Some(base) = reference.get(i) {
                assert_eq!(
                    sol.objective.to_bits(),
                    base.objective.to_bits(),
                    "milp[{i}] {name}: objective diverged from the cold reference"
                );
                assert_eq!(
                    sol.values(),
                    base.values(),
                    "milp[{i}] {name}: incumbent diverged from the cold reference"
                );
            }
            agg.nodes += sol.stats.nodes;
            agg.lp_solves += sol.stats.lp_solves;
            agg.pivots += sol.stats.pivots;
            agg.warm_hits += sol.stats.warm_hits;
            agg.warm_rejects += sol.stats.warm_rejects;
            agg.vars_fixed += sol.stats.presolve.vars_fixed;
            agg.rows_dropped += sol.stats.presolve.rows_dropped;
            agg.bounds_tightened += sol.stats.presolve.bounds_tightened;
            agg.coef_reductions += sol.stats.presolve.coef_reductions;
            if reference.len() == i {
                reference.push(sol);
            }
        }
        agg.secs = t0.elapsed().as_secs_f64();
        aggs.push(agg);
    }
    let cold_nodes = aggs[0].nodes;
    let presolved_nodes = aggs[1].nodes;
    let warm_attempts = aggs[2].warm_hits + aggs[2].warm_rejects;
    let warm_hit_rate = if warm_attempts == 0 {
        0.0
    } else {
        f64_of_usize(usize::try_from(aggs[2].warm_hits).expect("small"))
            / f64_of_usize(usize::try_from(warm_attempts).expect("small"))
    };
    println!("== MILP engine benchmark ({} instances) ==", set.len());
    for ((name, _), agg) in configs.iter().zip(&aggs) {
        println!(
            "   {name:>9}: {:>5} nodes, {:>5} LP solves, {:>6} pivots, {:.3} s",
            agg.nodes, agg.lp_solves, agg.pivots, agg.secs
        );
    }
    println!(
        "   presolve: {} nodes -> {} nodes, {} vars fixed, {} rows dropped, {} bounds tightened, {} coefs reduced",
        cold_nodes,
        presolved_nodes,
        aggs[1].vars_fixed,
        aggs[1].rows_dropped,
        aggs[1].bounds_tightened,
        aggs[1].coef_reductions
    );
    println!(
        "   warm starts: {} hits / {} attempts ({:.1}% hit rate)",
        aggs[2].warm_hits,
        warm_attempts,
        warm_hit_rate * 100.0
    );
    let config_json = configs
        .iter()
        .zip(&aggs)
        .map(|((name, _), agg)| {
            let hist = agg
                .hist
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "\"{name}\": {{\"nodes\": {}, \"lp_solves\": {}, \"pivots\": {}, \
                 \"warm_hits\": {}, \"warm_rejects\": {}, \"secs\": {:.6}, \
                 \"solve_us_hist\": [{hist}]}}",
                agg.nodes, agg.lp_solves, agg.pivots, agg.warm_hits, agg.warm_rejects, agg.secs
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let presolve_json = JsonObj::new()
        .raw("vars_fixed", aggs[1].vars_fixed.to_string())
        .raw("rows_dropped", aggs[1].rows_dropped.to_string())
        .raw("bounds_tightened", aggs[1].bounds_tightened.to_string())
        .raw("coef_reductions", aggs[1].coef_reductions.to_string())
        .raw("node_reduction", (cold_nodes - presolved_nodes.min(cold_nodes)).to_string())
        .render();
    JsonObj::new()
        .raw("instances", set.len().to_string())
        .raw("configs", format!("{{{config_json}}}"))
        .raw("presolve", presolve_json.trim_end())
        .raw("cold_nodes", cold_nodes.to_string())
        .raw("presolved_nodes", presolved_nodes.to_string())
        .raw("warm_hit_rate", format!("{warm_hit_rate:.4}"))
        .raw("deterministic", "true".to_string())
        .render()
        .trim_end()
        .to_string()
}

fn main() {
    // Scripted fault injection (the verify.sh robustness smoke): a
    // malformed plan aborts before any work, a valid one arms the fault
    // points exercised below.
    let faults_armed = match faultsim::arm_from_env() {
        Ok(armed) => armed,
        Err(e) => {
            eprintln!("FAULT_PLAN: {e}");
            std::process::exit(2);
        }
    };
    let model_name = flag_value("model").unwrap_or_else(|| "alexnet_conv".to_string());
    let model = zoo::by_name(&model_name).expect("zoo model");
    let budget = HwBudget::nvdla_small();
    let iters = codesign_budgets(CodesignBudgets {
        hw_iters: 200,
        seg_iters: 400,
        seed: 7,
        threads: 0,
    });
    let threads = match flag_parse("threads", iters.threads) {
        0 => default_threads(),
        t => t,
    };
    let anytime = Anytime::from_flags();

    let (eval_throughput_json, speedup_curve_json) = eval_microbench();
    let milp_json = milp_bench();

    println!("== DSE executor benchmark ==");
    println!(
        "   model {model_name}, budget {}, {} hw iters, {} seg iters, seed {}",
        budget.name, iters.hw_iters, iters.seg_iters, iters.seed
    );

    let (serial_pts, serial_cache, serial_s, serial_complete) =
        run(&model, &budget, &iters, &DsePool::new(1), &anytime);
    println!("   serial   (1 thread):  {serial_s:>8.3} s, {} points", serial_pts.len());
    let (par_pts, par_cache, parallel_s, par_complete) =
        run(&model, &budget, &iters, &DsePool::new(threads), &anytime);
    println!("   parallel ({threads} threads): {parallel_s:>8.3} s, {} points", par_pts.len());

    // The executor's core contract: identical results for any thread
    // count. A violation here is a bug, not a measurement artifact —
    // unless a wall-clock deadline legitimately cut the two runs at
    // different generations, in which case only completed runs compare.
    let complete = serial_complete && par_complete;
    let deterministic = serial_pts == par_pts;
    if complete {
        assert!(
            deterministic,
            "parallel search diverged from the serial reference"
        );
    } else {
        println!("   anytime: partial run(s); skipping the determinism cross-check");
    }
    let fault_log = faultsim::injected();
    if faults_armed {
        println!(
            "   faults: plan armed, {} injected{}",
            fault_log.len(),
            if fault_log.is_empty() { "" } else { ":" }
        );
        for f in fault_log.iter().take(8) {
            println!("     {f}");
        }
        if fault_log.len() > 8 {
            println!("     ... {} more (full list in BENCH_dse.json)", fault_log.len() - 8);
        }
    }

    let speedup = serial_s / parallel_s.max(1e-12);
    println!("   speedup: {speedup:.2}x");
    let stats = par_cache.stats();
    println!(
        "   cache: {} entries ({} shards, max {} per shard), {} hits / {} misses ({:.1}% hit rate)",
        stats.entries,
        stats.shards,
        stats.max_shard,
        stats.hits,
        stats.misses,
        stats.hit_rate * 100.0
    );
    stats.publish("bench_dse.cache");

    let cache_json = JsonObj::new()
        .raw("entries", stats.entries.to_string())
        .raw("shards", stats.shards.to_string())
        .raw("max_shard", stats.max_shard.to_string())
        .raw("hits", stats.hits.to_string())
        .raw("warm_hits", stats.warm_hits.to_string())
        .raw("hot_hits", stats.hot_hits.to_string())
        .raw("misses", stats.misses.to_string())
        .raw("hit_rate", format!("{:.4}", stats.hit_rate))
        .raw(
            "serial_hit_rate",
            format!("{:.4}", serial_cache.stats().hit_rate),
        )
        .render();
    let mut json = JsonObj::new()
        .str("model", &model_name)
        .str("budget", &budget.name)
        .raw("hw_iters", iters.hw_iters.to_string())
        .raw("seg_iters", iters.seg_iters.to_string())
        .raw("seed", iters.seed.to_string())
        .raw("threads", threads.to_string())
        .raw("points", par_pts.len().to_string())
        .raw("serial_s", format!("{serial_s:.6}"))
        .raw("parallel_s", format!("{parallel_s:.6}"))
        .raw("speedup", format!("{speedup:.3}"))
        .raw("eval_throughput", &eval_throughput_json)
        .raw("speedup_curve", &speedup_curve_json)
        .raw("milp", &milp_json)
        .raw("deterministic", deterministic.to_string())
        .str("status", if complete { "complete" } else { "partial" })
        .raw("faults_armed", faults_armed.to_string())
        .raw("faults_injected", fault_log.len().to_string())
        .raw(
            "fault_log",
            format!(
                "[{}]",
                fault_log
                    .iter()
                    .map(|f| format!("\"{f}\""))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        )
        .raw("cache", cache_json.trim_end());
    // End-of-run obs report: rendered to stderr and embedded in the JSON
    // (null when OBS_LEVEL=off, the default).
    json = match obs::finish() {
        Some(report) => json.raw("obs", report.to_json()),
        None => json.raw("obs", "null"),
    };
    write_text("BENCH_dse.json", &json.render());
}
