//! Wall-clock benchmark of the parallel DSE executor + memoized PU-cost
//! cache: runs the Figure 18 co-design search serial (1 thread) and
//! parallel, checks the point clouds are bit-identical, and writes the
//! timings, speedup, cache statistics and (when `OBS_LEVEL` is not `off`)
//! the obs summary report to `results/BENCH_dse.json`.
//!
//! ```text
//! cargo run --release -p experiments --bin bench_dse -- \
//!     [--threads 8] [--hw-iters 200] [--seg-iters 400] [--seed 7] [--model alexnet_conv]
//! ```
//!
//! `DSE_SMOKE=1` shrinks the iteration budgets for CI smoke runs;
//! `OBS_LEVEL=summary OBS_OUT=results/obs/bench_dse.jsonl` additionally
//! traces the run.

use autoseg::codesign::{
    baye_baye_with, mip_baye_with, mip_heuristic_with, CodesignBudgets, DesignPoint,
};
use autoseg::dse::{default_threads, DsePool};
use experiments::{codesign_budgets, flag_parse, flag_value, write_text, JsonObj};
use nnmodel::zoo;
use pucost::EvalCache;
use spa_arch::HwBudget;
use std::time::Instant;

/// One full co-design workload on a given pool; every method shares one
/// cache, as the engine wiring does.
fn run(
    model: &nnmodel::Graph,
    budget: &HwBudget,
    iters: &CodesignBudgets,
    pool: &DsePool,
) -> (Vec<DesignPoint>, EvalCache, f64) {
    let cache = EvalCache::default();
    let t0 = Instant::now();
    let mut pts = mip_heuristic_with(model, budget, pool, &cache).expect("mip-heuristic");
    pts.extend(mip_baye_with(model, budget, iters, pool, &cache).expect("mip-baye"));
    pts.extend(baye_baye_with(model, budget, iters, pool, &cache).expect("baye-baye"));
    let secs = t0.elapsed().as_secs_f64();
    (pts, cache, secs)
}

fn main() {
    let model_name = flag_value("model").unwrap_or_else(|| "alexnet_conv".to_string());
    let model = zoo::by_name(&model_name).expect("zoo model");
    let budget = HwBudget::nvdla_small();
    let iters = codesign_budgets(CodesignBudgets {
        hw_iters: 200,
        seg_iters: 400,
        seed: 7,
        threads: 0,
    });
    let threads = match flag_parse("threads", iters.threads) {
        0 => default_threads(),
        t => t,
    };

    println!("== DSE executor benchmark ==");
    println!(
        "   model {model_name}, budget {}, {} hw iters, {} seg iters, seed {}",
        budget.name, iters.hw_iters, iters.seg_iters, iters.seed
    );

    let (serial_pts, serial_cache, serial_s) = run(&model, &budget, &iters, &DsePool::new(1));
    println!("   serial   (1 thread):  {serial_s:>8.3} s, {} points", serial_pts.len());
    let (par_pts, par_cache, parallel_s) = run(&model, &budget, &iters, &DsePool::new(threads));
    println!("   parallel ({threads} threads): {parallel_s:>8.3} s, {} points", par_pts.len());

    // The executor's core contract: identical results for any thread
    // count. A violation here is a bug, not a measurement artifact.
    let deterministic = serial_pts == par_pts;
    assert!(
        deterministic,
        "parallel search diverged from the serial reference"
    );

    let speedup = serial_s / parallel_s.max(1e-12);
    println!("   speedup: {speedup:.2}x");
    let stats = par_cache.stats();
    println!(
        "   cache: {} entries ({} shards, max {} per shard), {} hits / {} misses ({:.1}% hit rate)",
        stats.entries,
        stats.shards,
        stats.max_shard,
        stats.hits,
        stats.misses,
        stats.hit_rate * 100.0
    );
    stats.publish("bench_dse.cache");

    let cache_json = JsonObj::new()
        .raw("entries", stats.entries.to_string())
        .raw("shards", stats.shards.to_string())
        .raw("max_shard", stats.max_shard.to_string())
        .raw("hits", stats.hits.to_string())
        .raw("misses", stats.misses.to_string())
        .raw("hit_rate", format!("{:.4}", stats.hit_rate))
        .raw(
            "serial_hit_rate",
            format!("{:.4}", serial_cache.stats().hit_rate),
        )
        .render();
    let mut json = JsonObj::new()
        .str("model", &model_name)
        .str("budget", &budget.name)
        .raw("hw_iters", iters.hw_iters.to_string())
        .raw("seg_iters", iters.seg_iters.to_string())
        .raw("seed", iters.seed.to_string())
        .raw("threads", threads.to_string())
        .raw("points", par_pts.len().to_string())
        .raw("serial_s", format!("{serial_s:.6}"))
        .raw("parallel_s", format!("{parallel_s:.6}"))
        .raw("speedup", format!("{speedup:.3}"))
        .raw("deterministic", deterministic.to_string())
        .raw("cache", cache_json.trim_end());
    // End-of-run obs report: rendered to stderr and embedded in the JSON
    // (null when OBS_LEVEL=off, the default).
    json = match obs::finish() {
        Some(report) => json.raw("obs", report.to_json()),
        None => json.raw("obs", "null"),
    };
    write_text("BENCH_dse.json", &json.render());
}
