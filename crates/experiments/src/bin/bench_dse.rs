//! Wall-clock benchmark of the parallel DSE executor + memoized PU-cost
//! cache: runs the Figure 18 co-design search serial (1 thread) and
//! parallel, checks the point clouds are bit-identical, and writes the
//! timings, speedup and cache statistics to `results/BENCH_dse.json`.
//!
//! ```text
//! cargo run --release -p experiments --bin bench_dse -- \
//!     [--threads 8] [--hw-iters 200] [--seg-iters 400] [--seed 7] [--model alexnet_conv]
//! ```
//!
//! `DSE_SMOKE=1` shrinks the iteration budgets for CI smoke runs.

use autoseg::codesign::{
    baye_baye_with, mip_baye_with, mip_heuristic_with, CodesignBudgets, DesignPoint,
};
use autoseg::dse::{default_threads, DsePool};
use experiments::{codesign_budgets, flag_parse, flag_value, results_dir};
use nnmodel::zoo;
use pucost::EvalCache;
use spa_arch::HwBudget;
use std::io::Write as _;
use std::time::Instant;

/// One full co-design workload on a given pool; every method shares one
/// cache, as the engine wiring does.
fn run(
    model: &nnmodel::Graph,
    budget: &HwBudget,
    iters: &CodesignBudgets,
    pool: &DsePool,
) -> (Vec<DesignPoint>, EvalCache, f64) {
    let cache = EvalCache::default();
    let t0 = Instant::now();
    let mut pts = mip_heuristic_with(model, budget, pool, &cache).expect("mip-heuristic");
    pts.extend(mip_baye_with(model, budget, iters, pool, &cache).expect("mip-baye"));
    pts.extend(baye_baye_with(model, budget, iters, pool, &cache).expect("baye-baye"));
    let secs = t0.elapsed().as_secs_f64();
    (pts, cache, secs)
}

fn main() {
    let model_name = flag_value("model").unwrap_or_else(|| "alexnet_conv".to_string());
    let model = zoo::by_name(&model_name).expect("zoo model");
    let budget = HwBudget::nvdla_small();
    let iters = codesign_budgets(CodesignBudgets {
        hw_iters: 200,
        seg_iters: 400,
        seed: 7,
        threads: 0,
    });
    let threads = match flag_parse("threads", iters.threads) {
        0 => default_threads(),
        t => t,
    };

    println!("== DSE executor benchmark ==");
    println!(
        "   model {model_name}, budget {}, {} hw iters, {} seg iters, seed {}",
        budget.name, iters.hw_iters, iters.seg_iters, iters.seed
    );

    let (serial_pts, serial_cache, serial_s) = run(&model, &budget, &iters, &DsePool::new(1));
    println!("   serial   (1 thread):  {serial_s:>8.3} s, {} points", serial_pts.len());
    let (par_pts, par_cache, parallel_s) = run(&model, &budget, &iters, &DsePool::new(threads));
    println!("   parallel ({threads} threads): {parallel_s:>8.3} s, {} points", par_pts.len());

    // The executor's core contract: identical results for any thread
    // count. A violation here is a bug, not a measurement artifact.
    let deterministic = serial_pts == par_pts;
    assert!(
        deterministic,
        "parallel search diverged from the serial reference"
    );

    let speedup = serial_s / parallel_s.max(1e-12);
    println!("   speedup: {speedup:.2}x");
    println!(
        "   cache: {} entries, {} hits / {} misses ({:.1}% hit rate)",
        par_cache.len(),
        par_cache.hits(),
        par_cache.misses(),
        par_cache.hit_rate() * 100.0
    );

    // Hand-rolled JSON (the workspace has no JSON serializer wired into
    // the experiment harness; the schema is flat and numeric).
    let json = format!(
        concat!(
            "{{\n",
            "  \"model\": \"{}\",\n",
            "  \"budget\": \"{}\",\n",
            "  \"hw_iters\": {},\n",
            "  \"seg_iters\": {},\n",
            "  \"seed\": {},\n",
            "  \"threads\": {},\n",
            "  \"points\": {},\n",
            "  \"serial_s\": {:.6},\n",
            "  \"parallel_s\": {:.6},\n",
            "  \"speedup\": {:.3},\n",
            "  \"deterministic\": {},\n",
            "  \"cache\": {{\n",
            "    \"entries\": {},\n",
            "    \"hits\": {},\n",
            "    \"misses\": {},\n",
            "    \"hit_rate\": {:.4},\n",
            "    \"serial_hit_rate\": {:.4}\n",
            "  }}\n",
            "}}\n"
        ),
        model_name,
        budget.name,
        iters.hw_iters,
        iters.seg_iters,
        iters.seed,
        threads,
        par_pts.len(),
        serial_s,
        parallel_s,
        speedup,
        deterministic,
        par_cache.len(),
        par_cache.hits(),
        par_cache.misses(),
        par_cache.hit_rate(),
        serial_cache.hit_rate(),
    );
    let path = results_dir().join("BENCH_dse.json");
    let mut f = std::fs::File::create(&path).expect("create BENCH_dse.json");
    f.write_all(json.as_bytes()).expect("write BENCH_dse.json");
    println!("  -> wrote {}", path.display());
}
