//! Wall-clock benchmark of the parallel DSE executor + memoized PU-cost
//! cache: runs the Figure 18 co-design search serial (1 thread) and
//! parallel, checks the point clouds are bit-identical, and writes the
//! timings, speedup, cache statistics and (when `OBS_LEVEL` is not `off`)
//! the obs summary report to `results/BENCH_dse.json`.
//!
//! ```text
//! cargo run --release -p experiments --bin bench_dse -- \
//!     [--threads 8] [--hw-iters 200] [--seg-iters 400] [--seed 7] [--model alexnet_conv] \
//!     [--deadline MS] [--checkpoint PATH [--checkpoint-every N]] [--resume PATH]
//! ```
//!
//! `DSE_SMOKE=1` shrinks the iteration budgets for CI smoke runs;
//! `OBS_LEVEL=summary OBS_OUT=results/obs/bench_dse.jsonl` additionally
//! traces the run. `DSE_DEADLINE_MS` / `--deadline` turn the benchmark
//! into an anytime run (each leg gets its own budget from its start);
//! `--checkpoint`/`--resume` persist and restore per-method search state
//! (the method label is appended to the path). `FAULT_PLAN` arms the
//! deterministic fault-injection points (see `crates/faultsim`); every
//! injected fault is listed in the JSON report.

use autoseg::codesign::{run_codesign_with, CodesignBudgets, DesignPoint, Method};
use autoseg::dse::{default_threads, DsePool};
use autoseg::RunCtl;
use experiments::{codesign_budgets, flag_parse, flag_value, write_text, JsonObj};
use nnmodel::zoo;
use pucost::EvalCache;
use spa_arch::HwBudget;
use std::time::{Duration, Instant};

/// The benchmark's method mix: the heuristic plus the two
/// optimizer-backed searches with the most executor traffic.
const METHODS: [Method; 3] = [Method::MipHeuristic, Method::MipBaye, Method::BayeBaye];

/// Anytime-execution options from the CLI (`--deadline` in milliseconds,
/// `--checkpoint`/`--resume` as base paths that get `.{method}` appended
/// so the three legs never clobber each other's state).
struct Anytime {
    deadline_ms: Option<u64>,
    checkpoint: Option<String>,
    every: u64,
    resume: Option<String>,
}

impl Anytime {
    fn from_flags() -> Self {
        Anytime {
            deadline_ms: flag_value("deadline")
                .map(|v| v.parse().unwrap_or_else(|_| panic!("--deadline: cannot parse {v:?}"))),
            checkpoint: flag_value("checkpoint"),
            every: flag_parse("checkpoint-every", 1),
            resume: flag_value("resume"),
        }
    }

    /// The per-leg policy. The deadline is taken from the leg's start so
    /// serial and parallel runs get equal budgets.
    fn ctl(&self, method: Method) -> RunCtl {
        let mut ctl = RunCtl::none().deadline_from_env();
        if let Some(ms) = self.deadline_ms {
            ctl = ctl.deadline(Duration::from_millis(ms));
        }
        if let Some(base) = &self.checkpoint {
            ctl = ctl.checkpoint(format!("{base}.{method}"), self.every);
        }
        if let Some(base) = &self.resume {
            ctl = ctl.resume(format!("{base}.{method}"));
        }
        ctl
    }
}

/// One full co-design workload on a given pool; every method shares one
/// cache, as the engine wiring does. The `bool` is `true` when every leg
/// ran to completion (no deadline / generation-budget stop).
fn run(
    model: &nnmodel::Graph,
    budget: &HwBudget,
    iters: &CodesignBudgets,
    pool: &DsePool,
    anytime: &Anytime,
) -> (Vec<DesignPoint>, EvalCache, f64, bool) {
    let cache = EvalCache::default();
    let t0 = Instant::now();
    let mut pts = Vec::new();
    let mut complete = true;
    for method in METHODS {
        let r = run_codesign_with(model, budget, iters, method, pool, &cache, &anytime.ctl(method))
            .unwrap_or_else(|e| panic!("{method}: {e}"));
        complete &= r.status.is_complete();
        pts.extend(r.points);
    }
    let secs = t0.elapsed().as_secs_f64();
    (pts, cache, secs, complete)
}

fn main() {
    // Scripted fault injection (the verify.sh robustness smoke): a
    // malformed plan aborts before any work, a valid one arms the fault
    // points exercised below.
    let faults_armed = match faultsim::arm_from_env() {
        Ok(armed) => armed,
        Err(e) => {
            eprintln!("FAULT_PLAN: {e}");
            std::process::exit(2);
        }
    };
    let model_name = flag_value("model").unwrap_or_else(|| "alexnet_conv".to_string());
    let model = zoo::by_name(&model_name).expect("zoo model");
    let budget = HwBudget::nvdla_small();
    let iters = codesign_budgets(CodesignBudgets {
        hw_iters: 200,
        seg_iters: 400,
        seed: 7,
        threads: 0,
    });
    let threads = match flag_parse("threads", iters.threads) {
        0 => default_threads(),
        t => t,
    };
    let anytime = Anytime::from_flags();

    println!("== DSE executor benchmark ==");
    println!(
        "   model {model_name}, budget {}, {} hw iters, {} seg iters, seed {}",
        budget.name, iters.hw_iters, iters.seg_iters, iters.seed
    );

    let (serial_pts, serial_cache, serial_s, serial_complete) =
        run(&model, &budget, &iters, &DsePool::new(1), &anytime);
    println!("   serial   (1 thread):  {serial_s:>8.3} s, {} points", serial_pts.len());
    let (par_pts, par_cache, parallel_s, par_complete) =
        run(&model, &budget, &iters, &DsePool::new(threads), &anytime);
    println!("   parallel ({threads} threads): {parallel_s:>8.3} s, {} points", par_pts.len());

    // The executor's core contract: identical results for any thread
    // count. A violation here is a bug, not a measurement artifact —
    // unless a wall-clock deadline legitimately cut the two runs at
    // different generations, in which case only completed runs compare.
    let complete = serial_complete && par_complete;
    let deterministic = serial_pts == par_pts;
    if complete {
        assert!(
            deterministic,
            "parallel search diverged from the serial reference"
        );
    } else {
        println!("   anytime: partial run(s); skipping the determinism cross-check");
    }
    let fault_log = faultsim::injected();
    if faults_armed {
        println!(
            "   faults: plan armed, {} injected{}",
            fault_log.len(),
            if fault_log.is_empty() { "" } else { ":" }
        );
        for f in fault_log.iter().take(8) {
            println!("     {f}");
        }
        if fault_log.len() > 8 {
            println!("     ... {} more (full list in BENCH_dse.json)", fault_log.len() - 8);
        }
    }

    let speedup = serial_s / parallel_s.max(1e-12);
    println!("   speedup: {speedup:.2}x");
    let stats = par_cache.stats();
    println!(
        "   cache: {} entries ({} shards, max {} per shard), {} hits / {} misses ({:.1}% hit rate)",
        stats.entries,
        stats.shards,
        stats.max_shard,
        stats.hits,
        stats.misses,
        stats.hit_rate * 100.0
    );
    stats.publish("bench_dse.cache");

    let cache_json = JsonObj::new()
        .raw("entries", stats.entries.to_string())
        .raw("shards", stats.shards.to_string())
        .raw("max_shard", stats.max_shard.to_string())
        .raw("hits", stats.hits.to_string())
        .raw("warm_hits", stats.warm_hits.to_string())
        .raw("hot_hits", stats.hot_hits.to_string())
        .raw("misses", stats.misses.to_string())
        .raw("hit_rate", format!("{:.4}", stats.hit_rate))
        .raw(
            "serial_hit_rate",
            format!("{:.4}", serial_cache.stats().hit_rate),
        )
        .render();
    let mut json = JsonObj::new()
        .str("model", &model_name)
        .str("budget", &budget.name)
        .raw("hw_iters", iters.hw_iters.to_string())
        .raw("seg_iters", iters.seg_iters.to_string())
        .raw("seed", iters.seed.to_string())
        .raw("threads", threads.to_string())
        .raw("points", par_pts.len().to_string())
        .raw("serial_s", format!("{serial_s:.6}"))
        .raw("parallel_s", format!("{parallel_s:.6}"))
        .raw("speedup", format!("{speedup:.3}"))
        .raw("deterministic", deterministic.to_string())
        .str("status", if complete { "complete" } else { "partial" })
        .raw("faults_armed", faults_armed.to_string())
        .raw("faults_injected", fault_log.len().to_string())
        .raw(
            "fault_log",
            format!(
                "[{}]",
                fault_log
                    .iter()
                    .map(|f| format!("\"{f}\""))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        )
        .raw("cache", cache_json.trim_end());
    // End-of-run obs report: rendered to stderr and embedded in the JSON
    // (null when OBS_LEVEL=off, the default).
    json = match obs::finish() {
        Some(report) => json.raw("obs", report.to_json()),
        None => json.raw("obs", "null"),
    };
    write_text("BENCH_dse.json", &json.render());
}
