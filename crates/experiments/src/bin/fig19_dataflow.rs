//! Figure 19: on-chip data-moving energy of WS-only, OS-only and
//! dataflow-hybrid SPA designs.
//!
//! The hybrid configuration (Algorithm 1's per-(PU, segment) selection)
//! should match or beat the better single dataflow on every model; OS-only
//! favors fmap-heavy models (MobileNetV1, SqueezeNet) while WS-only favors
//! weight-heavy ones (AlexNet, ResNet18).

use autoseg::DesignGoal;
use experiments::svg::{write_svg_chart, Series};
use experiments::{design_for, f3, print_table, short_name, write_csv};
use nnmodel::{zoo, Workload};
use pucost::Dataflow;
use spa_arch::HwBudget;
use spa_sim::simulate_spa;

fn main() {
    println!("== Figure 19: on-chip data-moving cost by dataflow ==");
    let budget = HwBudget::nvdla_large();
    let models = ["alexnet", "resnet18", "mobilenet_v1", "squeezenet1_0"];

    let mut rows = Vec::new();
    for name in models {
        let model = zoo::by_name(name).expect("zoo model");
        let w = Workload::from_graph(&model);
        let out = design_for(&model, &budget, DesignGoal::Latency).expect("feasible");
        let hybrid = &out.report;

        let force = |df: Dataflow| {
            let mut d = out.design.clone();
            for row in &mut d.dataflows {
                for slot in row {
                    *slot = df;
                }
            }
            simulate_spa(&w, &d)
        };
        let ws = force(Dataflow::WeightStationary);
        let os = force(Dataflow::OutputStationary);

        let moving = |r: &spa_sim::SimReport| r.energy.onchip.data_moving_pj() / 1e6;
        rows.push(vec![
            short_name(name).to_string(),
            f3(moving(&ws)),
            f3(moving(&os)),
            f3(moving(hybrid)),
        ]);
        // Algorithm 1 picks dataflows by *latency* (line 12), so the
        // hybrid can trade a little data-moving energy for speed; it must
        // still be close to the better single dataflow.
        assert!(
            moving(hybrid) <= moving(&ws).min(moving(&os)) * 1.25,
            "{name}: hybrid far from the better single dataflow"
        );
    }
    let header = ["model", "WS-only uJ", "OS-only uJ", "hybrid uJ"];
    print_table(&header, &rows);
    write_csv("fig19_dataflow.csv", &header, &rows);
    let cats: Vec<&str> = rows.iter().map(|r| r[0].as_str()).collect();
    let series: Vec<Series> = ["WS-only", "OS-only", "hybrid"]
        .iter()
        .enumerate()
        .map(|(k, label)| Series {
            label: (*label).into(),
            values: rows.iter().map(|r| r[k + 1].parse().unwrap_or(f64::NAN)).collect(),
        })
        .collect();
    write_svg_chart(
        "fig19_dataflow.svg",
        "On-chip data-moving energy by dataflow (uJ/frame)",
        &cats,
        &series,
    );
}
