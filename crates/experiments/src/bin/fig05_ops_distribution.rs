//! Figure 5: operation counts across SqueezeNet layers, grouped into
//! segments — with proper layer grouping the per-segment operational
//! distributions are similar, enabling a shared load-balanced pipeline.

use experiments::{f3, print_table, write_csv};
use nnmodel::{analysis, zoo, Workload};

fn main() {
    println!("== Figure 5: SqueezeNet operation distribution ==");
    let w = Workload::from_graph(&zoo::squeezenet1_0());
    let segs = analysis::even_segments(&w, 6);

    let mut rows = Vec::new();
    for (si, seg) in segs.iter().enumerate() {
        let total = analysis::segment_ops(&w, seg).max(1);
        // Sorted per-layer shares: the "one high, one medium, several low"
        // shape the paper observes.
        let mut shares: Vec<f64> = seg
            .iter()
            .map(|&i| w.items()[i].ops as f64 / total as f64)
            .collect();
        shares.sort_by(|a, b| b.partial_cmp(a).unwrap());
        rows.push(vec![
            format!("segment {}", si + 1),
            seg.len().to_string(),
            format!("{:.1}M", total as f64 / 1e6),
            shares.iter().map(|s| f3(*s)).collect::<Vec<_>>().join(" "),
        ]);
    }
    print_table(
        &["segment", "layers", "total MACs", "sorted shares"],
        &rows,
    );
    write_csv(
        "fig05_ops_distribution.csv",
        &["segment", "layers", "total_macs", "sorted_shares"],
        &rows,
    );

    // Similarity metric: SOD between sorted distributions (padded).
    let n = segs.iter().map(Vec::len).max().unwrap_or(0);
    let dists: Vec<Vec<f64>> = segs
        .iter()
        .map(|seg| {
            let total = analysis::segment_ops(&w, seg).max(1);
            let mut v: Vec<f64> = seg
                .iter()
                .map(|&i| w.items()[i].ops as f64 / total as f64)
                .collect();
            v.sort_by(|a, b| b.partial_cmp(a).unwrap());
            v.resize(n, 0.0);
            v
        })
        .collect();
    println!("pairwise SOD of sorted distributions: {}", f3(nnmodel::analysis::sod(&dists)));
}
