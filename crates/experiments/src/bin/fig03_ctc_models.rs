//! Figure 3: CTC ratios of models under no-pipeline, full-pipeline and
//! segment-grained pipeline implementations.
//!
//! The paper evenly divides SqueezeNet, MobileNetV2, GoogLeNet and
//! EfficientNet-B0 into 6 / 3 / 6 / 5-layer segments respectively.

use experiments::{f3, print_table, short_name, write_csv};
use nnmodel::{analysis, zoo, Workload};

fn main() {
    println!("== Figure 3: CTC of no-/segment-/full-pipeline ==");
    let cases = [
        (zoo::squeezenet1_0(), 6usize),
        (zoo::mobilenet_v2(), 3),
        (zoo::googlenet(), 6),
        (zoo::efficientnet_b0(), 5),
    ];

    let mut rows = Vec::new();
    for (g, per_seg) in &cases {
        let w = Workload::from_graph(g);
        let no_pipe = analysis::layerwise_ctc(&w);
        let segs = analysis::even_segments(&w, *per_seg);
        let seg = analysis::segmented_ctc(&w, &segs);
        let full = analysis::full_pipeline_ctc(&w);
        rows.push(vec![
            short_name(g.name()).to_string(),
            per_seg.to_string(),
            f3(no_pipe),
            f3(seg),
            f3(full),
            f3(seg / no_pipe),
        ]);
    }
    print_table(
        &["model", "seg len", "no-pipeline", "segment", "full", "seg/no gain"],
        &rows,
    );
    write_csv(
        "fig03_ctc_models.csv",
        &["model", "segment_len", "ctc_no_pipeline", "ctc_segment", "ctc_full", "gain"],
        &rows,
    );
}
