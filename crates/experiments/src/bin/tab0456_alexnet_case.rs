//! Tables IV, V, VI and Figure 14: the AlexNet (conv-only) case study on
//! a ZC706-class budget at 200 MHz with 768 PEs — no-pipeline vs
//! full-pipeline vs the AutoSeg SPA design, with per-PU latencies, PE
//! utilization and DRAM traffic.

use autoseg::segment::MipSegmenter;
use autoseg::{AutoSeg, DesignGoal};
use experiments::{f3, print_table, write_csv};
use nnmodel::{zoo, Workload};
use spa_arch::{HwBudget, Platform};
use pucost::Dataflow;
use spa_sim::{full_pipeline_design, simulate_processor, simulate_spa};

fn case_budget() -> HwBudget {
    HwBudget {
        name: "zc706-case".into(),
        platform: Platform::Fpga,
        pes: 768,
        on_chip_bytes: 545 * 4096,
        bandwidth_gbps: 5.3,
        freq_mhz: 200.0,
    }
}

fn main() {
    println!("== Tables IV-VI + Figure 14: AlexNet conv case study @768 PEs, 200 MHz ==");
    let model = zoo::alexnet_conv();
    let w = Workload::from_graph(&model);
    let budget = case_budget();

    // Table IV: no-pipeline (one unified 768-PE PU, weight-stationary —
    // the customized-but-fixed-dataflow design of [29]).
    println!("\n-- Table IV: customized no-pipeline accelerator --");
    let lw = simulate_processor(&w, &budget, Dataflow::WeightStationary);
    let mut rows: Vec<Vec<String>> = w
        .items()
        .iter()
        .zip(&lw.per_segment)
        .map(|(item, seg)| {
            vec![
                item.name.clone(),
                f3(seg.cycles() as f64 / (budget.freq_mhz * 1e3)), // ms
            ]
        })
        .collect();
    rows.push(vec!["TOTAL".into(), f3(lw.seconds * 1e3)]);
    rows.push(vec!["PE utilization %".into(), f3(lw.utilization * 100.0)]);
    print_table(&["layer", "latency ms"], &rows);
    write_csv("tab04_no_pipeline.csv", &["layer", "latency_ms"], &rows);

    // Table V: full pipeline (one PU per conv item).
    println!("\n-- Table V: customized full-pipeline accelerator --");
    let fp = full_pipeline_design(&w, &budget).expect("768 PEs cover 10 items");
    let fpr = simulate_spa(&w, &fp);
    let seg0 = &fpr.per_segment[0];
    let total_ops = w.total_ops() as f64;
    let mut rows: Vec<Vec<String>> = w
        .items()
        .iter()
        .enumerate()
        .map(|(i, item)| {
            vec![
                item.name.clone(),
                fp.pus[i].num_pe().to_string(),
                f3(item.ops as f64 / total_ops),
                f3(seg0.pu_cycles[i] as f64 / (budget.freq_mhz * 1e3)),
            ]
        })
        .collect();
    rows.push(vec![
        "OVERALL".into(),
        fp.total_pes().to_string(),
        "1.00".into(),
        f3(fpr.seconds * 1e3),
    ]);
    rows.push(vec![
        "PE utilization %".into(),
        "".into(),
        "".into(),
        f3(fpr.utilization * 100.0),
    ]);
    print_table(&["layer/PU", "#PE", "op share", "latency ms"], &rows);
    write_csv(
        "tab05_full_pipeline.csv",
        &["layer", "pes", "op_share", "latency_ms"],
        &rows,
    );

    // Table VI: the AutoSeg SPA accelerator (MILP segmentation, 4 PUs).
    println!("\n-- Table VI: AutoSeg SPA accelerator --");
    let out = AutoSeg::new(budget.clone())
        .design_goal(DesignGoal::Latency)
        .max_pus(4)
        .max_segments(2)
        .segmenter(Box::new(MipSegmenter::new()))
        .run(&model)
        .expect("case study is feasible");
    let spa = &out.design;
    let spar = &out.report;
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (pu_idx, pu) in spa.pus.iter().enumerate() {
        for (si, seg) in spa.schedule.segments.iter().enumerate() {
            let items: Vec<String> = seg
                .items_on(pu_idx)
                .iter()
                .map(|&i| w.items()[i].name.clone())
                .collect();
            let ops: u64 = seg
                .items_on(pu_idx)
                .iter()
                .map(|&i| w.items()[i].ops)
                .sum();
            rows.push(vec![
                format!("PU-{}", pu_idx + 1),
                format!("{}x{}", pu.cols, pu.rows),
                format!("seg{}", si + 1),
                items.join("+"),
                f3(ops as f64 / total_ops),
                f3(spar.per_segment[si].pu_cycles[pu_idx] as f64 / (budget.freq_mhz * 1e3)),
            ]);
        }
    }
    rows.push(vec![
        "OVERALL".into(),
        spa.total_pes().to_string(),
        format!("{} segs", spa.schedule.len()),
        "".into(),
        "1.00".into(),
        f3(spar.seconds * 1e3),
    ]);
    rows.push(vec![
        "PE utilization %".into(),
        "".into(),
        "".into(),
        "".into(),
        "".into(),
        f3(spar.utilization * 100.0),
    ]);
    print_table(
        &["PU", "CxR", "segment", "layers", "op share", "latency ms"],
        &rows,
    );
    write_csv(
        "tab06_spa.csv",
        &["pu", "geometry", "segment", "layers", "op_share", "latency_ms"],
        &rows,
    );

    // Figure 14: DRAM traffic of the three designs.
    println!("\n-- Figure 14: memory access --");
    let rows = vec![
        vec!["no-pipeline".to_string(), f3(lw.dram_bytes as f64 / 1e6)],
        vec!["full-pipeline".to_string(), f3(fpr.dram_bytes as f64 / 1e6)],
        vec!["SPA (AutoSeg)".to_string(), f3(spar.dram_bytes as f64 / 1e6)],
    ];
    print_table(&["design", "DRAM MB/frame"], &rows);
    write_csv("fig14_memory.csv", &["design", "dram_mb"], &rows);

    println!(
        "\nspeedups: SPA vs no-pipeline {:.2}x, SPA vs full-pipeline {:.2}x (paper: 1.26x / 1.14x)",
        lw.seconds / spar.seconds,
        fpr.seconds / spar.seconds
    );
}
