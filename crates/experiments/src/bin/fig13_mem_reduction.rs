//! Figure 13: DRAM memory-access reduction of the customized SPA designs
//! relative to the Eyeriss-budget layerwise baseline.
//!
//! Only intermediate-feature-map traffic is saved (weights still stream),
//! so fmap-dominated models (MobileNets, SqueezeNet) gain the most.

use autoseg::DesignGoal;
use experiments::{design_for, f3, fig12_models, print_table, short_name, write_csv};
use nnmodel::Workload;
use spa_arch::HwBudget;
use pucost::Dataflow;
use spa_sim::simulate_processor;

fn main() {
    println!("== Figure 13: memory-access reduction vs Eyeriss baseline ==");
    let budget = HwBudget::eyeriss();
    let mut rows = Vec::new();
    for model in fig12_models() {
        let w = Workload::from_graph(&model);
        let base = simulate_processor(&w, &budget, Dataflow::WeightStationary);
        let weights: u64 = w.items().iter().map(|i| i.w_bytes).sum();
        let fmap_frac = 1.0 - weights as f64 / base.dram_bytes as f64;
        match design_for(&model, &budget, DesignGoal::Latency) {
            Some(out) => {
                let reduction = 1.0 - out.report.dram_bytes as f64 / base.dram_bytes as f64;
                rows.push(vec![
                    short_name(model.name()).to_string(),
                    format!("{:.1}", base.dram_bytes as f64 / 1e6),
                    format!("{:.1}", out.report.dram_bytes as f64 / 1e6),
                    f3(reduction * 100.0),
                    f3(fmap_frac * 100.0),
                ]);
            }
            None => rows.push(vec![
                short_name(model.name()).to_string(),
                format!("{:.1}", base.dram_bytes as f64 / 1e6),
                "n/a".into(),
                "n/a".into(),
                f3(fmap_frac * 100.0),
            ]),
        }
    }
    let header = ["model", "baseline MB", "SPA MB", "reduction %", "fmap share %"];
    print_table(&header, &rows);
    write_csv("fig13_mem_reduction.csv", &header, &rows);
}
