//! End-to-end latency/throughput benchmark of the `spa-serve` service
//! over its unix-domain socket, exercising the request-grained telemetry
//! stack: N concurrent clients pipeline `eval_pu` requests through three
//! phases —
//!
//! * **cold** — fresh server, empty cache: every probe misses;
//! * **warm** — same server, same request set: in-memory cache hits;
//! * **restart** — server shut down (persisting its cache) and rehosted
//!   on the same cache dir: hits come from the disk-warmed tier.
//!
//! Per-request latency is measured client-side (submit to terminal
//! response, including queue wait) into [`obs::HdrHist`] quantile
//! histograms; server-side decomposition (queue wait, eval, respond) is
//! pulled over the wire with the `metrics` verb. A final interleaved
//! A/B pass measures the overhead of the always-on telemetry by
//! toggling the flight recorder (`obs::flight::configure`) around
//! identical warm workloads — the host runs in-process, so the toggle
//! reaches the serving threads.
//!
//! A fourth stage benchmarks the **fleet**: an in-process [`serve::Fleet`]
//! of `BENCH_SERVE_FLEET` shard processes (default 3) driven through the
//! router — cold/warm/restart phases with per-shard terminal counts (from
//! the `shard` response tag), a SIGKILL + snapshot-warmed respawn between
//! warm and restart, and an overload burst past the router's admission
//! watermark for the shed rate. Skipped (with a `fleet:null` report
//! field) only when no `spa-serve` binary is resolvable.
//!
//! Writes `results/BENCH_serve.json`. Knobs: `BENCH_SERVE_CLIENTS`
//! (default 4), `BENCH_SERVE_REQS` (requests per client per phase,
//! default 32), `BENCH_SERVE_FLEET` (shards, default 3); `--clients N` /
//! `--reqs N` / `--fleet N` override the environment.
//!
//! ```text
//! cargo run --release -p experiments --bin bench_serve -- [--clients 4] [--reqs 32] [--fleet 3]
//! ```

use experiments::{flag_parse, write_text};
use obs::HdrHist;
use serve::json::{obj, parse, Json};
use serve::ServeConfig;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;
use std::time::{Duration, Instant};

/// How long a client waits for the full response set of one phase.
const PHASE_TIMEOUT: Duration = Duration::from_secs(120);

fn env_parse(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// One deterministic `eval_pu` request line. `key` selects the layer
/// shape: equal keys are cache-equal probes, distinct keys are cold.
fn eval_line(id: u64, key: usize) -> String {
    let k = key % 48;
    format!(
        "{{\"v\":1,\"id\":{id},\"req\":\"eval_pu\",\"dataflow\":\"best\",\
         \"layer\":{{\"in_c\":{},\"in_h\":14,\"in_w\":14,\"out_c\":{},\"out_h\":14,\"out_w\":14,\
         \"kernel\":3,\"stride\":1,\"groups\":1,\"is_fc\":false}},\
         \"pu\":{{\"rows\":16,\"cols\":16}}}}",
        8 + 8 * k,
        16 + 16 * k
    )
}

/// Hosts `serve::run_socket` on its own thread. The server is stopped by
/// sending a `shutdown` request; the returned handle joins once the
/// socket loop has drained and flushed the persistent cache.
fn host(sock: PathBuf, cache_dir: PathBuf) -> std::thread::JoinHandle<()> {
    // Host thread only boots the server; trace ids are minted per request
    // inside serve's execute path. lint: allow(untraced-spawn)
    std::thread::spawn(move || {
        // Stopped via the protocol, never via this flag.
        static NEVER: AtomicBool = AtomicBool::new(false);
        let cfg = ServeConfig {
            cache_dir: Some(cache_dir),
            ..ServeConfig::from_env()
        };
        if let Err(e) = serve::run_socket(&sock, cfg, &NEVER) {
            eprintln!("bench_serve: host failed: {e}");
            std::process::exit(1);
        }
    })
}

fn connect(sock: &Path) -> UnixStream {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match UnixStream::connect(sock) {
            Ok(s) => return s,
            Err(e) if Instant::now() < deadline => {
                let _ = e; // server still binding
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("bench_serve: cannot connect {}: {e}", sock.display()),
        }
    }
}

/// `true` for a line that terminates a request (`done`/`partial`/`error`).
fn is_terminal(v: &Json) -> bool {
    v.get("kind")
        .and_then(Json::as_str)
        .is_some_and(|k| matches!(k, "done" | "partial" | "error"))
}

/// Sends one request and returns its terminal response value.
fn rpc(sock: &Path, line: &str) -> Json {
    let stream = connect(sock);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut out = stream.try_clone().expect("clone stream");
    writeln!(out, "{line}").expect("send request");
    let mut reader = BufReader::new(stream);
    let deadline = Instant::now() + PHASE_TIMEOUT;
    let mut acc = String::new();
    while Instant::now() < deadline {
        match reader.read_line(&mut acc) {
            Ok(0) => break,
            Ok(_) => {
                let full = std::mem::take(&mut acc);
                if let Ok(v) = parse(full.trim()) {
                    if is_terminal(&v) {
                        return v;
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) => panic!("bench_serve: read failed: {e}"),
        }
    }
    panic!("bench_serve: no terminal response for {line}")
}

/// One phase: `clients` concurrent connections, each pipelining `reqs`
/// requests keyed `key_of(global_index)`, measuring submit→terminal
/// latency per request. Returns wall time, the merged latency histogram,
/// and how many responses carried a server-minted trace id.
fn drive(
    sock: &Path,
    clients: usize,
    reqs: usize,
    key_of: impl Fn(usize) -> usize + Copy + Send + Sync,
) -> (Duration, HdrHist, u64) {
    let t0 = Instant::now();
    let mut merged = HdrHist::new();
    let mut traced = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                // Load-generating clients: attribution happens server-side
                // per request, the client thread has no trace of its own.
                // lint: allow(untraced-spawn)
                scope.spawn(move || {
                    let stream = connect(sock);
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
                    let mut out = stream.try_clone().expect("clone stream");
                    let mut sent = Vec::with_capacity(reqs);
                    for i in 0..reqs {
                        let id = pucost::util::u64_of(i) + 1;
                        sent.push(Instant::now());
                        writeln!(out, "{}", eval_line(id, key_of(c * reqs + i)))
                            .expect("send request");
                    }
                    let mut hist = HdrHist::new();
                    let mut traced = 0u64;
                    let mut done = 0usize;
                    let mut reader = BufReader::new(stream);
                    let mut acc = String::new();
                    let deadline = Instant::now() + PHASE_TIMEOUT;
                    while done < reqs && Instant::now() < deadline {
                        match reader.read_line(&mut acc) {
                            Ok(0) => break,
                            Ok(_) => {
                                let full = std::mem::take(&mut acc);
                                let v = parse(full.trim()).expect("response is json");
                                if !is_terminal(&v) {
                                    continue;
                                }
                                let id =
                                    v.get("id").and_then(Json::as_u64).expect("terminal has id");
                                let i = usize::try_from(id - 1).expect("id fits");
                                let us = u64::try_from(sent[i].elapsed().as_micros())
                                    .unwrap_or(u64::MAX);
                                hist.record(us);
                                if v.get("trace").and_then(Json::as_u64).is_some() {
                                    traced += 1;
                                }
                                done += 1;
                            }
                            Err(e)
                                if matches!(
                                    e.kind(),
                                    std::io::ErrorKind::WouldBlock
                                        | std::io::ErrorKind::TimedOut
                                ) => {}
                            Err(e) => panic!("bench_serve: read failed: {e}"),
                        }
                    }
                    assert_eq!(done, reqs, "client {c}: phase timed out");
                    (hist, traced)
                })
            })
            .collect();
        for h in handles {
            let (hist, t) = h.join().expect("client thread");
            merged.merge(&hist);
            traced += t;
        }
    });
    (t0.elapsed(), merged, traced)
}

/// One fleet phase: `sessions` router sessions each resolving `reqs`
/// requests sequentially (submit, wait for the terminal), so the
/// router's admission watermark is never crossed by the probe load
/// itself. Returns wall time, the merged latency histogram, and the
/// per-shard terminal counts read off the `shard` response tags.
fn drive_fleet(
    router: &std::sync::Arc<serve::Router>,
    sessions: usize,
    reqs: usize,
    key_of: impl Fn(usize) -> usize + Copy + Send + Sync,
) -> (Duration, HdrHist, Vec<u64>) {
    let t0 = Instant::now();
    let mut merged = HdrHist::new();
    let mut per_shard = vec![0u64; router.shards()];
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|c| {
                let router = std::sync::Arc::clone(router);
                // Load-generating clients; traces are shard-minted.
                // lint: allow(untraced-spawn)
                scope.spawn(move || {
                    let session = router.session();
                    let mut hist = HdrHist::new();
                    let mut shards = vec![0u64; router.shards()];
                    for i in 0..reqs {
                        let id = pucost::util::u64_of(i) + 1;
                        let sent = Instant::now();
                        session.submit(&eval_line(id, key_of(c * reqs + i)));
                        let deadline = Instant::now() + PHASE_TIMEOUT;
                        loop {
                            assert!(
                                Instant::now() < deadline,
                                "bench_serve: fleet request {id} timed out"
                            );
                            let Some(line) = session.recv_timeout(Duration::from_millis(50))
                            else {
                                continue;
                            };
                            let v = parse(&line).expect("fleet response is json");
                            if !is_terminal(&v) {
                                continue;
                            }
                            assert_eq!(
                                v.get("kind").and_then(Json::as_str),
                                Some("done"),
                                "fleet probe failed: {line}"
                            );
                            let us = u64::try_from(sent.elapsed().as_micros())
                                .unwrap_or(u64::MAX);
                            hist.record(us);
                            if let Some(s) = v.get("shard").and_then(Json::as_u64) {
                                let s = usize::try_from(s).expect("small");
                                if s < shards.len() {
                                    shards[s] += 1;
                                }
                            }
                            break;
                        }
                    }
                    (hist, shards)
                })
            })
            .collect();
        for h in handles {
            let (hist, shards) = h.join().expect("fleet client thread");
            merged.merge(&hist);
            for (acc, n) in per_shard.iter_mut().zip(shards) {
                *acc += n;
            }
        }
    });
    (t0.elapsed(), merged, per_shard)
}

/// Fleet phase report: the single-server fields plus per-shard counts
/// and throughput split.
fn fleet_phase_json(name: &str, dur: Duration, h: &HdrHist, per_shard: &[u64]) -> (String, Json) {
    let (key, mut base) = phase_json(name, dur, h);
    let secs = dur.as_secs_f64().max(1e-9);
    let counts: Vec<Json> = per_shard.iter().map(|&n| Json::from(n)).collect();
    let rps: Vec<Json> = per_shard
        .iter()
        // Phase counts are tiny; f64 is exact. lint: allow(nondet-time)
        .map(|&n| Json::from(n as f64 / secs))
        .collect();
    if let Json::Obj(m) = &mut base {
        m.insert("per_shard_requests".to_string(), Json::Arr(counts));
        m.insert("per_shard_rps".to_string(), Json::Arr(rps));
    }
    (key, base)
}

/// The fleet benchmark: cold/warm phases, a snapshot exchange, SIGKILL
/// and respawn of the hottest shard, a restart phase measuring the
/// snapshot-warmed hit rate, and an overload burst for the shed rate.
fn fleet_bench(shards: usize, sessions: usize, reqs: usize) -> Json {
    use serve::fleet::{Fleet, FleetConfig};
    let dir = std::env::temp_dir().join(format!("bench_serve_fleet_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = FleetConfig::new(&dir);
    cfg.shards = shards;
    cfg.probe_ms = 25;
    cfg.snapshot_ms = 0; // exchanged explicitly before the kill
    cfg.soft_cap = 8; // sequential probes stay under; the burst does not
    let fleet = match Fleet::start(cfg) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("bench_serve: fleet skipped ({e})");
            return Json::Null;
        }
    };
    let router = fleet.router();
    let key_of = |g: usize| g % 48;
    let (cold_d, cold_h, cold_s) = drive_fleet(router, sessions, reqs, key_of);
    println!("   fleet cold:    {:>8.3} s, p99 {} us", cold_d.as_secs_f64(), cold_h.p99());
    let (warm_d, warm_h, warm_s) = drive_fleet(router, sessions, reqs, key_of);
    println!("   fleet warm:    {:>8.3} s, p99 {} us", warm_d.as_secs_f64(), warm_h.p99());

    // Hot restart: persist the union snapshot everywhere, SIGKILL the
    // shard that answered the most probes, and let the probe loop
    // respawn it warm.
    let merged_entries = fleet.exchange_now();
    let victim = cold_s
        .iter()
        .enumerate()
        .max_by_key(|(_, &n)| n)
        .map_or(0, |(i, _)| i);
    let old_pid = fleet.shard_pid(victim);
    fleet.kill_shard(victim, false);
    let respawned = serve::testkit::wait_until(|| {
        fleet.shard_pid(victim).is_some_and(|p| Some(p) != old_pid)
            && fleet.router().shard_up(victim)
    });
    assert!(respawned, "bench_serve: shard {victim} not respawned");
    let (restart_d, restart_h, restart_s) = drive_fleet(router, sessions, reqs, key_of);
    println!(
        "   fleet restart: {:>8.3} s, p99 {} us",
        restart_d.as_secs_f64(),
        restart_h.p99()
    );
    // The respawned victim's own counters cover only the restart phase:
    // its probes must have come from the merged snapshot, not recompute.
    let vstatus = rpc(
        &fleet.shard_socket(victim),
        "{\"v\":1,\"id\":9101,\"req\":\"status\"}",
    );
    let vcache = vstatus
        .get("result")
        .and_then(|r| r.get("cache"))
        .cloned()
        .unwrap_or(Json::Null);
    let warm_hits = vcache.get("warm_hits").and_then(Json::as_u64).unwrap_or(0);
    let probes = vcache.get("hits").and_then(Json::as_u64).unwrap_or(0)
        + vcache.get("misses").and_then(Json::as_u64).unwrap_or(0)
        + warm_hits;
    let warm_hit_rate = if probes == 0 {
        0.0
    } else {
        warm_hits as f64 / probes as f64 // counters are small; exact
    };
    println!(
        "   fleet restart warm-hit rate (shard {victim}): {warm_hit_rate:.3} ({warm_hits}/{probes})"
    );

    // Overload: one session pipelines far past the hard watermark; the
    // router must answer every line, shedding the excess typed.
    let burst = 64usize;
    let session = router.session();
    for i in 0..burst {
        let id = pucost::util::u64_of(i) + 1;
        session.submit(&eval_line(id, key_of(i)));
    }
    let mut shed = 0u64;
    let mut served = 0u64;
    let deadline = Instant::now() + PHASE_TIMEOUT;
    while (shed + served) < pucost::util::u64_of(burst) {
        assert!(Instant::now() < deadline, "bench_serve: overload burst timed out");
        let Some(line) = session.recv_timeout(Duration::from_millis(50)) else {
            continue;
        };
        let v = parse(&line).expect("burst response is json");
        if !is_terminal(&v) {
            continue;
        }
        match v.get("kind").and_then(Json::as_str) {
            Some("error") => {
                assert_eq!(
                    v.get("code").and_then(Json::as_str),
                    Some("overloaded"),
                    "untyped burst error: {line}"
                );
                shed += 1;
            }
            _ => served += 1,
        }
    }
    let shed_rate = shed as f64 / burst as f64; // burst is tiny; exact
    println!("   fleet overload: shed {shed}/{burst} ({shed_rate:.3})");

    fleet.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    obj(vec![
        ("shards", Json::from(shards)),
        ("sessions", Json::from(sessions)),
        ("requests_per_session", Json::from(reqs)),
        (
            "phases",
            Json::Obj(
                [
                    fleet_phase_json("cold", cold_d, &cold_h, &cold_s),
                    fleet_phase_json("warm", warm_d, &warm_h, &warm_s),
                    fleet_phase_json("restart", restart_d, &restart_h, &restart_s),
                ]
                .into_iter()
                .collect(),
            ),
        ),
        (
            "restart",
            obj(vec![
                ("victim", Json::from(victim)),
                ("merged_entries", Json::from(merged_entries)),
                ("warm_hits", Json::from(warm_hits)),
                ("probes", Json::from(probes)),
                ("warm_hit_rate", Json::from(warm_hit_rate)),
            ]),
        ),
        (
            "overload",
            obj(vec![
                ("burst", Json::from(burst)),
                ("shed", Json::from(shed)),
                ("served", Json::from(served)),
                ("shed_rate", Json::from(shed_rate)),
            ]),
        ),
    ])
}

fn phase_json(name: &str, dur: Duration, h: &HdrHist) -> (String, Json) {
    let secs = dur.as_secs_f64().max(1e-9);
    // h.count() requests per phase; count is small, f64 is exact.
    let rps = h.count() as f64 / secs; // lint: allow(nondet-time) — reporting only
    (
        name.to_string(),
        obj(vec![
            ("requests", Json::from(h.count())),
            ("seconds", Json::from(secs)),
            ("throughput_rps", Json::from(rps)),
            ("p50_us", Json::from(h.p50())),
            ("p90_us", Json::from(h.p90())),
            ("p99_us", Json::from(h.p99())),
            ("p999_us", Json::from(h.p999())),
            ("max_us", Json::from(h.max())),
        ]),
    )
}

fn main() {
    if let Err(e) = faultsim::arm_from_env() {
        eprintln!("FAULT_PLAN: {e}");
        std::process::exit(2);
    }
    let clients = flag_parse("clients", env_parse("BENCH_SERVE_CLIENTS", 4));
    let reqs = flag_parse("reqs", env_parse("BENCH_SERVE_REQS", 32));
    let fleet_shards = flag_parse("fleet", env_parse("BENCH_SERVE_FLEET", 3));
    let tmp = std::env::temp_dir().join(format!("bench_serve_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).expect("create temp dir");
    let sock = tmp.join("serve.sock");
    let cache_dir = tmp.join("cache");

    println!("== serve benchmark: {clients} clients x {reqs} requests per phase ==");
    let handle = host(sock.clone(), cache_dir.clone());
    // Distinct keys across the whole cold fan-in would need 24+ shapes;
    // reuse within the phase is realistic (concurrent clients probing
    // overlapping candidates) and the warm phase repeats it exactly.
    let (cold_d, cold_h, cold_traced) = drive(&sock, clients, reqs, |g| g);
    println!("   cold:    {:>8.3} s, p99 {} us", cold_d.as_secs_f64(), cold_h.p99());
    let (warm_d, warm_h, warm_traced) = drive(&sock, clients, reqs, |g| g);
    println!("   warm:    {:>8.3} s, p99 {} us", warm_d.as_secs_f64(), warm_h.p99());

    // Telemetry overhead, interleaved best-of-3: the same warm workload
    // with the flight recorder off vs on. Best-of defends the ratio
    // against co-tenant noise — a slow round measures the box, not the
    // recorder.
    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    for _ in 0..3 {
        obs::flight::configure(0);
        let (d, _, _) = drive(&sock, clients, reqs, |g| g);
        best_off = best_off.min(d.as_secs_f64());
        obs::flight::configure(256);
        let (d, _, _) = drive(&sock, clients, reqs, |g| g);
        best_on = best_on.min(d.as_secs_f64());
    }
    let overhead = best_on / best_off.max(1e-9);
    println!("   telemetry overhead: {overhead:.4}x (off {best_off:.3} s, on {best_on:.3} s)");

    // Server-side decomposition and status before shutdown.
    let metrics = rpc(&sock, "{\"v\":1,\"id\":9001,\"req\":\"metrics\",\"flight\":true}");
    let mresult = metrics.get("result").cloned().unwrap_or(Json::Null);
    let _ = rpc(&sock, "{\"v\":1,\"id\":9002,\"req\":\"shutdown\"}");
    handle.join().expect("host thread");

    // Restart on the same cache dir: the disk tier warms the cache.
    let handle = host(sock.clone(), cache_dir.clone());
    let (restart_d, restart_h, restart_traced) = drive(&sock, clients, reqs, |g| g);
    println!(
        "   restart: {:>8.3} s, p99 {} us",
        restart_d.as_secs_f64(),
        restart_h.p99()
    );
    let status = rpc(&sock, "{\"v\":1,\"id\":9003,\"req\":\"status\"}");
    let sresult = status.get("result").cloned().unwrap_or(Json::Null);
    let _ = rpc(&sock, "{\"v\":1,\"id\":9004,\"req\":\"shutdown\"}");
    handle.join().expect("host thread");
    let _ = std::fs::remove_dir_all(&tmp);

    // The sharded fleet: router + N shard processes + chaos restart.
    println!("== fleet benchmark: {fleet_shards} shards x {clients} sessions x {reqs} requests ==");
    let fleet_block = fleet_bench(fleet_shards, clients, reqs);

    // Every response must carry the server-minted trace id.
    let total = pucost::util::u64_of(clients * reqs);
    assert_eq!(cold_traced, total, "cold responses missing trace ids");
    assert_eq!(warm_traced, total, "warm responses missing trace ids");
    assert_eq!(restart_traced, total, "restart responses missing trace ids");

    let cache = sresult.get("cache").cloned().unwrap_or(Json::Null);
    let warm_hits = cache.get("warm_hits").and_then(Json::as_u64).unwrap_or(0);
    let probes = cache.get("hits").and_then(Json::as_u64).unwrap_or(0)
        + cache.get("misses").and_then(Json::as_u64).unwrap_or(0);
    let warm_hit_rate = if probes == 0 {
        0.0
    } else {
        warm_hits as f64 / probes as f64 // counters are small; exact
    };
    println!("   restart warm-hit rate: {:.3} ({warm_hits}/{probes} probes)", warm_hit_rate);

    let queue_wait = mresult
        .get("stages")
        .and_then(|s| s.get("queue_wait_us"))
        .cloned()
        .unwrap_or(Json::Null);
    let phases = Json::Obj(
        [
            phase_json("cold", cold_d, &cold_h),
            phase_json("warm", warm_d, &warm_h),
            phase_json("restart", restart_d, &restart_h),
        ]
        .into_iter()
        .collect(),
    );
    let report = obj(vec![
        ("clients", Json::from(clients)),
        ("requests_per_client", Json::from(reqs)),
        ("phases", phases),
        ("queue_wait_us", queue_wait),
        ("warm_hit_rate", Json::from(warm_hit_rate)),
        ("overhead", obj(vec![
            ("baseline_s", Json::from(best_off)),
            ("telemetry_s", Json::from(best_on)),
            ("ratio", Json::from(overhead)),
        ])),
        ("server_metrics", mresult),
        ("server_status", sresult),
        ("fleet", fleet_block),
    ]);
    write_text("BENCH_serve.json", &format!("{}\n", report.render()));
    obs::finish();
}
