//! Ablation studies for the design choices the paper bakes into AutoSeg:
//!
//! 1. **Fabric pruning** (Figure 10): area of the pruned Benes network vs
//!    the full fabric, per design.
//! 2. **Power-of-two PE arrays** (Algorithm 1 line 9): latency cost of the
//!    alignment constraint versus a hypothetical free allocation.
//! 3. **Segmentation quality** (Section V-A): the exact DP segmenter vs
//!    naive even segmentation, at the full-design level.
//! 4. **Analytical vs event-driven pipeline model**: the closed-form
//!    `bottleneck + fill` against exact piece-level simulation.

use autoseg::{allocate::allocate, AutoSeg, DesignGoal};
use benes::FabricCostModel;
use experiments::{f3, print_table, short_name, write_csv};
use nnmodel::{zoo, Workload};
use spa_arch::{HwBudget, Segment, SegmentSchedule};
use spa_sim::{segment_piece_cycles, simulate_spa};

fn main() {
    let budget = HwBudget::nvdla_large();
    let models = ["squeezenet1_0", "mobilenet_v1", "resnet18", "inception_v1"];

    // --- 1. fabric pruning ---
    println!("== Ablation 1: Benes fabric pruning ==");
    let mut rows = Vec::new();
    for name in models {
        let model = zoo::by_name(name).expect("zoo model");
        let out = AutoSeg::new(budget.clone())
            .max_pus(6)
            .max_segments(8)
            .run(&model)
            .expect("feasible");
        let net = out.design.fabric();
        let pruned = out.design.pruned_fabric(&out.workload).expect("routable");
        let m = FabricCostModel::tsmc28();
        let full_area = net.total_muxes() as f64 * m.mux_area_um2 * 8.0
            + net.num_nodes() as f64 * 2.0 * m.config_ff_area_um2;
        let pruned_area = pruned.cost(8, net.stages(), &m).area_um2;
        rows.push(vec![
            short_name(name).to_string(),
            format!("{}/{}", pruned.nodes(), net.num_nodes()),
            format!("{}+{}", pruned.muxes(), pruned.wires()),
            f3(pruned_area),
            f3(full_area),
            f3(100.0 * (1.0 - pruned_area / full_area)),
        ]);
    }
    print_table(
        &["model", "nodes kept", "muxes+wires", "pruned um2", "full um2", "saved %"],
        &rows,
    );
    write_csv(
        "ablation_pruning.csv",
        &["model", "nodes", "muxes_wires", "pruned_um2", "full_um2", "saved_pct"],
        &rows,
    );

    // --- 2. power-of-two constraint ---
    println!("\n== Ablation 2: power-of-two PE alignment ==");
    let mut rows = Vec::new();
    for name in models {
        let model = zoo::by_name(name).expect("zoo model");
        let out = AutoSeg::new(budget.clone())
            .max_pus(6)
            .max_segments(8)
            .run(&model)
            .expect("feasible");
        // Hypothetical free allocation: same schedule, PEs exactly
        // proportional to the load (no rounding) — approximate its latency
        // by the load-balanced ideal of the same total PE count.
        let total_pes = out.design.total_pes() as f64;
        let w = &out.workload;
        let ideal_cycles: f64 = (0..out.design.schedule.len())
            .map(|s| {
                let ops: u64 = out.design.schedule.segments[s]
                    .items()
                    .iter()
                    .map(|&i| w.items()[i].ops)
                    .sum();
                ops as f64 / total_pes
            })
            .sum();
        let actual = out.report.cycles as f64;
        rows.push(vec![
            short_name(name).to_string(),
            (total_pes as usize).to_string(),
            f3(actual / 1e6),
            f3(ideal_cycles / 1e6),
            f3(actual / ideal_cycles),
        ]);
    }
    print_table(
        &["model", "PEs", "actual Mcycles", "free-alloc ideal", "overhead x"],
        &rows,
    );
    write_csv(
        "ablation_pow2.csv",
        &["model", "pes", "actual_mcycles", "ideal_mcycles", "overhead"],
        &rows,
    );

    // --- 3. DP segmentation vs naive even segmentation ---
    println!("\n== Ablation 3: optimized vs even segmentation ==");
    let mut rows = Vec::new();
    for name in models {
        let model = zoo::by_name(name).expect("zoo model");
        let w = Workload::from_graph(&model);
        let out = AutoSeg::new(budget.clone())
            .max_pus(4)
            .max_segments(8)
            .run(&model)
            .expect("feasible");
        let (n, s) = (out.design.n_pus(), out.design.schedule.len());
        // Even segmentation with the same (N, S) shape: contiguous equal
        // *item-count* chunks, blocks by index.
        let even = even_schedule(&w, n, s);
        let even_ms = even
            .and_then(|sched| allocate(&w, &sched, &budget, DesignGoal::Latency).ok())
            .filter(|d| d.fits(&budget))
            .map(|d| simulate_spa(&w, &d).seconds * 1e3);
        rows.push(vec![
            short_name(name).to_string(),
            format!("{n}x{s}"),
            f3(out.report.seconds * 1e3),
            even_ms.map(f3).unwrap_or_else(|| "infeasible".into()),
        ]);
    }
    print_table(&["model", "shape", "autoseg ms", "even-split ms"], &rows);
    write_csv(
        "ablation_segmentation.csv",
        &["model", "shape", "autoseg_ms", "even_ms"],
        &rows,
    );

    // --- 4. analytical vs event-driven pipeline model ---
    println!("\n== Ablation 4: analytical vs piece-level event simulation ==");
    let mut rows = Vec::new();
    for name in models {
        let model = zoo::by_name(name).expect("zoo model");
        let out = AutoSeg::new(budget.clone())
            .max_pus(4)
            .max_segments(6)
            .run(&model)
            .expect("feasible");
        let analytical: u64 = out
            .report
            .per_segment
            .iter()
            .map(|s| s.compute_cycles)
            .sum();
        let event: u64 = (0..out.design.schedule.len())
            .map(|s| segment_piece_cycles(&out.workload, &out.design, s))
            .sum();
        rows.push(vec![
            short_name(name).to_string(),
            f3(analytical as f64 / 1e6),
            f3(event as f64 / 1e6),
            f3(analytical as f64 / event as f64),
        ]);
    }
    print_table(
        &["model", "analytical Mcyc", "event Mcyc", "ratio"],
        &rows,
    );
    write_csv(
        "ablation_event_sim.csv",
        &["model", "analytical_mcycles", "event_mcycles", "ratio"],
        &rows,
    );
}

/// Even segmentation: equal item-count contiguous segments, equal
/// item-count contiguous blocks bound in order.
fn even_schedule(w: &Workload, n: usize, s: usize) -> Option<SegmentSchedule> {
    let l = w.len();
    if n * s > l {
        return None;
    }
    let mut segments = Vec::with_capacity(s);
    let per_seg = l / s;
    for si in 0..s {
        let lo = si * per_seg;
        let hi = if si + 1 == s { l } else { lo + per_seg };
        let len = hi - lo;
        let per_block = len / n;
        let mut assignments = Vec::with_capacity(len);
        for (k, item) in (lo..hi).enumerate() {
            let pu = (k / per_block.max(1)).min(n - 1);
            assignments.push(spa_arch::Assignment { item, pu });
        }
        segments.push(Segment { assignments });
    }
    // Route the even schedule through the same validation path; reject
    // invalid ones.
    SegmentSchedule::new(segments, n, w).ok()
}
