//! A small hand-rolled SVG bar-chart emitter, so the figure binaries can
//! write actual figures next to their CSVs (no plotting dependencies).

use std::fmt::Write as _;

/// One named series of a grouped bar chart.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// One value per category (missing values may be `f64::NAN`; those
    /// bars are skipped).
    pub values: Vec<f64>,
}

const PALETTE: &[&str] = &[
    "#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4", "#8c613c", "#dc7ec0",
];

fn esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Renders a grouped bar chart.
///
/// # Panics
///
/// Panics if a series' length differs from the category count or no data
/// is given.
pub fn grouped_bar_chart(title: &str, categories: &[&str], series: &[Series]) -> String {
    assert!(!categories.is_empty() && !series.is_empty(), "need data");
    for s in series {
        assert_eq!(
            s.values.len(),
            categories.len(),
            "series `{}` length mismatch",
            s.label
        );
    }
    let max = series
        .iter()
        .flat_map(|s| s.values.iter())
        .filter(|v| v.is_finite())
        .fold(0.0f64, |a, &b| a.max(b))
        .max(1e-12);

    let (w, h) = (900.0, 420.0);
    let (ml, mr, mt, mb) = (70.0, 20.0, 50.0, 90.0);
    let plot_w = w - ml - mr;
    let plot_h = h - mt - mb;
    let group_w = plot_w / categories.len() as f64;
    let bar_w = (group_w * 0.8) / series.len() as f64;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" viewBox=\"0 0 {w} {h}\">"
    );
    let _ = writeln!(out, "<rect width=\"{w}\" height=\"{h}\" fill=\"white\"/>");
    let _ = writeln!(
        out,
        "<text x=\"{}\" y=\"24\" font-family=\"sans-serif\" font-size=\"16\" text-anchor=\"middle\">{}</text>",
        w / 2.0,
        esc(title)
    );

    // Y axis with 5 gridlines.
    for i in 0..=5 {
        let v = max * i as f64 / 5.0;
        let y = mt + plot_h - plot_h * i as f64 / 5.0;
        let _ = writeln!(
            out,
            "<line x1=\"{ml}\" y1=\"{y}\" x2=\"{}\" y2=\"{y}\" stroke=\"#ddd\"/>",
            w - mr
        );
        let _ = writeln!(
            out,
            "<text x=\"{}\" y=\"{}\" font-family=\"sans-serif\" font-size=\"11\" text-anchor=\"end\">{}</text>",
            ml - 6.0,
            y + 4.0,
            format_value(v)
        );
    }

    // Bars.
    for (si, s) in series.iter().enumerate() {
        let color = PALETTE[si % PALETTE.len()];
        for (ci, &v) in s.values.iter().enumerate() {
            if !v.is_finite() {
                continue;
            }
            let bh = plot_h * (v / max).clamp(0.0, 1.0);
            let x = ml + ci as f64 * group_w + group_w * 0.1 + si as f64 * bar_w;
            let y = mt + plot_h - bh;
            let _ = writeln!(
                out,
                "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{bar_w:.1}\" height=\"{bh:.1}\" fill=\"{color}\"/>"
            );
        }
    }

    // Category labels (rotated).
    for (ci, cat) in categories.iter().enumerate() {
        let x = ml + (ci as f64 + 0.5) * group_w;
        let y = mt + plot_h + 14.0;
        let _ = writeln!(
            out,
            "<text x=\"{x:.1}\" y=\"{y:.1}\" font-family=\"sans-serif\" font-size=\"11\" text-anchor=\"end\" transform=\"rotate(-35 {x:.1} {y:.1})\">{}</text>",
            esc(cat)
        );
    }

    // Legend.
    let mut lx = ml;
    let ly = h - 16.0;
    for (si, s) in series.iter().enumerate() {
        let color = PALETTE[si % PALETTE.len()];
        let _ = writeln!(
            out,
            "<rect x=\"{lx}\" y=\"{}\" width=\"12\" height=\"12\" fill=\"{color}\"/>",
            ly - 10.0
        );
        let _ = writeln!(
            out,
            "<text x=\"{}\" y=\"{ly}\" font-family=\"sans-serif\" font-size=\"12\">{}</text>",
            lx + 16.0,
            esc(&s.label)
        );
        lx += 22.0 + 7.5 * s.label.len() as f64 + 14.0;
        let _ = si;
    }

    out.push_str("</svg>\n");
    out
}

fn format_value(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.1}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else if v >= 10.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// Writes an SVG chart into the results directory.
pub fn write_svg_chart(name: &str, title: &str, categories: &[&str], series: &[Series]) {
    crate::write_text(name, &grouped_bar_chart(title, categories, series));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> (Vec<&'static str>, Vec<Series>) {
        (
            vec!["a", "b", "c"],
            vec![
                Series {
                    label: "one".into(),
                    values: vec![1.0, 2.0, 3.0],
                },
                Series {
                    label: "two".into(),
                    values: vec![3.0, 1.0, f64::NAN],
                },
            ],
        )
    }

    #[test]
    fn chart_structure() {
        let (cats, series) = demo();
        let svg = grouped_bar_chart("demo", &cats, &series);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        // 6 finite values -> at least 5 bars (NaN skipped) + bg + legend.
        let rects = svg.matches("<rect").count();
        assert_eq!(rects, 1 + 5 + 2, "background + bars + legend swatches");
        assert!(svg.contains("demo"));
        assert!(svg.contains("one") && svg.contains("two"));
    }

    #[test]
    fn escaping() {
        let svg = grouped_bar_chart(
            "a < b & c",
            &["x<y"],
            &[Series {
                label: "s&p".into(),
                values: vec![1.0],
            }],
        );
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(!svg.contains("a < b"));
    }

    #[test]
    fn value_formatting() {
        assert_eq!(format_value(2.5e9), "2.5G");
        assert_eq!(format_value(1.2e6), "1.2M");
        assert_eq!(format_value(3.4e3), "3.4k");
        assert_eq!(format_value(42.0), "42");
        assert_eq!(format_value(1.25), "1.25");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_series_panics() {
        let _ = grouped_bar_chart(
            "t",
            &["a", "b"],
            &[Series {
                label: "s".into(),
                values: vec![1.0],
            }],
        );
    }
}
