//! Golden-results regression harness.
//!
//! Re-runs the cheap, deterministic experiment binaries into a scratch
//! directory and diffs every regenerated CSV against the checked-in
//! copy under `results/`, cell by cell, with per-column numeric
//! tolerances. A drift in any published number — a segmentation change,
//! a cost-model tweak, an RNG regression — fails here with a
//! `file:row:col` pointer at the first divergent cells instead of
//! silently rewriting the paper's figures.
//!
//! Intentional changes are re-blessed, never hand-edited:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test -p experiments --test golden
//! ```
//!
//! which copies the regenerated CSVs over `results/` (review the git
//! diff afterwards).
//!
//! Binary resolution: under `cargo test` the `CARGO_BIN_EXE_*` env vars
//! baked in at compile time point at the target dir. Cargo-less builds
//! (the offline `scripts/offline_check.sh` harness) set `GOLDEN_BIN_DIR`
//! to a directory holding `<name>` or `bin_<name>` executables. A binary
//! that cannot be resolved either way is reported and skipped, so the
//! suite degrades gracefully instead of failing on build-layout trivia.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::Command;

/// One experiment binary and the golden CSVs it regenerates.
struct Case {
    /// Binary name under `crates/experiments/src/bin/`.
    bin: &'static str,
    /// Compile-time cargo path for that binary, when building under cargo.
    exe: Option<&'static str>,
    /// CSV files (relative to `results/`) the binary writes.
    csvs: &'static [&'static str],
}

/// The golden set: every binary here is deterministic and finishes in
/// seconds (the expensive sweeps — fig12, fig18, the ablations — are
/// exercised by their own smoke stages instead).
const CASES: &[Case] = &[
    Case {
        bin: "fig02_roofline",
        exe: option_env!("CARGO_BIN_EXE_fig02_roofline"),
        csvs: &["fig02_ridge.csv", "fig02_roofline.csv"],
    },
    Case {
        bin: "fig03_ctc_models",
        exe: option_env!("CARGO_BIN_EXE_fig03_ctc_models"),
        csvs: &["fig03_ctc_models.csv"],
    },
    Case {
        bin: "fig04_ctc_squeezenet",
        exe: option_env!("CARGO_BIN_EXE_fig04_ctc_squeezenet"),
        csvs: &["fig04_per_layer_ctc.csv", "fig04_strategies.csv"],
    },
    Case {
        bin: "fig05_ops_distribution",
        exe: option_env!("CARGO_BIN_EXE_fig05_ops_distribution"),
        csvs: &["fig05_ops_distribution.csv"],
    },
    Case {
        bin: "fig13_mem_reduction",
        exe: option_env!("CARGO_BIN_EXE_fig13_mem_reduction"),
        csvs: &["fig13_mem_reduction.csv"],
    },
    Case {
        bin: "fig19_dataflow",
        exe: option_env!("CARGO_BIN_EXE_fig19_dataflow"),
        csvs: &["fig19_dataflow.csv"],
    },
];

/// Numeric comparison tolerance: cells agree when the strings match
/// exactly, or both parse as floats within `abs + rel * |golden|`.
#[derive(Clone, Copy)]
struct Tol {
    abs: f64,
    rel: f64,
}

/// The default is deliberately tight: every experiment is bit-
/// deterministic, so regenerated cells normally match *textually* and
/// the tolerance only absorbs last-digit formatting wobble.
const DEFAULT_TOL: Tol = Tol {
    abs: 1e-9,
    rel: 1e-6,
};

/// Per-`(file, column)` tolerance overrides for columns that are allowed
/// to drift more (none today; the table is the extension point).
const TOL_OVERRIDES: &[(&str, &str, Tol)] = &[];

fn tol_for(file: &str, column: &str) -> Tol {
    TOL_OVERRIDES
        .iter()
        .find(|(f, c, _)| *f == file && *c == column)
        .map(|(_, _, t)| *t)
        .unwrap_or(DEFAULT_TOL)
}

fn cells_match(golden: &str, got: &str, tol: Tol) -> bool {
    if golden == got {
        return true;
    }
    match (golden.parse::<f64>(), got.parse::<f64>()) {
        (Ok(g), Ok(n)) => (g - n).abs() <= tol.abs + tol.rel * g.abs(),
        _ => false,
    }
}

/// Diffs one regenerated CSV against its golden copy. Returns
/// `file:row:col` mismatch descriptions (1-based rows counting the
/// header, so they match editor line numbers).
fn diff_csv(file: &str, golden: &str, got: &str) -> Vec<String> {
    let mut out = Vec::new();
    let g_lines: Vec<&str> = golden.lines().collect();
    let n_lines: Vec<&str> = got.lines().collect();
    let header: Vec<&str> = g_lines.first().map(|h| h.split(',').collect()).unwrap_or_default();
    if g_lines.first() != n_lines.first() {
        out.push(format!(
            "{file}:1: header changed: golden {:?}, regenerated {:?}",
            g_lines.first().unwrap_or(&""),
            n_lines.first().unwrap_or(&"")
        ));
        return out;
    }
    if g_lines.len() != n_lines.len() {
        out.push(format!(
            "{file}: row count changed: golden {}, regenerated {}",
            g_lines.len().saturating_sub(1),
            n_lines.len().saturating_sub(1)
        ));
    }
    for (row, (g_row, n_row)) in g_lines.iter().zip(&n_lines).enumerate().skip(1) {
        let g_cells: Vec<&str> = g_row.split(',').collect();
        let n_cells: Vec<&str> = n_row.split(',').collect();
        if g_cells.len() != n_cells.len() {
            out.push(format!(
                "{file}:{}: cell count changed: golden {}, regenerated {}",
                row + 1,
                g_cells.len(),
                n_cells.len()
            ));
            continue;
        }
        for (col, (g_cell, n_cell)) in g_cells.iter().zip(&n_cells).enumerate() {
            let name = header.get(col).copied().unwrap_or("?");
            if !cells_match(g_cell, n_cell, tol_for(file, name)) {
                out.push(format!(
                    "{file}:{}:{} ({name}): golden {g_cell:?}, regenerated {n_cell:?}",
                    row + 1,
                    col + 1
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// JSON goldens
//
// `bench_dse` writes a structured report (`results/BENCH_dse.json`)
// rather than a CSV. The diff flattens both documents to dot-separated
// key paths (`cache.entries`, `fault_log[0]`) and compares numeric
// leaves with the same tolerance machinery as the CSVs, failing with
// `file:key` pointers. Wall-clock and scheduling-dependent keys cannot
// be golden — they are skip-listed below but still checked for
// *presence*, so a report that stops emitting `speedup` fails even
// though its value is free to drift.
// ---------------------------------------------------------------------

/// Keys whose values are run-dependent (wall time, thread-race-able
/// cache counters, the obs report): presence is asserted, value is not.
const JSON_VALUE_SKIP: &[&str] = &[
    "serial_s",
    "parallel_s",
    "speedup",
    "speedup_curve",
    "obs",
    "cache.hits",
    "cache.warm_hits",
    "cache.hot_hits",
    "cache.misses",
    "cache.hit_rate",
    // Machine-dependent microbenchmark rates; the structural keys
    // (layers/pus/evals_per_round/rounds) are still value-compared.
    "eval_throughput.host_cpus",
    "eval_throughput.scalar_evals_per_s",
    "eval_throughput.batch_evals_per_s",
    "eval_throughput.batch_vs_scalar",
    "eval_throughput.compiled_evals_per_s",
    "eval_throughput.compiled_vs_scalar",
    "eval_throughput.cache_scalar_evals_per_s",
    "eval_throughput.cache_batch_evals_per_s",
    "eval_throughput.cache_batch_vs_scalar",
    // bench_serve: embedded server telemetry and the A/B overhead ratio
    // are wall-clock through and through; the shed/warm splits depend on
    // thread interleaving. Structural keys (requests, shards, victim,
    // per-shard request counts) are still value-compared.
    "overhead",
    "queue_wait_us",
    "server_metrics",
    "server_status",
    "fleet.overload.shed",
    "fleet.overload.served",
    "fleet.overload.shed_rate",
    "fleet.restart.warm_hits",
    "fleet.restart.probes",
    "fleet.restart.merged_entries",
];

/// Subtrees whose *shape* is run-dependent, not just their values: the
/// flight recorder dumps however many events the run produced, so even
/// key presence cannot be golden. Paths under these prefixes are dropped
/// from both documents before diffing.
const JSON_SHAPE_SKIP: &[&str] = &["server_metrics.flight"];

/// Leaf names that are wall-clock or machine-rate values wherever they
/// appear — the serve benchmark emits them once per phase and per shard,
/// so enumerating full paths would just restate this list nine times.
const JSON_VALUE_SKIP_LEAVES: &[&str] = &[
    "seconds",
    // MILP engine benchmark: per-config wall time and the log2 solve-time
    // histogram. Node/pivot/warm-hit aggregates stay value-compared.
    "secs",
    "solve_us_hist",
    "throughput_rps",
    "p50_us",
    "p90_us",
    "p99_us",
    "p999_us",
    "max_us",
    "per_shard_rps",
    "warm_hit_rate",
];

/// Minimal JSON reader, sufficient for the reports the experiment
/// binaries render (objects, arrays, strings without escapes beyond
/// `\"`, numbers, booleans, null). Flattens to `(path, token)` leaves.
fn flatten_json(text: &str) -> Result<Vec<(String, String)>, String> {
    struct P<'a> {
        b: &'a [u8],
        i: usize,
    }
    impl<'a> P<'a> {
        fn ws(&mut self) {
            while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }
        fn peek(&mut self) -> Option<u8> {
            self.ws();
            self.b.get(self.i).copied()
        }
        fn expect(&mut self, c: u8) -> Result<(), String> {
            if self.peek() == Some(c) {
                self.i += 1;
                Ok(())
            } else {
                Err(format!("expected {:?} at byte {}", char::from(c), self.i))
            }
        }
        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let start = self.i;
            while self.i < self.b.len() {
                match self.b[self.i] {
                    b'\\' => self.i += 2,
                    b'"' => {
                        let s = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
                        self.i += 1;
                        return Ok(s);
                    }
                    _ => self.i += 1,
                }
            }
            Err("unterminated string".into())
        }
        fn value(&mut self, path: &str, out: &mut Vec<(String, String)>) -> Result<(), String> {
            match self.peek().ok_or("unexpected end of input")? {
                b'{' => {
                    self.i += 1;
                    if self.peek() == Some(b'}') {
                        self.i += 1;
                        out.push((path.to_string(), "{}".into()));
                        return Ok(());
                    }
                    loop {
                        let key = self.string()?;
                        self.expect(b':')?;
                        let sub = if path.is_empty() {
                            key
                        } else {
                            format!("{path}.{key}")
                        };
                        self.value(&sub, out)?;
                        match self.peek() {
                            Some(b',') => self.i += 1,
                            Some(b'}') => {
                                self.i += 1;
                                return Ok(());
                            }
                            _ => return Err(format!("malformed object near byte {}", self.i)),
                        }
                    }
                }
                b'[' => {
                    self.i += 1;
                    if self.peek() == Some(b']') {
                        self.i += 1;
                        out.push((path.to_string(), "[]".into()));
                        return Ok(());
                    }
                    let mut idx = 0usize;
                    loop {
                        self.value(&format!("{path}[{idx}]"), out)?;
                        idx += 1;
                        match self.peek() {
                            Some(b',') => self.i += 1,
                            Some(b']') => {
                                self.i += 1;
                                return Ok(());
                            }
                            _ => return Err(format!("malformed array near byte {}", self.i)),
                        }
                    }
                }
                b'"' => {
                    let s = self.string()?;
                    out.push((path.to_string(), format!("\"{s}\"")));
                    Ok(())
                }
                _ => {
                    self.ws();
                    let start = self.i;
                    while self.i < self.b.len()
                        && !matches!(self.b[self.i], b',' | b'}' | b']')
                        && !self.b[self.i].is_ascii_whitespace()
                    {
                        self.i += 1;
                    }
                    if start == self.i {
                        return Err(format!("empty value at byte {start}"));
                    }
                    let tok = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
                    out.push((path.to_string(), tok));
                    Ok(())
                }
            }
        }
    }
    let mut p = P {
        b: text.as_bytes(),
        i: 0,
    };
    let mut out = Vec::new();
    p.value("", &mut out)?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing bytes after document at byte {}", p.i));
    }
    Ok(out)
}

/// `true` when `path` (or any of its ancestors, so `obs` skips `obs.x`)
/// is value-skipped, or its final segment is a skip-listed leaf name
/// (`phases.cold.seconds`, `fleet.phases.warm.per_shard_rps[2]`).
fn json_value_skipped(path: &str) -> bool {
    if JSON_VALUE_SKIP.iter().any(|s| {
        path == *s
            || path.strip_prefix(s).is_some_and(|rest| {
                rest.starts_with('.') || rest.starts_with('[')
            })
    }) {
        return true;
    }
    let last = path.rsplit('.').next().unwrap_or(path);
    let last = last.split('[').next().unwrap_or(last);
    JSON_VALUE_SKIP_LEAVES.contains(&last)
}

/// `true` when `path` falls under a shape-skipped subtree.
fn json_shape_skipped(path: &str) -> bool {
    JSON_SHAPE_SKIP.iter().any(|s| {
        path == *s
            || path.strip_prefix(s).is_some_and(|rest| {
                rest.starts_with('.') || rest.starts_with('[')
            })
    })
}

/// Diffs two JSON documents. Returns `file:key` mismatch descriptions.
fn diff_json(file: &str, golden: &str, got: &str) -> Vec<String> {
    let mut out = Vec::new();
    let g = match flatten_json(golden) {
        Ok(v) => v,
        Err(e) => return vec![format!("{file}: golden copy is not valid JSON: {e}")],
    };
    let n = match flatten_json(got) {
        Ok(v) => v,
        Err(e) => return vec![format!("{file}: regenerated file is not valid JSON: {e}")],
    };
    let gm: std::collections::BTreeMap<&str, &str> = g
        .iter()
        .filter(|(k, _)| !json_shape_skipped(k))
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    let nm: std::collections::BTreeMap<&str, &str> = n
        .iter()
        .filter(|(k, _)| !json_shape_skipped(k))
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    for (k, gv) in &gm {
        match nm.get(k) {
            None => out.push(format!("{file}:{k}: missing from regenerated report")),
            Some(nv) => {
                if json_value_skipped(k) {
                    continue;
                }
                let tol = tol_for(file, k);
                let (gq, nq) = (gv.trim_matches('"'), nv.trim_matches('"'));
                if !cells_match(gq, nq, tol) {
                    out.push(format!("{file}:{k}: golden {gv}, regenerated {nv}"));
                }
            }
        }
    }
    for k in nm.keys() {
        if !gm.contains_key(k) {
            out.push(format!("{file}:{k}: new key not present in golden"));
        }
    }
    out
}

/// The JSON golden: `bench_dse` under pinned smoke budgets and a fixed
/// thread count, so every non-skip-listed key is deterministic.
struct JsonCase {
    bin: &'static str,
    exe: Option<&'static str>,
    file: &'static str,
    args: &'static [&'static str],
    env: &'static [(&'static str, &'static str)],
}

const JSON_CASES: &[JsonCase] = &[
    JsonCase {
        bin: "bench_dse",
        exe: option_env!("CARGO_BIN_EXE_bench_dse"),
        file: "BENCH_dse.json",
        args: &["--threads", "2"],
        env: &[("DSE_SMOKE", "1")],
    },
    // Smoke-sized serve+fleet benchmark: structural keys (request and
    // shard counts, the restart victim) are pinned; every latency,
    // throughput, and cache-race value is skip-listed above. The fleet
    // stage resolves `spa-serve` as a sibling of the benchmark binary.
    JsonCase {
        bin: "bench_serve",
        exe: option_env!("CARGO_BIN_EXE_bench_serve"),
        file: "BENCH_serve.json",
        args: &["--clients", "2", "--reqs", "8", "--fleet", "3"],
        env: &[],
    },
];

/// `<repo>/results`, the checked-in golden directory.
fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Resolves an executable: cargo's compile-time path first, then
/// `GOLDEN_BIN_DIR/<name>` / `GOLDEN_BIN_DIR/bin_<name>`.
fn resolve_bin_named(bin: &str, exe: Option<&str>) -> Option<PathBuf> {
    if let Some(exe) = exe {
        let p = PathBuf::from(exe);
        if p.exists() {
            return Some(p);
        }
    }
    let dir = PathBuf::from(std::env::var_os("GOLDEN_BIN_DIR")?);
    for candidate in [dir.join(bin), dir.join(format!("bin_{bin}"))] {
        if candidate.exists() {
            return Some(candidate);
        }
    }
    None
}

fn resolve_bin(case: &Case) -> Option<PathBuf> {
    resolve_bin_named(case.bin, case.exe)
}

/// Runs one experiment binary into `out_dir` with the env knobs that
/// could perturb results (smoke budgets, fault plans, deadlines)
/// stripped, so the regeneration matches how the goldens were made.
fn regenerate(exe: &Path, out_dir: &Path) -> Result<(), String> {
    let status = Command::new(exe)
        .env("SPA_RESULTS_DIR", out_dir)
        .env_remove("DSE_SMOKE")
        .env_remove("DSE_DEADLINE_MS")
        .env_remove("FAULT_PLAN")
        .env_remove("OBS_LEVEL")
        .stdout(std::process::Stdio::null())
        .status()
        .map_err(|e| format!("{}: spawn failed: {e}", exe.display()))?;
    if !status.success() {
        return Err(format!("{}: exited with {status}", exe.display()));
    }
    Ok(())
}

#[test]
fn regenerated_csvs_match_goldens_within_tolerance() {
    let golden = golden_dir();
    let scratch = std::env::temp_dir().join(format!("spa_golden_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    let bless = std::env::var("GOLDEN_BLESS").map(|v| v == "1").unwrap_or(false);

    let mut mismatches: Vec<String> = Vec::new();
    let mut skipped = 0usize;
    let mut blessed = 0usize;
    for case in CASES {
        let Some(exe) = resolve_bin(case) else {
            eprintln!(
                "golden: skipping {} (no cargo exe and no GOLDEN_BIN_DIR hit)",
                case.bin
            );
            skipped += 1;
            continue;
        };
        if let Err(e) = regenerate(&exe, &scratch) {
            mismatches.push(e);
            continue;
        }
        for csv in case.csvs {
            let golden_path = golden.join(csv);
            let new_path = scratch.join(csv);
            let golden_text = match std::fs::read_to_string(&golden_path) {
                Ok(t) => t,
                Err(e) => {
                    mismatches.push(format!("{csv}: golden copy unreadable: {e}"));
                    continue;
                }
            };
            let new_text = match std::fs::read_to_string(&new_path) {
                Ok(t) => t,
                Err(e) => {
                    mismatches.push(format!("{csv}: {} did not produce it: {e}", case.bin));
                    continue;
                }
            };
            let diffs = diff_csv(csv, &golden_text, &new_text);
            if !diffs.is_empty() && bless {
                std::fs::copy(&new_path, &golden_path).expect("bless copy");
                eprintln!("golden: blessed {csv} ({} cells drifted)", diffs.len());
                blessed += 1;
                continue;
            }
            mismatches.extend(diffs);
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);
    assert!(
        skipped < CASES.len(),
        "golden: every binary was unresolvable — build the experiment \
         binaries or point GOLDEN_BIN_DIR at them"
    );
    if blessed > 0 {
        eprintln!("golden: {blessed} file(s) re-blessed; review `git diff results/`");
    }
    if !mismatches.is_empty() {
        let mut msg = String::from(
            "regenerated results drifted from the checked-in goldens \
             (rerun with GOLDEN_BLESS=1 if the change is intended):\n",
        );
        for m in &mismatches {
            let _ = writeln!(msg, "  {m}");
        }
        panic!("{msg}");
    }
}

#[test]
fn regenerated_bench_json_matches_golden_within_tolerance() {
    let golden = golden_dir();
    let scratch = std::env::temp_dir().join(format!("spa_golden_json_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    let bless = std::env::var("GOLDEN_BLESS").map(|v| v == "1").unwrap_or(false);

    let mut mismatches: Vec<String> = Vec::new();
    let mut skipped = 0usize;
    for case in JSON_CASES {
        let Some(exe) = resolve_bin_named(case.bin, case.exe) else {
            eprintln!(
                "golden: skipping {} (no cargo exe and no GOLDEN_BIN_DIR hit)",
                case.bin
            );
            skipped += 1;
            continue;
        };
        let mut cmd = Command::new(&exe);
        cmd.args(case.args)
            .env("SPA_RESULTS_DIR", &scratch)
            .env_remove("DSE_THREADS")
            .env_remove("DSE_DEADLINE_MS")
            .env_remove("FAULT_PLAN")
            .env_remove("OBS_LEVEL");
        for (k, v) in case.env {
            cmd.env(k, v);
        }
        let status = cmd
            .stdout(std::process::Stdio::null())
            .status()
            .unwrap_or_else(|e| panic!("{}: spawn failed: {e}", exe.display()));
        if !status.success() {
            mismatches.push(format!("{}: exited with {status}", exe.display()));
            continue;
        }
        let golden_path = golden.join(case.file);
        let new_path = scratch.join(case.file);
        let golden_text = match std::fs::read_to_string(&golden_path) {
            Ok(t) => t,
            Err(e) => {
                if bless {
                    std::fs::copy(&new_path, &golden_path).expect("bless copy");
                    eprintln!("golden: blessed new file {}", case.file);
                    continue;
                }
                mismatches.push(format!("{}: golden copy unreadable: {e}", case.file));
                continue;
            }
        };
        let new_text = std::fs::read_to_string(&new_path)
            .unwrap_or_else(|e| panic!("{}: {} did not produce it: {e}", case.file, case.bin));
        let diffs = diff_json(case.file, &golden_text, &new_text);
        if !diffs.is_empty() && bless {
            std::fs::copy(&new_path, &golden_path).expect("bless copy");
            eprintln!(
                "golden: blessed {} ({} keys drifted); review `git diff results/`",
                case.file,
                diffs.len()
            );
            continue;
        }
        mismatches.extend(diffs);
    }
    let _ = std::fs::remove_dir_all(&scratch);
    assert!(
        skipped < JSON_CASES.len(),
        "golden: every JSON binary was unresolvable — build the experiment \
         binaries or point GOLDEN_BIN_DIR at them"
    );
    if !mismatches.is_empty() {
        let mut msg = String::from(
            "regenerated JSON reports drifted from the checked-in goldens \
             (rerun with GOLDEN_BLESS=1 if the change is intended):\n",
        );
        for m in &mismatches {
            let _ = writeln!(msg, "  {m}");
        }
        panic!("{msg}");
    }
}

#[test]
fn json_differ_reports_file_key_paths() {
    let golden = r#"{"model": "alexnet", "points": 55, "speedup": 1.241,
                     "cache": {"entries": 606, "hits": 18494},
                     "fault_log": [], "obs": null}"#;
    // Identical: clean.
    assert!(diff_json("b.json", golden, golden).is_empty());
    // Skip-listed keys may drift freely (speedup, cache.hits)...
    let drift_skipped = r#"{"model": "alexnet", "points": 55, "speedup": 0.7,
                     "cache": {"entries": 606, "hits": 99},
                     "fault_log": [], "obs": null}"#;
    assert!(diff_json("b.json", golden, drift_skipped).is_empty());
    // ...but must stay present.
    let missing_skipped = r#"{"model": "alexnet", "points": 55,
                     "cache": {"entries": 606, "hits": 18494},
                     "fault_log": [], "obs": null}"#;
    let d = diff_json("b.json", golden, missing_skipped);
    assert_eq!(d.len(), 1);
    assert!(d[0].starts_with("b.json:speedup: missing"), "{}", d[0]);
    // A non-skipped numeric drift names file:key.
    let drift = r#"{"model": "alexnet", "points": 54, "speedup": 1.241,
                     "cache": {"entries": 606, "hits": 18494},
                     "fault_log": [], "obs": null}"#;
    let d = diff_json("b.json", golden, drift);
    assert_eq!(d.len(), 1);
    assert!(d[0].starts_with("b.json:points: golden 55"), "{}", d[0]);
    // Nested keys use dot paths.
    let nested = r#"{"model": "alexnet", "points": 55, "speedup": 1.241,
                     "cache": {"entries": 999, "hits": 18494},
                     "fault_log": [], "obs": null}"#;
    let d = diff_json("b.json", golden, nested);
    assert_eq!(d.len(), 1);
    assert!(d[0].starts_with("b.json:cache.entries:"), "{}", d[0]);
    // New keys are reported too (a report growing fields must re-bless).
    let extra = r#"{"model": "alexnet", "points": 55, "speedup": 1.241,
                     "cache": {"entries": 606, "hits": 18494},
                     "fault_log": [], "obs": null, "new_field": 1}"#;
    let d = diff_json("b.json", golden, extra);
    assert_eq!(d.len(), 1);
    assert!(d[0].starts_with("b.json:new_field: new key"), "{}", d[0]);
    // Malformed input is a diagnostic, not a panic.
    let d = diff_json("b.json", golden, "{nope");
    assert_eq!(d.len(), 1);
    assert!(d[0].contains("not valid JSON"), "{}", d[0]);
}

#[test]
fn json_flattener_handles_the_report_shapes() {
    let flat = flatten_json(
        r#"{"a": 1, "b": {"c": "x", "d": [true, null, 2.5]}, "e": []}"#,
    )
    .expect("valid");
    let expect: Vec<(String, String)> = [
        ("a", "1"),
        ("b.c", "\"x\""),
        ("b.d[0]", "true"),
        ("b.d[1]", "null"),
        ("b.d[2]", "2.5"),
        ("e", "[]"),
    ]
    .iter()
    .map(|(k, v)| (k.to_string(), v.to_string()))
    .collect();
    assert_eq!(flat, expect);
    assert!(flatten_json("[1, 2]").is_ok(), "top-level arrays parse");
    assert!(flatten_json("{\"a\": 1} trailing").is_err());
    assert!(flatten_json("{\"a\": }").is_err());
    // Ancestor skipping: `obs` covers `obs.spans[3]` but not `obsolete`.
    assert!(json_value_skipped("obs"));
    assert!(json_value_skipped("obs.spans[3]"));
    assert!(!json_value_skipped("obsolete"));
    assert!(json_value_skipped("cache.hits"));
    assert!(!json_value_skipped("cache.entries"));
    // Leaf-name skipping: timing leaves drift wherever they appear.
    assert!(json_value_skipped("phases.cold.seconds"));
    assert!(json_value_skipped("fleet.phases.warm.per_shard_rps[2]"));
    assert!(json_value_skipped("fleet.restart.warm_hit_rate"));
    assert!(!json_value_skipped("fleet.phases.cold.per_shard_requests[0]"));
    assert!(!json_value_skipped("fleet.shards"));
    // Shape skipping: the flight dump's key set is run-dependent.
    assert!(json_shape_skipped("server_metrics.flight.events[42].seq"));
    assert!(!json_shape_skipped("server_metrics.stages"));
}

#[test]
fn csv_differ_reports_precise_locations() {
    let golden = "model,lat_ms,tag\na,1.0,x\nb,2.0,y\n";
    // Identical text: clean.
    assert!(diff_csv("f.csv", golden, golden).is_empty());
    // Within tolerance: clean (1.0 vs 1.0000000001).
    let close = "model,lat_ms,tag\na,1.0000000001,x\nb,2.0,y\n";
    assert!(diff_csv("f.csv", golden, close).is_empty());
    // A real numeric drift names file:row:col and the column.
    let drift = "model,lat_ms,tag\na,1.5,x\nb,2.0,y\n";
    let d = diff_csv("f.csv", golden, drift);
    assert_eq!(d.len(), 1);
    assert!(d[0].starts_with("f.csv:2:2 (lat_ms):"), "{}", d[0]);
    // Non-numeric cells must match exactly.
    let retag = "model,lat_ms,tag\na,1.0,x\nb,2.0,z\n";
    let d = diff_csv("f.csv", golden, retag);
    assert_eq!(d.len(), 1);
    assert!(d[0].starts_with("f.csv:3:3 (tag):"), "{}", d[0]);
    // Header changes short-circuit.
    let newcol = "model,lat_ms,tag,extra\na,1.0,x,1\nb,2.0,y,2\n";
    let d = diff_csv("f.csv", golden, newcol);
    assert_eq!(d.len(), 1);
    assert!(d[0].contains("header changed"), "{}", d[0]);
    // Row additions/removals are reported once, then rows compared.
    let short = "model,lat_ms,tag\na,1.0,x\n";
    let d = diff_csv("f.csv", golden, short);
    assert_eq!(d.len(), 1);
    assert!(d[0].contains("row count changed"), "{}", d[0]);
}

/// The checked-in lint artifacts must carry the schema-2 shape: per-layer
/// counts, every concurrency rule, and an acyclic lock-order graph. This
/// pins the `results/LINT.json` schema bump and the `results/LOCKS.txt`
/// artifact without rerunning the lint binary.
#[test]
fn lint_artifacts_have_schema2_keys() {
    let json = std::fs::read_to_string(golden_dir().join("LINT.json"))
        .expect("results/LINT.json is checked in");
    for key in [
        "\"schema\": 2",
        "\"layers\"",
        "\"source\"",
        "\"concurrency\"",
        "\"graph_nodes\"",
        "\"graph_cycles\": 0",
        "\"lock-order-cycle\"",
        "\"blocking-while-locked\"",
        "\"reentrant-lock\"",
        "\"untraced-spawn\"",
        "\"semantic\"",
    ] {
        assert!(json.contains(key), "{key} missing from results/LINT.json");
    }
    let locks = std::fs::read_to_string(golden_dir().join("LOCKS.txt"))
        .expect("results/LOCKS.txt is checked in");
    assert!(locks.contains("nodes ("), "lock graph listing missing");
    assert!(
        locks.contains("cycles: none"),
        "the checked-in lock-order graph must be acyclic"
    );
}

#[test]
fn tolerance_semantics() {
    let t = DEFAULT_TOL;
    assert!(cells_match("1.0", "1.0", t), "textual equality");
    assert!(cells_match("-", "-", t), "non-numeric equality");
    assert!(!cells_match("-", "0", t));
    assert!(cells_match("100", "100.00005", t), "relative window");
    assert!(!cells_match("100", "100.1", t));
    assert!(cells_match("0", "0.0000000005", t), "absolute window at zero");
    assert!(!cells_match("0", "0.001", t));
    assert!(!cells_match("1.0", "nan", t), "NaN never matches");
    // Overrides fall back to the default for unknown columns.
    let d = tol_for("nope.csv", "nope");
    assert_eq!(d.abs.to_bits(), DEFAULT_TOL.abs.to_bits());
}
