//! Golden-results regression harness.
//!
//! Re-runs the cheap, deterministic experiment binaries into a scratch
//! directory and diffs every regenerated CSV against the checked-in
//! copy under `results/`, cell by cell, with per-column numeric
//! tolerances. A drift in any published number — a segmentation change,
//! a cost-model tweak, an RNG regression — fails here with a
//! `file:row:col` pointer at the first divergent cells instead of
//! silently rewriting the paper's figures.
//!
//! Intentional changes are re-blessed, never hand-edited:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test -p experiments --test golden
//! ```
//!
//! which copies the regenerated CSVs over `results/` (review the git
//! diff afterwards).
//!
//! Binary resolution: under `cargo test` the `CARGO_BIN_EXE_*` env vars
//! baked in at compile time point at the target dir. Cargo-less builds
//! (the offline `scripts/offline_check.sh` harness) set `GOLDEN_BIN_DIR`
//! to a directory holding `<name>` or `bin_<name>` executables. A binary
//! that cannot be resolved either way is reported and skipped, so the
//! suite degrades gracefully instead of failing on build-layout trivia.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::Command;

/// One experiment binary and the golden CSVs it regenerates.
struct Case {
    /// Binary name under `crates/experiments/src/bin/`.
    bin: &'static str,
    /// Compile-time cargo path for that binary, when building under cargo.
    exe: Option<&'static str>,
    /// CSV files (relative to `results/`) the binary writes.
    csvs: &'static [&'static str],
}

/// The golden set: every binary here is deterministic and finishes in
/// seconds (the expensive sweeps — fig12, fig18, the ablations — are
/// exercised by their own smoke stages instead).
const CASES: &[Case] = &[
    Case {
        bin: "fig02_roofline",
        exe: option_env!("CARGO_BIN_EXE_fig02_roofline"),
        csvs: &["fig02_ridge.csv", "fig02_roofline.csv"],
    },
    Case {
        bin: "fig03_ctc_models",
        exe: option_env!("CARGO_BIN_EXE_fig03_ctc_models"),
        csvs: &["fig03_ctc_models.csv"],
    },
    Case {
        bin: "fig04_ctc_squeezenet",
        exe: option_env!("CARGO_BIN_EXE_fig04_ctc_squeezenet"),
        csvs: &["fig04_per_layer_ctc.csv", "fig04_strategies.csv"],
    },
    Case {
        bin: "fig05_ops_distribution",
        exe: option_env!("CARGO_BIN_EXE_fig05_ops_distribution"),
        csvs: &["fig05_ops_distribution.csv"],
    },
    Case {
        bin: "fig13_mem_reduction",
        exe: option_env!("CARGO_BIN_EXE_fig13_mem_reduction"),
        csvs: &["fig13_mem_reduction.csv"],
    },
    Case {
        bin: "fig19_dataflow",
        exe: option_env!("CARGO_BIN_EXE_fig19_dataflow"),
        csvs: &["fig19_dataflow.csv"],
    },
];

/// Numeric comparison tolerance: cells agree when the strings match
/// exactly, or both parse as floats within `abs + rel * |golden|`.
#[derive(Clone, Copy)]
struct Tol {
    abs: f64,
    rel: f64,
}

/// The default is deliberately tight: every experiment is bit-
/// deterministic, so regenerated cells normally match *textually* and
/// the tolerance only absorbs last-digit formatting wobble.
const DEFAULT_TOL: Tol = Tol {
    abs: 1e-9,
    rel: 1e-6,
};

/// Per-`(file, column)` tolerance overrides for columns that are allowed
/// to drift more (none today; the table is the extension point).
const TOL_OVERRIDES: &[(&str, &str, Tol)] = &[];

fn tol_for(file: &str, column: &str) -> Tol {
    TOL_OVERRIDES
        .iter()
        .find(|(f, c, _)| *f == file && *c == column)
        .map(|(_, _, t)| *t)
        .unwrap_or(DEFAULT_TOL)
}

fn cells_match(golden: &str, got: &str, tol: Tol) -> bool {
    if golden == got {
        return true;
    }
    match (golden.parse::<f64>(), got.parse::<f64>()) {
        (Ok(g), Ok(n)) => (g - n).abs() <= tol.abs + tol.rel * g.abs(),
        _ => false,
    }
}

/// Diffs one regenerated CSV against its golden copy. Returns
/// `file:row:col` mismatch descriptions (1-based rows counting the
/// header, so they match editor line numbers).
fn diff_csv(file: &str, golden: &str, got: &str) -> Vec<String> {
    let mut out = Vec::new();
    let g_lines: Vec<&str> = golden.lines().collect();
    let n_lines: Vec<&str> = got.lines().collect();
    let header: Vec<&str> = g_lines.first().map(|h| h.split(',').collect()).unwrap_or_default();
    if g_lines.first() != n_lines.first() {
        out.push(format!(
            "{file}:1: header changed: golden {:?}, regenerated {:?}",
            g_lines.first().unwrap_or(&""),
            n_lines.first().unwrap_or(&"")
        ));
        return out;
    }
    if g_lines.len() != n_lines.len() {
        out.push(format!(
            "{file}: row count changed: golden {}, regenerated {}",
            g_lines.len().saturating_sub(1),
            n_lines.len().saturating_sub(1)
        ));
    }
    for (row, (g_row, n_row)) in g_lines.iter().zip(&n_lines).enumerate().skip(1) {
        let g_cells: Vec<&str> = g_row.split(',').collect();
        let n_cells: Vec<&str> = n_row.split(',').collect();
        if g_cells.len() != n_cells.len() {
            out.push(format!(
                "{file}:{}: cell count changed: golden {}, regenerated {}",
                row + 1,
                g_cells.len(),
                n_cells.len()
            ));
            continue;
        }
        for (col, (g_cell, n_cell)) in g_cells.iter().zip(&n_cells).enumerate() {
            let name = header.get(col).copied().unwrap_or("?");
            if !cells_match(g_cell, n_cell, tol_for(file, name)) {
                out.push(format!(
                    "{file}:{}:{} ({name}): golden {g_cell:?}, regenerated {n_cell:?}",
                    row + 1,
                    col + 1
                ));
            }
        }
    }
    out
}

/// `<repo>/results`, the checked-in golden directory.
fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Resolves a case's executable: cargo's compile-time path first, then
/// `GOLDEN_BIN_DIR/<name>` / `GOLDEN_BIN_DIR/bin_<name>`.
fn resolve_bin(case: &Case) -> Option<PathBuf> {
    if let Some(exe) = case.exe {
        let p = PathBuf::from(exe);
        if p.exists() {
            return Some(p);
        }
    }
    let dir = PathBuf::from(std::env::var_os("GOLDEN_BIN_DIR")?);
    for candidate in [dir.join(case.bin), dir.join(format!("bin_{}", case.bin))] {
        if candidate.exists() {
            return Some(candidate);
        }
    }
    None
}

/// Runs one experiment binary into `out_dir` with the env knobs that
/// could perturb results (smoke budgets, fault plans, deadlines)
/// stripped, so the regeneration matches how the goldens were made.
fn regenerate(exe: &Path, out_dir: &Path) -> Result<(), String> {
    let status = Command::new(exe)
        .env("SPA_RESULTS_DIR", out_dir)
        .env_remove("DSE_SMOKE")
        .env_remove("DSE_DEADLINE_MS")
        .env_remove("FAULT_PLAN")
        .env_remove("OBS_LEVEL")
        .stdout(std::process::Stdio::null())
        .status()
        .map_err(|e| format!("{}: spawn failed: {e}", exe.display()))?;
    if !status.success() {
        return Err(format!("{}: exited with {status}", exe.display()));
    }
    Ok(())
}

#[test]
fn regenerated_csvs_match_goldens_within_tolerance() {
    let golden = golden_dir();
    let scratch = std::env::temp_dir().join(format!("spa_golden_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    let bless = std::env::var("GOLDEN_BLESS").map(|v| v == "1").unwrap_or(false);

    let mut mismatches: Vec<String> = Vec::new();
    let mut skipped = 0usize;
    let mut blessed = 0usize;
    for case in CASES {
        let Some(exe) = resolve_bin(case) else {
            eprintln!(
                "golden: skipping {} (no cargo exe and no GOLDEN_BIN_DIR hit)",
                case.bin
            );
            skipped += 1;
            continue;
        };
        if let Err(e) = regenerate(&exe, &scratch) {
            mismatches.push(e);
            continue;
        }
        for csv in case.csvs {
            let golden_path = golden.join(csv);
            let new_path = scratch.join(csv);
            let golden_text = match std::fs::read_to_string(&golden_path) {
                Ok(t) => t,
                Err(e) => {
                    mismatches.push(format!("{csv}: golden copy unreadable: {e}"));
                    continue;
                }
            };
            let new_text = match std::fs::read_to_string(&new_path) {
                Ok(t) => t,
                Err(e) => {
                    mismatches.push(format!("{csv}: {} did not produce it: {e}", case.bin));
                    continue;
                }
            };
            let diffs = diff_csv(csv, &golden_text, &new_text);
            if !diffs.is_empty() && bless {
                std::fs::copy(&new_path, &golden_path).expect("bless copy");
                eprintln!("golden: blessed {csv} ({} cells drifted)", diffs.len());
                blessed += 1;
                continue;
            }
            mismatches.extend(diffs);
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);
    assert!(
        skipped < CASES.len(),
        "golden: every binary was unresolvable — build the experiment \
         binaries or point GOLDEN_BIN_DIR at them"
    );
    if blessed > 0 {
        eprintln!("golden: {blessed} file(s) re-blessed; review `git diff results/`");
    }
    if !mismatches.is_empty() {
        let mut msg = String::from(
            "regenerated results drifted from the checked-in goldens \
             (rerun with GOLDEN_BLESS=1 if the change is intended):\n",
        );
        for m in &mismatches {
            let _ = writeln!(msg, "  {m}");
        }
        panic!("{msg}");
    }
}

#[test]
fn csv_differ_reports_precise_locations() {
    let golden = "model,lat_ms,tag\na,1.0,x\nb,2.0,y\n";
    // Identical text: clean.
    assert!(diff_csv("f.csv", golden, golden).is_empty());
    // Within tolerance: clean (1.0 vs 1.0000000001).
    let close = "model,lat_ms,tag\na,1.0000000001,x\nb,2.0,y\n";
    assert!(diff_csv("f.csv", golden, close).is_empty());
    // A real numeric drift names file:row:col and the column.
    let drift = "model,lat_ms,tag\na,1.5,x\nb,2.0,y\n";
    let d = diff_csv("f.csv", golden, drift);
    assert_eq!(d.len(), 1);
    assert!(d[0].starts_with("f.csv:2:2 (lat_ms):"), "{}", d[0]);
    // Non-numeric cells must match exactly.
    let retag = "model,lat_ms,tag\na,1.0,x\nb,2.0,z\n";
    let d = diff_csv("f.csv", golden, retag);
    assert_eq!(d.len(), 1);
    assert!(d[0].starts_with("f.csv:3:3 (tag):"), "{}", d[0]);
    // Header changes short-circuit.
    let newcol = "model,lat_ms,tag,extra\na,1.0,x,1\nb,2.0,y,2\n";
    let d = diff_csv("f.csv", golden, newcol);
    assert_eq!(d.len(), 1);
    assert!(d[0].contains("header changed"), "{}", d[0]);
    // Row additions/removals are reported once, then rows compared.
    let short = "model,lat_ms,tag\na,1.0,x\n";
    let d = diff_csv("f.csv", golden, short);
    assert_eq!(d.len(), 1);
    assert!(d[0].contains("row count changed"), "{}", d[0]);
}

#[test]
fn tolerance_semantics() {
    let t = DEFAULT_TOL;
    assert!(cells_match("1.0", "1.0", t), "textual equality");
    assert!(cells_match("-", "-", t), "non-numeric equality");
    assert!(!cells_match("-", "0", t));
    assert!(cells_match("100", "100.00005", t), "relative window");
    assert!(!cells_match("100", "100.1", t));
    assert!(cells_match("0", "0.0000000005", t), "absolute window at zero");
    assert!(!cells_match("0", "0.001", t));
    assert!(!cells_match("1.0", "nan", t), "NaN never matches");
    // Overrides fall back to the default for unknown columns.
    let d = tol_for("nope.csv", "nope");
    assert_eq!(d.abs.to_bits(), DEFAULT_TOL.abs.to_bits());
}
