//! The end-to-end AutoSeg flow: enumerate `(N, S)` shapes, segment,
//! allocate, simulate, keep the best design (Section III's workflow).

use crate::allocate::allocate_with;
use crate::dse::DsePool;
use crate::error::AutoSegError;
use crate::segment::{ChainDpSegmenter, Segmenter};
use nnmodel::{Graph, Workload};
use pucost::EvalCache;
use spa_arch::{HwBudget, SpaDesign};
use spa_sim::{simulate_spa_with, SimReport};

/// Optimization target of the generated accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DesignGoal {
    /// Minimize single-frame latency (batch pinned to 1).
    #[default]
    Latency,
    /// Maximize throughput (batch-level replication allowed).
    Throughput,
}

/// Result of a co-design run.
#[derive(Debug, Clone)]
pub struct AutoSegOutcome {
    /// The selected design.
    pub design: SpaDesign,
    /// Its simulation report.
    pub report: SimReport,
    /// The compute view the design was built for.
    pub workload: Workload,
    /// Number of `(N, S)` combinations explored.
    pub explored: usize,
}

/// The AutoSeg co-design engine (builder-style configuration).
///
/// See the crate-level example.
pub struct AutoSeg {
    budget: HwBudget,
    goal: DesignGoal,
    max_pus: usize,
    max_segments: usize,
    threads: usize,
    segmenter: Box<dyn Segmenter>,
}

impl std::fmt::Debug for AutoSeg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AutoSeg")
            .field("budget", &self.budget.name)
            .field("goal", &self.goal)
            .field("max_pus", &self.max_pus)
            .field("max_segments", &self.max_segments)
            .field("threads", &self.threads)
            .field("segmenter", &self.segmenter.name())
            .finish()
    }
}

impl AutoSeg {
    /// An engine targeting `budget` with default settings (latency goal,
    /// up to 8 PUs and 12 segments, chain-DP segmentation).
    pub fn new(budget: HwBudget) -> Self {
        Self {
            budget,
            goal: DesignGoal::Latency,
            max_pus: 8,
            max_segments: 12,
            threads: 0,
            segmenter: Box::new(ChainDpSegmenter::new()),
        }
    }

    /// Sets the design goal.
    pub fn design_goal(mut self, goal: DesignGoal) -> Self {
        self.goal = goal;
        self
    }

    /// Caps the pipeline width explored.
    pub fn max_pus(mut self, n: usize) -> Self {
        self.max_pus = n.max(1);
        self
    }

    /// Caps the segment count explored.
    pub fn max_segments(mut self, s: usize) -> Self {
        self.max_segments = s.max(1);
        self
    }

    /// Sets the DSE worker count for the `(N, S)` sweep. `0` (the
    /// default) auto-sizes from `DSE_THREADS` / available cores; `1` is
    /// the serial reference path. The selected design is identical for
    /// any value — candidates are evaluated per shape index and folded in
    /// enumeration order.
    pub fn threads(mut self, t: usize) -> Self {
        self.threads = t;
        self
    }

    /// Replaces the segmentation engine (e.g. [`crate::segment::MipSegmenter`]
    /// or a baseline).
    pub fn segmenter(mut self, s: Box<dyn Segmenter>) -> Self {
        self.segmenter = s;
        self
    }

    /// Runs the co-design flow on `model`.
    ///
    /// All feasible `(N PUs, S segments)` tuples are traversed (Section
    /// V-A: "all possible (S, N) tuples will be traversed"); for each, the
    /// segmenter and Algorithm 1 produce a candidate which is simulated;
    /// the best design under the goal wins.
    ///
    /// # Errors
    ///
    /// [`AutoSegError::InvalidModel`] / [`AutoSegError::InvalidBudget`]
    /// if pre-flight validation rejects the inputs,
    /// [`AutoSegError::EmptyWorkload`] for empty models,
    /// [`AutoSegError::NoFeasibleDesign`] if nothing fits the budget.
    pub fn run(&self, model: &Graph) -> Result<AutoSegOutcome, AutoSegError> {
        nnmodel::validate(model)?;
        let workload = Workload::from_graph(model);
        self.run_workload(workload)
    }

    /// Like [`AutoSeg::run`] but starting from an existing [`Workload`].
    ///
    /// # Errors
    ///
    /// See [`AutoSeg::run`].
    pub fn run_workload(&self, workload: Workload) -> Result<AutoSegOutcome, AutoSegError> {
        self.budget.validate()?;
        if workload.is_empty() {
            return Err(AutoSegError::EmptyWorkload);
        }
        let _span = obs::span!("autoseg.engine", model = workload.name());
        let l = workload.len();
        let mut shapes = Vec::new();
        for n in 2..=self.max_pus.min(l).min(self.budget.pes) {
            for s in 1..=self.max_segments.min(l / n) {
                shapes.push((n, s));
            }
        }
        let pool = if self.threads == 0 {
            DsePool::from_env()
        } else {
            DsePool::new(self.threads)
        };
        let cache = EvalCache::default();
        // Each shape's candidate is built and simulated independently; the
        // fold below walks results in enumeration order, so the selected
        // design (and tie-breaks) match the serial sweep exactly.
        let evals = pool.par_map(&shapes, |_, &(n, s)| {
            let Ok(schedule) = self.segmenter.segment(&workload, n, s) else {
                return (false, None);
            };
            let Ok(design) = allocate_with(&workload, &schedule, &self.budget, self.goal, &cache)
            else {
                return (false, None);
            };
            if !design.fits(&self.budget) {
                return (true, None);
            }
            // The fabric must be able to realize every segment.
            if design.segment_routings(&workload).is_err() {
                return (true, None);
            }
            let report = simulate_spa_with(&workload, &design, &cache);
            let metric = match self.goal {
                DesignGoal::Latency => report.seconds,
                DesignGoal::Throughput => 1.0 / report.gops().max(1e-12),
            };
            (true, Some((metric, design, report)))
        });
        let mut best: Option<(f64, SpaDesign, SimReport)> = None;
        let mut explored = 0;
        for (counted, candidate) in evals {
            explored += counted as usize;
            if let Some((metric, design, report)) = candidate {
                if best.as_ref().is_none_or(|(m, _, _)| metric < *m) {
                    best = Some((metric, design, report));
                }
            }
        }
        if obs::enabled() {
            // Progress event for the (N, S) sweep plus the shared cache's
            // end-of-search statistics.
            obs::add("engine.shapes_swept", shapes.len() as u64);
            obs::add("engine.shapes_feasible", explored as u64);
            obs::event(
                "engine.sweep",
                &[
                    ("model", workload.name().into()),
                    ("shapes", shapes.len().into()),
                    ("feasible", explored.into()),
                    ("found", best.is_some().into()),
                ],
            );
            cache.stats().publish("engine.cache");
        }
        match best {
            Some((_, design, report)) => Ok(AutoSegOutcome {
                design,
                report,
                workload,
                explored,
            }),
            None => Err(AutoSegError::NoFeasibleDesign {
                budget: self.budget.name.clone(),
                model: workload.name().to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnmodel::zoo;
    use spa_sim::simulate_processor;

    #[test]
    fn designs_fit_their_budgets() {
        for budget in [HwBudget::eyeriss(), HwBudget::nvdla_small()] {
            let out = AutoSeg::new(budget.clone())
                .max_pus(4)
                .max_segments(6)
                .run(&zoo::squeezenet1_0())
                .unwrap();
            assert!(out.design.fits(&budget), "{}", budget.name);
            assert!(out.explored > 0);
        }
    }

    #[test]
    fn spa_beats_the_layerwise_baseline() {
        // The headline claim (Figure 12): AutoSeg designs outperform
        // general processors of the same budget.
        let budget = HwBudget::nvdla_small();
        let w = Workload::from_graph(&zoo::mobilenet_v1());
        let baseline = simulate_processor(&w, &budget, pucost::Dataflow::WeightStationary);
        let out = AutoSeg::new(budget)
            .max_pus(4)
            .max_segments(8)
            .run(&zoo::mobilenet_v1())
            .unwrap();
        let speedup = baseline.seconds / out.report.seconds;
        assert!(speedup > 1.0, "speedup {speedup:.2}");
    }

    #[test]
    fn throughput_goal_reports_higher_gops() {
        let budget = HwBudget::edge_tpu();
        let lat = AutoSeg::new(budget.clone())
            .max_pus(3)
            .max_segments(4)
            .run(&zoo::squeezenet1_0())
            .unwrap();
        let thr = AutoSeg::new(budget)
            .design_goal(DesignGoal::Throughput)
            .max_pus(3)
            .max_segments(4)
            .run(&zoo::squeezenet1_0())
            .unwrap();
        assert!(thr.report.gops() >= lat.report.gops());
    }

    #[test]
    fn deep_model_designs_are_feasible() {
        // ResNet50 (54 items) on NVDLA-Large: SPA scales where the full
        // pipeline cannot.
        let out = AutoSeg::new(HwBudget::nvdla_large())
            .max_pus(4)
            .max_segments(10)
            .run(&zoo::resnet50())
            .unwrap();
        assert!(out.design.schedule.len() > 1);
    }

    #[test]
    fn infeasible_budget_reports_cleanly() {
        let mut b = HwBudget::eyeriss();
        b.pes = 1;
        let err = AutoSeg::new(b).run(&zoo::squeezenet1_0()).unwrap_err();
        assert!(matches!(err, AutoSegError::NoFeasibleDesign { .. }));
    }

    #[test]
    fn malformed_budget_rejected_preflight() {
        let mut b = HwBudget::eyeriss();
        b.bandwidth_gbps = f64::NAN;
        let err = AutoSeg::new(b).run(&zoo::squeezenet1_0()).unwrap_err();
        assert!(matches!(err, AutoSegError::InvalidBudget(_)));
    }
}
