//! The end-to-end AutoSeg flow: enumerate `(N, S)` shapes, segment,
//! allocate, simulate, keep the best design (Section III's workflow).

use crate::allocate::allocate_with;
use crate::codesign::GENERATION;
use crate::dse::checkpoint::{f64_from_hex, f64_to_hex, Checkpoint, CheckpointError};
use crate::dse::control::{Partial, RunCtl, RunStatus};
use crate::dse::DsePool;
use crate::error::AutoSegError;
use crate::segment::{ChainDpSegmenter, Segmenter};
use nnmodel::{Graph, Workload};
use pucost::EvalCache;
use spa_arch::{HwBudget, SpaDesign};
use spa_sim::{simulate_spa_with, SimReport};

/// Optimization target of the generated accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DesignGoal {
    /// Minimize single-frame latency (batch pinned to 1).
    #[default]
    Latency,
    /// Maximize throughput (batch-level replication allowed).
    Throughput,
}

/// Result of a co-design run.
#[derive(Debug, Clone)]
pub struct AutoSegOutcome {
    /// The selected design.
    pub design: SpaDesign,
    /// Its simulation report.
    pub report: SimReport,
    /// The compute view the design was built for.
    pub workload: Workload,
    /// Number of `(N, S)` combinations explored.
    pub explored: usize,
}

/// Result of an anytime engine run ([`AutoSeg::run_ctl`]): the best
/// design found so far — if any shape has been evaluated feasible — plus
/// how much of the sweep produced it.
#[derive(Debug, Clone)]
pub struct AnytimeOutcome {
    /// Best design over the shapes evaluated so far. `None` means no
    /// feasible shape *yet* for a partial run, or a genuinely infeasible
    /// budget for a complete one.
    pub outcome: Option<AutoSegOutcome>,
    /// `Complete`, or a typed partial with generation provenance.
    pub status: RunStatus,
}

/// One swept shape's recorded result: whether it counted as explored
/// (segmentation + allocation succeeded) and its metric when feasible.
fn shape_line(counted: bool, metric: Option<f64>) -> String {
    match metric {
        Some(m) => format!("sh {} {}", counted as u8, f64_to_hex(m)),
        None => format!("sh {} -", counted as u8),
    }
}

fn parse_shape_line(line: &str) -> Result<(bool, Option<f64>), CheckpointError> {
    let corrupt = || CheckpointError::Corrupt {
        path: "shapes-section".into(),
        reason: format!("malformed shape line: {line}"),
    };
    let toks: Vec<&str> = line.split(' ').collect();
    if toks.len() != 3 || toks[0] != "sh" {
        return Err(corrupt());
    }
    let counted = match toks[1] {
        "0" => false,
        "1" => true,
        _ => return Err(corrupt()),
    };
    let metric = match toks[2] {
        "-" => None,
        hex => Some(f64_from_hex(hex).ok_or_else(corrupt)?),
    };
    Ok((counted, metric))
}

/// The AutoSeg co-design engine (builder-style configuration).
///
/// See the crate-level example.
pub struct AutoSeg {
    budget: HwBudget,
    goal: DesignGoal,
    max_pus: usize,
    max_segments: usize,
    threads: usize,
    segmenter: Box<dyn Segmenter>,
}

impl std::fmt::Debug for AutoSeg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AutoSeg")
            .field("budget", &self.budget.name)
            .field("goal", &self.goal)
            .field("max_pus", &self.max_pus)
            .field("max_segments", &self.max_segments)
            .field("threads", &self.threads)
            .field("segmenter", &self.segmenter.name())
            .finish()
    }
}

impl AutoSeg {
    /// An engine targeting `budget` with default settings (latency goal,
    /// up to 8 PUs and 12 segments, chain-DP segmentation).
    pub fn new(budget: HwBudget) -> Self {
        Self {
            budget,
            goal: DesignGoal::Latency,
            max_pus: 8,
            max_segments: 12,
            threads: 0,
            segmenter: Box::new(ChainDpSegmenter::new()),
        }
    }

    /// Sets the design goal.
    pub fn design_goal(mut self, goal: DesignGoal) -> Self {
        self.goal = goal;
        self
    }

    /// Caps the pipeline width explored.
    pub fn max_pus(mut self, n: usize) -> Self {
        self.max_pus = n.max(1);
        self
    }

    /// Caps the segment count explored.
    pub fn max_segments(mut self, s: usize) -> Self {
        self.max_segments = s.max(1);
        self
    }

    /// Sets the DSE worker count for the `(N, S)` sweep. `0` (the
    /// default) auto-sizes from `DSE_THREADS` / available cores; `1` is
    /// the serial reference path. The selected design is identical for
    /// any value — candidates are evaluated per shape index and folded in
    /// enumeration order.
    pub fn threads(mut self, t: usize) -> Self {
        self.threads = t;
        self
    }

    /// Replaces the segmentation engine (e.g. [`crate::segment::MipSegmenter`]
    /// or a baseline).
    pub fn segmenter(mut self, s: Box<dyn Segmenter>) -> Self {
        self.segmenter = s;
        self
    }

    /// Runs the co-design flow on `model`.
    ///
    /// All feasible `(N PUs, S segments)` tuples are traversed (Section
    /// V-A: "all possible (S, N) tuples will be traversed"); for each, the
    /// segmenter and Algorithm 1 produce a candidate which is simulated;
    /// the best design under the goal wins.
    ///
    /// # Errors
    ///
    /// [`AutoSegError::InvalidModel`] / [`AutoSegError::InvalidBudget`]
    /// if pre-flight validation rejects the inputs,
    /// [`AutoSegError::EmptyWorkload`] for empty models,
    /// [`AutoSegError::NoFeasibleDesign`] if nothing fits the budget.
    pub fn run(&self, model: &Graph) -> Result<AutoSegOutcome, AutoSegError> {
        nnmodel::validate(model)?;
        let workload = Workload::from_graph(model);
        self.run_workload(workload)
    }

    /// Like [`AutoSeg::run`] but starting from an existing [`Workload`].
    ///
    /// # Errors
    ///
    /// See [`AutoSeg::run`].
    pub fn run_workload(&self, workload: Workload) -> Result<AutoSegOutcome, AutoSegError> {
        let model = workload.name().to_string();
        let run = self.run_workload_ctl(workload, &RunCtl::none())?;
        match run.outcome {
            Some(outcome) => Ok(outcome),
            None => Err(AutoSegError::NoFeasibleDesign {
                budget: self.budget.name.clone(),
                model,
            }),
        }
    }

    /// [`AutoSeg::run`] under an anytime policy: the `(N, S)` sweep
    /// proceeds in [`GENERATION`]-sized chunks, honoring the ctl's
    /// deadline / generation budget (typed [`RunStatus::Partial`] with
    /// the best-so-far design instead of lost work), periodic
    /// checkpoints, and resume.
    ///
    /// With `RunCtl::none()` this is exactly [`AutoSeg::run`], except
    /// that an infeasible budget surfaces as `outcome: None` rather than
    /// an error (a *partial* run with no feasible shape yet is not a
    /// failure).
    ///
    /// # Errors
    ///
    /// See [`AutoSeg::run`], plus [`AutoSegError::Checkpoint`] for
    /// checkpoint I/O / corruption / configuration mismatches.
    pub fn run_ctl(&self, model: &Graph, ctl: &RunCtl) -> Result<AnytimeOutcome, AutoSegError> {
        nnmodel::validate(model)?;
        self.run_workload_ctl(Workload::from_graph(model), ctl)
    }

    fn goal_label(&self) -> &'static str {
        match self.goal {
            DesignGoal::Latency => "latency",
            DesignGoal::Throughput => "throughput",
        }
    }

    /// Like [`AutoSeg::run_ctl`] but starting from an existing
    /// [`Workload`].
    ///
    /// # Errors
    ///
    /// See [`AutoSeg::run_ctl`].
    pub fn run_workload_ctl(
        &self,
        workload: Workload,
        ctl: &RunCtl,
    ) -> Result<AnytimeOutcome, AutoSegError> {
        self.budget.validate()?;
        if workload.is_empty() {
            return Err(AutoSegError::EmptyWorkload);
        }
        let _span = obs::span!("autoseg.engine", model = workload.name());
        let l = workload.len();
        let mut shapes = Vec::new();
        for n in 2..=self.max_pus.min(l).min(self.budget.pes) {
            for s in 1..=self.max_segments.min(l / n) {
                shapes.push((n, s));
            }
        }
        let pool = if self.threads == 0 {
            DsePool::from_env()
        } else {
            DsePool::new(self.threads)
        };
        let cache = EvalCache::default();

        // Per-shape results in enumeration order — `(counted, metric)` —
        // restored from a checkpoint and/or computed below. Designs are
        // not persisted: the winner is *rematerialized* at the end by
        // re-evaluating its shape, which is bit-identical because the
        // evaluation is deterministic (and cache-hot).
        let mut results: Vec<(bool, Option<f64>)> = Vec::new();
        if let Some(path) = ctl.resume_from() {
            let ck = Checkpoint::load(path)?;
            ck.require(
                "engine",
                &[
                    ("model", workload.name()),
                    ("budget", &self.budget.name),
                    ("goal", self.goal_label()),
                    ("max_pus", &self.max_pus.to_string()),
                    ("max_segments", &self.max_segments.to_string()),
                    ("segmenter", self.segmenter.name()),
                    ("energy_model", &format!("{:016x}", cache.model_fingerprint())),
                ],
            )?;
            for line in ck.section("shapes") {
                results.push(parse_shape_line(line)?);
            }
            if results.len() > shapes.len() {
                return Err(CheckpointError::Corrupt {
                    path: "shapes-section".into(),
                    reason: format!("{} results for {} shapes", results.len(), shapes.len()),
                }
                .into());
            }
            for line in ck.section("cache") {
                cache
                    .import_line(line)
                    .map_err(|e| CheckpointError::Corrupt {
                        path: "cache-section".into(),
                        reason: e.to_string(),
                    })?;
            }
        }

        // One shape's candidate, built and simulated independently of all
        // others (the parallel sweep stays bit-identical to the serial
        // one: results are folded in enumeration order).
        let eval_shape = |&(n, s): &(usize, usize)| {
            let Ok(schedule) = self.segmenter.segment(&workload, n, s) else {
                return (false, None);
            };
            let Ok(design) = allocate_with(&workload, &schedule, &self.budget, self.goal, &cache)
            else {
                return (false, None);
            };
            if !design.fits(&self.budget) {
                return (true, None);
            }
            // The fabric must be able to realize every segment.
            if design.segment_routings(&workload).is_err() {
                return (true, None);
            }
            let report = simulate_spa_with(&workload, &design, &cache);
            let metric = match self.goal {
                DesignGoal::Latency => report.seconds,
                DesignGoal::Throughput => 1.0 / report.gops().max(1e-12),
            };
            (true, Some((metric, design, report)))
        };

        let save = |results: &[(bool, Option<f64>)], gens: u64, planned: u64| {
            let Some(path) = ctl.checkpoint_path() else {
                return Ok(());
            };
            let mut ck = Checkpoint::new("engine");
            ck.set_meta("model", workload.name());
            ck.set_meta("budget", &self.budget.name);
            ck.set_meta("goal", self.goal_label());
            ck.set_meta("max_pus", &self.max_pus.to_string());
            ck.set_meta("max_segments", &self.max_segments.to_string());
            ck.set_meta("segmenter", self.segmenter.name());
            ck.set_meta("energy_model", &format!("{:016x}", cache.model_fingerprint()));
            ck.set_meta("gens_done", &gens.to_string());
            ck.set_meta("planned_gens", &planned.to_string());
            ck.push_section(
                "shapes",
                results.iter().map(|&(c, m)| shape_line(c, m)).collect(),
            );
            ck.push_section("cache", cache.export_lines());
            ck.save(path)
        };

        let chunks: Vec<&[(usize, usize)]> = shapes.chunks(GENERATION).collect();
        let planned = chunks.len() as u64;
        let mut gens = 0u64;
        let mut done_shapes = 0usize;
        let mut partial: Option<Partial> = None;
        for chunk in &chunks {
            if done_shapes + chunk.len() <= results.len() {
                // Restored from the checkpoint (saves happen only at
                // generation boundaries, so restored results cover whole
                // chunks).
                done_shapes += chunk.len();
                gens += 1;
                continue;
            }
            if let Some(reason) = ctl.should_stop(gens) {
                save(&results, gens, planned)?;
                partial = Some(Partial {
                    completed_gens: gens,
                    planned_gens: planned,
                    reason,
                });
                break;
            }
            let evals = pool.par_map(chunk, |_, sh| eval_shape(sh));
            for (counted, candidate) in evals {
                results.push((counted, candidate.map(|(m, _, _)| m)));
            }
            done_shapes = results.len();
            gens += 1;
            if ctl.should_checkpoint(gens) {
                save(&results, gens, planned)?;
            }
        }
        if partial.is_none() {
            save(&results, gens, planned)?;
        }

        // Fold in enumeration order with a strict `<`: same winner and
        // tie-breaks as the serial sweep.
        let mut best: Option<(f64, usize)> = None;
        let mut explored = 0;
        for (i, (counted, metric)) in results.iter().enumerate() {
            explored += *counted as usize;
            if let Some(m) = metric {
                if best.as_ref().is_none_or(|(bm, _)| *m < *bm) {
                    best = Some((*m, i));
                }
            }
        }
        if obs::enabled() {
            // Progress event for the (N, S) sweep plus the shared cache's
            // end-of-search statistics.
            obs::add("engine.shapes_swept", results.len() as u64);
            obs::add("engine.shapes_feasible", explored as u64);
            obs::event(
                "engine.sweep",
                &[
                    ("model", workload.name().into()),
                    ("shapes", results.len().into()),
                    ("feasible", explored.into()),
                    ("found", best.is_some().into()),
                    ("complete", partial.is_none().into()),
                ],
            );
            cache.stats().publish("engine.cache");
        }
        let outcome = match best {
            Some((metric, idx)) => {
                let (_, candidate) = eval_shape(&shapes[idx]);
                match candidate {
                    Some((m, design, report)) => {
                        debug_assert_eq!(m.to_bits(), metric.to_bits());
                        Some(AutoSegOutcome {
                            design,
                            report,
                            workload,
                            explored,
                        })
                    }
                    // A recorded metric for a shape that does not evaluate
                    // feasible can only come from a checkpoint that lies.
                    None => {
                        return Err(CheckpointError::Corrupt {
                            path: "shapes-section".into(),
                            reason: "recorded metric for an infeasible shape".into(),
                        }
                        .into())
                    }
                }
            }
            None => None,
        };
        Ok(AnytimeOutcome {
            outcome,
            status: match partial {
                Some(p) => RunStatus::Partial(p),
                None => RunStatus::Complete,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnmodel::zoo;
    use spa_sim::simulate_processor;

    #[test]
    fn designs_fit_their_budgets() {
        for budget in [HwBudget::eyeriss(), HwBudget::nvdla_small()] {
            let out = AutoSeg::new(budget.clone())
                .max_pus(4)
                .max_segments(6)
                .run(&zoo::squeezenet1_0())
                .unwrap();
            assert!(out.design.fits(&budget), "{}", budget.name);
            assert!(out.explored > 0);
        }
    }

    #[test]
    fn spa_beats_the_layerwise_baseline() {
        // The headline claim (Figure 12): AutoSeg designs outperform
        // general processors of the same budget.
        let budget = HwBudget::nvdla_small();
        let w = Workload::from_graph(&zoo::mobilenet_v1());
        let baseline = simulate_processor(&w, &budget, pucost::Dataflow::WeightStationary);
        let out = AutoSeg::new(budget)
            .max_pus(4)
            .max_segments(8)
            .run(&zoo::mobilenet_v1())
            .unwrap();
        let speedup = baseline.seconds / out.report.seconds;
        assert!(speedup > 1.0, "speedup {speedup:.2}");
    }

    #[test]
    fn throughput_goal_reports_higher_gops() {
        let budget = HwBudget::edge_tpu();
        let lat = AutoSeg::new(budget.clone())
            .max_pus(3)
            .max_segments(4)
            .run(&zoo::squeezenet1_0())
            .unwrap();
        let thr = AutoSeg::new(budget)
            .design_goal(DesignGoal::Throughput)
            .max_pus(3)
            .max_segments(4)
            .run(&zoo::squeezenet1_0())
            .unwrap();
        assert!(thr.report.gops() >= lat.report.gops());
    }

    #[test]
    fn deep_model_designs_are_feasible() {
        // ResNet50 (54 items) on NVDLA-Large: SPA scales where the full
        // pipeline cannot.
        let out = AutoSeg::new(HwBudget::nvdla_large())
            .max_pus(4)
            .max_segments(10)
            .run(&zoo::resnet50())
            .unwrap();
        assert!(out.design.schedule.len() > 1);
    }

    #[test]
    fn infeasible_budget_reports_cleanly() {
        let mut b = HwBudget::eyeriss();
        b.pes = 1;
        let err = AutoSeg::new(b).run(&zoo::squeezenet1_0()).unwrap_err();
        assert!(matches!(err, AutoSegError::NoFeasibleDesign { .. }));
    }

    #[test]
    fn anytime_none_ctl_matches_plain_run() {
        let budget = HwBudget::nvdla_small();
        let eng = AutoSeg::new(budget).max_pus(3).max_segments(4).threads(2);
        let plain = eng.run(&zoo::squeezenet1_0()).unwrap();
        let any = eng
            .run_ctl(&zoo::squeezenet1_0(), &RunCtl::none())
            .unwrap();
        assert!(any.status.is_complete());
        let out = any.outcome.expect("feasible");
        assert_eq!(out.design, plain.design);
        assert_eq!(out.explored, plain.explored);
        assert_eq!(out.report.cycles, plain.report.cycles);
    }

    #[test]
    fn engine_kill_and_resume_is_bit_identical() {
        let budget = HwBudget::nvdla_small();
        let eng = AutoSeg::new(budget).max_pus(4).max_segments(6).threads(2);
        let full = eng.run(&zoo::squeezenet1_0()).unwrap();
        let dir = std::env::temp_dir().join("spa_engine_resume_unit");
        let _ = std::fs::create_dir_all(&dir);
        let ckpt = dir.join("engine.ckpt");
        let cut = eng
            .run_ctl(
                &zoo::squeezenet1_0(),
                &RunCtl::none().stop_after_gens(1).checkpoint(&ckpt, 1),
            )
            .unwrap();
        assert!(!cut.status.is_complete(), "one generation cannot finish");
        let resumed = eng
            .run_ctl(&zoo::squeezenet1_0(), &RunCtl::none().resume(&ckpt))
            .unwrap();
        assert!(resumed.status.is_complete());
        let out = resumed.outcome.expect("feasible");
        assert_eq!(out.design, full.design, "kill+resume == uninterrupted");
        assert_eq!(out.explored, full.explored);
        assert_eq!(out.report.cycles, full.report.cycles);
        // Resuming under a different goal is a typed mismatch.
        let err = AutoSeg::new(HwBudget::nvdla_small())
            .design_goal(DesignGoal::Throughput)
            .max_pus(4)
            .max_segments(6)
            .threads(2)
            .run_ctl(&zoo::squeezenet1_0(), &RunCtl::none().resume(&ckpt))
            .unwrap_err();
        assert!(
            matches!(
                &err,
                AutoSegError::Checkpoint(CheckpointError::Mismatch { key, .. }) if key == "goal"
            ),
            "got {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_budget_partial_has_no_outcome() {
        let budget = HwBudget::nvdla_small();
        let any = AutoSeg::new(budget)
            .max_pus(3)
            .max_segments(4)
            .threads(1)
            .run_ctl(&zoo::squeezenet1_0(), &RunCtl::none().stop_after_gens(0))
            .unwrap();
        match any.status {
            RunStatus::Partial(p) => {
                assert_eq!(p.completed_gens, 0);
                assert!(p.planned_gens > 0);
            }
            RunStatus::Complete => panic!("a zero budget cannot complete"),
        }
        assert!(any.outcome.is_none());
    }

    #[test]
    fn malformed_budget_rejected_preflight() {
        let mut b = HwBudget::eyeriss();
        b.bandwidth_gbps = f64::NAN;
        let err = AutoSeg::new(b).run(&zoo::squeezenet1_0()).unwrap_err();
        assert!(matches!(err, AutoSegError::InvalidBudget(_)));
    }
}
