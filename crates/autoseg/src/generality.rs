//! Generality analysis (Section VI-F): mapping a model onto an SPA
//! accelerator that was dedicated to a *different* model.
//!
//! The dedicated hardware is frozen — PU count, PE arrays, buffers,
//! bandwidth and the *pruned* Benes fabric. Remapping re-runs segmentation
//! with the target changed to direct latency and adds the connection
//! constraints of the pruned network: a candidate segmentation is only
//! admissible if every segment's inter-PU traffic routes on the surviving
//! fabric hardware.

use crate::allocate::eval_pu_segment;
use crate::error::AutoSegError;
use crate::segment::{ChainDpSegmenter, Segmenter};
use nnmodel::{Graph, Workload};
use pucost::EvalCache;
use spa_arch::SpaDesign;
use spa_sim::{simulate_spa_with, SimReport};

/// Maps `new_model` onto the hardware of `dedicated` (designed for
/// `dedicated_workload`). Returns the remapped design (same PUs, new
/// schedule and dataflows) and its simulation report.
///
/// # Errors
///
/// [`AutoSegError::NoFeasibleDesign`] if no segmentation routes on the
/// pruned fabric (or the model has fewer items than the pipeline has PUs).
pub fn remap(
    dedicated: &SpaDesign,
    dedicated_workload: &Workload,
    new_model: &Graph,
) -> Result<(SpaDesign, SimReport), AutoSegError> {
    let workload = Workload::from_graph(new_model);
    let n = dedicated.n_pus();
    // The PU hardware is frozen, so every relabeling probes the same
    // (layer, PU, dataflow) points — one cache serves the whole remap.
    let cache = EvalCache::default();
    let pruned = dedicated
        .pruned_fabric(dedicated_workload)
        .map_err(|_| AutoSegError::NoFeasibleDesign {
            budget: dedicated.name.clone(),
            model: workload.name().to_string(),
        })?;
    let segmenter = ChainDpSegmenter::new();

    let mut best: Option<(f64, SpaDesign, SimReport)> = None;
    let max_s = (workload.len() / n).min(16);
    for s in 1..=max_s {
        let Ok(base_schedule) = segmenter.segment(&workload, n, s) else {
            continue;
        };
        // The pruned fabric only kept the routes the *dedicated* model
        // exercised; the fresh segmentation's PU labels may not line up
        // with surviving routes. Try PU relabelings until one routes.
        for perm in pu_permutations(n) {
            let mut schedule = base_schedule.clone();
            for seg in &mut schedule.segments {
                for a in &mut seg.assignments {
                    a.pu = perm[a.pu];
                }
            }
            // Frozen hardware, fresh dataflow choices.
            let dataflows = (0..n)
                .map(|pu| {
                    (0..s)
                        .map(|si| {
                            eval_pu_segment(&workload, &schedule, si, pu, &dedicated.pus[pu], &cache)
                                .0
                        })
                        .collect()
                })
                .collect();
            let candidate = SpaDesign {
                name: format!("{}->{}", dedicated.name, workload.name()),
                pus: dedicated.pus.clone(),
                schedule,
                dataflows,
                batch: 1,
                bandwidth_gbps: dedicated.bandwidth_gbps,
                platform: dedicated.platform,
            };
            // Connection constraint: every segment must route on the pruned
            // network of the dedicated design.
            let Ok(routings) = candidate.segment_routings(&workload) else {
                continue;
            };
            if !routings.iter().all(|r| pruned.supports(r)) {
                continue;
            }
            let report = simulate_spa_with(&workload, &candidate, &cache);
            if best
                .as_ref()
                .is_none_or(|(secs, _, _)| report.seconds < *secs)
            {
                best = Some((report.seconds, candidate, report));
            }
            break; // first routable relabeling of this segmentation
        }
    }
    best.map(|(_, d, r)| (d, r))
        .ok_or_else(|| AutoSegError::NoFeasibleDesign {
            budget: dedicated.name.clone(),
            model: workload.name().to_string(),
        })
}

/// All permutations of `0..n` for small pipelines (n <= 4), or identity /
/// reversal / rotations for wider ones (bounded relabeling search).
fn pu_permutations(n: usize) -> Vec<Vec<usize>> {
    if n <= 4 {
        let mut out = Vec::new();
        let mut v: Vec<usize> = (0..n).collect();
        permute(&mut v, 0, &mut out);
        return out;

        fn permute(v: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
            if k == v.len() {
                out.push(v.clone());
                return;
            }
            for i in k..v.len() {
                v.swap(k, i);
                permute(v, k + 1, out);
                v.swap(k, i);
            }
        }
    }
    let mut out = vec![(0..n).collect::<Vec<_>>(), (0..n).rev().collect()];
    for shift in 1..n {
        out.push((0..n).map(|i| (i + shift) % n).collect());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AutoSeg;
    use nnmodel::zoo;
    use spa_arch::HwBudget;
    use spa_sim::simulate_layerwise;

    #[test]
    fn cross_model_mapping_works_and_costs_a_little() {
        let budget = HwBudget::nvdla_small();
        // Dedicated design for SqueezeNet.
        let ded = AutoSeg::new(budget.clone())
            .max_pus(3)
            .max_segments(6)
            .run(&zoo::squeezenet1_0())
            .unwrap();
        // Map MobileNetV1 onto it.
        let (remapped, report) = remap(&ded.design, &ded.workload, &zoo::mobilenet_v1()).unwrap();
        assert_eq!(remapped.n_pus(), ded.design.n_pus());
        assert_eq!(remapped.pus, ded.design.pus);

        // Its own dedicated design should be at least as fast.
        let own = AutoSeg::new(budget.clone())
            .max_pus(3)
            .max_segments(6)
            .run(&zoo::mobilenet_v1())
            .unwrap();
        assert!(own.report.seconds <= report.seconds * 1.001);

        // But the non-dedicated mapping still beats the layerwise baseline
        // (the Figure 17 claim).
        let w = Workload::from_graph(&zoo::mobilenet_v1());
        let baseline = simulate_layerwise(&w, &budget);
        assert!(
            report.seconds < baseline.seconds,
            "remapped {} vs baseline {}",
            report.seconds,
            baseline.seconds
        );
    }

    #[test]
    fn self_remap_matches_pipeline_width() {
        let budget = HwBudget::eyeriss();
        let ded = AutoSeg::new(budget)
            .max_pus(3)
            .max_segments(4)
            .run(&zoo::squeezenet1_0())
            .unwrap();
        let (d, r) = remap(&ded.design, &ded.workload, &zoo::squeezenet1_0()).unwrap();
        assert_eq!(d.n_pus(), ded.design.n_pus());
        assert!(r.seconds > 0.0);
    }
}
