//! Generality analysis (Section VI-F): mapping a model onto an SPA
//! accelerator that was dedicated to a *different* model.
//!
//! The dedicated hardware is frozen — PU count, PE arrays, buffers,
//! bandwidth and the *pruned* Benes fabric. Remapping re-runs segmentation
//! with the target changed to direct latency and adds the connection
//! constraints of the pruned network: a candidate segmentation is only
//! admissible if every segment's inter-PU traffic routes on the surviving
//! fabric hardware.

use crate::allocate::eval_pu_segment;
use crate::dse::checkpoint::{f64_from_hex, f64_to_hex, Checkpoint, CheckpointError};
use crate::dse::control::{Partial, RunCtl, RunStatus};
use crate::error::AutoSegError;
use crate::segment::{ChainDpSegmenter, Segmenter};
use benes::PrunedFabric;
use nnmodel::{Graph, Workload};
use pucost::EvalCache;
use spa_arch::SpaDesign;
use spa_sim::{simulate_spa_with, SimReport};

/// Evaluates one candidate segment count `s`: fresh segmentation, first
/// PU relabeling whose traffic routes on the pruned fabric, frozen
/// hardware, fresh dataflows. `None` when nothing routes at this `s`.
fn eval_segcount(
    dedicated: &SpaDesign,
    workload: &Workload,
    pruned: &PrunedFabric,
    segmenter: &ChainDpSegmenter,
    cache: &EvalCache,
    n: usize,
    s: usize,
) -> Option<(SpaDesign, SimReport)> {
    let base_schedule = segmenter.segment(workload, n, s).ok()?;
    // The pruned fabric only kept the routes the *dedicated* model
    // exercised; the fresh segmentation's PU labels may not line up
    // with surviving routes. Try PU relabelings until one routes.
    for perm in pu_permutations(n) {
        let mut schedule = base_schedule.clone();
        for seg in &mut schedule.segments {
            for a in &mut seg.assignments {
                a.pu = perm[a.pu];
            }
        }
        // Frozen hardware, fresh dataflow choices.
        let dataflows = (0..n)
            .map(|pu| {
                (0..s)
                    .map(|si| {
                        eval_pu_segment(workload, &schedule, si, pu, &dedicated.pus[pu], cache).0
                    })
                    .collect()
            })
            .collect();
        let candidate = SpaDesign {
            name: format!("{}->{}", dedicated.name, workload.name()),
            pus: dedicated.pus.clone(),
            schedule,
            dataflows,
            batch: 1,
            bandwidth_gbps: dedicated.bandwidth_gbps,
            platform: dedicated.platform,
        };
        // Connection constraint: every segment must route on the pruned
        // network of the dedicated design.
        let Ok(routings) = candidate.segment_routings(workload) else {
            continue;
        };
        if !routings.iter().all(|r| pruned.supports(r)) {
            continue;
        }
        let report = simulate_spa_with(workload, &candidate, cache);
        // First routable relabeling of this segmentation wins.
        return Some((candidate, report));
    }
    None
}

/// Maps `new_model` onto the hardware of `dedicated` (designed for
/// `dedicated_workload`). Returns the remapped design (same PUs, new
/// schedule and dataflows) and its simulation report.
///
/// # Errors
///
/// [`AutoSegError::NoFeasibleDesign`] if no segmentation routes on the
/// pruned fabric (or the model has fewer items than the pipeline has PUs).
pub fn remap(
    dedicated: &SpaDesign,
    dedicated_workload: &Workload,
    new_model: &Graph,
) -> Result<(SpaDesign, SimReport), AutoSegError> {
    let run = remap_ctl(dedicated, dedicated_workload, new_model, &RunCtl::none())?;
    run.outcome.ok_or_else(|| AutoSegError::NoFeasibleDesign {
        budget: dedicated.name.clone(),
        model: Workload::from_graph(new_model).name().to_string(),
    })
}

/// Anytime result of [`remap_ctl`].
#[derive(Debug, Clone)]
pub struct RemapAnytime {
    /// Best remapped design over the segment counts evaluated so far.
    pub outcome: Option<(SpaDesign, SimReport)>,
    /// `Complete`, or a typed partial with generation provenance.
    pub status: RunStatus,
}

fn seg_line(s: usize, metric: Option<f64>) -> String {
    match metric {
        Some(m) => format!("s {s} {}", f64_to_hex(m)),
        None => format!("s {s} -"),
    }
}

fn parse_seg_line(line: &str) -> Result<(usize, Option<f64>), CheckpointError> {
    let corrupt = || CheckpointError::Corrupt {
        path: "segcounts-section".into(),
        reason: format!("malformed segcount line: {line}"),
    };
    let toks: Vec<&str> = line.split(' ').collect();
    if toks.len() != 3 || toks[0] != "s" {
        return Err(corrupt());
    }
    let s: usize = toks[1].parse().map_err(|_| corrupt())?;
    let metric = match toks[2] {
        "-" => None,
        hex => Some(f64_from_hex(hex).ok_or_else(corrupt)?),
    };
    Ok((s, metric))
}

/// [`remap`] under an anytime policy: each candidate segment count is one
/// resumable generation. Per-`s` latency metrics and the shared cost
/// cache are checkpointed; the winning `s` is rematerialized at the end
/// (deterministic and cache-hot, so bit-identical).
///
/// # Errors
///
/// [`AutoSegError::NoFeasibleDesign`] when the *dedicated* design's
/// fabric cannot be pruned (nothing can ever route), plus
/// [`AutoSegError::Checkpoint`] for checkpoint I/O / corruption /
/// configuration mismatches. A remap that found nothing (yet) is
/// `outcome: None`, not an error.
pub fn remap_ctl(
    dedicated: &SpaDesign,
    dedicated_workload: &Workload,
    new_model: &Graph,
    ctl: &RunCtl,
) -> Result<RemapAnytime, AutoSegError> {
    let workload = Workload::from_graph(new_model);
    let n = dedicated.n_pus();
    // The PU hardware is frozen, so every relabeling probes the same
    // (layer, PU, dataflow) points — one cache serves the whole remap.
    let cache = EvalCache::default();
    let pruned = dedicated
        .pruned_fabric(dedicated_workload)
        .map_err(|_| AutoSegError::NoFeasibleDesign {
            budget: dedicated.name.clone(),
            model: workload.name().to_string(),
        })?;
    let segmenter = ChainDpSegmenter::new();
    let max_s = (workload.len() / n).min(16);

    let mut results: Vec<(usize, Option<f64>)> = Vec::new();
    if let Some(path) = ctl.resume_from() {
        let ck = Checkpoint::load(path)?;
        ck.require(
            "generality",
            &[
                ("dedicated", &dedicated.name),
                ("model", workload.name()),
                ("n_pus", &n.to_string()),
                ("max_s", &max_s.to_string()),
                ("energy_model", &format!("{:016x}", cache.model_fingerprint())),
            ],
        )?;
        for line in ck.section("segcounts") {
            results.push(parse_seg_line(line)?);
        }
        if results.len() > max_s || results.iter().enumerate().any(|(i, &(s, _))| s != i + 1) {
            return Err(CheckpointError::Corrupt {
                path: "segcounts-section".into(),
                reason: "recorded segment counts do not prefix this run's enumeration".into(),
            }
            .into());
        }
        for line in ck.section("cache") {
            cache
                .import_line(line)
                .map_err(|e| CheckpointError::Corrupt {
                    path: "cache-section".into(),
                    reason: e.to_string(),
                })?;
        }
    }

    let save = |results: &[(usize, Option<f64>)], gens: u64, planned: u64| {
        let Some(path) = ctl.checkpoint_path() else {
            return Ok(());
        };
        let mut ck = Checkpoint::new("generality");
        ck.set_meta("dedicated", &dedicated.name);
        ck.set_meta("model", workload.name());
        ck.set_meta("n_pus", &n.to_string());
        ck.set_meta("max_s", &max_s.to_string());
        ck.set_meta("energy_model", &format!("{:016x}", cache.model_fingerprint()));
        ck.set_meta("gens_done", &gens.to_string());
        ck.set_meta("planned_gens", &planned.to_string());
        ck.push_section(
            "segcounts",
            results.iter().map(|&(s, m)| seg_line(s, m)).collect(),
        );
        ck.push_section("cache", cache.export_lines());
        ck.save(path)
    };

    let planned = max_s as u64;
    let mut gens = 0u64;
    let mut partial: Option<Partial> = None;
    for s in 1..=max_s {
        if s <= results.len() {
            gens += 1;
            continue;
        }
        if let Some(reason) = ctl.should_stop(gens) {
            save(&results, gens, planned)?;
            partial = Some(Partial {
                completed_gens: gens,
                planned_gens: planned,
                reason,
            });
            break;
        }
        let metric = eval_segcount(dedicated, &workload, &pruned, &segmenter, &cache, n, s)
            .map(|(_, r)| r.seconds);
        results.push((s, metric));
        gens += 1;
        if ctl.should_checkpoint(gens) {
            save(&results, gens, planned)?;
        }
    }
    if partial.is_none() {
        save(&results, gens, planned)?;
    }

    // Strict `<` in s order: same winner as the all-at-once loop.
    let mut best: Option<(f64, usize)> = None;
    for &(s, metric) in &results {
        if let Some(m) = metric {
            if best.as_ref().is_none_or(|(bm, _)| m < *bm) {
                best = Some((m, s));
            }
        }
    }
    let outcome = match best {
        Some((metric, s)) => {
            match eval_segcount(dedicated, &workload, &pruned, &segmenter, &cache, n, s) {
                Some((design, report)) => {
                    debug_assert_eq!(report.seconds.to_bits(), metric.to_bits());
                    Some((design, report))
                }
                // A recorded metric for a segment count that does not
                // evaluate routable can only come from a checkpoint that
                // lies.
                None => {
                    return Err(CheckpointError::Corrupt {
                        path: "segcounts-section".into(),
                        reason: "recorded metric for an unroutable segment count".into(),
                    }
                    .into())
                }
            }
        }
        None => None,
    };
    Ok(RemapAnytime {
        outcome,
        status: match partial {
            Some(p) => RunStatus::Partial(p),
            None => RunStatus::Complete,
        },
    })
}

/// All permutations of `0..n` for small pipelines (n <= 4), or identity /
/// reversal / rotations for wider ones (bounded relabeling search).
fn pu_permutations(n: usize) -> Vec<Vec<usize>> {
    if n <= 4 {
        let mut out = Vec::new();
        let mut v: Vec<usize> = (0..n).collect();
        permute(&mut v, 0, &mut out);
        return out;

        fn permute(v: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
            if k == v.len() {
                out.push(v.clone());
                return;
            }
            for i in k..v.len() {
                v.swap(k, i);
                permute(v, k + 1, out);
                v.swap(k, i);
            }
        }
    }
    let mut out = vec![(0..n).collect::<Vec<_>>(), (0..n).rev().collect()];
    for shift in 1..n {
        out.push((0..n).map(|i| (i + shift) % n).collect());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AutoSeg;
    use nnmodel::zoo;
    use spa_arch::HwBudget;
    use spa_sim::simulate_layerwise;

    #[test]
    fn cross_model_mapping_works_and_costs_a_little() {
        let budget = HwBudget::nvdla_small();
        // Dedicated design for SqueezeNet.
        let ded = AutoSeg::new(budget.clone())
            .max_pus(3)
            .max_segments(6)
            .run(&zoo::squeezenet1_0())
            .unwrap();
        // Map MobileNetV1 onto it.
        let (remapped, report) = remap(&ded.design, &ded.workload, &zoo::mobilenet_v1()).unwrap();
        assert_eq!(remapped.n_pus(), ded.design.n_pus());
        assert_eq!(remapped.pus, ded.design.pus);

        // Its own dedicated design should be at least as fast.
        let own = AutoSeg::new(budget.clone())
            .max_pus(3)
            .max_segments(6)
            .run(&zoo::mobilenet_v1())
            .unwrap();
        assert!(own.report.seconds <= report.seconds * 1.001);

        // But the non-dedicated mapping still beats the layerwise baseline
        // (the Figure 17 claim).
        let w = Workload::from_graph(&zoo::mobilenet_v1());
        let baseline = simulate_layerwise(&w, &budget);
        assert!(
            report.seconds < baseline.seconds,
            "remapped {} vs baseline {}",
            report.seconds,
            baseline.seconds
        );
    }

    #[test]
    fn remap_kill_and_resume_is_bit_identical() {
        let budget = HwBudget::nvdla_small();
        let ded = AutoSeg::new(budget)
            .max_pus(3)
            .max_segments(6)
            .run(&zoo::squeezenet1_0())
            .unwrap();
        let full = remap(&ded.design, &ded.workload, &zoo::mobilenet_v1()).unwrap();
        let dir = std::env::temp_dir().join("spa_remap_resume_unit");
        let _ = std::fs::create_dir_all(&dir);
        let ckpt = dir.join("remap.ckpt");
        let cut = remap_ctl(
            &ded.design,
            &ded.workload,
            &zoo::mobilenet_v1(),
            &RunCtl::none().stop_after_gens(2).checkpoint(&ckpt, 1),
        )
        .unwrap();
        assert!(!cut.status.is_complete(), "two segment counts cannot finish");
        let resumed = remap_ctl(
            &ded.design,
            &ded.workload,
            &zoo::mobilenet_v1(),
            &RunCtl::none().resume(&ckpt),
        )
        .unwrap();
        assert!(resumed.status.is_complete());
        let (design, report) = resumed.outcome.expect("routable");
        assert_eq!(design, full.0, "kill+resume == uninterrupted");
        assert_eq!(report.seconds.to_bits(), full.1.seconds.to_bits());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn self_remap_matches_pipeline_width() {
        let budget = HwBudget::eyeriss();
        let ded = AutoSeg::new(budget)
            .max_pus(3)
            .max_segments(4)
            .run(&zoo::squeezenet1_0())
            .unwrap();
        let (d, r) = remap(&ded.design, &ded.workload, &zoo::squeezenet1_0()).unwrap();
        assert_eq!(d.n_pus(), ded.design.n_pus());
        assert!(r.seconds > 0.0);
    }
}
