//! Heuristic SPA resource allocation — Algorithm 1 of the paper
//! (Section V-B).
//!
//! Given a segmentation, the allocator decides each PU's PE array, buffer
//! sizes and per-segment dataflow without any iterative co-search:
//!
//! 1. the normalized operation distribution `V̂` becomes the PE quota per
//!    PU (load balance across all segments at once, Eq. 6–9);
//! 2. the normalized per-segment bandwidth usage (Eq. 12) sizes the total
//!    PE pool so no segment is memory-starved (Figure 11a);
//! 3. PE counts are rounded to powers of two (line 9), buffers get their
//!    minimum capacities (line 10: `(K+S)` ifmap rows / `K^2 * PE`
//!    weights), and each `(PU, segment)` picks the faster dataflow
//!    (line 12);
//! 4. throughput-oriented designs replicate by a batch factor (lines
//!    13–16);
//! 5. leftover budget is spent doubling the latency-dominating PU of the
//!    most compute-bound segment (lines 17–25); over-budget designs halve
//!    the least-utilized PU (lines 26–30).

use crate::engine::DesignGoal;
use crate::error::AutoSegError;
use nnmodel::Workload;
use pucost::{Dataflow, EvalCache, LayerDesc, PuBatch, PuConfig};
use spa_arch::{HwBudget, SegmentSchedule, SpaDesign};

/// Per-PU DRAM bytes attributable to segment `s` (weights + external input
/// + cross-segment reads + external writes of the PU's items).
fn pu_access(workload: &Workload, schedule: &SegmentSchedule, s: usize, pu: usize) -> u64 {
    let seg = &schedule.segments[s];
    let inset: Vec<bool> = {
        let mut v = vec![false; workload.len()];
        for a in &seg.assignments {
            v[a.item] = true;
        }
        v
    };
    let mut bytes = 0;
    for a in seg.assignments.iter().filter(|a| a.pu == pu) {
        let it = &workload.items()[a.item];
        bytes += it.w_bytes + it.extern_in_bytes;
        for &(p, b) in &it.preds {
            if !inset[p] {
                bytes += b;
            }
        }
        let consumers = workload.consumers(a.item);
        if consumers.is_empty() || consumers.iter().any(|&c| !inset[c]) {
            bytes += it.out_bytes;
        }
    }
    bytes
}

/// Picks the faster dataflow for the items of `(pu, segment)` and returns
/// `(dataflow, total cycles)`. Per-layer costs come from the shared
/// [`EvalCache`], so repeated probes of the same `(layer, PU, dataflow)`
/// across the search are computed once.
pub(crate) fn eval_pu_segment(
    workload: &Workload,
    schedule: &SegmentSchedule,
    s: usize,
    pu_idx: usize,
    pu: &PuConfig,
    cache: &EvalCache,
) -> (Dataflow, u64) {
    let items = schedule.segments[s].items_on(pu_idx);
    let descs: Vec<LayerDesc> =
        items.iter().map(|&i| LayerDesc::from_item(&workload.items()[i])).collect();
    let mut cands = Vec::with_capacity(2);
    for df in [Dataflow::WeightStationary, Dataflow::OutputStationary] {
        // One batched probe per dataflow: the cache partitions the
        // segment's layers into hits and misses with one lock pass per
        // shard instead of one lock per layer.
        let (mut cycles, mut energy) = (0u64, 0f64);
        for e in cache.evaluate_layers(&descs, pu, df) {
            cycles += e.cycles;
            energy += e.energy.total_pj();
        }
        cands.push((df, cycles, energy));
    }
    // Lower latency wins (Algorithm 1 line 12); within a 5% latency band,
    // prefer the lower-energy dataflow.
    let fastest = cands.iter().map(|c| c.1).min().unwrap_or(0);
    let band = fastest + fastest / 20;
    let pick = cands
        .iter()
        .filter(|c| c.1 <= band)
        .min_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal))
        .or_else(|| cands.first())
        .expect("two candidates");
    (pick.0, pick.1)
}

/// Runs Algorithm 1: allocates PEs, buffers, dataflows and batch for
/// `schedule` under `budget`.
///
/// The returned design is the algorithm's best effort; it may still
/// exceed the budget when even minimum buffers don't fit (callers check
/// [`SpaDesign::fits`]).
///
/// # Errors
///
/// [`AutoSegError::EmptyWorkload`] for empty inputs.
pub fn allocate(
    workload: &Workload,
    schedule: &SegmentSchedule,
    budget: &HwBudget,
    goal: DesignGoal,
) -> Result<SpaDesign, AutoSegError> {
    allocate_with(workload, schedule, budget, goal, &EvalCache::default())
}

/// [`allocate`] with a caller-provided [`EvalCache`]; search drivers that
/// call the allocator many times share one cache so the per-layer cost
/// probes of later calls hit memoized results.
pub fn allocate_with(
    workload: &Workload,
    schedule: &SegmentSchedule,
    budget: &HwBudget,
    goal: DesignGoal,
    cache: &EvalCache,
) -> Result<SpaDesign, AutoSegError> {
    if workload.is_empty() || schedule.is_empty() {
        return Err(AutoSegError::EmptyWorkload);
    }
    let n = schedule.n_pus;
    let s_max = schedule.len();

    // Step 1: normalized operation distribution V̂ (cluster center of the
    // per-segment distributions) and bandwidth usage per segment (Eq. 12).
    let mut v_hat = vec![0f64; n];
    for s in 0..s_max {
        let ops = schedule.pu_ops(workload, s);
        let total: u64 = ops.iter().sum::<u64>().max(1);
        for (vn, &o) in v_hat.iter_mut().zip(&ops) {
            *vn += o as f64 / total as f64;
        }
    }
    let vsum: f64 = v_hat.iter().sum();
    for v in &mut v_hat {
        *v /= vsum;
    }

    let bw_usage: Vec<f64> = (0..s_max)
        .map(|s| {
            let ops = schedule.pu_ops(workload, s);
            (0..n)
                .map(|pu| {
                    let acc = pu_access(workload, schedule, s, pu) as f64;
                    v_hat[pu] * acc / ops[pu].max(1) as f64
                })
                .sum()
        })
        .collect();
    let bw_max_usage = bw_usage.iter().cloned().fold(f64::MIN, f64::max).max(1e-12);

    // Step 2: PE pool sized so the worst segment is not memory-bound
    // (line 8), clamped into the budget; power-of-two rounding (line 9).
    let bw_bytes_per_sec = budget.bandwidth_gbps * 1e9;
    let freq_hz = budget.freq_mhz * 1e6;
    let mut pes: Vec<usize> = v_hat
        .iter()
        .map(|&v| {
            let ideal = v * bw_bytes_per_sec * (1.0 / bw_max_usage).min(1e12) / freq_hz;
            let capped = ideal.min((budget.pes as f64) * v).max(1.0);
            prev_pow2(capped as usize)
        })
        .collect();
    // Never start above the budget.
    while pes.iter().sum::<usize>() > budget.pes {
        let worst = least_utilized(&pes, &v_hat);
        if pes[worst] == 1 {
            break;
        }
        pes[worst] /= 2;
    }

    let mut design = build_design(workload, schedule, budget, &pes, cache);

    // Steps: batch (lines 13-16).
    if goal == DesignGoal::Throughput {
        design.batch = batch_factor(&design, budget).max(1);
    }

    // Estimated end-to-end compute score: sum over segments of the
    // bottleneck PU's latency (Eq. 7). Scale-up steps must improve it —
    // doubling a non-bottleneck PU burns budget without gain.
    let score_of = |pus: &[PuConfig]| -> u64 {
        (0..s_max)
            .map(|s| {
                (0..n)
                    .map(|pu| eval_pu_segment(workload, schedule, s, pu, &pus[pu], cache).1)
                    .max()
                    .unwrap_or(0)
            })
            .sum()
    };
    let mut score = score_of(&design.pus);

    // Scale-up loop (lines 17-25).
    let mut frozen = vec![false; s_max];
    while design.fits(budget) {
        // Most compute-bound (minimum bandwidth usage) unfrozen segment.
        let Some(s_hat) = (0..s_max)
            .filter(|&s| !frozen[s])
            .min_by(|&a, &b| bw_usage[a].total_cmp(&bw_usage[b]))
        else {
            break;
        };
        // PUs of that segment in descending latency order; the first whose
        // doubling still fits wins (the paper doubles the single longest-
        // latency PU; trying the runners-up before freezing avoids giving
        // up while headroom remains).
        let mut order: Vec<(usize, u64)> = (0..n)
            .map(|pu| {
                (
                    pu,
                    eval_pu_segment(workload, schedule, s_hat, pu, &design.pus[pu], cache).1,
                )
            })
            .collect();
        order.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        let mut grew = false;
        for (n_hat, _) in order {
            let mut trial = pes.clone();
            trial[n_hat] *= 2;
            let mut candidate = build_design(workload, schedule, budget, &trial, cache);
            if goal == DesignGoal::Throughput {
                candidate.batch = batch_factor(&candidate, budget).max(1);
            }
            let trial_score = score_of(&candidate.pus);
            if candidate.fits(budget)
                && trial_score < score
                && (goal != DesignGoal::Throughput || candidate.batch >= design.batch.max(1))
            {
                pes = trial;
                design = candidate;
                score = trial_score;
                grew = true;
                break;
            }
        }
        if !grew {
            frozen[s_hat] = true;
        }
    }

    // Load/PE rebalance: the power-of-two constraint can leave PE shares
    // that no longer match the segmentation's (near-equal) block loads —
    // e.g. a 128/64 split serving 50/50 work. Re-cut each segment's blocks
    // proportionally to the final PE shares (keeping each block on its PU,
    // so Eq. 2-4 legality is preserved), and keep the result if the
    // bottleneck score improves.
    if let Some(rebalanced) = rebalance(workload, schedule, &pes) {
        let candidate = build_design(workload, &rebalanced, budget, &pes, cache);
        let rescore = {
            let sched = &rebalanced;
            (0..s_max)
                .map(|s| {
                    (0..n)
                        .map(|pu| eval_pu_segment(workload, sched, s, pu, &candidate.pus[pu], cache).1)
                        .max()
                        .unwrap_or(0)
                })
                .sum::<u64>()
        };
        if rescore < score && candidate.fits(budget) {
            let mut candidate = candidate;
            if goal == DesignGoal::Throughput {
                candidate.batch = batch_factor(&candidate, budget).max(1);
            }
            design = candidate;
        }
    }

    // Scale-down loop (lines 26-30).
    while !design.fits(budget) {
        let worst = least_utilized(&pes, &v_hat);
        if pes[worst] == 1 {
            break; // buffers alone exceed the budget; caller rejects
        }
        pes[worst] /= 2;
        design = build_design(workload, schedule, budget, &pes, cache);
        if goal == DesignGoal::Throughput {
            design.batch = batch_factor(&design, budget).max(1);
        }
    }

    Ok(design)
}

/// Re-cuts every segment's contiguous blocks so block loads track the
/// final PE shares, keeping each (topological) block on the PU it already
/// occupied. Returns `None` if any segment's items cannot be re-cut (fewer
/// items than PUs — impossible for valid schedules, checked defensively).
fn rebalance(
    workload: &Workload,
    schedule: &SegmentSchedule,
    pes: &[usize],
) -> Option<SegmentSchedule> {
    use spa_arch::{Assignment, Segment};
    let total_pe: usize = pes.iter().sum();
    let mut segments = Vec::with_capacity(schedule.len());
    for seg in &schedule.segments {
        // Current topological block order and PU of each block.
        let mut assigns = seg.assignments.clone();
        assigns.sort_by_key(|a| a.item);
        let mut block_pus = Vec::new();
        for a in &assigns {
            if block_pus.last() != Some(&a.pu) {
                block_pus.push(a.pu);
            }
        }
        // Blocks must be contiguous single runs per PU for this transform.
        {
            let mut seen = std::collections::BTreeSet::new();
            if !block_pus.iter().all(|p| seen.insert(*p)) {
                return None;
            }
        }
        let items: Vec<usize> = assigns.iter().map(|a| a.item).collect();
        if items.len() < block_pus.len() {
            return None;
        }
        let total_ops: u64 = items
            .iter()
            .map(|&i| workload.items()[i].ops)
            .sum::<u64>()
            .max(1);
        // Greedy proportional cut in topological order.
        let mut new_assigns = Vec::with_capacity(items.len());
        let mut idx = 0;
        for (k, &pu) in block_pus.iter().enumerate() {
            let remaining_blocks = block_pus.len() - k - 1;
            let target = (pes[pu] as f64 / total_pe as f64 * total_ops as f64) as u64;
            let mut acc = 0u64;
            let mut took = 0;
            while idx < items.len() - remaining_blocks {
                let must_take = took == 0;
                let next_ops = workload.items()[items[idx]].ops;
                if !must_take && remaining_blocks > 0 && acc + next_ops / 2 > target {
                    break;
                }
                acc += next_ops;
                new_assigns.push(Assignment {
                    item: items[idx],
                    pu,
                });
                idx += 1;
                took += 1;
                if remaining_blocks == 0 {
                    continue; // last block takes everything
                }
            }
        }
        if idx != items.len() {
            return None;
        }
        segments.push(Segment {
            assignments: new_assigns,
        });
    }
    SegmentSchedule::new(segments, schedule.n_pus, workload).ok()
}

/// Largest power of two `<= x` (minimum 1).
fn prev_pow2(x: usize) -> usize {
    if x <= 1 {
        1
    } else if x.is_power_of_two() {
        x
    } else {
        x.next_power_of_two() / 2
    }
}

/// The PU with the most PEs per unit of assigned work.
fn least_utilized(pes: &[usize], v_hat: &[f64]) -> usize {
    (0..pes.len())
        .max_by(|&a, &b| {
            let ra = pes[a] as f64 / v_hat[a].max(1e-12);
            let rb = pes[b] as f64 / v_hat[b].max(1e-12);
            ra.partial_cmp(&rb).unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("non-empty")
}

/// Batch replication factor for throughput designs (line 14).
fn batch_factor(design: &SpaDesign, budget: &HwBudget) -> usize {
    let r = {
        let mut d = design.clone();
        d.batch = 1;
        d.resources()
    };
    let by_pe = budget.pes / r.pes.max(1);
    let by_mem = (budget.on_chip_bytes / r.on_chip_bytes.max(1)) as usize;
    by_pe.min(by_mem).max(1)
}

/// Builds a design from explicit hardware parameters: per-PU PE counts
/// (powers of two) and a buffer multiplier applied on top of the minimum
/// capacities. Used by the random/Bayesian hardware-search baselines of
/// Section VI-G, which replace Algorithm 1 with black-box search over
/// exactly these knobs.
pub fn manual_design(
    workload: &Workload,
    schedule: &SegmentSchedule,
    budget: &HwBudget,
    pes: &[usize],
    buf_mult: u64,
) -> SpaDesign {
    manual_design_with(workload, schedule, budget, pes, buf_mult, &EvalCache::default())
}

/// [`manual_design`] with a caller-provided [`EvalCache`] (shared across a
/// whole black-box hardware search).
pub fn manual_design_with(
    workload: &Workload,
    schedule: &SegmentSchedule,
    budget: &HwBudget,
    pes: &[usize],
    buf_mult: u64,
    cache: &EvalCache,
) -> SpaDesign {
    let mut d = build_design(workload, schedule, budget, pes, cache);
    for pu in &mut d.pus {
        pu.act_buf_bytes *= buf_mult.max(1);
        pu.wgt_buf_bytes *= buf_mult.max(1);
    }
    d
}

/// Assembles a design for a given PE vector: geometry, minimum buffers
/// (line 10), per-(PU, segment) dataflows (line 12).
fn build_design(
    workload: &Workload,
    schedule: &SegmentSchedule,
    budget: &HwBudget,
    pes: &[usize],
    cache: &EvalCache,
) -> SpaDesign {
    let n = schedule.n_pus;
    let s_max = schedule.len();
    let mut pus = Vec::with_capacity(n);
    for (pu_idx, &p) in pes.iter().enumerate() {
        // Buffers must satisfy the worst item ever mapped to this PU.
        let mut ab = 1u64;
        let mut wb = 1u64;
        let mut items_here = Vec::new();
        for seg in &schedule.segments {
            for &item in &seg.items_on(pu_idx) {
                let d = LayerDesc::from_item(&workload.items()[item]);
                ab = ab.max(d.min_act_buf_bytes());
                wb = wb.max(d.min_wgt_buf_bytes(p));
                items_here.push(d);
            }
        }
        // Aspect-ratio matching: among power-of-two factorizations of the
        // PE budget, pick the geometry that minimizes total cycles of the
        // PU's assigned layers (the case-study designs of Table VI are
        // decidedly non-square: 32x4, 32x8). Tall/flat extremes are
        // skipped — a 1-wide systolic array is not a realistic datapath.
        let log = p.trailing_zeros() as usize;
        let mut geoms: Vec<(usize, usize)> = Vec::with_capacity(log + 1);
        for j in 0..=log {
            let (r, c) = (1usize << j, p >> j);
            if p >= 16 && (r < 2 || c < 2) {
                continue;
            }
            // Degenerate slabs (e.g. 2x512) are not realistic datapaths:
            // keep the aspect ratio within 16:1.
            if p >= 64 && r.max(c) > 16 * r.min(c) {
                continue;
            }
            geoms.push((r, c));
        }
        // Score every surviving geometry in one batched sweep per item:
        // each layer compiles its cost program once and runs it down the
        // SoA geometry columns (total cycles per geometry are the same
        // sums as the old per-(geometry, item) probe loop).
        let batch = PuBatch::from_pus(
            &geoms
                .iter()
                .map(|&(r, c)| PuConfig::new(r, c).with_freq_mhz(budget.freq_mhz))
                .collect::<Vec<_>>(),
        );
        let mut totals = vec![0u64; geoms.len()];
        for d in &items_here {
            let ws = cache.evaluate_batch(d, &batch, Dataflow::WeightStationary);
            let os = cache.evaluate_batch(d, &batch, Dataflow::OutputStationary);
            for (g, total) in totals.iter_mut().enumerate() {
                *total += ws.evals()[g].cycles.min(os.evals()[g].cycles);
            }
        }
        let mut best: Option<(u64, usize, usize)> = None;
        for (g, &(r, c)) in geoms.iter().enumerate() {
            if best.is_none_or(|(b, _, _)| totals[g] < b) {
                best = Some((totals[g], r, c));
            }
        }
        let (_, r, c) = best.unwrap_or((0, PuConfig::square_geometry(p).0, PuConfig::square_geometry(p).1));
        pus.push(
            PuConfig::new(r, c)
                .with_freq_mhz(budget.freq_mhz)
                .with_buffers(ab, wb),
        );
    }
    let dataflows: Vec<Vec<Dataflow>> = (0..n)
        .map(|pu| {
            (0..s_max)
                .map(|s| eval_pu_segment(workload, schedule, s, pu, &pus[pu], cache).0)
                .collect()
        })
        .collect();
    SpaDesign {
        name: format!("{}@{}", workload.name(), budget.name),
        pus,
        schedule: schedule.clone(),
        dataflows,
        batch: 1,
        bandwidth_gbps: budget.bandwidth_gbps,
        platform: budget.platform,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::{ChainDpSegmenter, Segmenter};
    use nnmodel::{zoo, Workload};

    fn setup(model: &str, n: usize, s: usize) -> (Workload, SegmentSchedule) {
        let w = Workload::from_graph(&zoo::by_name(model).unwrap());
        let sched = ChainDpSegmenter::new().segment(&w, n, s).unwrap();
        (w, sched)
    }

    #[test]
    fn allocation_fits_budget_and_uses_pow2() {
        let (w, sched) = setup("squeezenet1_0", 4, 3);
        let budget = HwBudget::nvdla_large();
        let d = allocate(&w, &sched, &budget, DesignGoal::Latency).unwrap();
        assert!(d.fits(&budget));
        assert!(d.pus.iter().all(|p| p.num_pe().is_power_of_two()));
        assert_eq!(d.n_pus(), 4);
    }

    #[test]
    fn pe_shares_follow_operation_distribution() {
        let (w, sched) = setup("alexnet_conv", 4, 1);
        let budget = HwBudget::nvdla_large();
        let d = allocate(&w, &sched, &budget, DesignGoal::Latency).unwrap();
        // The PU with the most ops gets at least as many PEs as the one
        // with the fewest.
        let ops = sched.pu_ops(&w, 0);
        let max_ops_pu = ops.iter().enumerate().max_by_key(|&(_, o)| o).unwrap().0;
        let min_ops_pu = ops.iter().enumerate().min_by_key(|&(_, o)| o).unwrap().0;
        assert!(d.pus[max_ops_pu].num_pe() >= d.pus[min_ops_pu].num_pe());
    }

    #[test]
    fn buffers_meet_minimums() {
        let (w, sched) = setup("mobilenet_v1", 3, 4);
        let budget = HwBudget::edge_tpu();
        let d = allocate(&w, &sched, &budget, DesignGoal::Latency).unwrap();
        for (pu_idx, pu) in d.pus.iter().enumerate() {
            for seg in &sched.segments {
                for &item in &seg.items_on(pu_idx) {
                    let desc = LayerDesc::from_item(&w.items()[item]);
                    assert!(pu.act_buf_bytes >= desc.min_act_buf_bytes());
                    assert!(pu.wgt_buf_bytes >= desc.min_wgt_buf_bytes(pu.num_pe()));
                }
            }
        }
    }

    #[test]
    fn throughput_goal_batches_when_budget_allows() {
        let (w, sched) = setup("squeezenet1_0", 2, 4);
        // EdgeTPU: many PEs, little bandwidth — plenty of room for batch.
        let budget = HwBudget::edge_tpu();
        let lat = allocate(&w, &sched, &budget, DesignGoal::Latency).unwrap();
        let thr = allocate(&w, &sched, &budget, DesignGoal::Throughput).unwrap();
        assert_eq!(lat.batch, 1);
        assert!(thr.batch >= 1);
        assert!(thr.fits(&budget));
    }

    #[test]
    fn scale_up_consumes_headroom() {
        let (w, sched) = setup("squeezenet1_0", 4, 3);
        let budget = HwBudget::nvdla_large();
        let d = allocate(&w, &sched, &budget, DesignGoal::Latency).unwrap();
        // At least half the PE budget should be in use after upscaling
        // (power-of-two granularity can leave at most ~2x slack per PU).
        assert!(
            d.total_pes() * 4 >= budget.pes,
            "only {} of {} PEs used",
            d.total_pes(),
            budget.pes
        );
    }

    #[test]
    fn tiny_budget_degrades_gracefully() {
        let (w, sched) = setup("squeezenet1_0", 2, 4);
        let mut tiny = HwBudget::eyeriss();
        tiny.pes = 4;
        let d = allocate(&w, &sched, &tiny, DesignGoal::Latency).unwrap();
        // PEs are clamped down to the floor; buffers may still overflow
        // (the engine rejects such combos), but the call must not fail.
        assert!(d.total_pes() >= 2);
    }
}
