//! Parallel design-space-exploration substrate.
//!
//! The co-design searches of Section VI-G sweep hundreds of hardware
//! candidates times thousands of segmentation candidates; every candidate
//! evaluation (segment → allocate → simulate) is independent of its
//! siblings. This module provides the execution layer those sweeps fan out
//! on:
//!
//! * [`DsePool`] — a scoped-thread worker pool (`std::thread::scope`,
//!   std-only) whose [`DsePool::par_map`] evaluates a candidate vector
//!   concurrently while preserving input order. Work derives only from
//!   the candidate's *index* (never from which worker picked it up), so
//!   the result is bit-identical to the serial path for any thread count.
//! * [`split_seed`] — deterministic per-candidate RNG seed derivation
//!   (SplitMix64 finalizer over `(base, index)`), so stochastic
//!   candidates stay reproducible when their evaluation order changes.
//!
//! The memoized cost cache the DSE workers share lives in
//! [`pucost::EvalCache`]; a pool plus one cache handle per search is the
//! standard wiring (see [`crate::codesign`]).

pub mod checkpoint;
pub mod control;

pub use checkpoint::{Checkpoint, CheckpointError};
pub use control::{Partial, RunCtl, RunStatus, StopReason};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Parses a thread-count override (the `DSE_THREADS` convention): a
/// positive integer; anything else means "no override".
fn parse_threads(value: Option<&str>) -> Option<usize> {
    value?.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// The worker count used when none is configured: the `DSE_THREADS`
/// environment variable if set to a positive integer, otherwise all
/// available cores (1 if even that is unknown).
pub fn default_threads() -> usize {
    parse_threads(std::env::var("DSE_THREADS").ok().as_deref()).unwrap_or_else(|| {
        thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// A fixed-width scoped-thread worker pool for candidate evaluation.
///
/// The pool is a value, not a resource: threads are spawned per
/// [`DsePool::par_map`] call inside a `std::thread::scope`, so borrowed
/// candidate data needs no `'static` bound and panics propagate to the
/// caller.
///
/// # Determinism
///
/// `par_map(items, f)` calls `f(index, &items[index])` exactly once per
/// item and returns results in item order. Workers race only over *which*
/// index they pick up next; `f` never observes a worker identity. Any
/// function that is deterministic per index therefore yields output
/// bit-identical to `items.iter().enumerate().map(..)` — the property the
/// `threads = 1` equivalence tests pin down.
///
/// # Example
///
/// ```
/// use autoseg::dse::DsePool;
///
/// let squares = DsePool::new(4).par_map(&[1u64, 2, 3, 4], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DsePool {
    threads: usize,
}

impl DsePool {
    /// A pool running `threads` workers (minimum 1; 1 = fully serial, no
    /// threads are spawned).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A pool sized by [`default_threads`] (`DSE_THREADS` or all cores).
    pub fn from_env() -> Self {
        Self::new(default_threads())
    }

    /// The serial pool: `par_map` degenerates to an in-place `map`.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items` on the pool, returning results in item order.
    ///
    /// See the type-level documentation for the determinism contract.
    ///
    /// # Panics
    ///
    /// If `f` panics for any item the panic is propagated to the caller
    /// when the scope joins.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let _span = obs::span!("dse.par_map", items = items.len(), threads = self.threads);
        if self.threads <= 1 || items.len() <= 1 {
            return items
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    // `dse.worker` fault point, serial flavor: the dying
                    // worker *is* the recovery path, so injection and
                    // recovery coincide — the result is still computed.
                    if faultsim::armed() && faultsim::hit_at("dse.worker", i as u64) {
                        record_fault("fault.injected");
                        record_fault("fault.recovered");
                    }
                    // obs-gated timing, telemetry only; lint: allow(nondet-time)
                    let t0 = obs::enabled().then(std::time::Instant::now);
                    let r = f(i, t);
                    if let Some(t0) = t0 {
                        obs::record("dse.candidate_ns", t0.elapsed().as_nanos() as u64);
                        obs::add("dse.candidates", 1);
                    }
                    r
                })
                .collect();
        }
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(items.len());
        // The trace id is thread-local and does not cross spawns: re-set
        // the caller's id in every worker so flight notes and Chrome
        // spans emitted inside candidate evaluation stay attributed to
        // the request that fanned out.
        let trace = obs::current_trace();
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    obs::set_trace(trace);
                    let mut claimed = 0u64;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        // `dse.worker` fault point: a scripted worker death
                        // abandons the claimed slot and ends this worker.
                        // Surviving workers keep draining the queue; the
                        // post-join pass below re-evaluates the hole.
                        if faultsim::armed() && faultsim::hit_at("dse.worker", i as u64) {
                            record_fault("fault.injected");
                            break;
                        }
                        claimed += 1;
                        // obs-gated timing, telemetry only; lint: allow(nondet-time)
                        let t0 = obs::enabled().then(std::time::Instant::now);
                        let result = f(i, &items[i]);
                        if let Some(t0) = t0 {
                            obs::record("dse.candidate_ns", t0.elapsed().as_nanos() as u64);
                            obs::add("dse.candidates", 1);
                        }
                        // Poison recovery: each slot is written exactly
                        // once, so a panic in another worker's `f` cannot
                        // leave this slot half-written.
                        *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
                    }
                    // Per-worker utilization: how evenly the queue drained.
                    obs::record("dse.worker_items", claimed);
                });
            }
        });
        // Recovery pass: any slot a dead worker abandoned (the
        // `dse.worker` fault — or, defensively, any future bug with the
        // same signature) is re-evaluated inline. `f` depends only on
        // the index, so the late evaluation is bit-identical to the one
        // the lost worker would have produced.
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                match slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
                    Some(r) => r,
                    None => {
                        record_fault("fault.recovered");
                        f(i, &items[i])
                    }
                }
            })
            .collect()
    }
}

/// Bumps the given fault counter and emits the matching `obs` event for
/// the `dse.worker` fault point (injection and recovery share the shape).
fn record_fault(what: &'static str) {
    obs::add(what, 1);
    obs::event(what, &[("point", "dse.worker".into())]);
}

impl Default for DsePool {
    fn default() -> Self {
        Self::from_env()
    }
}

/// The MILP engine's wave-parallel branch & bound fans its node
/// relaxations out on the same pool the DSE sweeps use: `par_map` already
/// provides the exact contract [`mip::NodePool`] demands (call per index,
/// results in index order, scheduling invisible to the closure), so the
/// solver inherits the pool's determinism and fault-recovery story.
impl mip::NodePool for DsePool {
    fn threads(&self) -> usize {
        self.threads
    }

    fn run(
        &self,
        tasks: usize,
        eval: &(dyn Fn(usize) -> mip::WaveEval + Sync),
    ) -> Vec<mip::WaveEval> {
        let idx: Vec<usize> = (0..tasks).collect();
        self.par_map(&idx, |_, &i| eval(i))
    }
}

/// Derives a per-candidate RNG seed from a base seed and a candidate
/// index (SplitMix64 finalizer). Seeds for distinct indices are
/// decorrelated, and the mapping depends only on `(base, index)` — never
/// on evaluation order — keeping parallel sweeps bit-reproducible.
pub fn split_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_order_for_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = DsePool::new(threads).par_map(&items, |_, &x| x * x + 1);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_passes_the_item_index() {
        let items = ["a", "b", "c", "d"];
        let got = DsePool::new(2).par_map(&items, |i, s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c", "3:d"]);
    }

    #[test]
    fn par_map_calls_each_item_exactly_once() {
        let calls = AtomicU64::new(0);
        let items: Vec<usize> = (0..40).collect();
        let got = DsePool::new(4).par_map(&items, |i, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert_eq!(i, x);
            x
        });
        assert_eq!(calls.load(Ordering::Relaxed), 40);
        assert_eq!(got.len(), 40);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = DsePool::new(8).par_map(&[], |_, x: &u32| *x);
        assert!(none.is_empty());
        assert_eq!(DsePool::new(8).par_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn pool_clamps_to_at_least_one_worker() {
        assert_eq!(DsePool::new(0).threads(), 1);
        assert_eq!(DsePool::serial().threads(), 1);
    }

    #[test]
    fn thread_override_parsing() {
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 12 ")), Some(12));
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("auto")), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(None), None);
        assert!(default_threads() >= 1);
    }

    #[test]
    fn default_threads_honors_env_override() {
        // Serialized against itself only: the other tests never depend on
        // a specific DSE_THREADS value.
        std::env::set_var("DSE_THREADS", "3");
        assert_eq!(default_threads(), 3);
        std::env::set_var("DSE_THREADS", "not-a-number");
        assert!(default_threads() >= 1, "garbage falls back to cores");
        std::env::set_var("DSE_THREADS", "0");
        assert!(default_threads() >= 1, "zero is not a valid override");
        std::env::remove_var("DSE_THREADS");
        assert!(default_threads() >= 1);
    }

    #[test]
    fn split_seed_is_deterministic_and_spreads() {
        assert_eq!(split_seed(7, 3), split_seed(7, 3));
        let seeds: HashSet<u64> = (0..1000).map(|i| split_seed(42, i)).collect();
        assert_eq!(seeds.len(), 1000, "seed collisions within one base");
        assert_ne!(split_seed(1, 0), split_seed(2, 0));
    }

    #[test]
    fn injected_worker_death_recovers_bit_identically() {
        let _x = faultsim::exclusive();
        let items: Vec<u64> = (0..33).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * 7 + 1).collect();
        // Kill the workers that claim candidates 5 and 20 (parallel), and
        // exercise the coinciding inject/recover on the serial path too.
        for threads in [1, 4] {
            faultsim::arm("dse.worker#5,dse.worker#20").expect("plan parses");
            let got = DsePool::new(threads).par_map(&items, |_, &x| x * 7 + 1);
            assert_eq!(got, expect, "threads = {threads}");
            // Both scripted deaths must appear in the log. Containment,
            // not equality: `exclusive()` serializes *armers*, but other
            // tests' searches running concurrently in this process also
            // cross the armed fault point (and recover transparently),
            // appending their own entries.
            let fired = faultsim::injected();
            for want in ["dse.worker#5", "dse.worker#20"] {
                assert!(
                    fired.iter().any(|f| f == want),
                    "threads = {threads}: {want} missing from {fired:?}"
                );
            }
            faultsim::disarm();
        }
        // Even every worker dying (fault on every index) cannot lose
        // results: the post-join pass re-evaluates all abandoned slots.
        faultsim::arm("dse.worker@*").expect("plan parses");
        let got = DsePool::new(3).par_map(&items, |_, &x| x * 7 + 1);
        faultsim::disarm();
        assert_eq!(got, expect);
    }

    #[test]
    fn par_map_supports_borrowed_context() {
        // The scoped pool must accept closures borrowing stack data.
        let context: Vec<u64> = (0..16).map(|i| i * 10).collect();
        let items: Vec<usize> = (0..16).collect();
        let got = DsePool::new(4).par_map(&items, |_, &i| context[i] + 1);
        assert_eq!(got[15], 151);
    }
}
