//! Versioned, std-only on-disk checkpoints for the anytime searches.
//!
//! A checkpoint is a line-oriented text file:
//!
//! ```text
//! spa-ckpt 1 <kind>
//! meta <key> <value ...>
//! sec <name> <line-count>
//! <line-count section lines, verbatim>
//! end <fnv1a-64 checksum, 16 hex digits>
//! ```
//!
//! * The header pins a format version (`1`) and a `kind` tag
//!   (`codesign`, `engine`, `multi`, `generality`) so a checkpoint can
//!   never be resumed by the wrong search.
//! * `meta` lines carry the run configuration (model, budget, seed,
//!   iteration counts, the energy model fingerprint). Resume validates
//!   every one against the live run and fails with a typed
//!   [`CheckpointError::Mismatch`] on drift.
//! * Sections hold the actual state: serialized design points, one
//!   optimizer transcript per search unit ([`bayesopt::Transcript`]
//!   lines) and the shared [`pucost::EvalCache`] contents.
//! * Floats are stored as IEEE-754 bit patterns ([`f64_to_hex`]), never
//!   decimal, so a round trip is bit-exact.
//! * The `end` checksum covers every preceding byte. A torn write — a
//!   crash mid-checkpoint, or the scripted `ckpt.torn` fault — loses the
//!   footer (or corrupts a line) and is detected at load as
//!   [`CheckpointError::Corrupt`] instead of silently resuming from
//!   garbage.
//!
//! Writes are atomic under normal operation: the file is staged at
//! `<path>.tmp` and renamed into place, so a reader never observes a
//! half-written checkpoint unless the `ckpt.torn` fault deliberately
//! bypasses the staging to model a mid-write crash.

use std::fmt;
use std::path::Path;

/// Current on-disk format version.
pub const CKPT_VERSION: u32 = 1;

/// Magic first token of every checkpoint file.
const MAGIC: &str = "spa-ckpt";

/// Failure loading, validating or persisting a [`Checkpoint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The file could not be read or written.
    Io {
        /// Path involved.
        path: String,
        /// OS error rendering.
        detail: String,
    },
    /// The file exists but fails structural validation (truncated,
    /// checksum mismatch, malformed line) — the torn-write signature.
    Corrupt {
        /// Path (or section label) involved.
        path: String,
        /// What failed.
        reason: String,
    },
    /// The header announces a format version this build cannot read.
    BadVersion {
        /// Path involved.
        path: String,
        /// Version token found.
        found: String,
    },
    /// A metadata key recorded by the checkpoint disagrees with the live
    /// run configuration — resuming would silently compute garbage.
    Mismatch {
        /// Which configuration key diverged.
        key: String,
        /// Value the live run expects.
        expected: String,
        /// Value the checkpoint recorded.
        found: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, detail } => {
                write!(f, "checkpoint I/O failed for {path}: {detail}")
            }
            CheckpointError::Corrupt { path, reason } => {
                write!(f, "checkpoint {path} is corrupt: {reason}")
            }
            CheckpointError::BadVersion { path, found } => {
                write!(
                    f,
                    "checkpoint {path} has unsupported version {found} (this build reads {CKPT_VERSION})"
                )
            }
            CheckpointError::Mismatch {
                key,
                expected,
                found,
            } => write!(
                f,
                "checkpoint does not match this run: {key} is {found}, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// In-memory form of a checkpoint: a kind tag, ordered metadata and
/// named line sections. See the module docs for the file format.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Checkpoint {
    kind: String,
    source: String,
    meta: Vec<(String, String)>,
    sections: Vec<(String, Vec<String>)>,
}

impl Checkpoint {
    /// An empty checkpoint of the given kind.
    pub fn new(kind: &str) -> Self {
        Self {
            kind: kind.to_string(),
            ..Self::default()
        }
    }

    /// The kind tag from the header.
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// Sets (or replaces) a metadata key. Keys must be single tokens;
    /// values may contain spaces but not newlines.
    pub fn set_meta(&mut self, key: &str, value: &str) {
        debug_assert!(!key.contains(char::is_whitespace) && !key.is_empty());
        debug_assert!(!value.contains('\n'));
        if let Some(slot) = self.meta.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value.to_string();
        } else {
            self.meta.push((key.to_string(), value.to_string()));
        }
    }

    /// Reads a metadata value.
    pub fn meta(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Validates that the checkpoint's `kind` and a set of metadata keys
    /// match the live run. Missing keys count as mismatches.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Mismatch`] naming the first diverging key.
    pub fn require(&self, kind: &str, expect: &[(&str, &str)]) -> Result<(), CheckpointError> {
        if self.kind != kind {
            return Err(CheckpointError::Mismatch {
                key: "kind".into(),
                expected: kind.into(),
                found: self.kind.clone(),
            });
        }
        for (key, expected) in expect {
            let found = self.meta(key).unwrap_or("<missing>");
            if found != *expected {
                return Err(CheckpointError::Mismatch {
                    key: (*key).into(),
                    expected: (*expected).into(),
                    found: found.into(),
                });
            }
        }
        Ok(())
    }

    /// Reads a metadata value as `u64`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Corrupt`] if the key is missing or not an
    /// integer.
    pub fn meta_u64(&self, key: &str) -> Result<u64, CheckpointError> {
        self.meta(key)
            .and_then(|v| v.parse::<u64>().ok())
            .ok_or_else(|| CheckpointError::Corrupt {
                path: self.source.clone(),
                reason: format!("meta key {key} missing or not an integer"),
            })
    }

    /// Appends a named section. Names must be single tokens; lines must
    /// not contain newlines.
    pub fn push_section(&mut self, name: &str, lines: Vec<String>) {
        debug_assert!(!name.contains(char::is_whitespace) && !name.is_empty());
        debug_assert!(lines.iter().all(|l| !l.contains('\n')));
        self.sections.push((name.to_string(), lines));
    }

    /// The lines of the first section named `name` (empty slice if
    /// absent — absent and empty are equivalent for every consumer).
    pub fn section(&self, name: &str) -> &[String] {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map_or(&[], |(_, l)| l.as_slice())
    }

    /// Serializes to the on-disk text form, checksum footer included.
    pub fn to_text(&self) -> String {
        let mut body = String::new();
        body.push_str(&format!("{MAGIC} {CKPT_VERSION} {}\n", self.kind));
        for (k, v) in &self.meta {
            body.push_str(&format!("meta {k} {v}\n"));
        }
        for (name, lines) in &self.sections {
            body.push_str(&format!("sec {name} {}\n", lines.len()));
            for l in lines {
                body.push_str(l);
                body.push('\n');
            }
        }
        let sum = fnv64(body.as_bytes());
        body.push_str(&format!("end {sum:016x}\n"));
        body
    }

    /// Parses the on-disk text form. `source` labels errors (usually the
    /// path the text came from).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::BadVersion`] for an unknown format version,
    /// [`CheckpointError::Corrupt`] for structural damage (truncation,
    /// checksum mismatch, malformed lines).
    pub fn from_text(source: &str, text: &str) -> Result<Self, CheckpointError> {
        let corrupt = |reason: String| CheckpointError::Corrupt {
            path: source.to_string(),
            reason,
        };
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| corrupt("empty file".into()))?;
        let mut h = header.split(' ');
        if h.next() != Some(MAGIC) {
            return Err(corrupt("missing spa-ckpt magic".into()));
        }
        let version = h.next().unwrap_or("");
        if version != CKPT_VERSION.to_string() {
            return Err(CheckpointError::BadVersion {
                path: source.to_string(),
                found: version.to_string(),
            });
        }
        let kind = h.next().ok_or_else(|| corrupt("header lacks kind".into()))?;
        let mut ck = Checkpoint::new(kind);
        ck.source = source.to_string();

        let mut checked = header.len() + 1; // bytes covered by the checksum
        let mut footer: Option<&str> = None;
        while let Some(line) = lines.next() {
            if let Some(sum) = line.strip_prefix("end ") {
                footer = Some(sum);
                break;
            }
            checked += line.len() + 1;
            if let Some(rest) = line.strip_prefix("meta ") {
                let (k, v) = rest
                    .split_once(' ')
                    .ok_or_else(|| corrupt(format!("malformed meta line: {line}")))?;
                ck.meta.push((k.to_string(), v.to_string()));
            } else if let Some(rest) = line.strip_prefix("sec ") {
                let (name, count) = rest
                    .split_once(' ')
                    .ok_or_else(|| corrupt(format!("malformed sec line: {line}")))?;
                let count: usize = count
                    .parse()
                    .map_err(|_| corrupt(format!("bad section count: {line}")))?;
                let mut body = Vec::with_capacity(count);
                for _ in 0..count {
                    let l = lines
                        .next()
                        .ok_or_else(|| corrupt(format!("section {name} truncated")))?;
                    checked += l.len() + 1;
                    body.push(l.to_string());
                }
                ck.sections.push((name.to_string(), body));
            } else {
                return Err(corrupt(format!("unrecognized line: {line}")));
            }
        }
        let footer = footer.ok_or_else(|| corrupt("missing end footer (torn write?)".into()))?;
        let expected = fnv64(text.as_bytes().get(..checked).unwrap_or(b""));
        if footer != format!("{expected:016x}") {
            return Err(corrupt("checksum mismatch (torn or edited write?)".into()));
        }
        if lines.next().is_some() {
            return Err(corrupt("trailing data after end footer".into()));
        }
        Ok(ck)
    }

    /// Atomically persists the checkpoint to `path` (staged at
    /// `<path>.tmp`, then renamed).
    ///
    /// The `ckpt.torn` fault point models a crash mid-write: when it
    /// fires, only a prefix of the bytes lands — directly at `path`,
    /// skipping the atomic staging — and the injection is recorded via
    /// `obs`. Loading such a file fails with
    /// [`CheckpointError::Corrupt`]; it never resumes silently.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the filesystem rejects the write.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let text = self.to_text();
        let io = |detail: std::io::Error| CheckpointError::Io {
            path: path.display().to_string(),
            detail: detail.to_string(),
        };
        if faultsim::armed() && faultsim::hit("ckpt.torn") {
            obs::add("fault.injected", 1);
            obs::event("fault.injected", &[("point", "ckpt.torn".into())]);
            let torn = &text.as_bytes()[..text.len() / 2];
            return std::fs::write(path, torn).map_err(io);
        }
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, &text).map_err(io)?;
        std::fs::rename(&tmp, path).map_err(io)
    }

    /// Loads and structurally validates a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if the file cannot be read, otherwise the
    /// errors of [`Checkpoint::from_text`].
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let text = std::fs::read_to_string(path).map_err(|e| CheckpointError::Io {
            path: path.display().to_string(),
            detail: e.to_string(),
        })?;
        Self::from_text(&path.display().to_string(), &text)
    }
}

/// FNV-1a 64-bit over a byte slice — the checkpoint footer hash (and the
/// same construction `pucost` uses for the energy-model fingerprint).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Renders an `f64` as its 16-hex-digit IEEE-754 bit pattern
/// (round-trips bit-exactly through [`f64_from_hex`], NaN payloads and
/// signed zeros included).
pub fn f64_to_hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// Parses a bit pattern written by [`f64_to_hex`].
pub fn f64_from_hex(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut ck = Checkpoint::new("codesign");
        ck.set_meta("model", "alexnet-conv");
        ck.set_meta("seed", "7");
        ck.set_meta("note", "spaces are fine in values");
        ck.push_section(
            "points",
            vec!["pt 3ff0000000000000 4000000000000000 2 3".into()],
        );
        ck.push_section("unit.0", vec!["gen 2".into(), "ob 0 1 2".into()]);
        ck.push_section("empty", Vec::new());
        ck
    }

    #[test]
    fn text_round_trip_is_lossless() {
        let ck = sample();
        let text = ck.to_text();
        let back = Checkpoint::from_text("t", &text).expect("parses");
        assert_eq!(back.kind(), "codesign");
        assert_eq!(back.meta("seed"), Some("7"));
        assert_eq!(back.meta("note"), Some("spaces are fine in values"));
        assert_eq!(back.section("unit.0").len(), 2);
        assert!(back.section("missing").is_empty());
        // Serialization is stable.
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn save_load_round_trips_on_disk() {
        let dir = std::env::temp_dir().join("spa_ckpt_test_rt");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("run.ckpt");
        let ck = sample();
        ck.save(&path).expect("saves");
        let back = Checkpoint::load(&path).expect("loads");
        assert_eq!(back.to_text(), ck.to_text());
        assert!(!path.with_extension("ckpt.tmp").exists() || true);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_and_bitflips_are_detected() {
        let text = sample().to_text();
        // Any truncation that loses the footer is corrupt.
        for cut in [1, text.len() / 3, text.len() / 2, text.len() - 2] {
            let torn = &text[..cut];
            assert!(
                matches!(
                    Checkpoint::from_text("t", torn),
                    Err(CheckpointError::Corrupt { .. }) | Err(CheckpointError::BadVersion { .. })
                ),
                "cut at {cut} must not parse"
            );
        }
        // A flipped byte inside a section line trips the checksum.
        let flipped = text.replacen("3ff0", "3ff1", 1);
        assert!(matches!(
            Checkpoint::from_text("t", &flipped),
            Err(CheckpointError::Corrupt { .. })
        ));
    }

    #[test]
    fn version_and_kind_are_enforced() {
        let future = sample().to_text().replacen("spa-ckpt 1 ", "spa-ckpt 2 ", 1);
        assert!(matches!(
            Checkpoint::from_text("t", &future),
            Err(CheckpointError::BadVersion { found, .. }) if found == "2"
        ));
        let ck = sample();
        assert!(ck.require("codesign", &[("seed", "7")]).is_ok());
        assert!(matches!(
            ck.require("engine", &[]),
            Err(CheckpointError::Mismatch { key, .. }) if key == "kind"
        ));
        assert!(matches!(
            ck.require("codesign", &[("seed", "8")]),
            Err(CheckpointError::Mismatch { key, expected, found })
                if key == "seed" && expected == "8" && found == "7"
        ));
        assert!(matches!(
            ck.require("codesign", &[("absent", "x")]),
            Err(CheckpointError::Mismatch { found, .. }) if found == "<missing>"
        ));
    }

    #[test]
    fn meta_u64_is_typed() {
        let mut ck = sample();
        ck.set_meta("gens", "12");
        assert_eq!(ck.meta_u64("gens").expect("parses"), 12);
        assert!(matches!(
            ck.meta_u64("model"),
            Err(CheckpointError::Corrupt { .. })
        ));
        assert!(matches!(
            ck.meta_u64("absent"),
            Err(CheckpointError::Corrupt { .. })
        ));
    }

    #[test]
    fn injected_torn_write_is_caught_at_load() {
        let _x = faultsim::exclusive();
        let dir = std::env::temp_dir().join("spa_ckpt_test_torn");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("torn.ckpt");
        let ck = sample();
        faultsim::arm("ckpt.torn@1").expect("plan parses");
        ck.save(&path).expect("the torn write itself reports Ok");
        faultsim::disarm();
        assert!(matches!(
            Checkpoint::load(&path),
            Err(CheckpointError::Corrupt { .. })
        ));
        // The very next save (fault disarmed) heals the file in place.
        ck.save(&path).expect("saves");
        assert_eq!(Checkpoint::load(&path).expect("loads").to_text(), ck.to_text());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn float_hex_round_trip_is_bit_exact() {
        for x in [
            0.0,
            -0.0,
            0.1 + 0.2,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            1.23456789e300,
        ] {
            let back = f64_from_hex(&f64_to_hex(x)).expect("parses");
            assert_eq!(back.to_bits(), x.to_bits());
        }
        let nan = f64_from_hex(&f64_to_hex(f64::NAN)).expect("parses");
        assert!(nan.is_nan());
        assert!(f64_from_hex("not-hex").is_none());
    }

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }
}
