//! Anytime-execution control: deadlines, generation budgets, checkpoint
//! cadence.
//!
//! Every long-running search in this crate (the engine's `(N, S)` sweep,
//! the co-design baselines, the multi-model joint search, the generality
//! remap) is organized in *generations* — fixed work quanta evaluated
//! atomically. A [`RunCtl`] tells such a search when to stop early and
//! where to persist progress; the search answers with a [`RunStatus`]
//! that is either `Complete` or a typed [`Partial`] carrying best-so-far
//! provenance. Stopping is cooperative and only happens **at generation
//! boundaries**, so a deadline never tears a half-observed optimizer
//! batch and a resumed run replays exactly the generations the
//! checkpoint recorded.
//!
//! Two stop conditions exist:
//!
//! * **Generation budget** ([`RunCtl::stop_after_gens`]) — fully
//!   deterministic; the reference "kill model" the resume-equivalence
//!   tests use to interrupt a run at a known point.
//! * **Deadline** ([`RunCtl::deadline`] / the `DSE_DEADLINE_MS`
//!   environment variable) — wall-clock, inherently nondeterministic in
//!   *where* it stops, but the result is still a valid best-so-far
//!   design set and the status records how far the search got.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
// Wall-clock deadline support is the one sanctioned nondeterminism in
// this crate: it changes *when* a search stops, never *what* any
// completed generation computed. lint: allow(nondet-time)
use std::time::{Duration, Instant};

/// Why a search stopped before finishing its planned generations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The wall-clock deadline expired (`DSE_DEADLINE_MS` or
    /// [`RunCtl::deadline`]).
    Deadline,
    /// The deterministic generation budget ([`RunCtl::stop_after_gens`])
    /// was exhausted.
    GenBudget,
    /// An external party raised the shared cancel flag
    /// ([`RunCtl::cancel_flag`]) — e.g. a `cancel` request or graceful
    /// shutdown in the serving layer.
    Cancelled,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::Deadline => write!(f, "deadline"),
            StopReason::GenBudget => write!(f, "generation budget"),
            StopReason::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Provenance of an early stop: how much of the planned work finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partial {
    /// Generations whose results are included in the returned output
    /// (restored-from-checkpoint generations count).
    pub completed_gens: u64,
    /// Generations the full search would have run.
    pub planned_gens: u64,
    /// What cut the run short.
    pub reason: StopReason,
}

/// Outcome classification of an anytime search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// Every planned generation ran; the result equals the non-anytime
    /// API's.
    Complete,
    /// The search stopped early; the result is the best-so-far across
    /// [`Partial::completed_gens`] generations.
    Partial(Partial),
}

impl RunStatus {
    /// `true` iff the search finished all planned work.
    pub fn is_complete(&self) -> bool {
        matches!(self, RunStatus::Complete)
    }
}

/// Anytime-execution policy handed to the `_ctl` search entry points.
///
/// The default ([`RunCtl::none`]) imposes nothing: no deadline, no
/// generation budget, no checkpointing — the search behaves exactly like
/// its plain counterpart.
#[derive(Debug, Clone, Default)]
pub struct RunCtl {
    // Monotonic stop instant; see the module docs for why wall-clock is
    // acceptable here. lint: allow(nondet-time)
    deadline: Option<Instant>,
    stop_after_gens: Option<u64>,
    cancel: Option<Arc<AtomicBool>>,
    checkpoint_path: Option<PathBuf>,
    checkpoint_every: u64,
    resume_from: Option<PathBuf>,
}

impl RunCtl {
    /// No limits, no checkpointing: the identity policy.
    pub fn none() -> Self {
        Self::default()
    }

    /// Stops the search (cooperatively, at the next generation boundary)
    /// once `budget` has elapsed from now.
    pub fn deadline(mut self, budget: Duration) -> Self {
        // lint: allow(nondet-time) — module-level rationale.
        self.deadline = Some(Instant::now() + budget);
        self
    }

    /// Deterministic stop after exactly `gens` completed generations —
    /// the reproducible "kill" used by the resume-equivalence tests.
    pub fn stop_after_gens(mut self, gens: u64) -> Self {
        self.stop_after_gens = Some(gens);
        self
    }

    /// Shares a cancellation flag with the search: once any holder stores
    /// `true`, the search stops (cooperatively, at the next generation
    /// boundary) with [`StopReason::Cancelled`]. The serving layer uses
    /// this for client `cancel` requests and graceful shutdown.
    pub fn cancel_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Persists a checkpoint to `path` every `every` completed
    /// generations (and always on an early stop). `every` is clamped to
    /// at least 1.
    pub fn checkpoint(mut self, path: impl Into<PathBuf>, every: u64) -> Self {
        self.checkpoint_path = Some(path.into());
        self.checkpoint_every = every.max(1);
        self
    }

    /// Resumes from a checkpoint previously written by
    /// [`RunCtl::checkpoint`]. The run configuration (model, budget,
    /// seed, iteration counts, energy model) must match what the
    /// checkpoint recorded or the search fails with a typed mismatch.
    pub fn resume(mut self, path: impl Into<PathBuf>) -> Self {
        self.resume_from = Some(path.into());
        self
    }

    /// Applies the `DSE_DEADLINE_MS` environment variable (a positive
    /// integer of milliseconds) as a deadline, if set and parseable.
    /// Unset, empty, zero or garbage leave the policy unchanged.
    pub fn deadline_from_env(self) -> Self {
        match std::env::var("DSE_DEADLINE_MS") {
            Ok(v) => match v.trim().parse::<u64>() {
                Ok(ms) if ms > 0 => self.deadline(Duration::from_millis(ms)),
                _ => self,
            },
            Err(_) => self,
        }
    }

    /// The checkpoint path, if checkpointing is enabled.
    pub fn checkpoint_path(&self) -> Option<&Path> {
        self.checkpoint_path.as_deref()
    }

    /// The resume source, if resuming was requested.
    pub fn resume_from(&self) -> Option<&Path> {
        self.resume_from.as_deref()
    }

    /// `true` when a checkpoint should be written after the
    /// `completed_gens`-th generation.
    pub fn should_checkpoint(&self, completed_gens: u64) -> bool {
        self.checkpoint_path.is_some()
            && completed_gens > 0
            && completed_gens % self.checkpoint_every.max(1) == 0
    }

    /// Checks the stop conditions with `completed_gens` generations done.
    /// The deterministic generation budget is checked first so that runs
    /// using it as a scripted kill are not raced by a deadline or a
    /// cancellation; cancellation outranks the deadline so a shutdown
    /// that also blows the deadline reports the explicit reason.
    pub fn should_stop(&self, completed_gens: u64) -> Option<StopReason> {
        if let Some(k) = self.stop_after_gens {
            if completed_gens >= k {
                return Some(StopReason::GenBudget);
            }
        }
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::SeqCst) {
                return Some(StopReason::Cancelled);
            }
        }
        if let Some(d) = self.deadline {
            // lint: allow(nondet-time) — module-level rationale.
            if Instant::now() >= d {
                return Some(StopReason::Deadline);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_stops_or_checkpoints() {
        let ctl = RunCtl::none();
        assert_eq!(ctl.should_stop(0), None);
        assert_eq!(ctl.should_stop(u64::MAX), None);
        assert!(!ctl.should_checkpoint(1));
        assert!(ctl.checkpoint_path().is_none());
        assert!(ctl.resume_from().is_none());
    }

    #[test]
    fn gen_budget_stops_deterministically() {
        let ctl = RunCtl::none().stop_after_gens(3);
        assert_eq!(ctl.should_stop(0), None);
        assert_eq!(ctl.should_stop(2), None);
        assert_eq!(ctl.should_stop(3), Some(StopReason::GenBudget));
        assert_eq!(ctl.should_stop(4), Some(StopReason::GenBudget));
    }

    #[test]
    fn gen_budget_outranks_deadline() {
        // An already-expired deadline plus an exhausted generation budget
        // must report the deterministic reason.
        let ctl = RunCtl::none().deadline(Duration::ZERO).stop_after_gens(0);
        assert_eq!(ctl.should_stop(0), Some(StopReason::GenBudget));
    }

    #[test]
    fn expired_deadline_stops() {
        let ctl = RunCtl::none().deadline(Duration::ZERO);
        assert_eq!(ctl.should_stop(0), Some(StopReason::Deadline));
        let far = RunCtl::none().deadline(Duration::from_secs(3600));
        assert_eq!(far.should_stop(1_000_000), None);
    }

    #[test]
    fn checkpoint_cadence() {
        let ctl = RunCtl::none().checkpoint("/tmp/x.ckpt", 3);
        assert!(!ctl.should_checkpoint(0));
        assert!(!ctl.should_checkpoint(1));
        assert!(ctl.should_checkpoint(3));
        assert!(!ctl.should_checkpoint(4));
        assert!(ctl.should_checkpoint(6));
        // every = 0 clamps to 1 rather than dividing by zero.
        let every_gen = RunCtl::none().checkpoint("/tmp/x.ckpt", 0);
        assert!(every_gen.should_checkpoint(1));
    }

    #[test]
    fn deadline_env_parsing_ignores_garbage() {
        // Process-global env: only exercise the unset/garbage fallbacks
        // that cannot race other tests' reads.
        std::env::remove_var("DSE_DEADLINE_MS");
        let ctl = RunCtl::none().deadline_from_env();
        assert_eq!(ctl.should_stop(u64::MAX), None, "unset = no deadline");
    }

    #[test]
    fn status_classification() {
        assert!(RunStatus::Complete.is_complete());
        let p = RunStatus::Partial(Partial {
            completed_gens: 2,
            planned_gens: 9,
            reason: StopReason::Deadline,
        });
        assert!(!p.is_complete());
        assert_eq!(StopReason::Deadline.to_string(), "deadline");
        assert_eq!(StopReason::GenBudget.to_string(), "generation budget");
        assert_eq!(StopReason::Cancelled.to_string(), "cancelled");
    }

    #[test]
    fn cancel_flag_stops_when_raised() {
        let flag = Arc::new(AtomicBool::new(false));
        let ctl = RunCtl::none().cancel_flag(Arc::clone(&flag));
        assert_eq!(ctl.should_stop(0), None);
        flag.store(true, Ordering::SeqCst);
        assert_eq!(ctl.should_stop(0), Some(StopReason::Cancelled));
        assert_eq!(ctl.should_stop(100), Some(StopReason::Cancelled));
    }

    #[test]
    fn cancel_outranks_deadline_but_not_gen_budget() {
        let flag = Arc::new(AtomicBool::new(true));
        let cancelled_and_late = RunCtl::none()
            .deadline(Duration::ZERO)
            .cancel_flag(Arc::clone(&flag));
        assert_eq!(
            cancelled_and_late.should_stop(0),
            Some(StopReason::Cancelled)
        );
        let all_three = RunCtl::none()
            .deadline(Duration::ZERO)
            .cancel_flag(flag)
            .stop_after_gens(0);
        assert_eq!(all_three.should_stop(0), Some(StopReason::GenBudget));
    }
}
