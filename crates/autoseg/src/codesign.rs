//! Co-design optimization baselines (Section VI-G, Figure 18).
//!
//! Five methods produce clouds of `(latency, energy)` design points:
//!
//! * **MIP-Heuristic** — AutoSeg itself: exact segmentation + Algorithm 1.
//! * **MIP-Random** — exact segmentation, hardware parameters sampled
//!   uniformly (500 iterations in the paper).
//! * **MIP-Baye** — exact segmentation, hardware searched by TPE.
//! * **Baye-Heuristic** — segmentation searched by TPE (2000 iterations in
//!   the paper), hardware from Algorithm 1.
//! * **Baye-Baye** — the nested bi-loop of [Shi et al.]: an outer TPE over
//!   hardware, an inner TPE over segmentation with only latency feedback.
//!
//! # Execution model
//!
//! Every method runs on a [`DsePool`] and shares one [`EvalCache`] per
//! search. Candidate evaluation is organized in fixed-size *generations*
//! ([`GENERATION`] candidates): the optimizer proposes a whole generation
//! (`suggest_batch`), the pool evaluates it concurrently, and observations
//! are fed back in proposal order (`observe_batch`). Because the
//! generation size is a constant — not the thread count — and results are
//! folded in proposal order, the produced [`DesignPoint`] sequence is
//! bit-identical for any thread count; `threads = 1` *is* the serial
//! reference path.

use crate::allocate::{allocate_with, manual_design_with};
use crate::dse::{split_seed, DsePool};
use crate::engine::DesignGoal;
use crate::error::AutoSegError;
use crate::segment::{BayesSegmenter, ChainDpSegmenter, Segmenter};
use bayesopt::{Optimizer, SearchSpace, SimulatedAnnealing, Tpe};
use nnmodel::{Graph, Workload};
use pucost::EvalCache;
use spa_arch::HwBudget;
use spa_sim::simulate_spa_with;

/// Candidates proposed (and evaluated concurrently) per optimizer
/// generation. A constant independent of the worker count, so search
/// trajectories do not depend on how many threads happen to run them.
pub const GENERATION: usize = 8;

/// One evaluated co-design point.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// Frame latency in seconds.
    pub latency_s: f64,
    /// Total energy per frame in pJ.
    pub energy_pj: f64,
    /// Method label.
    pub method: &'static str,
    /// `(n_pus, n_segments)` of the point.
    pub shape: (usize, usize),
}

/// Iteration budgets for the search-based methods.
#[derive(Debug, Clone, Copy)]
pub struct CodesignBudgets {
    /// Hardware-search iterations (the paper uses 500).
    pub hw_iters: usize,
    /// Segmentation-search iterations (the paper uses 2000).
    pub seg_iters: usize,
    /// Seed for all stochastic methods.
    pub seed: u64,
    /// DSE worker threads; `0` means auto (`DSE_THREADS` env var, else all
    /// available cores). `1` is the serial reference path.
    pub threads: usize,
}

impl Default for CodesignBudgets {
    fn default() -> Self {
        Self {
            hw_iters: 500,
            seg_iters: 2000,
            seed: 7,
            threads: 0,
        }
    }
}

impl CodesignBudgets {
    /// Reduced budgets for smoke runs (CI, `scripts/verify.sh`): the same
    /// code paths at a fraction of the iterations.
    pub fn smoke() -> Self {
        Self {
            hw_iters: 24,
            seg_iters: 32,
            seed: 3,
            threads: 0,
        }
    }

    /// Swaps in the [`CodesignBudgets::smoke`] iteration counts when the
    /// `DSE_SMOKE` environment variable is set to anything non-empty other
    /// than `0`; seed and thread count are kept.
    pub fn smoke_if_env(self) -> Self {
        match std::env::var("DSE_SMOKE") {
            Ok(v) if !v.is_empty() && v != "0" => {
                let s = Self::smoke();
                Self {
                    hw_iters: s.hw_iters.min(self.hw_iters),
                    seg_iters: s.seg_iters.min(self.seg_iters),
                    ..self
                }
            }
            _ => self,
        }
    }

    /// The worker pool implied by `threads` (0 = auto-sized).
    pub fn pool(&self) -> DsePool {
        if self.threads == 0 {
            DsePool::from_env()
        } else {
            DsePool::new(self.threads)
        }
    }
}

fn shapes(workload: &Workload, budget: &HwBudget) -> Vec<(usize, usize)> {
    let l = workload.len();
    let mut v = Vec::new();
    for n in 2..=4usize.min(l).min(budget.pes) {
        for s in 1..=8.min(l / n) {
            v.push((n, s));
        }
    }
    v
}

fn point(
    workload: &Workload,
    design: &spa_arch::SpaDesign,
    budget: &HwBudget,
    method: &'static str,
    shape: (usize, usize),
    cache: &EvalCache,
) -> Option<DesignPoint> {
    if !design.fits(budget) || design.segment_routings(workload).is_err() {
        return None;
    }
    let r = simulate_spa_with(workload, design, cache);
    Some(DesignPoint {
        latency_s: r.seconds,
        energy_pj: r.energy.total_pj(),
        method,
        shape,
    })
}

/// MIP-Heuristic: the AutoSeg engine's own candidates — one point per
/// feasible `(N, S)` shape.
pub fn mip_heuristic(
    model: &Graph,
    budget: &HwBudget,
) -> Result<Vec<DesignPoint>, AutoSegError> {
    mip_heuristic_with(model, budget, &DsePool::from_env(), &EvalCache::default())
}

/// [`mip_heuristic`] on an explicit pool and cost cache. Shapes are
/// independent, so the whole sweep fans out across the pool.
pub fn mip_heuristic_with(
    model: &Graph,
    budget: &HwBudget,
    pool: &DsePool,
    cache: &EvalCache,
) -> Result<Vec<DesignPoint>, AutoSegError> {
    let _span = obs::span!("codesign.mip_heuristic", model = model.name());
    let workload = Workload::from_graph(model);
    let seg = ChainDpSegmenter::new();
    let all_shapes = shapes(&workload, budget);
    let evals = pool.par_map(
        &all_shapes,
        |_, &(n, s)| -> Result<Option<DesignPoint>, AutoSegError> {
            let Ok(schedule) = seg.segment(&workload, n, s) else {
                return Ok(None);
            };
            let design = allocate_with(&workload, &schedule, budget, DesignGoal::Latency, cache)?;
            Ok(point(&workload, &design, budget, "mip-heuristic", (n, s), cache))
        },
    );
    let mut pts = Vec::new();
    for e in evals {
        if let Some(p) = e? {
            pts.push(p);
        }
    }
    Ok(pts)
}

/// Hardware search space for the random/Bayesian hardware methods: one
/// log2-PE dimension per PU plus one buffer-multiplier dimension.
fn hw_space(n_pus: usize, budget: &HwBudget) -> SearchSpace {
    let max_log = (budget.pes.max(2) as f64).log2().floor() as usize + 1;
    let mut dims = vec![max_log; n_pus];
    dims.push(3); // buffer multiplier 1 / 2 / 4
    SearchSpace::new(dims)
}

fn decode_hw(pt: &[usize]) -> (Vec<usize>, u64) {
    let n = pt.len() - 1;
    let pes: Vec<usize> = pt[..n].iter().map(|&k| 1usize << k).collect();
    let mult = 1u64 << pt[n];
    (pes, mult)
}

/// Runs one black-box hardware search over `iters` iterations for a fixed
/// schedule: generation-batched ask → parallel evaluate → ordered tell.
/// Returns the feasible points in proposal order.
fn hw_search_loop(
    workload: &Workload,
    schedule: &spa_arch::SegmentSchedule,
    budget: &HwBudget,
    method: &'static str,
    shape: (usize, usize),
    opt: &mut dyn Optimizer,
    iters: usize,
    pool: &DsePool,
    cache: &EvalCache,
    pts: &mut Vec<DesignPoint>,
) {
    let _span = obs::span!("codesign.hw_search", method = method, iters = iters);
    let mut best = f64::INFINITY;
    let mut done = 0;
    while done < iters {
        let k = GENERATION.min(iters - done);
        let samples = opt.suggest_batch(k);
        let evals = pool.par_map(&samples, |_, sample| {
            let (pes, mult) = decode_hw(sample);
            let design = manual_design_with(workload, schedule, budget, &pes, mult, cache);
            point(workload, &design, budget, method, shape, cache)
        });
        let mut batch = Vec::with_capacity(k);
        for (sample, p) in samples.into_iter().zip(evals) {
            let value = match p {
                Some(p) => {
                    let v = p.latency_s;
                    pts.push(p);
                    v
                }
                None => f64::INFINITY,
            };
            batch.push((sample, value));
        }
        opt.observe_batch(batch);
        done += k;
        // Best-so-far per generation: the convergence curve of Figure 18.
        if obs::enabled() {
            let gen_best = best_feasible_latency(pts, best);
            if gen_best < best {
                best = gen_best;
            }
            obs::event(
                "codesign.generation",
                &[
                    ("method", method.into()),
                    ("iter", done.into()),
                    ("best_latency_s", best.into()),
                ],
            );
        }
    }
}

/// Best feasible latency among the points collected so far (`prev` when
/// none improved it). Pure bookkeeping for the convergence event; never
/// feeds back into the search.
fn best_feasible_latency(pts: &[DesignPoint], prev: f64) -> f64 {
    pts.iter().map(|p| p.latency_s).fold(prev, f64::min)
}

/// MIP-Random and MIP-Baye share this driver: exact segmentation, then
/// black-box hardware search.
fn mip_search(
    model: &Graph,
    budget: &HwBudget,
    budgets: &CodesignBudgets,
    bayes: bool,
    pool: &DsePool,
    cache: &EvalCache,
) -> Result<Vec<DesignPoint>, AutoSegError> {
    let workload = Workload::from_graph(model);
    let seg = ChainDpSegmenter::new();
    let method: &'static str = if bayes { "mip-baye" } else { "mip-random" };
    let mut pts = Vec::new();
    let all_shapes = shapes(&workload, budget);
    if all_shapes.is_empty() {
        return Ok(pts);
    }
    let per_shape = (budgets.hw_iters / all_shapes.len()).max(4);
    for (n, s) in all_shapes {
        let Ok(schedule) = seg.segment(&workload, n, s) else {
            continue;
        };
        let space = hw_space(n, budget);
        let mut opt: Box<dyn Optimizer> = if bayes {
            Box::new(Tpe::new(space, budgets.seed))
        } else {
            Box::new(bayesopt::RandomSearch::new(space, budgets.seed))
        };
        hw_search_loop(
            &workload, &schedule, budget, method, (n, s), opt.as_mut(), per_shape, pool,
            cache, &mut pts,
        );
    }
    Ok(pts)
}

/// MIP-Anneal: exact segmentation + simulated-annealing hardware search (a
/// local-search contrast to TPE's model-based sampling; not in the paper's
/// baseline set but a natural ablation of the search strategy).
pub fn mip_anneal(
    model: &Graph,
    budget: &HwBudget,
    budgets: &CodesignBudgets,
) -> Result<Vec<DesignPoint>, AutoSegError> {
    mip_anneal_with(model, budget, budgets, &budgets.pool(), &EvalCache::default())
}

/// [`mip_anneal`] on an explicit pool and cost cache.
pub fn mip_anneal_with(
    model: &Graph,
    budget: &HwBudget,
    budgets: &CodesignBudgets,
    pool: &DsePool,
    cache: &EvalCache,
) -> Result<Vec<DesignPoint>, AutoSegError> {
    let workload = Workload::from_graph(model);
    let seg = ChainDpSegmenter::new();
    let mut pts = Vec::new();
    let all_shapes = shapes(&workload, budget);
    if all_shapes.is_empty() {
        return Ok(pts);
    }
    let per_shape = (budgets.hw_iters / all_shapes.len()).max(4);
    for (n, s) in all_shapes {
        let Ok(schedule) = seg.segment(&workload, n, s) else {
            continue;
        };
        let mut opt = SimulatedAnnealing::new(hw_space(n, budget), budgets.seed);
        hw_search_loop(
            &workload, &schedule, budget, "mip-anneal", (n, s), &mut opt, per_shape, pool,
            cache, &mut pts,
        );
    }
    Ok(pts)
}

/// MIP-Random: exact segmentation + uniform-random hardware sampling.
pub fn mip_random(
    model: &Graph,
    budget: &HwBudget,
    budgets: &CodesignBudgets,
) -> Result<Vec<DesignPoint>, AutoSegError> {
    mip_search(model, budget, budgets, false, &budgets.pool(), &EvalCache::default())
}

/// [`mip_random`] on an explicit pool and cost cache.
pub fn mip_random_with(
    model: &Graph,
    budget: &HwBudget,
    budgets: &CodesignBudgets,
    pool: &DsePool,
    cache: &EvalCache,
) -> Result<Vec<DesignPoint>, AutoSegError> {
    mip_search(model, budget, budgets, false, pool, cache)
}

/// MIP-Baye: exact segmentation + TPE hardware search.
pub fn mip_baye(
    model: &Graph,
    budget: &HwBudget,
    budgets: &CodesignBudgets,
) -> Result<Vec<DesignPoint>, AutoSegError> {
    mip_search(model, budget, budgets, true, &budgets.pool(), &EvalCache::default())
}

/// [`mip_baye`] on an explicit pool and cost cache.
pub fn mip_baye_with(
    model: &Graph,
    budget: &HwBudget,
    budgets: &CodesignBudgets,
    pool: &DsePool,
    cache: &EvalCache,
) -> Result<Vec<DesignPoint>, AutoSegError> {
    mip_search(model, budget, budgets, true, pool, cache)
}

/// Baye-Heuristic: TPE segmentation + Algorithm 1 hardware.
pub fn baye_heuristic(
    model: &Graph,
    budget: &HwBudget,
    budgets: &CodesignBudgets,
) -> Result<Vec<DesignPoint>, AutoSegError> {
    baye_heuristic_with(model, budget, budgets, &budgets.pool(), &EvalCache::default())
}

/// [`baye_heuristic`] on an explicit pool and cost cache. Each shape runs
/// its own independent TPE segmentation search, so shapes fan out across
/// the pool.
pub fn baye_heuristic_with(
    model: &Graph,
    budget: &HwBudget,
    budgets: &CodesignBudgets,
    pool: &DsePool,
    cache: &EvalCache,
) -> Result<Vec<DesignPoint>, AutoSegError> {
    let _span = obs::span!("codesign.baye_heuristic", model = model.name());
    let workload = Workload::from_graph(model);
    let all_shapes = shapes(&workload, budget);
    if all_shapes.is_empty() {
        return Ok(Vec::new());
    }
    let per_shape = (budgets.seg_iters / all_shapes.len()).max(8);
    let evals = pool.par_map(
        &all_shapes,
        |_, &(n, s)| -> Result<Option<DesignPoint>, AutoSegError> {
            let seg = BayesSegmenter::new(budgets.seed, per_shape);
            let Ok(schedule) = seg.segment(&workload, n, s) else {
                return Ok(None);
            };
            let design = allocate_with(&workload, &schedule, budget, DesignGoal::Latency, cache)?;
            Ok(point(&workload, &design, budget, "baye-heuristic", (n, s), cache))
        },
    );
    let mut pts = Vec::new();
    for e in evals {
        if let Some(p) = e? {
            pts.push(p);
        }
    }
    Ok(pts)
}

/// Baye-Baye: nested TPE loops — outer over hardware, inner over
/// segmentation, latency-only feedback (the bi-loop structure that tends
/// to fall into local optima, Section VI-G point 3).
pub fn baye_baye(
    model: &Graph,
    budget: &HwBudget,
    budgets: &CodesignBudgets,
) -> Result<Vec<DesignPoint>, AutoSegError> {
    baye_baye_with(model, budget, budgets, &budgets.pool(), &EvalCache::default())
}

/// [`baye_baye`] on an explicit pool and cost cache. The outer hardware
/// TPE is generation-batched; each candidate's inner segmentation search
/// gets a seed derived from its *global* iteration index
/// ([`split_seed`]), so the trajectory is thread-count independent.
pub fn baye_baye_with(
    model: &Graph,
    budget: &HwBudget,
    budgets: &CodesignBudgets,
    pool: &DsePool,
    cache: &EvalCache,
) -> Result<Vec<DesignPoint>, AutoSegError> {
    let _span = obs::span!("codesign.baye_baye", model = model.name());
    let workload = Workload::from_graph(model);
    let mut pts = Vec::new();
    let all_shapes = shapes(&workload, budget);
    if all_shapes.is_empty() {
        return Ok(pts);
    }
    let outer = (budgets.hw_iters / all_shapes.len()).max(2);
    let inner = (budgets.seg_iters / budgets.hw_iters.max(1)).max(4);
    for (n, s) in all_shapes {
        let space = hw_space(n, budget);
        let mut hw_opt = Tpe::new(space, budgets.seed);
        let mut k0 = 0;
        while k0 < outer {
            let g = GENERATION.min(outer - k0);
            let samples = hw_opt.suggest_batch(g);
            let evals = pool.par_map(&samples, |i, sample| {
                let (pes, mult) = decode_hw(sample);
                // Inner loop: TPE segmentation for this fixed hardware,
                // scored by simulated latency only.
                let seg = BayesSegmenter::new(split_seed(budgets.seed, (k0 + i) as u64), inner);
                match seg.segment(&workload, n, s) {
                    Ok(schedule) => {
                        let design =
                            manual_design_with(&workload, &schedule, budget, &pes, mult, cache);
                        point(&workload, &design, budget, "baye-baye", (n, s), cache)
                    }
                    Err(_) => None,
                }
            });
            let mut batch = Vec::with_capacity(g);
            for (sample, p) in samples.into_iter().zip(evals) {
                let value = match p {
                    Some(p) => {
                        let v = p.latency_s;
                        pts.push(p);
                        v
                    }
                    None => f64::INFINITY,
                };
                batch.push((sample, value));
            }
            hw_opt.observe_batch(batch);
            k0 += g;
            if obs::enabled() {
                obs::event(
                    "codesign.generation",
                    &[
                        ("method", "baye-baye".into()),
                        ("iter", k0.into()),
                        ("best_latency_s", best_feasible_latency(&pts, f64::INFINITY).into()),
                    ],
                );
            }
        }
    }
    Ok(pts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnmodel::zoo;

    fn tiny_budgets() -> CodesignBudgets {
        CodesignBudgets {
            hw_iters: 40,
            seg_iters: 60,
            seed: 3,
            threads: 2,
        }
    }

    #[test]
    fn all_methods_produce_feasible_points() {
        let model = zoo::alexnet_conv();
        let budget = HwBudget::nvdla_small();
        let b = tiny_budgets();
        let runs: Vec<(&str, Vec<DesignPoint>)> = vec![
            ("mip-heuristic", mip_heuristic(&model, &budget).unwrap()),
            ("mip-random", mip_random(&model, &budget, &b).unwrap()),
            ("mip-baye", mip_baye(&model, &budget, &b).unwrap()),
            ("baye-heuristic", baye_heuristic(&model, &budget, &b).unwrap()),
            ("baye-baye", baye_baye(&model, &budget, &b).unwrap()),
            ("mip-anneal", mip_anneal(&model, &budget, &b).unwrap()),
        ];
        for (name, pts) in &runs {
            assert!(!pts.is_empty(), "{name} produced no points");
            for p in pts {
                assert!(p.latency_s > 0.0 && p.energy_pj > 0.0, "{name}");
            }
        }
    }

    #[test]
    fn heuristic_best_latency_competitive_with_random() {
        // Figure 18: MIP-Heuristic (AutoSeg) finds the best designs.
        let model = zoo::alexnet_conv();
        let budget = HwBudget::nvdla_small();
        let b = tiny_budgets();
        let best = |pts: &[DesignPoint]| {
            pts.iter()
                .map(|p| p.latency_s)
                .fold(f64::INFINITY, f64::min)
        };
        let h = best(&mip_heuristic(&model, &budget).unwrap());
        let r = best(&mip_random(&model, &budget, &b).unwrap());
        assert!(h <= r * 1.05, "heuristic {h} vs random {r}");
    }

    #[test]
    fn heuristic_energy_dominates_random() {
        // Section VI-G point 1: heuristic allocation yields much lower
        // worst-case energy than random hardware sampling.
        let model = zoo::alexnet_conv();
        let budget = HwBudget::nvdla_small();
        let b = tiny_budgets();
        let max_e = |pts: &[DesignPoint]| {
            pts.iter().map(|p| p.energy_pj).fold(0.0f64, f64::max)
        };
        let h = max_e(&mip_heuristic(&model, &budget).unwrap());
        let r = max_e(&mip_random(&model, &budget, &b).unwrap());
        assert!(h <= r, "heuristic max energy {h} vs random {r}");
    }

    #[test]
    fn smoke_budgets_shrink_iterations_only() {
        let b = CodesignBudgets {
            hw_iters: 500,
            seg_iters: 2000,
            seed: 11,
            threads: 4,
        };
        let s = CodesignBudgets::smoke();
        assert!(s.hw_iters < b.hw_iters && s.seg_iters < b.seg_iters);
        // smoke_if_env honors the env var; when unset it is the identity.
        // (Set/unset of env vars is process-global, so only the unset path
        // is exercised here; the flag plumbing is covered by verify.sh.)
        if std::env::var("DSE_SMOKE").is_err() {
            let kept = b.smoke_if_env();
            assert_eq!(kept.hw_iters, b.hw_iters);
            assert_eq!(kept.seg_iters, b.seg_iters);
            assert_eq!(kept.seed, b.seed);
            assert_eq!(kept.threads, b.threads);
        }
    }

    #[test]
    fn pool_respects_explicit_thread_count() {
        let b = CodesignBudgets {
            threads: 3,
            ..CodesignBudgets::default()
        };
        assert_eq!(b.pool().threads(), 3);
        assert!(CodesignBudgets::default().pool().threads() >= 1);
    }
}
