//! Co-design optimization baselines (Section VI-G, Figure 18).
//!
//! Five methods produce clouds of `(latency, energy)` design points:
//!
//! * **MIP-Heuristic** — AutoSeg itself: exact segmentation + Algorithm 1.
//! * **MIP-Random** — exact segmentation, hardware parameters sampled
//!   uniformly (500 iterations in the paper).
//! * **MIP-Baye** — exact segmentation, hardware searched by TPE.
//! * **Baye-Heuristic** — segmentation searched by TPE (2000 iterations in
//!   the paper), hardware from Algorithm 1.
//! * **Baye-Baye** — the nested bi-loop of [Shi et al.]: an outer TPE over
//!   hardware, an inner TPE over segmentation with only latency feedback.
//!
//! (Plus **MIP-Anneal**, a simulated-annealing ablation of the search
//! strategy.)
//!
//! # Execution model
//!
//! Every method runs on a [`DsePool`] and shares one [`EvalCache`] per
//! search. Candidate evaluation is organized in fixed-size *generations*
//! ([`GENERATION`] candidates): the optimizer proposes a whole generation
//! (`suggest_batch`), the pool evaluates it concurrently, and observations
//! are fed back in proposal order (`observe_batch`). Because the
//! generation size is a constant — not the thread count — and results are
//! folded in proposal order, the produced [`DesignPoint`] sequence is
//! bit-identical for any thread count; `threads = 1` *is* the serial
//! reference path.
//!
//! # Anytime execution
//!
//! [`run_codesign`] is the generation-granular driver behind all six
//! methods. Handed a [`RunCtl`], it additionally supports cooperative
//! deadlines ([`RunStatus::Partial`] instead of lost work), periodic
//! [`Checkpoint`]s, and `--resume`: optimizer state is persisted as a
//! per-unit [`bayesopt::Transcript`] and rebuilt by *replay* — the fresh
//! optimizer re-proposes every recorded generation and re-observes the
//! recorded values, which restores its RNG stream and history
//! bit-exactly (divergence is a typed checkpoint error, not silence).
//! An interrupted-then-resumed search therefore produces the same
//! [`DesignPoint`] sequence as an uninterrupted one, which
//! `tests/resume_equiv.rs` pins down.

use crate::allocate::{allocate_with, manual_design_with};
use crate::dse::checkpoint::{f64_from_hex, f64_to_hex, Checkpoint, CheckpointError};
use crate::dse::control::{Partial, RunCtl, RunStatus};
use crate::dse::{split_seed, DsePool};
use crate::engine::DesignGoal;
use crate::error::AutoSegError;
use crate::segment::{BayesSegmenter, ChainDpSegmenter, Segmenter};
use bayesopt::{Optimizer, RandomSearch, SearchSpace, SimulatedAnnealing, Tpe, Transcript};
use nnmodel::{Graph, Workload};
use pucost::EvalCache;
use spa_arch::{HwBudget, SegmentSchedule};
use spa_sim::simulate_spa_with;

/// Candidates proposed (and evaluated concurrently) per optimizer
/// generation. A constant independent of the worker count, so search
/// trajectories do not depend on how many threads happen to run them.
pub const GENERATION: usize = 8;

/// One evaluated co-design point.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// Frame latency in seconds.
    pub latency_s: f64,
    /// Total energy per frame in pJ.
    pub energy_pj: f64,
    /// Method label.
    pub method: &'static str,
    /// `(n_pus, n_segments)` of the point.
    pub shape: (usize, usize),
}

/// The co-design baseline methods, as first-class values (the driver
/// behind [`run_codesign`] and the experiment binaries' `--method` flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Exact segmentation + Algorithm 1 (AutoSeg itself).
    MipHeuristic,
    /// Exact segmentation + uniform-random hardware sampling.
    MipRandom,
    /// Exact segmentation + TPE hardware search.
    MipBaye,
    /// Exact segmentation + simulated-annealing hardware search.
    MipAnneal,
    /// TPE segmentation + Algorithm 1 hardware.
    BayeHeuristic,
    /// Nested TPE loops (hardware outer, segmentation inner).
    BayeBaye,
}

impl Method {
    /// Every method, in documentation order.
    pub const ALL: [Method; 6] = [
        Method::MipHeuristic,
        Method::MipRandom,
        Method::MipBaye,
        Method::MipAnneal,
        Method::BayeHeuristic,
        Method::BayeBaye,
    ];

    /// The kebab-case label used in CSVs, checkpoints and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            Method::MipHeuristic => "mip-heuristic",
            Method::MipRandom => "mip-random",
            Method::MipBaye => "mip-baye",
            Method::MipAnneal => "mip-anneal",
            Method::BayeHeuristic => "baye-heuristic",
            Method::BayeBaye => "baye-baye",
        }
    }

    /// Parses a [`Method::label`] string.
    pub fn parse(s: &str) -> Option<Method> {
        Method::ALL.into_iter().find(|m| m.label() == s)
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Iteration budgets for the search-based methods.
#[derive(Debug, Clone, Copy)]
pub struct CodesignBudgets {
    /// Hardware-search iterations (the paper uses 500).
    pub hw_iters: usize,
    /// Segmentation-search iterations (the paper uses 2000).
    pub seg_iters: usize,
    /// Seed for all stochastic methods.
    pub seed: u64,
    /// DSE worker threads; `0` means auto (`DSE_THREADS` env var, else all
    /// available cores). `1` is the serial reference path.
    pub threads: usize,
}

impl Default for CodesignBudgets {
    fn default() -> Self {
        Self {
            hw_iters: 500,
            seg_iters: 2000,
            seed: 7,
            threads: 0,
        }
    }
}

impl CodesignBudgets {
    /// Reduced budgets for smoke runs (CI, `scripts/verify.sh`): the same
    /// code paths at a fraction of the iterations.
    pub fn smoke() -> Self {
        Self {
            hw_iters: 24,
            seg_iters: 32,
            seed: 3,
            threads: 0,
        }
    }

    /// Swaps in the [`CodesignBudgets::smoke`] iteration counts when the
    /// `DSE_SMOKE` environment variable is set to anything non-empty other
    /// than `0`; seed and thread count are kept.
    pub fn smoke_if_env(self) -> Self {
        match std::env::var("DSE_SMOKE") {
            Ok(v) if !v.is_empty() && v != "0" => {
                let s = Self::smoke();
                Self {
                    hw_iters: s.hw_iters.min(self.hw_iters),
                    seg_iters: s.seg_iters.min(self.seg_iters),
                    ..self
                }
            }
            _ => self,
        }
    }

    /// The worker pool implied by `threads` (0 = auto-sized).
    pub fn pool(&self) -> DsePool {
        if self.threads == 0 {
            DsePool::from_env()
        } else {
            DsePool::new(self.threads)
        }
    }
}

/// Result of an anytime co-design run: the point cloud plus how much of
/// the planned search produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct CodesignRun {
    /// Evaluated feasible points, in proposal order.
    pub points: Vec<DesignPoint>,
    /// `Complete`, or a typed partial with generation provenance.
    pub status: RunStatus,
}

fn shapes(workload: &Workload, budget: &HwBudget) -> Vec<(usize, usize)> {
    let l = workload.len();
    let mut v = Vec::new();
    for n in 2..=4usize.min(l).min(budget.pes) {
        for s in 1..=8.min(l / n) {
            v.push((n, s));
        }
    }
    v
}

fn point(
    workload: &Workload,
    design: &spa_arch::SpaDesign,
    budget: &HwBudget,
    method: &'static str,
    shape: (usize, usize),
    cache: &EvalCache,
) -> Option<DesignPoint> {
    if !design.fits(budget) || design.segment_routings(workload).is_err() {
        return None;
    }
    let r = simulate_spa_with(workload, design, cache);
    Some(DesignPoint {
        latency_s: r.seconds,
        energy_pj: r.energy.total_pj(),
        method,
        shape,
    })
}

/// Hardware search space for the random/Bayesian hardware methods: one
/// log2-PE dimension per PU plus one buffer-multiplier dimension.
fn hw_space(n_pus: usize, budget: &HwBudget) -> SearchSpace {
    let max_log = (budget.pes.max(2) as f64).log2().floor() as usize + 1;
    let mut dims = vec![max_log; n_pus];
    dims.push(3); // buffer multiplier 1 / 2 / 4
    SearchSpace::new(dims)
}

fn decode_hw(pt: &[usize]) -> (Vec<usize>, u64) {
    let n = pt.len() - 1;
    let pes: Vec<usize> = pt[..n].iter().map(|&k| 1usize << k).collect();
    let mult = 1u64 << pt[n];
    (pes, mult)
}

/// Best feasible latency among the points collected so far (`prev` when
/// none improved it). Pure bookkeeping for the convergence event; never
/// feeds back into the search.
fn best_feasible_latency(pts: &[DesignPoint], prev: f64) -> f64 {
    pts.iter().map(|p| p.latency_s).fold(prev, f64::min)
}

/// Everything a method run needs, bundled so the driver helpers stay
/// readable.
struct Ctx<'a> {
    workload: &'a Workload,
    model_name: &'a str,
    budget: &'a HwBudget,
    budgets: &'a CodesignBudgets,
    method: Method,
    pool: &'a DsePool,
    cache: &'a EvalCache,
    ctl: &'a RunCtl,
    /// Inner segmentation-search iterations (Baye-Baye only; 0 otherwise).
    inner: usize,
}

/// Mutable search state: what a checkpoint snapshots and a resume
/// restores.
#[derive(Default)]
struct SearchState {
    pts: Vec<DesignPoint>,
    /// One optimizer transcript per search unit (empty for the chunked
    /// methods, which have no optimizer).
    transcripts: Vec<Transcript>,
    /// Completed generations (replayed + newly evaluated).
    gens_done: u64,
}

/// One independent optimizer run: a `(N, S)` shape with (for the `MIP-*`
/// methods) its precomputed exact schedule.
struct Unit {
    shape: (usize, usize),
    schedule: Option<SegmentSchedule>,
}

fn point_line(p: &DesignPoint) -> String {
    format!(
        "pt {} {} {} {}",
        f64_to_hex(p.latency_s),
        f64_to_hex(p.energy_pj),
        p.shape.0,
        p.shape.1
    )
}

fn parse_point_line(line: &str, method: &'static str) -> Result<DesignPoint, CheckpointError> {
    let corrupt = || CheckpointError::Corrupt {
        path: "points-section".into(),
        reason: format!("malformed point line: {line}"),
    };
    let toks: Vec<&str> = line.split(' ').collect();
    if toks.len() != 5 || toks[0] != "pt" {
        return Err(corrupt());
    }
    Ok(DesignPoint {
        latency_s: f64_from_hex(toks[1]).ok_or_else(corrupt)?,
        energy_pj: f64_from_hex(toks[2]).ok_or_else(corrupt)?,
        method,
        shape: (
            toks[3].parse().map_err(|_| corrupt())?,
            toks[4].parse().map_err(|_| corrupt())?,
        ),
    })
}

/// Persists the current search state to the ctl's checkpoint path (no-op
/// when checkpointing is off).
fn save_state(ctx: &Ctx<'_>, st: &SearchState, planned: u64) -> Result<(), AutoSegError> {
    let Some(path) = ctx.ctl.checkpoint_path() else {
        return Ok(());
    };
    let mut ck = Checkpoint::new("codesign");
    ck.set_meta("method", ctx.method.label());
    ck.set_meta("model", ctx.model_name);
    ck.set_meta("budget", &ctx.budget.name);
    ck.set_meta("seed", &ctx.budgets.seed.to_string());
    ck.set_meta("hw_iters", &ctx.budgets.hw_iters.to_string());
    ck.set_meta("seg_iters", &ctx.budgets.seg_iters.to_string());
    ck.set_meta(
        "energy_model",
        &format!("{:016x}", ctx.cache.model_fingerprint()),
    );
    ck.set_meta("gens_done", &st.gens_done.to_string());
    ck.set_meta("planned_gens", &planned.to_string());
    ck.push_section("points", st.pts.iter().map(point_line).collect());
    for (u, t) in st.transcripts.iter().enumerate() {
        if !t.is_empty() {
            ck.push_section(&format!("unit.{u}"), t.to_lines());
        }
    }
    ck.push_section("cache", ctx.cache.export_lines());
    ck.save(path)?;
    obs::event(
        "codesign.checkpoint",
        &[
            ("method", ctx.method.label().into()),
            ("gens", st.gens_done.into()),
            ("points", st.pts.len().into()),
        ],
    );
    Ok(())
}

/// Loads and validates a checkpoint against the live run configuration,
/// restoring points, per-unit transcripts and the shared cost cache.
fn restore_state(ctx: &Ctx<'_>, st: &mut SearchState) -> Result<(), AutoSegError> {
    let Some(path) = ctx.ctl.resume_from() else {
        return Ok(());
    };
    let ck = Checkpoint::load(path)?;
    ck.require(
        "codesign",
        &[
            ("method", ctx.method.label()),
            ("model", ctx.model_name),
            ("budget", &ctx.budget.name),
            ("seed", &ctx.budgets.seed.to_string()),
            ("hw_iters", &ctx.budgets.hw_iters.to_string()),
            ("seg_iters", &ctx.budgets.seg_iters.to_string()),
            (
                "energy_model",
                &format!("{:016x}", ctx.cache.model_fingerprint()),
            ),
        ],
    )?;
    st.gens_done = ck.meta_u64("gens_done")?;
    for line in ck.section("points") {
        st.pts.push(parse_point_line(line, ctx.method.label())?);
    }
    // Units run sequentially, so non-empty transcripts form a prefix.
    for u in 0.. {
        let lines = ck.section(&format!("unit.{u}"));
        if lines.is_empty() {
            break;
        }
        let t = Transcript::from_lines(lines.iter().map(String::as_str)).map_err(|e| {
            CheckpointError::Corrupt {
                path: format!("unit.{u}"),
                reason: e.to_string(),
            }
        })?;
        st.transcripts.push(t);
    }
    for line in ck.section("cache") {
        ctx.cache
            .import_line(line)
            .map_err(|e| CheckpointError::Corrupt {
                path: "cache-section".into(),
                reason: e.to_string(),
            })?;
    }
    obs::event(
        "codesign.resume",
        &[
            ("method", ctx.method.label().into()),
            ("gens", st.gens_done.into()),
            ("points", st.pts.len().into()),
        ],
    );
    Ok(())
}

/// The optimizer a method's hardware search uses. The chunked methods
/// never reach this; the fallback arm keeps the match total without a
/// panic path.
fn make_opt(method: Method, space: SearchSpace, seed: u64) -> Box<dyn Optimizer> {
    match method {
        Method::MipBaye | Method::BayeBaye => Box::new(Tpe::new(space, seed)),
        Method::MipAnneal => Box::new(SimulatedAnnealing::new(space, seed)),
        _ => Box::new(RandomSearch::new(space, seed)),
    }
}

/// Evaluates one hardware sample for a unit: decode, build the design
/// (exact schedule for `MIP-*`, inner Bayesian segmentation for
/// Baye-Baye, seeded by the *global* per-unit candidate index `k`), and
/// score it.
fn eval_candidate(ctx: &Ctx<'_>, unit: &Unit, k: usize, sample: &[usize]) -> Option<DesignPoint> {
    let (pes, mult) = decode_hw(sample);
    match &unit.schedule {
        Some(schedule) => {
            let design = manual_design_with(ctx.workload, schedule, ctx.budget, &pes, mult, ctx.cache);
            point(
                ctx.workload,
                &design,
                ctx.budget,
                ctx.method.label(),
                unit.shape,
                ctx.cache,
            )
        }
        None => {
            let (n, s) = unit.shape;
            let seg = BayesSegmenter::new(split_seed(ctx.budgets.seed, k as u64), ctx.inner);
            match seg.segment(ctx.workload, n, s) {
                Ok(schedule) => {
                    let design =
                        manual_design_with(ctx.workload, &schedule, ctx.budget, &pes, mult, ctx.cache);
                    point(
                        ctx.workload,
                        &design,
                        ctx.budget,
                        ctx.method.label(),
                        unit.shape,
                        ctx.cache,
                    )
                }
                Err(_) => None,
            }
        }
    }
}

/// Driver for the optimizer-backed methods (MIP-Random / MIP-Baye /
/// MIP-Anneal / Baye-Baye): one optimizer per unit, generation-batched
/// ask → parallel evaluate → ordered tell, transcripts recorded for
/// checkpointing, resume via replay.
fn run_optimized(
    ctx: &Ctx<'_>,
    mut st: SearchState,
    all_shapes: &[(usize, usize)],
) -> Result<CodesignRun, AutoSegError> {
    let seg = ChainDpSegmenter::new();
    let bi_loop = ctx.method == Method::BayeBaye;
    let units: Vec<Unit> = all_shapes
        .iter()
        .filter_map(|&(n, s)| {
            if bi_loop {
                Some(Unit {
                    shape: (n, s),
                    schedule: None,
                })
            } else {
                seg.segment(ctx.workload, n, s).ok().map(|schedule| Unit {
                    shape: (n, s),
                    schedule: Some(schedule),
                })
            }
        })
        .collect();
    let per_unit = if bi_loop {
        (ctx.budgets.hw_iters / all_shapes.len()).max(2)
    } else {
        (ctx.budgets.hw_iters / all_shapes.len()).max(4)
    };
    let gens_per_unit = per_unit.div_ceil(GENERATION) as u64;
    let planned = units.len() as u64 * gens_per_unit;
    if st.transcripts.len() > units.len() {
        return Err(CheckpointError::Corrupt {
            path: "transcripts".into(),
            reason: format!(
                "{} unit transcripts for {} units",
                st.transcripts.len(),
                units.len()
            ),
        }
        .into());
    }
    st.transcripts.resize_with(units.len(), Transcript::new);

    let mut gens_seen = 0u64;
    for (u, unit) in units.iter().enumerate() {
        let mut opt = make_opt(ctx.method, hw_space(unit.shape.0, ctx.budget), ctx.budgets.seed);
        if !st.transcripts[u].is_empty() {
            st.transcripts[u]
                .replay(opt.as_mut())
                .map_err(|e| CheckpointError::Corrupt {
                    path: format!("unit.{u}"),
                    reason: e.to_string(),
                })?;
        }
        gens_seen += st.transcripts[u].gens() as u64;
        let mut done = st.transcripts[u].evals();
        while done < per_unit {
            if let Some(reason) = ctx.ctl.should_stop(gens_seen) {
                st.gens_done = gens_seen;
                save_state(ctx, &st, planned)?;
                return Ok(CodesignRun {
                    points: st.pts,
                    status: RunStatus::Partial(Partial {
                        completed_gens: gens_seen,
                        planned_gens: planned,
                        reason,
                    }),
                });
            }
            let k = GENERATION.min(per_unit - done);
            let samples = opt.suggest_batch(k);
            let evals = ctx
                .pool
                .par_map(&samples, |i, sample| eval_candidate(ctx, unit, done + i, sample));
            let mut batch = Vec::with_capacity(k);
            for (sample, p) in samples.into_iter().zip(evals) {
                let value = match p {
                    Some(p) => {
                        let v = p.latency_s;
                        st.pts.push(p);
                        v
                    }
                    None => f64::INFINITY,
                };
                batch.push((sample, value));
            }
            opt.observe_batch(batch.clone());
            st.transcripts[u].push_gen(batch);
            done += k;
            gens_seen += 1;
            st.gens_done = gens_seen;
            // Best-so-far per generation: the convergence curve of Fig 18.
            if obs::enabled() {
                obs::event(
                    "codesign.generation",
                    &[
                        ("method", ctx.method.label().into()),
                        ("iter", done.into()),
                        (
                            "best_latency_s",
                            best_feasible_latency(&st.pts, f64::INFINITY).into(),
                        ),
                    ],
                );
            }
            if ctx.ctl.should_checkpoint(gens_seen) {
                save_state(ctx, &st, planned)?;
            }
        }
    }
    st.gens_done = gens_seen;
    // Final checkpoint: resuming a finished run is then a cheap no-op
    // that replays to the same Complete result.
    save_state(ctx, &st, planned)?;
    Ok(CodesignRun {
        points: st.pts,
        status: RunStatus::Complete,
    })
}

/// Driver for the optimizer-free methods (MIP-Heuristic /
/// Baye-Heuristic): the shape list is evaluated in [`GENERATION`]-sized
/// chunks, each chunk one resumable generation.
fn run_chunked(
    ctx: &Ctx<'_>,
    mut st: SearchState,
    all_shapes: &[(usize, usize)],
) -> Result<CodesignRun, AutoSegError> {
    let seg = ChainDpSegmenter::new();
    let per_shape = (ctx.budgets.seg_iters / all_shapes.len().max(1)).max(8);
    let chunks: Vec<&[(usize, usize)]> = all_shapes.chunks(GENERATION).collect();
    let planned = chunks.len() as u64;
    let resumed = st.gens_done;
    let mut gens_seen = 0u64;
    for chunk in &chunks {
        if gens_seen < resumed {
            // This generation's points were restored from the checkpoint.
            gens_seen += 1;
            continue;
        }
        if let Some(reason) = ctx.ctl.should_stop(gens_seen) {
            st.gens_done = gens_seen;
            save_state(ctx, &st, planned)?;
            return Ok(CodesignRun {
                points: st.pts,
                status: RunStatus::Partial(Partial {
                    completed_gens: gens_seen,
                    planned_gens: planned,
                    reason,
                }),
            });
        }
        let evals = ctx.pool.par_map(
            chunk,
            |_, &(n, s)| -> Result<Option<DesignPoint>, AutoSegError> {
                let schedule = if ctx.method == Method::BayeHeuristic {
                    let bayes = BayesSegmenter::new(ctx.budgets.seed, per_shape);
                    match bayes.segment(ctx.workload, n, s) {
                        Ok(sch) => sch,
                        Err(_) => return Ok(None),
                    }
                } else {
                    match seg.segment(ctx.workload, n, s) {
                        Ok(sch) => sch,
                        Err(_) => return Ok(None),
                    }
                };
                let design = allocate_with(
                    ctx.workload,
                    &schedule,
                    ctx.budget,
                    DesignGoal::Latency,
                    ctx.cache,
                )?;
                Ok(point(
                    ctx.workload,
                    &design,
                    ctx.budget,
                    ctx.method.label(),
                    (n, s),
                    ctx.cache,
                ))
            },
        );
        for e in evals {
            if let Some(p) = e? {
                st.pts.push(p);
            }
        }
        gens_seen += 1;
        st.gens_done = gens_seen;
        if ctx.ctl.should_checkpoint(gens_seen) {
            save_state(ctx, &st, planned)?;
        }
    }
    st.gens_done = gens_seen.max(resumed);
    save_state(ctx, &st, planned)?;
    Ok(CodesignRun {
        points: st.pts,
        status: RunStatus::Complete,
    })
}

/// Runs one co-design `method` under an anytime policy, with a pool and
/// cache from `budgets`. See [`run_codesign_with`].
///
/// # Errors
///
/// See [`run_codesign_with`].
pub fn run_codesign(
    model: &Graph,
    budget: &HwBudget,
    budgets: &CodesignBudgets,
    method: Method,
    ctl: &RunCtl,
) -> Result<CodesignRun, AutoSegError> {
    run_codesign_with(model, budget, budgets, method, &budgets.pool(), &EvalCache::default(), ctl)
}

/// The generation-granular anytime driver behind every co-design method.
///
/// With `RunCtl::none()` this produces exactly what the per-method entry
/// points ([`mip_baye`], [`baye_baye`], …) produce — they are thin
/// wrappers over it. A ctl adds deadline / generation-budget stops
/// (typed [`RunStatus::Partial`], never lost work), periodic checkpoints
/// and resume; see the module docs for the replay-based state model.
///
/// # Errors
///
/// The usual [`AutoSegError`] search failures, plus
/// [`AutoSegError::Checkpoint`] when a checkpoint cannot be written, a
/// resume source is corrupt/torn, or its recorded configuration does not
/// match this run.
pub fn run_codesign_with(
    model: &Graph,
    budget: &HwBudget,
    budgets: &CodesignBudgets,
    method: Method,
    pool: &DsePool,
    cache: &EvalCache,
    ctl: &RunCtl,
) -> Result<CodesignRun, AutoSegError> {
    let _span = obs::span!("codesign.run", method = method.label(), model = model.name());
    let workload = Workload::from_graph(model);
    let all_shapes = shapes(&workload, budget);
    let inner = (budgets.seg_iters / budgets.hw_iters.max(1)).max(4);
    let ctx = Ctx {
        workload: &workload,
        model_name: model.name(),
        budget,
        budgets,
        method,
        pool,
        cache,
        ctl,
        inner,
    };
    let mut st = SearchState::default();
    restore_state(&ctx, &mut st)?;
    if all_shapes.is_empty() {
        return Ok(CodesignRun {
            points: st.pts,
            status: RunStatus::Complete,
        });
    }
    match method {
        Method::MipHeuristic | Method::BayeHeuristic => run_chunked(&ctx, st, &all_shapes),
        _ => run_optimized(&ctx, st, &all_shapes),
    }
}

/// MIP-Heuristic: the AutoSeg engine's own candidates — one point per
/// feasible `(N, S)` shape.
pub fn mip_heuristic(
    model: &Graph,
    budget: &HwBudget,
) -> Result<Vec<DesignPoint>, AutoSegError> {
    mip_heuristic_with(model, budget, &DsePool::from_env(), &EvalCache::default())
}

/// [`mip_heuristic`] on an explicit pool and cost cache. Shapes are
/// independent, so each chunk fans out across the pool.
pub fn mip_heuristic_with(
    model: &Graph,
    budget: &HwBudget,
    pool: &DsePool,
    cache: &EvalCache,
) -> Result<Vec<DesignPoint>, AutoSegError> {
    let budgets = CodesignBudgets::default();
    run_codesign_with(model, budget, &budgets, Method::MipHeuristic, pool, cache, &RunCtl::none())
        .map(|r| r.points)
}

/// MIP-Anneal: exact segmentation + simulated-annealing hardware search (a
/// local-search contrast to TPE's model-based sampling; not in the paper's
/// baseline set but a natural ablation of the search strategy).
pub fn mip_anneal(
    model: &Graph,
    budget: &HwBudget,
    budgets: &CodesignBudgets,
) -> Result<Vec<DesignPoint>, AutoSegError> {
    mip_anneal_with(model, budget, budgets, &budgets.pool(), &EvalCache::default())
}

/// [`mip_anneal`] on an explicit pool and cost cache.
pub fn mip_anneal_with(
    model: &Graph,
    budget: &HwBudget,
    budgets: &CodesignBudgets,
    pool: &DsePool,
    cache: &EvalCache,
) -> Result<Vec<DesignPoint>, AutoSegError> {
    run_codesign_with(model, budget, budgets, Method::MipAnneal, pool, cache, &RunCtl::none())
        .map(|r| r.points)
}

/// MIP-Random: exact segmentation + uniform-random hardware sampling.
pub fn mip_random(
    model: &Graph,
    budget: &HwBudget,
    budgets: &CodesignBudgets,
) -> Result<Vec<DesignPoint>, AutoSegError> {
    mip_random_with(model, budget, budgets, &budgets.pool(), &EvalCache::default())
}

/// [`mip_random`] on an explicit pool and cost cache.
pub fn mip_random_with(
    model: &Graph,
    budget: &HwBudget,
    budgets: &CodesignBudgets,
    pool: &DsePool,
    cache: &EvalCache,
) -> Result<Vec<DesignPoint>, AutoSegError> {
    run_codesign_with(model, budget, budgets, Method::MipRandom, pool, cache, &RunCtl::none())
        .map(|r| r.points)
}

/// MIP-Baye: exact segmentation + TPE hardware search.
pub fn mip_baye(
    model: &Graph,
    budget: &HwBudget,
    budgets: &CodesignBudgets,
) -> Result<Vec<DesignPoint>, AutoSegError> {
    mip_baye_with(model, budget, budgets, &budgets.pool(), &EvalCache::default())
}

/// [`mip_baye`] on an explicit pool and cost cache.
pub fn mip_baye_with(
    model: &Graph,
    budget: &HwBudget,
    budgets: &CodesignBudgets,
    pool: &DsePool,
    cache: &EvalCache,
) -> Result<Vec<DesignPoint>, AutoSegError> {
    run_codesign_with(model, budget, budgets, Method::MipBaye, pool, cache, &RunCtl::none())
        .map(|r| r.points)
}

/// Baye-Heuristic: TPE segmentation + Algorithm 1 hardware.
pub fn baye_heuristic(
    model: &Graph,
    budget: &HwBudget,
    budgets: &CodesignBudgets,
) -> Result<Vec<DesignPoint>, AutoSegError> {
    baye_heuristic_with(model, budget, budgets, &budgets.pool(), &EvalCache::default())
}

/// [`baye_heuristic`] on an explicit pool and cost cache. Each shape runs
/// its own independent TPE segmentation search, so shapes fan out across
/// the pool.
pub fn baye_heuristic_with(
    model: &Graph,
    budget: &HwBudget,
    budgets: &CodesignBudgets,
    pool: &DsePool,
    cache: &EvalCache,
) -> Result<Vec<DesignPoint>, AutoSegError> {
    run_codesign_with(model, budget, budgets, Method::BayeHeuristic, pool, cache, &RunCtl::none())
        .map(|r| r.points)
}

/// Baye-Baye: nested TPE loops — outer over hardware, inner over
/// segmentation, latency-only feedback (the bi-loop structure that tends
/// to fall into local optima, Section VI-G point 3).
pub fn baye_baye(
    model: &Graph,
    budget: &HwBudget,
    budgets: &CodesignBudgets,
) -> Result<Vec<DesignPoint>, AutoSegError> {
    baye_baye_with(model, budget, budgets, &budgets.pool(), &EvalCache::default())
}

/// [`baye_baye`] on an explicit pool and cost cache. The outer hardware
/// TPE is generation-batched; each candidate's inner segmentation search
/// gets a seed derived from its *global* iteration index
/// ([`split_seed`]), so the trajectory is thread-count independent.
pub fn baye_baye_with(
    model: &Graph,
    budget: &HwBudget,
    budgets: &CodesignBudgets,
    pool: &DsePool,
    cache: &EvalCache,
) -> Result<Vec<DesignPoint>, AutoSegError> {
    run_codesign_with(model, budget, budgets, Method::BayeBaye, pool, cache, &RunCtl::none())
        .map(|r| r.points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dse::control::StopReason;
    use nnmodel::zoo;

    fn tiny_budgets() -> CodesignBudgets {
        CodesignBudgets {
            hw_iters: 40,
            seg_iters: 60,
            seed: 3,
            threads: 2,
        }
    }

    #[test]
    fn all_methods_produce_feasible_points() {
        let model = zoo::alexnet_conv();
        let budget = HwBudget::nvdla_small();
        let b = tiny_budgets();
        let runs: Vec<(&str, Vec<DesignPoint>)> = vec![
            ("mip-heuristic", mip_heuristic(&model, &budget).unwrap()),
            ("mip-random", mip_random(&model, &budget, &b).unwrap()),
            ("mip-baye", mip_baye(&model, &budget, &b).unwrap()),
            ("baye-heuristic", baye_heuristic(&model, &budget, &b).unwrap()),
            ("baye-baye", baye_baye(&model, &budget, &b).unwrap()),
            ("mip-anneal", mip_anneal(&model, &budget, &b).unwrap()),
        ];
        for (name, pts) in &runs {
            assert!(!pts.is_empty(), "{name} produced no points");
            for p in pts {
                assert!(p.latency_s > 0.0 && p.energy_pj > 0.0, "{name}");
            }
        }
    }

    #[test]
    fn heuristic_best_latency_competitive_with_random() {
        // Figure 18: MIP-Heuristic (AutoSeg) finds the best designs.
        let model = zoo::alexnet_conv();
        let budget = HwBudget::nvdla_small();
        let b = tiny_budgets();
        let best = |pts: &[DesignPoint]| {
            pts.iter()
                .map(|p| p.latency_s)
                .fold(f64::INFINITY, f64::min)
        };
        let h = best(&mip_heuristic(&model, &budget).unwrap());
        let r = best(&mip_random(&model, &budget, &b).unwrap());
        assert!(h <= r * 1.05, "heuristic {h} vs random {r}");
    }

    #[test]
    fn heuristic_energy_dominates_random() {
        // Section VI-G point 1: heuristic allocation yields much lower
        // worst-case energy than random hardware sampling.
        let model = zoo::alexnet_conv();
        let budget = HwBudget::nvdla_small();
        let b = tiny_budgets();
        let max_e = |pts: &[DesignPoint]| {
            pts.iter().map(|p| p.energy_pj).fold(0.0f64, f64::max)
        };
        let h = max_e(&mip_heuristic(&model, &budget).unwrap());
        let r = max_e(&mip_random(&model, &budget, &b).unwrap());
        assert!(h <= r, "heuristic max energy {h} vs random {r}");
    }

    #[test]
    fn smoke_budgets_shrink_iterations_only() {
        let b = CodesignBudgets {
            hw_iters: 500,
            seg_iters: 2000,
            seed: 11,
            threads: 4,
        };
        let s = CodesignBudgets::smoke();
        assert!(s.hw_iters < b.hw_iters && s.seg_iters < b.seg_iters);
        // smoke_if_env honors the env var; when unset it is the identity.
        // (Set/unset of env vars is process-global, so only the unset path
        // is exercised here; the flag plumbing is covered by verify.sh.)
        if std::env::var("DSE_SMOKE").is_err() {
            let kept = b.smoke_if_env();
            assert_eq!(kept.hw_iters, b.hw_iters);
            assert_eq!(kept.seg_iters, b.seg_iters);
            assert_eq!(kept.seed, b.seed);
            assert_eq!(kept.threads, b.threads);
        }
    }

    #[test]
    fn pool_respects_explicit_thread_count() {
        let b = CodesignBudgets {
            threads: 3,
            ..CodesignBudgets::default()
        };
        assert_eq!(b.pool().threads(), 3);
        assert!(CodesignBudgets::default().pool().threads() >= 1);
    }

    #[test]
    fn method_labels_round_trip() {
        for m in Method::ALL {
            assert_eq!(Method::parse(m.label()), Some(m));
            assert_eq!(m.to_string(), m.label());
        }
        assert_eq!(Method::parse("nope"), None);
    }

    #[test]
    fn anytime_driver_matches_legacy_entry_points() {
        // RunCtl::none() must be the identity: the ctl-aware driver and
        // the plain wrappers produce the same point sequence.
        let model = zoo::alexnet_conv();
        let budget = HwBudget::nvdla_small();
        let b = tiny_budgets();
        for (method, legacy) in [
            (Method::MipBaye, mip_baye(&model, &budget, &b).unwrap()),
            (Method::BayeBaye, baye_baye(&model, &budget, &b).unwrap()),
        ] {
            let run = run_codesign(&model, &budget, &b, method, &RunCtl::none()).unwrap();
            assert!(run.status.is_complete());
            assert_eq!(run.points, legacy, "{method}");
        }
    }

    #[test]
    fn gen_budget_stop_returns_a_point_prefix() {
        let model = zoo::alexnet_conv();
        let budget = HwBudget::nvdla_small();
        let b = tiny_budgets();
        let full = run_codesign(&model, &budget, &b, Method::MipBaye, &RunCtl::none()).unwrap();
        let cut = run_codesign(
            &model,
            &budget,
            &b,
            Method::MipBaye,
            &RunCtl::none().stop_after_gens(2),
        )
        .unwrap();
        match cut.status {
            RunStatus::Partial(p) => {
                assert_eq!(p.completed_gens, 2);
                assert_eq!(p.reason, StopReason::GenBudget);
                assert!(p.planned_gens > 2);
            }
            RunStatus::Complete => panic!("a 2-generation budget cannot complete this search"),
        }
        assert!(cut.points.len() < full.points.len());
        assert_eq!(cut.points[..], full.points[..cut.points.len()], "prefix");
    }

    #[test]
    fn checkpoint_then_resume_is_bit_identical() {
        let model = zoo::alexnet_conv();
        let budget = HwBudget::nvdla_small();
        let b = tiny_budgets();
        let dir = std::env::temp_dir().join("spa_codesign_resume_unit");
        let _ = std::fs::create_dir_all(&dir);
        let ckpt = dir.join("mip-baye.ckpt");
        let full = run_codesign(&model, &budget, &b, Method::MipBaye, &RunCtl::none()).unwrap();
        // Kill after 3 generations, checkpointing every generation …
        let cut = run_codesign(
            &model,
            &budget,
            &b,
            Method::MipBaye,
            &RunCtl::none().stop_after_gens(3).checkpoint(&ckpt, 1),
        )
        .unwrap();
        assert!(!cut.status.is_complete());
        // … then resume and run to completion.
        let resumed = run_codesign(
            &model,
            &budget,
            &b,
            Method::MipBaye,
            &RunCtl::none().resume(&ckpt),
        )
        .unwrap();
        assert!(resumed.status.is_complete());
        assert_eq!(resumed.points, full.points, "kill+resume == uninterrupted");
        // Resuming with a different seed is a typed mismatch, not garbage.
        let other = CodesignBudgets { seed: 99, ..b };
        let err = run_codesign(
            &model,
            &budget,
            &other,
            Method::MipBaye,
            &RunCtl::none().resume(&ckpt),
        )
        .unwrap_err();
        assert!(
            matches!(
                &err,
                AutoSegError::Checkpoint(CheckpointError::Mismatch { key, .. }) if key == "seed"
            ),
            "got {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
