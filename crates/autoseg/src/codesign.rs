//! Co-design optimization baselines (Section VI-G, Figure 18).
//!
//! Five methods produce clouds of `(latency, energy)` design points:
//!
//! * **MIP-Heuristic** — AutoSeg itself: exact segmentation + Algorithm 1.
//! * **MIP-Random** — exact segmentation, hardware parameters sampled
//!   uniformly (500 iterations in the paper).
//! * **MIP-Baye** — exact segmentation, hardware searched by TPE.
//! * **Baye-Heuristic** — segmentation searched by TPE (2000 iterations in
//!   the paper), hardware from Algorithm 1.
//! * **Baye-Baye** — the nested bi-loop of [Shi et al.]: an outer TPE over
//!   hardware, an inner TPE over segmentation with only latency feedback.

use crate::allocate::{allocate, manual_design};
use crate::engine::DesignGoal;
use crate::error::AutoSegError;
use crate::segment::{BayesSegmenter, ChainDpSegmenter, Segmenter};
use bayesopt::{Optimizer, SearchSpace, SimulatedAnnealing, Tpe};
use nnmodel::{Graph, Workload};
use spa_arch::HwBudget;
use spa_sim::simulate_spa;

/// One evaluated co-design point.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// Frame latency in seconds.
    pub latency_s: f64,
    /// Total energy per frame in pJ.
    pub energy_pj: f64,
    /// Method label.
    pub method: &'static str,
    /// `(n_pus, n_segments)` of the point.
    pub shape: (usize, usize),
}

/// Iteration budgets for the search-based methods.
#[derive(Debug, Clone, Copy)]
pub struct CodesignBudgets {
    /// Hardware-search iterations (the paper uses 500).
    pub hw_iters: usize,
    /// Segmentation-search iterations (the paper uses 2000).
    pub seg_iters: usize,
    /// Seed for all stochastic methods.
    pub seed: u64,
}

impl Default for CodesignBudgets {
    fn default() -> Self {
        Self {
            hw_iters: 500,
            seg_iters: 2000,
            seed: 7,
        }
    }
}

fn shapes(workload: &Workload, budget: &HwBudget) -> Vec<(usize, usize)> {
    let l = workload.len();
    let mut v = Vec::new();
    for n in 2..=4usize.min(l).min(budget.pes) {
        for s in 1..=8.min(l / n) {
            v.push((n, s));
        }
    }
    v
}

fn point(
    workload: &Workload,
    design: &spa_arch::SpaDesign,
    budget: &HwBudget,
    method: &'static str,
    shape: (usize, usize),
) -> Option<DesignPoint> {
    if !design.fits(budget) || design.segment_routings(workload).is_err() {
        return None;
    }
    let r = simulate_spa(workload, design);
    Some(DesignPoint {
        latency_s: r.seconds,
        energy_pj: r.energy.total_pj(),
        method,
        shape,
    })
}

/// MIP-Heuristic: the AutoSeg engine's own candidates — one point per
/// feasible `(N, S)` shape.
pub fn mip_heuristic(
    model: &Graph,
    budget: &HwBudget,
) -> Result<Vec<DesignPoint>, AutoSegError> {
    let workload = Workload::from_graph(model);
    let seg = ChainDpSegmenter::new();
    let mut pts = Vec::new();
    for (n, s) in shapes(&workload, budget) {
        let Ok(schedule) = seg.segment(&workload, n, s) else {
            continue;
        };
        let design = allocate(&workload, &schedule, budget, DesignGoal::Latency)?;
        if let Some(p) = point(&workload, &design, budget, "mip-heuristic", (n, s)) {
            pts.push(p);
        }
    }
    Ok(pts)
}

/// Hardware search space for the random/Bayesian hardware methods: one
/// log2-PE dimension per PU plus one buffer-multiplier dimension.
fn hw_space(n_pus: usize, budget: &HwBudget) -> SearchSpace {
    let max_log = (budget.pes.max(2) as f64).log2().floor() as usize + 1;
    let mut dims = vec![max_log; n_pus];
    dims.push(3); // buffer multiplier 1 / 2 / 4
    SearchSpace::new(dims)
}

fn decode_hw(pt: &[usize]) -> (Vec<usize>, u64) {
    let n = pt.len() - 1;
    let pes: Vec<usize> = pt[..n].iter().map(|&k| 1usize << k).collect();
    let mult = 1u64 << pt[n];
    (pes, mult)
}

/// MIP-Random and MIP-Baye share this driver: exact segmentation, then
/// black-box hardware search.
fn mip_search(
    model: &Graph,
    budget: &HwBudget,
    budgets: &CodesignBudgets,
    bayes: bool,
) -> Result<Vec<DesignPoint>, AutoSegError> {
    let workload = Workload::from_graph(model);
    let seg = ChainDpSegmenter::new();
    let method: &'static str = if bayes { "mip-baye" } else { "mip-random" };
    let mut pts = Vec::new();
    let all_shapes = shapes(&workload, budget);
    if all_shapes.is_empty() {
        return Ok(pts);
    }
    let per_shape = (budgets.hw_iters / all_shapes.len()).max(4);
    for (n, s) in all_shapes {
        let Ok(schedule) = seg.segment(&workload, n, s) else {
            continue;
        };
        let space = hw_space(n, budget);
        let mut opt: Box<dyn Optimizer> = if bayes {
            Box::new(Tpe::new(space, budgets.seed))
        } else {
            Box::new(bayesopt::RandomSearch::new(space, budgets.seed))
        };
        for _ in 0..per_shape {
            let sample = opt.suggest();
            let (pes, mult) = decode_hw(&sample);
            let design = manual_design(&workload, &schedule, budget, &pes, mult);
            let value = match point(&workload, &design, budget, method, (n, s)) {
                Some(p) => {
                    let v = p.latency_s;
                    pts.push(p);
                    v
                }
                None => f64::INFINITY,
            };
            opt.observe(sample, value);
        }
    }
    Ok(pts)
}

/// MIP-Anneal: exact segmentation + simulated-annealing hardware search (a
/// local-search contrast to TPE's model-based sampling; not in the paper's
/// baseline set but a natural ablation of the search strategy).
pub fn mip_anneal(
    model: &Graph,
    budget: &HwBudget,
    budgets: &CodesignBudgets,
) -> Result<Vec<DesignPoint>, AutoSegError> {
    let workload = Workload::from_graph(model);
    let seg = ChainDpSegmenter::new();
    let mut pts = Vec::new();
    let all_shapes = shapes(&workload, budget);
    if all_shapes.is_empty() {
        return Ok(pts);
    }
    let per_shape = (budgets.hw_iters / all_shapes.len()).max(4);
    for (n, s) in all_shapes {
        let Ok(schedule) = seg.segment(&workload, n, s) else {
            continue;
        };
        let mut opt = SimulatedAnnealing::new(hw_space(n, budget), budgets.seed);
        for _ in 0..per_shape {
            let sample = opt.suggest();
            let (pes, mult) = decode_hw(&sample);
            let design = manual_design(&workload, &schedule, budget, &pes, mult);
            let value = match point(&workload, &design, budget, "mip-anneal", (n, s)) {
                Some(p) => {
                    let v = p.latency_s;
                    pts.push(p);
                    v
                }
                None => f64::INFINITY,
            };
            opt.observe(sample, value);
        }
    }
    Ok(pts)
}

/// MIP-Random: exact segmentation + uniform-random hardware sampling.
pub fn mip_random(
    model: &Graph,
    budget: &HwBudget,
    budgets: &CodesignBudgets,
) -> Result<Vec<DesignPoint>, AutoSegError> {
    mip_search(model, budget, budgets, false)
}

/// MIP-Baye: exact segmentation + TPE hardware search.
pub fn mip_baye(
    model: &Graph,
    budget: &HwBudget,
    budgets: &CodesignBudgets,
) -> Result<Vec<DesignPoint>, AutoSegError> {
    mip_search(model, budget, budgets, true)
}

/// Baye-Heuristic: TPE segmentation + Algorithm 1 hardware.
pub fn baye_heuristic(
    model: &Graph,
    budget: &HwBudget,
    budgets: &CodesignBudgets,
) -> Result<Vec<DesignPoint>, AutoSegError> {
    let workload = Workload::from_graph(model);
    let mut pts = Vec::new();
    let all_shapes = shapes(&workload, budget);
    if all_shapes.is_empty() {
        return Ok(pts);
    }
    let per_shape = (budgets.seg_iters / all_shapes.len()).max(8);
    for (n, s) in all_shapes {
        let seg = BayesSegmenter::new(budgets.seed, per_shape);
        let Ok(schedule) = seg.segment(&workload, n, s) else {
            continue;
        };
        let design = allocate(&workload, &schedule, budget, DesignGoal::Latency)?;
        if let Some(p) = point(&workload, &design, budget, "baye-heuristic", (n, s)) {
            pts.push(p);
        }
    }
    Ok(pts)
}

/// Baye-Baye: nested TPE loops — outer over hardware, inner over
/// segmentation, latency-only feedback (the bi-loop structure that tends
/// to fall into local optima, Section VI-G point 3).
pub fn baye_baye(
    model: &Graph,
    budget: &HwBudget,
    budgets: &CodesignBudgets,
) -> Result<Vec<DesignPoint>, AutoSegError> {
    let workload = Workload::from_graph(model);
    let mut pts = Vec::new();
    let all_shapes = shapes(&workload, budget);
    if all_shapes.is_empty() {
        return Ok(pts);
    }
    let outer = (budgets.hw_iters / all_shapes.len()).max(2);
    let inner = (budgets.seg_iters / budgets.hw_iters.max(1)).max(4);
    for (n, s) in all_shapes {
        let space = hw_space(n, budget);
        let mut hw_opt = Tpe::new(space, budgets.seed);
        for k in 0..outer {
            let sample = hw_opt.suggest();
            let (pes, mult) = decode_hw(&sample);
            // Inner loop: TPE segmentation for this fixed hardware, scored
            // by simulated latency only.
            let seg = BayesSegmenter::new(budgets.seed.wrapping_add(k as u64), inner);
            let value = match seg.segment(&workload, n, s) {
                Ok(schedule) => {
                    let design = manual_design(&workload, &schedule, budget, &pes, mult);
                    match point(&workload, &design, budget, "baye-baye", (n, s)) {
                        Some(p) => {
                            let v = p.latency_s;
                            pts.push(p);
                            v
                        }
                        None => f64::INFINITY,
                    }
                }
                Err(_) => f64::INFINITY,
            };
            hw_opt.observe(sample, value);
        }
    }
    Ok(pts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnmodel::zoo;

    fn tiny_budgets() -> CodesignBudgets {
        CodesignBudgets {
            hw_iters: 40,
            seg_iters: 60,
            seed: 3,
        }
    }

    #[test]
    fn all_methods_produce_feasible_points() {
        let model = zoo::alexnet_conv();
        let budget = HwBudget::nvdla_small();
        let b = tiny_budgets();
        let runs: Vec<(&str, Vec<DesignPoint>)> = vec![
            ("mip-heuristic", mip_heuristic(&model, &budget).unwrap()),
            ("mip-random", mip_random(&model, &budget, &b).unwrap()),
            ("mip-baye", mip_baye(&model, &budget, &b).unwrap()),
            ("baye-heuristic", baye_heuristic(&model, &budget, &b).unwrap()),
            ("baye-baye", baye_baye(&model, &budget, &b).unwrap()),
            ("mip-anneal", mip_anneal(&model, &budget, &b).unwrap()),
        ];
        for (name, pts) in &runs {
            assert!(!pts.is_empty(), "{name} produced no points");
            for p in pts {
                assert!(p.latency_s > 0.0 && p.energy_pj > 0.0, "{name}");
            }
        }
    }

    #[test]
    fn heuristic_best_latency_competitive_with_random() {
        // Figure 18: MIP-Heuristic (AutoSeg) finds the best designs.
        let model = zoo::alexnet_conv();
        let budget = HwBudget::nvdla_small();
        let b = tiny_budgets();
        let best = |pts: &[DesignPoint]| {
            pts.iter()
                .map(|p| p.latency_s)
                .fold(f64::INFINITY, f64::min)
        };
        let h = best(&mip_heuristic(&model, &budget).unwrap());
        let r = best(&mip_random(&model, &budget, &b).unwrap());
        assert!(h <= r * 1.05, "heuristic {h} vs random {r}");
    }

    #[test]
    fn heuristic_energy_dominates_random() {
        // Section VI-G point 1: heuristic allocation yields much lower
        // worst-case energy than random hardware sampling.
        let model = zoo::alexnet_conv();
        let budget = HwBudget::nvdla_small();
        let b = tiny_budgets();
        let max_e = |pts: &[DesignPoint]| {
            pts.iter().map(|p| p.energy_pj).fold(0.0f64, f64::max)
        };
        let h = max_e(&mip_heuristic(&model, &budget).unwrap());
        let r = max_e(&mip_random(&model, &budget, &b).unwrap());
        assert!(h <= r, "heuristic max energy {h} vs random {r}");
    }
}
