//! Error type of the co-design engine.

use crate::dse::checkpoint::CheckpointError;
use nnmodel::ValidateError;
use spa_arch::{BudgetError, ScheduleError};
use std::fmt;

/// Failure of the AutoSeg flow.
#[derive(Debug, Clone, PartialEq)]
pub enum AutoSegError {
    /// The workload has no work items.
    EmptyWorkload,
    /// Pre-flight validation rejected the input model.
    InvalidModel(ValidateError),
    /// Pre-flight validation rejected the hardware budget.
    InvalidBudget(BudgetError),
    /// No `(PUs, segments)` combination produced a design that fits the
    /// budget.
    NoFeasibleDesign {
        /// Budget name.
        budget: String,
        /// Model name.
        model: String,
    },
    /// A segmentation engine produced an invalid schedule (internal bug
    /// surfaced as an error rather than a panic).
    InvalidSchedule(ScheduleError),
    /// A segmenter could not produce a schedule for the requested shape
    /// (e.g. more PU-slots than items).
    SegmentationInfeasible {
        /// Requested PU count.
        n_pus: usize,
        /// Requested segment count.
        n_segments: usize,
        /// Items available.
        items: usize,
    },
    /// Saving, loading or validating an anytime-search checkpoint failed
    /// (I/O, corruption/torn write, version skew, or a resume whose
    /// configuration does not match the checkpoint).
    Checkpoint(CheckpointError),
}

impl fmt::Display for AutoSegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutoSegError::EmptyWorkload => write!(f, "workload has no work items"),
            AutoSegError::InvalidModel(e) => write!(f, "invalid model graph: {e}"),
            AutoSegError::InvalidBudget(e) => write!(f, "invalid hardware budget: {e}"),
            AutoSegError::NoFeasibleDesign { budget, model } => {
                write!(f, "no feasible SPA design for {model} under budget {budget}")
            }
            AutoSegError::InvalidSchedule(e) => write!(f, "invalid schedule: {e}"),
            AutoSegError::SegmentationInfeasible {
                n_pus,
                n_segments,
                items,
            } => write!(
                f,
                "cannot place {items} items on {n_pus} PUs x {n_segments} segments"
            ),
            AutoSegError::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AutoSegError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AutoSegError::InvalidSchedule(e) => Some(e),
            AutoSegError::InvalidModel(e) => Some(e),
            AutoSegError::InvalidBudget(e) => Some(e),
            AutoSegError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for AutoSegError {
    fn from(e: CheckpointError) -> Self {
        AutoSegError::Checkpoint(e)
    }
}

impl From<ScheduleError> for AutoSegError {
    fn from(e: ScheduleError) -> Self {
        AutoSegError::InvalidSchedule(e)
    }
}

impl From<ValidateError> for AutoSegError {
    fn from(e: ValidateError) -> Self {
        AutoSegError::InvalidModel(e)
    }
}

impl From<BudgetError> for AutoSegError {
    fn from(e: BudgetError) -> Self {
        AutoSegError::InvalidBudget(e)
    }
}
