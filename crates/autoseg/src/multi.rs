//! Multi-model co-design: one shared SPA accelerator customized *jointly*
//! for a set of workloads.
//!
//! Section VI-F shows that a dedicated SPA design generalizes to foreign
//! models with a small penalty. This module closes the loop: instead of
//! dedicating the hardware to one model and remapping the others, the PE
//! quotas come from the *combined* operation distribution of every model's
//! segmentation, buffers cover the worst layer across all models, and the
//! fabric is pruned against the union of all segment routings — so every
//! model runs on first-class hardware.

use crate::allocate::{allocate_with, eval_pu_segment};
use crate::dse::checkpoint::{f64_from_hex, f64_to_hex, Checkpoint, CheckpointError};
use crate::dse::control::{Partial, RunCtl, RunStatus};
use crate::engine::DesignGoal;
use crate::error::AutoSegError;
use crate::segment::{ChainDpSegmenter, Segmenter};
use benes::Routing;
use nnmodel::{Graph, Workload};
use pucost::EvalCache;
use spa_arch::{HwBudget, SpaDesign};
use spa_sim::{simulate_spa_with, SimReport};

/// Result of a joint co-design run: one hardware configuration, one
/// mapped design (schedule + dataflows) per model.
#[derive(Debug, Clone)]
pub struct MultiOutcome {
    /// Per-model designs. All share identical `pus`, `bandwidth_gbps` and
    /// `platform`; schedules and dataflows differ.
    pub designs: Vec<SpaDesign>,
    /// Per-model simulation reports (same order as `designs`).
    pub reports: Vec<SimReport>,
    /// Per-model workloads (same order).
    pub workloads: Vec<Workload>,
    /// Pipeline width chosen.
    pub n_pus: usize,
}

impl MultiOutcome {
    /// Geometric-mean latency across the models (the selection metric).
    pub fn geomean_seconds(&self) -> f64 {
        let log_sum: f64 = self.reports.iter().map(|r| r.seconds.ln()).sum();
        (log_sum / self.reports.len().max(1) as f64).exp()
    }

    /// The union pruned fabric all models' segments route on.
    ///
    /// # Panics
    ///
    /// Panics if any design stopped being routable (impossible for
    /// outcomes produced by [`design_multi`]).
    pub fn union_pruned_fabric(&self) -> benes::PrunedFabric {
        let net = self.designs[0].fabric();
        let routings: Vec<Routing> = self
            .designs
            .iter()
            .zip(&self.workloads)
            .flat_map(|(d, w)| d.segment_routings(w).expect("routable by construction"))
            .collect();
        let refs: Vec<&Routing> = routings.iter().collect();
        net.prune(&refs)
    }
}

/// Evaluates one candidate pipeline width `n`: per-model segmentation,
/// conservative hardware merge, per-model designs on the shared hardware.
/// `None` when any model cannot be served at this width.
fn eval_width(
    workloads: &[Workload],
    budget: &HwBudget,
    max_segments: usize,
    n: usize,
    segmenter: &ChainDpSegmenter,
    cache: &EvalCache,
) -> Option<MultiOutcome> {
    // 1. Per-model segmentation: pick the segment count whose solo
    //    allocation simulates fastest.
    let mut schedules = Vec::with_capacity(workloads.len());
    for w in workloads {
        let mut best_s = None;
        for s in 1..=max_segments.min(w.len() / n) {
            let Ok(sched) = segmenter.segment(w, n, s) else {
                continue;
            };
            let Ok(d) = allocate_with(w, &sched, budget, DesignGoal::Latency, cache) else {
                continue;
            };
            if !d.fits(budget) || d.segment_routings(w).is_err() {
                continue;
            }
            let secs = simulate_spa_with(w, &d, cache).seconds;
            if best_s
                .as_ref()
                .is_none_or(|&(bs, _): &(f64, _)| secs < bs)
            {
                best_s = Some((secs, d.schedule.clone()));
            }
        }
        schedules.push(best_s?.1);
    }

    // 2. Shared hardware: allocate per model, then merge — per-PU PE
    //    count = the maximum the budget allows of the per-model
    //    allocations (conservative merge: take the element-wise max,
    //    then scale down while over budget).
    let mut per_model: Vec<SpaDesign> = Vec::new();
    for (w, sched) in workloads.iter().zip(&schedules) {
        per_model.push(allocate_with(w, sched, budget, DesignGoal::Latency, cache).ok()?);
    }
    let mut pus = per_model[0].pus.clone();
    for d in &per_model[1..] {
        for (shared, pu) in pus.iter_mut().zip(&d.pus) {
            if pu.num_pe() > shared.num_pe() {
                shared.rows = pu.rows;
                shared.cols = pu.cols;
            }
            shared.act_buf_bytes = shared.act_buf_bytes.max(pu.act_buf_bytes);
            shared.wgt_buf_bytes = shared.wgt_buf_bytes.max(pu.wgt_buf_bytes);
        }
    }
    // Scale the merged hardware down until it fits.
    loop {
        let trial = SpaDesign {
            pus: pus.clone(),
            ..per_model[0].clone()
        };
        if trial.fits(budget) {
            break;
        }
        let widest = (0..pus.len()).max_by_key(|&i| pus[i].num_pe())?;
        if pus[widest].num_pe() <= 1 {
            return None;
        }
        let half = pus[widest].num_pe() / 2;
        let (r, c) = pucost::PuConfig::square_geometry(half);
        pus[widest].rows = r;
        pus[widest].cols = c;
        pus[widest].wgt_buf_bytes = (pus[widest].wgt_buf_bytes / 2).max(1);
    }

    // 3. Per-model designs on the shared hardware, with fresh dataflow
    //    selection.
    let mut designs = Vec::with_capacity(workloads.len());
    let mut reports = Vec::with_capacity(workloads.len());
    for (w, sched) in workloads.iter().zip(&schedules) {
        let dataflows = (0..n)
            .map(|pu| {
                (0..sched.len())
                    .map(|si| eval_pu_segment(w, sched, si, pu, &pus[pu], cache).0)
                    .collect()
            })
            .collect();
        let d = SpaDesign {
            name: format!("multi@{}:{}", budget.name, w.name()),
            pus: pus.clone(),
            schedule: sched.clone(),
            dataflows,
            batch: 1,
            bandwidth_gbps: budget.bandwidth_gbps,
            platform: budget.platform,
        };
        if !d.fits(budget) || d.segment_routings(w).is_err() {
            return None;
        }
        reports.push(simulate_spa_with(w, &d, cache));
        designs.push(d);
    }

    Some(MultiOutcome {
        designs,
        reports,
        workloads: workloads.to_vec(),
        n_pus: n,
    })
}

/// Anytime result of [`design_multi_ctl`].
#[derive(Debug, Clone)]
pub struct MultiAnytime {
    /// Best joint design over the widths evaluated so far, if any.
    pub outcome: Option<MultiOutcome>,
    /// `Complete`, or a typed partial with generation provenance.
    pub status: RunStatus,
}

fn width_line(n: usize, metric: Option<f64>) -> String {
    match metric {
        Some(m) => format!("w {n} {}", f64_to_hex(m)),
        None => format!("w {n} -"),
    }
}

fn parse_width_line(line: &str) -> Result<(usize, Option<f64>), CheckpointError> {
    let corrupt = || CheckpointError::Corrupt {
        path: "widths-section".into(),
        reason: format!("malformed width line: {line}"),
    };
    let toks: Vec<&str> = line.split(' ').collect();
    if toks.len() != 3 || toks[0] != "w" {
        return Err(corrupt());
    }
    let n: usize = toks[1].parse().map_err(|_| corrupt())?;
    let metric = match toks[2] {
        "-" => None,
        hex => Some(f64_from_hex(hex).ok_or_else(corrupt)?),
    };
    Ok((n, metric))
}

/// Jointly customizes one SPA accelerator for `models` under `budget`.
///
/// For every candidate pipeline width, each model is segmented
/// independently (best segment count under the paper's objective via the
/// latency of a per-model trial allocation), then a *shared* hardware
/// configuration is chosen by running Algorithm 1 on the concatenation of
/// all models' segments and taking, per PU, the maximum buffer and the
/// allocation driven by the combined operation distribution. The width
/// minimizing geometric-mean latency wins.
///
/// # Errors
///
/// [`AutoSegError::EmptyWorkload`] if `models` is empty,
/// [`AutoSegError::NoFeasibleDesign`] if no width fits every model.
pub fn design_multi(
    models: &[Graph],
    budget: &HwBudget,
    max_pus: usize,
    max_segments: usize,
) -> Result<MultiOutcome, AutoSegError> {
    let run = design_multi_ctl(models, budget, max_pus, max_segments, &RunCtl::none())?;
    run.outcome.ok_or_else(|| AutoSegError::NoFeasibleDesign {
        budget: budget.name.clone(),
        model: model_key(models),
    })
}

fn model_key(models: &[Graph]) -> String {
    models
        .iter()
        .map(|m| m.name().to_string())
        .collect::<Vec<_>>()
        .join("+")
}

/// [`design_multi`] under an anytime policy: each candidate pipeline
/// width is one resumable generation. Per-width geomean metrics (plus
/// the shared cost cache) are checkpointed; the winning width's full
/// outcome is *rematerialized* at the end by re-evaluating it, which is
/// bit-identical because the evaluation is deterministic and cache-hot.
///
/// # Errors
///
/// [`AutoSegError::EmptyWorkload`] if `models` is empty, plus
/// [`AutoSegError::Checkpoint`] for checkpoint I/O / corruption /
/// configuration mismatches. An infeasible joint design is `outcome:
/// None`, not an error (a partial run may simply not have reached a
/// feasible width yet).
pub fn design_multi_ctl(
    models: &[Graph],
    budget: &HwBudget,
    max_pus: usize,
    max_segments: usize,
    ctl: &RunCtl,
) -> Result<MultiAnytime, AutoSegError> {
    if models.is_empty() {
        return Err(AutoSegError::EmptyWorkload);
    }
    let _span = obs::span!("autoseg.multi", models = model_key(models));
    let workloads: Vec<Workload> = models.iter().map(Workload::from_graph).collect();
    let segmenter = ChainDpSegmenter::new();
    // One memo cache for the whole joint search: the per-model trial
    // allocations and the merged-hardware dataflow probes revisit the same
    // (layer, PU, dataflow) points constantly.
    let cache = EvalCache::default();
    let min_len = workloads.iter().map(Workload::len).min().expect("nonempty");
    let widths: Vec<usize> = (2..=max_pus.min(min_len).min(budget.pes)).collect();
    let key = model_key(models);

    let mut results: Vec<(usize, Option<f64>)> = Vec::new();
    if let Some(path) = ctl.resume_from() {
        let ck = Checkpoint::load(path)?;
        ck.require(
            "multi",
            &[
                ("models", &key),
                ("budget", &budget.name),
                ("max_pus", &max_pus.to_string()),
                ("max_segments", &max_segments.to_string()),
                ("energy_model", &format!("{:016x}", cache.model_fingerprint())),
            ],
        )?;
        for line in ck.section("widths") {
            results.push(parse_width_line(line)?);
        }
        if results.len() > widths.len()
            || results.iter().zip(&widths).any(|(&(n, _), &w)| n != w)
        {
            return Err(CheckpointError::Corrupt {
                path: "widths-section".into(),
                reason: "recorded widths do not prefix this run's enumeration".into(),
            }
            .into());
        }
        for line in ck.section("cache") {
            cache
                .import_line(line)
                .map_err(|e| CheckpointError::Corrupt {
                    path: "cache-section".into(),
                    reason: e.to_string(),
                })?;
        }
    }

    let save = |results: &[(usize, Option<f64>)], gens: u64, planned: u64| {
        let Some(path) = ctl.checkpoint_path() else {
            return Ok(());
        };
        let mut ck = Checkpoint::new("multi");
        ck.set_meta("models", &key);
        ck.set_meta("budget", &budget.name);
        ck.set_meta("max_pus", &max_pus.to_string());
        ck.set_meta("max_segments", &max_segments.to_string());
        ck.set_meta("energy_model", &format!("{:016x}", cache.model_fingerprint()));
        ck.set_meta("gens_done", &gens.to_string());
        ck.set_meta("planned_gens", &planned.to_string());
        ck.push_section(
            "widths",
            results.iter().map(|&(n, m)| width_line(n, m)).collect(),
        );
        ck.push_section("cache", cache.export_lines());
        ck.save(path)
    };

    let planned = widths.len() as u64;
    let mut gens = 0u64;
    let mut partial: Option<Partial> = None;
    for (g, &n) in widths.iter().enumerate() {
        if g < results.len() {
            gens += 1;
            continue;
        }
        if let Some(reason) = ctl.should_stop(gens) {
            save(&results, gens, planned)?;
            partial = Some(Partial {
                completed_gens: gens,
                planned_gens: planned,
                reason,
            });
            break;
        }
        let metric = eval_width(&workloads, budget, max_segments, n, &segmenter, &cache)
            .map(|o| o.geomean_seconds());
        results.push((n, metric));
        gens += 1;
        if ctl.should_checkpoint(gens) {
            save(&results, gens, planned)?;
        }
    }
    if partial.is_none() {
        save(&results, gens, planned)?;
    }

    // Strict `<` in width order: same winner as the all-at-once loop.
    let mut best: Option<(f64, usize)> = None;
    for &(n, metric) in &results {
        if let Some(m) = metric {
            if best.as_ref().is_none_or(|(bm, _)| m < *bm) {
                best = Some((m, n));
            }
        }
    }
    let outcome = match best {
        Some((metric, n)) => {
            match eval_width(&workloads, budget, max_segments, n, &segmenter, &cache) {
                Some(o) => {
                    debug_assert_eq!(o.geomean_seconds().to_bits(), metric.to_bits());
                    Some(o)
                }
                // A recorded metric for a width that does not evaluate
                // feasible can only come from a checkpoint that lies.
                None => {
                    return Err(CheckpointError::Corrupt {
                        path: "widths-section".into(),
                        reason: "recorded metric for an infeasible width".into(),
                    }
                    .into())
                }
            }
        }
        None => None,
    };
    Ok(MultiAnytime {
        outcome,
        status: match partial {
            Some(p) => RunStatus::Partial(p),
            None => RunStatus::Complete,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AutoSeg;
    use nnmodel::zoo;

    #[test]
    fn joint_design_serves_all_models() {
        let models = vec![zoo::squeezenet1_0(), zoo::mobilenet_v1()];
        let budget = HwBudget::nvdla_small();
        let out = design_multi(&models, &budget, 4, 6).expect("feasible");
        assert_eq!(out.designs.len(), 2);
        // Identical shared hardware.
        assert_eq!(out.designs[0].pus, out.designs[1].pus);
        for (d, w) in out.designs.iter().zip(&out.workloads) {
            assert!(d.fits(&budget));
            d.schedule.validate(w).expect("valid");
        }
        assert!(out.geomean_seconds() > 0.0);
    }

    #[test]
    fn joint_design_close_to_dedicated() {
        // Sharing hardware costs something, but each model should stay
        // within ~2x of its dedicated design.
        let models = vec![zoo::squeezenet1_0(), zoo::mobilenet_v1()];
        let budget = HwBudget::nvdla_small();
        let joint = design_multi(&models, &budget, 4, 6).expect("feasible");
        for (model, report) in models.iter().zip(&joint.reports) {
            let solo = AutoSeg::new(budget.clone())
                .max_pus(4)
                .max_segments(6)
                .run(model)
                .expect("feasible");
            let ratio = report.seconds / solo.report.seconds;
            assert!(ratio < 2.0, "{}: joint/solo {ratio:.2}", model.name());
        }
    }

    #[test]
    fn union_fabric_supports_everything() {
        let models = vec![zoo::squeezenet1_0(), zoo::resnet18()];
        let budget = HwBudget::nvdla_large();
        let out = design_multi(&models, &budget, 4, 6).expect("feasible");
        let pruned = out.union_pruned_fabric();
        for (d, w) in out.designs.iter().zip(&out.workloads) {
            for r in d.segment_routings(w).expect("routable") {
                assert!(pruned.supports(&r));
            }
        }
    }

    #[test]
    fn multi_kill_and_resume_is_bit_identical() {
        let models = vec![zoo::squeezenet1_0(), zoo::mobilenet_v1()];
        let budget = HwBudget::nvdla_small();
        let full = design_multi(&models, &budget, 4, 6).expect("feasible");
        let dir = std::env::temp_dir().join("spa_multi_resume_unit");
        let _ = std::fs::create_dir_all(&dir);
        let ckpt = dir.join("multi.ckpt");
        let cut = design_multi_ctl(
            &models,
            &budget,
            4,
            6,
            &RunCtl::none().stop_after_gens(1).checkpoint(&ckpt, 1),
        )
        .unwrap();
        assert!(!cut.status.is_complete(), "one width cannot finish");
        let resumed =
            design_multi_ctl(&models, &budget, 4, 6, &RunCtl::none().resume(&ckpt)).unwrap();
        assert!(resumed.status.is_complete());
        let out = resumed.outcome.expect("feasible");
        assert_eq!(out.n_pus, full.n_pus);
        assert_eq!(out.designs, full.designs, "kill+resume == uninterrupted");
        for (a, b) in out.reports.iter().zip(&full.reports) {
            assert_eq!(a.seconds.to_bits(), b.seconds.to_bits());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_model_set_rejected() {
        assert!(matches!(
            design_multi(&[], &HwBudget::eyeriss(), 4, 4),
            Err(AutoSegError::EmptyWorkload)
        ));
    }
}
