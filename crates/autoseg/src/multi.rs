//! Multi-model co-design: one shared SPA accelerator customized *jointly*
//! for a set of workloads.
//!
//! Section VI-F shows that a dedicated SPA design generalizes to foreign
//! models with a small penalty. This module closes the loop: instead of
//! dedicating the hardware to one model and remapping the others, the PE
//! quotas come from the *combined* operation distribution of every model's
//! segmentation, buffers cover the worst layer across all models, and the
//! fabric is pruned against the union of all segment routings — so every
//! model runs on first-class hardware.

use crate::allocate::{allocate_with, eval_pu_segment};
use crate::engine::DesignGoal;
use crate::error::AutoSegError;
use crate::segment::{ChainDpSegmenter, Segmenter};
use benes::Routing;
use nnmodel::{Graph, Workload};
use pucost::EvalCache;
use spa_arch::{HwBudget, SpaDesign};
use spa_sim::{simulate_spa_with, SimReport};

/// Result of a joint co-design run: one hardware configuration, one
/// mapped design (schedule + dataflows) per model.
#[derive(Debug, Clone)]
pub struct MultiOutcome {
    /// Per-model designs. All share identical `pus`, `bandwidth_gbps` and
    /// `platform`; schedules and dataflows differ.
    pub designs: Vec<SpaDesign>,
    /// Per-model simulation reports (same order as `designs`).
    pub reports: Vec<SimReport>,
    /// Per-model workloads (same order).
    pub workloads: Vec<Workload>,
    /// Pipeline width chosen.
    pub n_pus: usize,
}

impl MultiOutcome {
    /// Geometric-mean latency across the models (the selection metric).
    pub fn geomean_seconds(&self) -> f64 {
        let log_sum: f64 = self.reports.iter().map(|r| r.seconds.ln()).sum();
        (log_sum / self.reports.len().max(1) as f64).exp()
    }

    /// The union pruned fabric all models' segments route on.
    ///
    /// # Panics
    ///
    /// Panics if any design stopped being routable (impossible for
    /// outcomes produced by [`design_multi`]).
    pub fn union_pruned_fabric(&self) -> benes::PrunedFabric {
        let net = self.designs[0].fabric();
        let routings: Vec<Routing> = self
            .designs
            .iter()
            .zip(&self.workloads)
            .flat_map(|(d, w)| d.segment_routings(w).expect("routable by construction"))
            .collect();
        let refs: Vec<&Routing> = routings.iter().collect();
        net.prune(&refs)
    }
}

/// Jointly customizes one SPA accelerator for `models` under `budget`.
///
/// For every candidate pipeline width, each model is segmented
/// independently (best segment count under the paper's objective via the
/// latency of a per-model trial allocation), then a *shared* hardware
/// configuration is chosen by running Algorithm 1 on the concatenation of
/// all models' segments and taking, per PU, the maximum buffer and the
/// allocation driven by the combined operation distribution. The width
/// minimizing geometric-mean latency wins.
///
/// # Errors
///
/// [`AutoSegError::EmptyWorkload`] if `models` is empty,
/// [`AutoSegError::NoFeasibleDesign`] if no width fits every model.
pub fn design_multi(
    models: &[Graph],
    budget: &HwBudget,
    max_pus: usize,
    max_segments: usize,
) -> Result<MultiOutcome, AutoSegError> {
    if models.is_empty() {
        return Err(AutoSegError::EmptyWorkload);
    }
    let workloads: Vec<Workload> = models.iter().map(Workload::from_graph).collect();
    let segmenter = ChainDpSegmenter::new();
    // One memo cache for the whole joint search: the per-model trial
    // allocations and the merged-hardware dataflow probes revisit the same
    // (layer, PU, dataflow) points constantly.
    let cache = EvalCache::default();
    let min_len = workloads.iter().map(Workload::len).min().expect("nonempty");

    let mut best: Option<(f64, MultiOutcome)> = None;
    for n in 2..=max_pus.min(min_len).min(budget.pes) {
        // 1. Per-model segmentation: pick the segment count whose solo
        //    allocation simulates fastest.
        let mut schedules = Vec::with_capacity(workloads.len());
        let mut ok = true;
        for w in &workloads {
            let mut best_s = None;
            for s in 1..=max_segments.min(w.len() / n) {
                let Ok(sched) = segmenter.segment(w, n, s) else {
                    continue;
                };
                let Ok(d) = allocate_with(w, &sched, budget, DesignGoal::Latency, &cache) else {
                    continue;
                };
                if !d.fits(budget) || d.segment_routings(w).is_err() {
                    continue;
                }
                let secs = simulate_spa_with(w, &d, &cache).seconds;
                if best_s
                    .as_ref()
                    .is_none_or(|&(bs, _): &(f64, _)| secs < bs)
                {
                    best_s = Some((secs, d.schedule.clone()));
                }
            }
            match best_s {
                Some((_, sched)) => schedules.push(sched),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }

        // 2. Shared hardware: allocate per model, then merge — per-PU PE
        //    count = the maximum the budget allows of the per-model
        //    allocations (conservative merge: take the element-wise max,
        //    then scale down while over budget).
        let mut per_model: Vec<SpaDesign> = Vec::new();
        for (w, sched) in workloads.iter().zip(&schedules) {
            match allocate_with(w, sched, budget, DesignGoal::Latency, &cache) {
                Ok(d) => per_model.push(d),
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        let mut pus = per_model[0].pus.clone();
        for d in &per_model[1..] {
            for (shared, pu) in pus.iter_mut().zip(&d.pus) {
                if pu.num_pe() > shared.num_pe() {
                    shared.rows = pu.rows;
                    shared.cols = pu.cols;
                }
                shared.act_buf_bytes = shared.act_buf_bytes.max(pu.act_buf_bytes);
                shared.wgt_buf_bytes = shared.wgt_buf_bytes.max(pu.wgt_buf_bytes);
            }
        }
        // Scale the merged hardware down until it fits.
        loop {
            let trial = SpaDesign {
                pus: pus.clone(),
                ..per_model[0].clone()
            };
            if trial.fits(budget) {
                break;
            }
            let Some(widest) = (0..pus.len()).max_by_key(|&i| pus[i].num_pe()) else {
                break;
            };
            if pus[widest].num_pe() <= 1 {
                ok = false;
                break;
            }
            let half = pus[widest].num_pe() / 2;
            let (r, c) = pucost::PuConfig::square_geometry(half);
            pus[widest].rows = r;
            pus[widest].cols = c;
            pus[widest].wgt_buf_bytes = (pus[widest].wgt_buf_bytes / 2).max(1);
        }
        if !ok {
            continue;
        }

        // 3. Per-model designs on the shared hardware, with fresh dataflow
        //    selection.
        let mut designs = Vec::with_capacity(workloads.len());
        let mut reports = Vec::with_capacity(workloads.len());
        for (w, sched) in workloads.iter().zip(&schedules) {
            let dataflows = (0..n)
                .map(|pu| {
                    (0..sched.len())
                        .map(|si| eval_pu_segment(w, sched, si, pu, &pus[pu], &cache).0)
                        .collect()
                })
                .collect();
            let d = SpaDesign {
                name: format!("multi@{}:{}", budget.name, w.name()),
                pus: pus.clone(),
                schedule: sched.clone(),
                dataflows,
                batch: 1,
                bandwidth_gbps: budget.bandwidth_gbps,
                platform: budget.platform,
            };
            if !d.fits(budget) || d.segment_routings(w).is_err() {
                ok = false;
                break;
            }
            reports.push(simulate_spa_with(w, &d, &cache));
            designs.push(d);
        }
        if !ok {
            continue;
        }

        let outcome = MultiOutcome {
            designs,
            reports,
            workloads: workloads.clone(),
            n_pus: n,
        };
        let metric = outcome.geomean_seconds();
        if best.as_ref().is_none_or(|(m, _)| metric < *m) {
            best = Some((metric, outcome));
        }
    }

    best.map(|(_, o)| o).ok_or_else(|| AutoSegError::NoFeasibleDesign {
        budget: budget.name.clone(),
        model: models
            .iter()
            .map(|m| m.name().to_string())
            .collect::<Vec<_>>()
            .join("+"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AutoSeg;
    use nnmodel::zoo;

    #[test]
    fn joint_design_serves_all_models() {
        let models = vec![zoo::squeezenet1_0(), zoo::mobilenet_v1()];
        let budget = HwBudget::nvdla_small();
        let out = design_multi(&models, &budget, 4, 6).expect("feasible");
        assert_eq!(out.designs.len(), 2);
        // Identical shared hardware.
        assert_eq!(out.designs[0].pus, out.designs[1].pus);
        for (d, w) in out.designs.iter().zip(&out.workloads) {
            assert!(d.fits(&budget));
            d.schedule.validate(w).expect("valid");
        }
        assert!(out.geomean_seconds() > 0.0);
    }

    #[test]
    fn joint_design_close_to_dedicated() {
        // Sharing hardware costs something, but each model should stay
        // within ~2x of its dedicated design.
        let models = vec![zoo::squeezenet1_0(), zoo::mobilenet_v1()];
        let budget = HwBudget::nvdla_small();
        let joint = design_multi(&models, &budget, 4, 6).expect("feasible");
        for (model, report) in models.iter().zip(&joint.reports) {
            let solo = AutoSeg::new(budget.clone())
                .max_pus(4)
                .max_segments(6)
                .run(model)
                .expect("feasible");
            let ratio = report.seconds / solo.report.seconds;
            assert!(ratio < 2.0, "{}: joint/solo {ratio:.2}", model.name());
        }
    }

    #[test]
    fn union_fabric_supports_everything() {
        let models = vec![zoo::squeezenet1_0(), zoo::resnet18()];
        let budget = HwBudget::nvdla_large();
        let out = design_multi(&models, &budget, 4, 6).expect("feasible");
        let pruned = out.union_pruned_fabric();
        for (d, w) in out.designs.iter().zip(&out.workloads) {
            for r in d.segment_routings(w).expect("routable") {
                assert!(pruned.supports(&r));
            }
        }
    }

    #[test]
    fn empty_model_set_rejected() {
        assert!(matches!(
            design_multi(&[], &HwBudget::eyeriss(), 4, 4),
            Err(AutoSegError::EmptyWorkload)
        ));
    }
}
