//! Model segmentation engines (Section V-A).
//!
//! All engines implement [`Segmenter`]: given a workload and a pipeline
//! shape `(N PUs, S segments)`, produce a [`SegmentSchedule`] optimizing
//! the paper's two metrics — the minimum segment CTC ratio (Eq. 5) and the
//! segment-operational-distance SOD (Eq. 11).

mod baselines;
mod chain_dp;
mod milp;

pub use baselines::{BayesSegmenter, RandomSegmenter};
pub use chain_dp::ChainDpSegmenter;
pub use milp::MipSegmenter;

use crate::error::AutoSegError;
use nnmodel::Workload;
use spa_arch::SegmentSchedule;

/// A model segmentation engine.
///
/// Segmenters are shared across DSE worker threads (the `(N, S)` sweep of
/// [`crate::AutoSeg`] probes shapes concurrently), hence the `Send + Sync`
/// bound; all engines here are plain immutable data, so the bound costs
/// implementors nothing.
pub trait Segmenter: Send + Sync {
    /// Partitions `workload` into `n_segments` segments over `n_pus` PUs.
    ///
    /// # Errors
    ///
    /// [`AutoSegError::SegmentationInfeasible`] when the shape cannot be
    /// realized (e.g. `n_pus * n_segments > workload.len()`), or
    /// [`AutoSegError::InvalidSchedule`] if an engine produced a schedule
    /// violating Eq. 2–4 (a bug surfaced as an error).
    fn segment(
        &self,
        workload: &Workload,
        n_pus: usize,
        n_segments: usize,
    ) -> Result<SegmentSchedule, AutoSegError>;

    /// Human-readable engine name (for experiment reports).
    fn name(&self) -> &'static str;
}

/// Quality metrics of a schedule under the paper's segmentation objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentationMetrics {
    /// Minimum CTC ratio over segments (MACs per DRAM byte) — Eq. 5
    /// maximizes this.
    pub min_ctc: f64,
    /// Sum of pairwise Manhattan distances between per-PU operation
    /// distributions — Eq. 11 minimizes this.
    pub sod: f64,
}

impl SegmentationMetrics {
    /// The combined objective the co-design engine minimizes:
    /// `1/CTC + SOD`.
    pub fn objective(&self) -> f64 {
        1.0 / self.min_ctc + self.sod
    }
}

/// Computes the paper's segmentation metrics for a schedule.
pub fn metrics(workload: &Workload, schedule: &SegmentSchedule) -> SegmentationMetrics {
    let mut min_ctc = f64::INFINITY;
    let mut dists = Vec::with_capacity(schedule.len());
    for (s, seg) in schedule.segments.iter().enumerate() {
        let items = seg.items();
        min_ctc = min_ctc.min(workload.pipelined_ctc(&items));
        let ops = schedule.pu_ops(workload, s);
        let total: u64 = ops.iter().sum();
        dists.push(
            ops.iter()
                .map(|&o| o as f64 / total.max(1) as f64)
                .collect::<Vec<f64>>(),
        );
    }
    SegmentationMetrics {
        min_ctc,
        sod: nnmodel::analysis::sod(&dists),
    }
}

/// Splits `len` items (indices `start..start+len`) into `parts` non-empty
/// contiguous blocks minimizing the maximum block weight — the classic
/// linear-partition DP, used to balance a segment's items over its PUs.
///
/// Returns block boundaries: `parts + 1` indices from `start` to
/// `start + len`.
pub(crate) fn balanced_blocks(weights: &[u64], start: usize, len: usize, parts: usize) -> Vec<usize> {
    assert!(parts >= 1 && len >= parts, "need at least one item per block");
    let prefix: Vec<u64> = {
        let mut p = vec![0u64];
        for i in 0..len {
            p.push(p[i] + weights[start + i]);
        }
        p
    };
    let range_sum = |a: usize, b: usize| prefix[b] - prefix[a];
    // dp[i][k] = minimal max-block-weight partitioning first i items into k
    // blocks.
    let mut dp = vec![vec![u64::MAX; parts + 1]; len + 1];
    let mut cut = vec![vec![0usize; parts + 1]; len + 1];
    dp[0][0] = 0;
    for k in 1..=parts {
        for i in k..=len {
            for j in (k - 1)..i {
                if dp[j][k - 1] == u64::MAX {
                    continue;
                }
                let cand = dp[j][k - 1].max(range_sum(j, i));
                if cand < dp[i][k] {
                    dp[i][k] = cand;
                    cut[i][k] = j;
                }
            }
        }
    }
    let mut bounds = vec![0usize; parts + 1];
    bounds[parts] = len;
    let mut i = len;
    for k in (1..=parts).rev() {
        i = cut[i][k];
        bounds[k - 1] = i;
    }
    bounds.iter().map(|&b| start + b).collect()
}

#[cfg(test)]
pub(crate) mod testutil {
    use nnmodel::{Dtype, GraphBuilder, TensorShape, Workload};

    /// A conv chain with varied channel widths (so ops differ per item).
    pub fn chain(n: usize) -> Workload {
        let mut b = GraphBuilder::new("chain", Dtype::Int8, TensorShape::new(8, 32, 32));
        let mut x = b.input();
        for i in 0..n {
            let c = [8, 24, 16, 48, 12, 32][i % 6];
            x = b.conv(format!("c{i}"), x, c, 3, 1, 1).unwrap();
        }
        Workload::from_graph(&b.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_blocks_cover_range() {
        let w = [5u64, 1, 9, 2, 2, 7, 3, 4];
        let b = balanced_blocks(&w, 0, 8, 3);
        assert_eq!(b.first(), Some(&0));
        assert_eq!(b.last(), Some(&8));
        assert!(b.windows(2).all(|p| p[0] < p[1]));
    }

    #[test]
    fn balanced_blocks_minimize_max() {
        // [5,1,9,2,2,7,3,4] into 3: optimum max is 12 ([5,1],[9,2],[2,7,3,4]=16?
        // Enumerate: best split (5,1,9)=15/(2,2,7)=11/(3,4)=7 -> 15;
        // (5,1)=6/(9,2)=11/(2,7,3,4)=16 -> 16; (5,1,9)=15... (5,1)=6/(9,2,2)=13/(7,3,4)=14 -> 14.
        let w = [5u64, 1, 9, 2, 2, 7, 3, 4];
        let b = balanced_blocks(&w, 0, 8, 3);
        let max_block: u64 = b
            .windows(2)
            .map(|p| w[p[0]..p[1]].iter().sum::<u64>())
            .max()
            .unwrap();
        assert_eq!(max_block, 14);
    }

    #[test]
    fn balanced_blocks_with_offset() {
        let w = [100u64, 1, 1, 1, 100];
        let b = balanced_blocks(&w, 1, 3, 3);
        assert_eq!(b, vec![1, 2, 3, 4]);
    }

    #[test]
    fn metrics_objective_combines_terms() {
        let m = SegmentationMetrics {
            min_ctc: 4.0,
            sod: 0.5,
        };
        assert!((m.objective() - 0.75).abs() < 1e-12);
    }
}
