//! Random-sampling and Bayesian segmentation baselines (the software half
//! of the "Baye-Heuristic" and "Baye-Baye" co-design baselines of Section
//! VI-G).

use super::{balanced_blocks, metrics, Segmenter};
use crate::error::AutoSegError;
use bayesopt::{Optimizer, SearchSpace, Tpe};
use nnmodel::Workload;
use rand_like::SplitMix64;
use spa_arch::{Assignment, Segment, SegmentSchedule};

/// A tiny deterministic PRNG (SplitMix64) so the baselines do not need a
/// full RNG dependency here.
mod rand_like {
    /// SplitMix64: deterministic, seedable, passes basic statistical tests.
    #[derive(Debug, Clone)]
    pub struct SplitMix64(pub u64);

    impl SplitMix64 {
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n.max(1) as u64) as usize
        }
    }
}

/// Builds a schedule from segment cut points: items are split into
/// balanced blocks per segment and bound to PUs by load rank (same binding
/// rule as the DP engine, so baselines differ only in *cut placement*).
fn schedule_from_cuts(
    workload: &Workload,
    cuts: &[usize],
    n_pus: usize,
) -> Result<SegmentSchedule, AutoSegError> {
    let ops: Vec<u64> = workload.items().iter().map(|it| it.ops).collect();
    let mut segments = Vec::with_capacity(cuts.len() - 1);
    for w2 in cuts.windows(2) {
        let (lo, hi) = (w2[0], w2[1]);
        let bounds = balanced_blocks(&ops, lo, hi - lo, n_pus);
        let mut blocks: Vec<(usize, u64)> = bounds
            .windows(2)
            .enumerate()
            .map(|(k, b)| (k, ops[b[0]..b[1]].iter().sum()))
            .collect();
        blocks.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut pu_of_block = vec![0usize; n_pus];
        for (rank, &(block, _)) in blocks.iter().enumerate() {
            pu_of_block[block] = rank;
        }
        let mut assignments = Vec::new();
        for (k, b) in bounds.windows(2).enumerate() {
            for item in b[0]..b[1] {
                assignments.push(Assignment {
                    item,
                    pu: pu_of_block[k],
                });
            }
        }
        segments.push(Segment { assignments });
    }
    SegmentSchedule::new(segments, n_pus, workload).map_err(AutoSegError::from)
}

/// Repairs arbitrary cut proposals into valid cut points: sorted, within
/// range, every segment at least `n_pus` items.
fn repair_cuts(mut raw: Vec<usize>, l: usize, n_pus: usize, n_segments: usize) -> Vec<usize> {
    raw.sort_unstable();
    let mut cuts = Vec::with_capacity(n_segments + 1);
    cuts.push(0);
    for (k, &r) in raw.iter().enumerate() {
        let min = cuts[k] + n_pus;
        let max = l - (n_segments - 1 - k) * n_pus;
        cuts.push(r.clamp(min, max));
    }
    cuts.push(l);
    cuts
}

/// Random-sampling segmentation: draws `iters` random cut sets and keeps
/// the best under the paper's `1/CTC + SOD` objective.
#[derive(Debug, Clone, Copy)]
pub struct RandomSegmenter {
    /// PRNG seed.
    pub seed: u64,
    /// Number of samples.
    pub iters: usize,
}

impl RandomSegmenter {
    /// A segmenter with the given seed and sample budget.
    pub fn new(seed: u64, iters: usize) -> Self {
        Self { seed, iters }
    }
}

impl Segmenter for RandomSegmenter {
    fn segment(
        &self,
        workload: &Workload,
        n_pus: usize,
        n_segments: usize,
    ) -> Result<SegmentSchedule, AutoSegError> {
        let l = workload.len();
        if n_pus == 0 || n_segments == 0 || n_pus * n_segments > l {
            return Err(AutoSegError::SegmentationInfeasible {
                n_pus,
                n_segments,
                items: l,
            });
        }
        let mut rng = SplitMix64(self.seed);
        let mut best: Option<(f64, SegmentSchedule)> = None;
        for _ in 0..self.iters.max(1) {
            let raw: Vec<usize> = (0..n_segments - 1).map(|_| rng.below(l)).collect();
            let cuts = repair_cuts(raw, l, n_pus, n_segments);
            let sched = schedule_from_cuts(workload, &cuts, n_pus)?;
            let obj = metrics(workload, &sched).objective();
            if best.as_ref().is_none_or(|(b, _)| obj < *b) {
                best = Some((obj, sched));
            }
        }
        Ok(best.expect("at least one iteration").1)
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Bayesian (TPE) segmentation: optimizes cut placement with the
/// tree-structured Parzen estimator (the paper's "Baye" segmentation
/// baseline, 2000 iterations by default).
#[derive(Debug, Clone, Copy)]
pub struct BayesSegmenter {
    /// PRNG seed.
    pub seed: u64,
    /// Optimization iterations.
    pub iters: usize,
}

impl BayesSegmenter {
    /// A segmenter with the given seed and iteration budget.
    pub fn new(seed: u64, iters: usize) -> Self {
        Self { seed, iters }
    }
}

impl Segmenter for BayesSegmenter {
    fn segment(
        &self,
        workload: &Workload,
        n_pus: usize,
        n_segments: usize,
    ) -> Result<SegmentSchedule, AutoSegError> {
        let l = workload.len();
        if n_pus == 0 || n_segments == 0 || n_pus * n_segments > l {
            return Err(AutoSegError::SegmentationInfeasible {
                n_pus,
                n_segments,
                items: l,
            });
        }
        if n_segments == 1 {
            return schedule_from_cuts(workload, &[0, l], n_pus);
        }
        let space = SearchSpace::new(vec![l; n_segments - 1]);
        let mut tpe = Tpe::new(space, self.seed);
        let mut best: Option<(f64, SegmentSchedule)> = None;
        for _ in 0..self.iters.max(1) {
            let raw = tpe.suggest();
            let cuts = repair_cuts(raw.clone(), l, n_pus, n_segments);
            let sched = schedule_from_cuts(workload, &cuts, n_pus)?;
            let obj = metrics(workload, &sched).objective();
            if best.as_ref().is_none_or(|(b, _)| obj < *b) {
                best = Some((obj, sched));
            }
            tpe.observe(raw, obj);
        }
        Ok(best.expect("at least one iteration").1)
    }

    fn name(&self) -> &'static str {
        "bayes"
    }
}

#[cfg(test)]
mod tests {
    use super::super::{metrics, testutil::chain, ChainDpSegmenter};
    use super::*;
    use nnmodel::{zoo, Workload};

    #[test]
    fn random_schedules_are_valid() {
        let w = Workload::from_graph(&zoo::squeezenet1_0());
        let seg = RandomSegmenter::new(1, 50);
        let sched = seg.segment(&w, 3, 4).unwrap();
        sched.validate(&w).unwrap();
    }

    #[test]
    fn bayes_schedules_are_valid_and_competitive() {
        let w = Workload::from_graph(&zoo::squeezenet1_0());
        let bayes = BayesSegmenter::new(1, 150).segment(&w, 3, 4).unwrap();
        bayes.validate(&w).unwrap();
        let random = RandomSegmenter::new(1, 20).segment(&w, 3, 4).unwrap();
        let mb = metrics(&w, &bayes).objective();
        let mr = metrics(&w, &random).objective();
        assert!(mb <= mr * 1.2, "bayes {mb} vs random-20 {mr}");
    }

    #[test]
    fn dp_dominates_the_baselines() {
        // The exact DP is never worse than sampling on the same subspace.
        let w = chain(16);
        let dp = ChainDpSegmenter::new().segment(&w, 2, 4).unwrap();
        let rnd = RandomSegmenter::new(9, 100).segment(&w, 2, 4).unwrap();
        let m_dp = metrics(&w, &dp);
        let m_rnd = metrics(&w, &rnd);
        assert!(m_dp.min_ctc >= m_rnd.min_ctc - 1e-9);
    }

    #[test]
    fn repair_cuts_always_valid() {
        for l in [8usize, 20, 57] {
            for n in 1..=3 {
                for s in 2..=4 {
                    if n * s > l {
                        continue;
                    }
                    let raw: Vec<usize> = (0..s - 1).map(|k| (k * 7919) % (l + 3)).collect();
                    let cuts = repair_cuts(raw, l, n, s);
                    assert_eq!(cuts.len(), s + 1);
                    assert_eq!(cuts[0], 0);
                    assert_eq!(cuts[s], l);
                    for w2 in cuts.windows(2) {
                        assert!(w2[1] - w2[0] >= n, "cuts {cuts:?} l={l} n={n} s={s}");
                    }
                }
            }
        }
    }

    #[test]
    fn seeded_determinism() {
        let w = chain(12);
        let a = RandomSegmenter::new(5, 30).segment(&w, 2, 3).unwrap();
        let b = RandomSegmenter::new(5, 30).segment(&w, 2, 3).unwrap();
        assert_eq!(a, b);
    }
}
