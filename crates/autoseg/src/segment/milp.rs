//! MILP segmentation over the *full* assignment space (Section V-A's
//! formulation, Table I / Eq. 2–11), solved with the workspace's `mip`
//! branch-and-bound solver.
//!
//! The paper's combined objective `min(1/CTC + SOD)` contains ratios of
//! decision variables, which commercial solvers handle through internal
//! reformulation. We solve it **lexicographically**, which reaches the
//! same Pareto-extreme solutions:
//!
//! 1. the minimum-segment-CTC level is fixed from the exact contiguous DP
//!    (relaxed by a small factor) and enforced as a *linear* constraint —
//!    for a fixed CTC target `t`, `sum(ops) >= t * access_s` is linear in
//!    the binaries once segment DRAM access is linearized with per-edge
//!    "same-segment" variables;
//! 2. subject to that, the MILP minimizes the (unnormalized) pairwise
//!    Manhattan distance between per-PU operation vectors — the linear
//!    form of Eq. 11 (normalization is dropped; the CTC constraint already
//!    pushes segment totals toward similar magnitudes).
//!
//! Because λ has `L * N * S` binaries, this engine is intended for compact
//! workloads (the AlexNet case study, ablations); beyond
//! [`MipSegmenter::DEFAULT_MAX_BINARIES`] it falls back to the chain DP,
//! which solves the identical objective on the contiguous subspace.

use super::{metrics, ChainDpSegmenter, Segmenter};
use crate::error::AutoSegError;
use mip::{Cmp, LinExpr, Problem, Sense, Solver, VarId};
use nnmodel::Workload;
use spa_arch::{Assignment, Segment, SegmentSchedule};
use std::time::Duration;

/// Full-space MILP segmenter (see module docs).
#[derive(Debug, Clone)]
pub struct MipSegmenter {
    /// Relaxation factor applied to the DP's optimal min-CTC before it
    /// becomes a constraint (default 0.9).
    pub ctc_relax: f64,
    /// Solver wall-clock budget.
    pub time_limit: Duration,
    /// Solver node budget.
    pub max_nodes: u64,
    /// Problem-size ceiling before falling back to the chain DP.
    pub max_binaries: usize,
    /// Pool the solver's node-relaxation waves fan out on (serial by
    /// default; any width yields bit-identical answers).
    pub pool: crate::dse::DsePool,
}

impl MipSegmenter {
    /// Default ceiling on λ binaries before the engine falls back.
    pub const DEFAULT_MAX_BINARIES: usize = 512;

    /// A MILP segmenter with sensible defaults.
    pub fn new() -> Self {
        Self {
            ctc_relax: 0.9,
            time_limit: Duration::from_secs(20),
            max_nodes: 50_000,
            max_binaries: Self::DEFAULT_MAX_BINARIES,
            pool: crate::dse::DsePool::serial(),
        }
    }

    /// Sets the node pool the MILP's branch & bound waves run on.
    pub fn with_pool(mut self, pool: crate::dse::DsePool) -> Self {
        self.pool = pool;
        self
    }
}

impl Default for MipSegmenter {
    fn default() -> Self {
        Self::new()
    }
}

impl Segmenter for MipSegmenter {
    fn segment(
        &self,
        workload: &Workload,
        n_pus: usize,
        n_segments: usize,
    ) -> Result<SegmentSchedule, AutoSegError> {
        let l = workload.len();
        if n_pus == 0 || n_segments == 0 || n_pus * n_segments > l {
            return Err(AutoSegError::SegmentationInfeasible {
                n_pus,
                n_segments,
                items: l,
            });
        }
        let fallback = ChainDpSegmenter::new().segment(workload, n_pus, n_segments)?;
        if l * n_pus * n_segments > self.max_binaries {
            return Ok(fallback);
        }
        let target_ctc = metrics(workload, &fallback).min_ctc * self.ctc_relax;

        match self.solve(workload, n_pus, n_segments, target_ctc, &fallback) {
            Some(sched) => {
                // Keep whichever solution is better under the combined
                // objective (the MILP explores a larger space but may hit
                // its limits first).
                let m_milp = metrics(workload, &sched).objective();
                let m_dp = metrics(workload, &fallback).objective();
                Ok(if m_milp <= m_dp { sched } else { fallback })
            }
            None => Ok(fallback),
        }
    }

    fn name(&self) -> &'static str {
        "mip"
    }
}

impl MipSegmenter {
    fn solve(
        &self,
        workload: &Workload,
        n: usize,
        s_max: usize,
        target_ctc: f64,
        seed_schedule: &SegmentSchedule,
    ) -> Option<SegmentSchedule> {
        let l = workload.len();
        let items = workload.items();
        let total_ops = workload.total_ops().max(1) as f64;
        let mut p = Problem::new(Sense::Minimize);

        // λ[l][n][s]
        let lam: Vec<Vec<Vec<VarId>>> = (0..l)
            .map(|li| {
                (0..n)
                    .map(|ni| {
                        (0..s_max)
                            .map(|si| p.add_binary(format!("lam_{li}_{ni}_{si}")))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        // y[l][s] as expressions.
        let y = |li: usize, si: usize| -> LinExpr {
            LinExpr::terms(
                &(0..n)
                    .map(|ni| (lam[li][ni][si], 1.0))
                    .collect::<Vec<_>>(),
            )
        };

        // Eq. 2: exactly one (n, s) per item; at least one item per (n, s).
        for li in 0..l {
            let mut e = LinExpr::new();
            for ni in 0..n {
                for si in 0..s_max {
                    e.add_term(lam[li][ni][si], 1.0);
                }
            }
            p.add_constraint(e, Cmp::Eq, 1.0);
        }
        for ni in 0..n {
            for si in 0..s_max {
                let mut e = LinExpr::new();
                for li in 0..l {
                    e.add_term(lam[li][ni][si], 1.0);
                }
                p.add_constraint(e, Cmp::Ge, 1.0);
            }
        }

        // Edge list (producer, consumer, bytes).
        let edges: Vec<(usize, usize, u64)> = items
            .iter()
            .flat_map(|it| it.preds.iter().map(move |&(pr, b)| (pr, it.index, b)))
            .collect();

        // Eq. 3: no consumer before its producer across segments.
        for &(pr, co, _) in &edges {
            for s1 in 0..s_max {
                for s2 in (s1 + 1)..s_max {
                    let e = y(pr, s2) + y(co, s1);
                    p.add_constraint(e, Cmp::Le, 1.0);
                }
            }
        }

        // Eq. 4: ω flow indicators, no bidirectional pairs in a segment.
        let mut omegas: Vec<Vec<Vec<VarId>>> = Vec::with_capacity(s_max);
        for si in 0..s_max {
            let omega: Vec<Vec<VarId>> = (0..n)
                .map(|a| {
                    (0..n)
                        .map(|b| p.add_binary(format!("om_{a}_{b}_{si}")))
                        .collect()
                })
                .collect();
            for &(pr, co, _) in &edges {
                for a in 0..n {
                    for b in 0..n {
                        if a == b {
                            continue;
                        }
                        // ω_{a,b,s} >= λ_{pr,a,s} + λ_{co,b,s} - 1
                        let mut e = LinExpr::from(omega[a][b]) * -1.0;
                        e.add_term(lam[pr][a][si], 1.0);
                        e.add_term(lam[co][b][si], 1.0);
                        p.add_constraint(e, Cmp::Le, 1.0);
                    }
                }
            }
            for a in 0..n {
                for b in (a + 1)..n {
                    let e = LinExpr::from(omega[a][b]) + LinExpr::from(omega[b][a]);
                    p.add_constraint(e, Cmp::Le, 1.0);
                }
            }
            omegas.push(omega);
        }

        // Same-segment edge variables z[e][s] (continuous in [0,1]; the CTC
        // constraint pushes them up to min(y_pr, y_co)).
        let z: Vec<Vec<VarId>> = edges
            .iter()
            .enumerate()
            .map(|(ei, _)| {
                (0..s_max)
                    .map(|si| p.add_continuous(format!("z_{ei}_{si}"), 0.0, 1.0))
                    .collect()
            })
            .collect();
        for (ei, &(pr, co, _)) in edges.iter().enumerate() {
            for si in 0..s_max {
                let e1 = LinExpr::from(z[ei][si]) + y(pr, si) * -1.0;
                p.add_constraint(e1, Cmp::Le, 0.0);
                let e2 = LinExpr::from(z[ei][si]) + y(co, si) * -1.0;
                p.add_constraint(e2, Cmp::Le, 0.0);
            }
        }

        // CTC constraint per segment: sum(ops) >= t * access_s where
        // access_s = sum_l base_l * y_{l,s} + sum_e b_e (y_pr + y_co - 2z).
        for si in 0..s_max {
            let mut e = LinExpr::new();
            for it in items {
                let consumers = workload.consumers(it.index);
                let base = it.w_bytes as f64
                    + it.extern_in_bytes as f64
                    + if consumers.is_empty() {
                        it.out_bytes as f64
                    } else {
                        0.0
                    };
                for ni in 0..n {
                    e.add_term(lam[it.index][ni][si], it.ops as f64 - target_ctc * base);
                }
            }
            for (ei, &(pr, co, b)) in edges.iter().enumerate() {
                let tb = target_ctc * b as f64;
                e += y(pr, si) * (-tb) + y(co, si) * (-tb);
                e.add_term(z[ei][si], 2.0 * tb);
            }
            p.add_constraint(e, Cmp::Ge, 0.0);
        }

        // Objective: pairwise Manhattan distance of per-PU op vectors.
        let mut obj = LinExpr::new();
        let mut d_vars: Vec<(VarId, usize, usize, usize)> = Vec::new();
        for ni in 0..n {
            for s1 in 0..s_max {
                for s2 in (s1 + 1)..s_max {
                    let d = p.add_continuous(format!("d_{ni}_{s1}_{s2}"), 0.0, f64::INFINITY);
                    d_vars.push((d, ni, s1, s2));
                    // d >= +-(ops(n,s1) - ops(n,s2)) / total_ops
                    let mut diff = LinExpr::new();
                    for it in items {
                        let o = it.ops as f64 / total_ops;
                        diff.add_term(lam[it.index][ni][s1], o);
                        diff.add_term(lam[it.index][ni][s2], -o);
                    }
                    let mut c1 = diff.clone();
                    c1.add_term(d, -1.0);
                    p.add_constraint(c1, Cmp::Le, 0.0);
                    let mut c2 = diff * -1.0;
                    c2.add_term(d, -1.0);
                    p.add_constraint(c2, Cmp::Le, 0.0);
                    obj.add_term(d, 1.0);
                }
            }
        }
        p.set_objective(obj);

        // Warm start: encode the DP schedule into the variable vector so
        // branch & bound prunes against a known-good incumbent from node
        // one (ignored automatically if the linearized model rejects it).
        let seed = {
            let mut seg_of = vec![usize::MAX; l];
            let mut pu_of = vec![usize::MAX; l];
            for (si, seg) in seed_schedule.segments.iter().enumerate() {
                for a in &seg.assignments {
                    seg_of[a.item] = si;
                    pu_of[a.item] = a.pu;
                }
            }
            let mut v = vec![0.0; p.num_vars()];
            for li in 0..l {
                v[lam[li][pu_of[li]][seg_of[li]].index()] = 1.0;
            }
            for (si, omega) in omegas.iter().enumerate() {
                for &(pr, co, _) in &edges {
                    if seg_of[pr] == si && seg_of[co] == si && pu_of[pr] != pu_of[co] {
                        v[omega[pu_of[pr]][pu_of[co]].index()] = 1.0;
                    }
                }
            }
            for (ei, &(pr, co, _)) in edges.iter().enumerate() {
                for si in 0..s_max {
                    if seg_of[pr] == si && seg_of[co] == si {
                        v[z[ei][si].index()] = 1.0;
                    }
                }
            }
            for &(dv, ni, s1, s2) in &d_vars {
                let ops = |si: usize| -> f64 {
                    workload
                        .items()
                        .iter()
                        .filter(|it| seg_of[it.index] == si && pu_of[it.index] == ni)
                        .map(|it| it.ops as f64)
                        .sum::<f64>()
                        / total_ops
                };
                v[dv.index()] = (ops(s1) - ops(s2)).abs();
            }
            v
        };
        let sol = Solver::new()
            .time_limit(self.time_limit)
            .max_nodes(self.max_nodes)
            .warm_start(seed)
            .solve_with_pool(&p, &self.pool)
            .ok()?;
        if !sol.has_solution() {
            return None;
        }

        // Decode λ into a schedule.
        let mut segments = vec![Segment::default(); s_max];
        for li in 0..l {
            'found: for ni in 0..n {
                for si in 0..s_max {
                    if sol.int_value(lam[li][ni][si]) == 1 {
                        segments[si].assignments.push(Assignment { item: li, pu: ni });
                        break 'found;
                    }
                }
            }
        }
        SegmentSchedule::new(segments, n, workload).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::super::{metrics, testutil::chain, ChainDpSegmenter};
    use super::*;
    use nnmodel::{zoo, Workload};

    #[test]
    fn milp_schedules_are_valid() {
        let w = chain(8);
        let seg = MipSegmenter::new();
        let sched = seg.segment(&w, 2, 2).unwrap();
        sched.validate(&w).unwrap();
        assert_eq!(sched.len(), 2);
    }

    #[test]
    fn milp_never_worse_than_dp() {
        // The MILP keeps the better of its own solution and the DP's.
        let w = chain(8);
        let milp = MipSegmenter::new().segment(&w, 2, 2).unwrap();
        let dp = ChainDpSegmenter::new().segment(&w, 2, 2).unwrap();
        assert!(
            metrics(&w, &milp).objective() <= metrics(&w, &dp).objective() + 1e-9
        );
    }

    #[test]
    fn alexnet_case_study_shape() {
        // Tables IV-VI: 10 conv items, 4 PUs, 1 segment... the SPA variant
        // uses 1 segment with doubled layers; run the 4x1 shape.
        let w = Workload::from_graph(&zoo::alexnet_conv());
        let seg = MipSegmenter::new();
        let sched = seg.segment(&w, 4, 1).unwrap();
        sched.validate(&w).unwrap();
        // All 10 items placed across 4 PUs.
        assert_eq!(sched.segments[0].assignments.len(), 10);
    }

    #[test]
    fn oversized_problems_fall_back_to_dp() {
        let w = Workload::from_graph(&zoo::resnet50());
        let seg = MipSegmenter::new();
        let sched = seg.segment(&w, 4, 6).unwrap();
        let dp = ChainDpSegmenter::new().segment(&w, 4, 6).unwrap();
        assert_eq!(sched, dp);
    }
}
