//! Exact dynamic-programming segmentation over the contiguous-segment
//! subspace.
//!
//! On chain-like DAGs the data-dependency constraint (Eq. 3) forces
//! segments to be prefix-closed, i.e. contiguous intervals in topological
//! order. This engine solves the paper's objective exactly over that
//! subspace:
//!
//! 1. an `O(S * L^2)` max-min dynamic program picks the `S - 1` cut points
//!    maximizing the minimum segment CTC ratio (Eq. 5), and
//! 2. within each segment, a linear-partition DP splits the items into `N`
//!    balanced contiguous blocks which are then bound to PUs *by load
//!    rank* — the heaviest block of every segment lands on the same PU, so
//!    operation distributions align across segments (minimizing the SOD of
//!    Eq. 11) while the binding need not follow pipeline order (the
//!    Segment-3 freedom of Figure 6).
//!
//! Unlike the MILP engine this scales to ResNet-152-depth models in
//! milliseconds, at the cost of restricting segments to topological
//! intervals (which the paper's own figures — evenly divided segments —
//! also assume).

use super::{balanced_blocks, Segmenter};
use crate::error::AutoSegError;
use nnmodel::Workload;
use spa_arch::{Assignment, Segment, SegmentSchedule};

/// The default production segmenter (see module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct ChainDpSegmenter;

impl ChainDpSegmenter {
    /// Creates the segmenter.
    pub fn new() -> Self {
        Self
    }
}

/// DRAM bytes of the contiguous item range `[i, j)` under pipelined
/// execution, with consumer lists precomputed.
fn range_access(w: &Workload, consumers: &[Vec<usize>], i: usize, j: usize) -> u64 {
    let mut bytes = 0;
    for m in i..j {
        let it = &w.items()[m];
        bytes += it.w_bytes + it.extern_in_bytes;
        for &(p, b) in &it.preds {
            if p < i {
                bytes += b;
            }
        }
        if consumers[m].is_empty() || consumers[m].iter().any(|&c| c >= j) {
            bytes += it.out_bytes;
        }
    }
    bytes
}

impl Segmenter for ChainDpSegmenter {
    fn segment(
        &self,
        workload: &Workload,
        n_pus: usize,
        n_segments: usize,
    ) -> Result<SegmentSchedule, AutoSegError> {
        let l = workload.len();
        if n_pus == 0 || n_segments == 0 || n_pus * n_segments > l {
            return Err(AutoSegError::SegmentationInfeasible {
                n_pus,
                n_segments,
                items: l,
            });
        }

        // Precompute consumers and per-range CTC.
        let consumers: Vec<Vec<usize>> = (0..l).map(|i| workload.consumers(i)).collect();
        let ops: Vec<u64> = workload.items().iter().map(|it| it.ops).collect();
        let prefix_ops: Vec<u64> = {
            let mut p = vec![0u64];
            for &o in &ops {
                p.push(p.last().unwrap() + o);
            }
            p
        };
        let ctc = |i: usize, j: usize| -> f64 {
            (prefix_ops[j] - prefix_ops[i]) as f64
                / range_access(workload, &consumers, i, j).max(1) as f64
        };

        // Max-min DP over cut points. dp[s][j]: first j items in s segments.
        let (s_max, n) = (n_segments, n_pus);
        let neg = f64::NEG_INFINITY;
        let mut dp = vec![vec![neg; l + 1]; s_max + 1];
        let mut back = vec![vec![0usize; l + 1]; s_max + 1];
        dp[0][0] = f64::INFINITY;
        for s in 1..=s_max {
            // Segment s must leave room: j in [s*n, l - (s_max - s)*n].
            for j in (s * n)..=(l - (s_max - s) * n) {
                for i in ((s - 1) * n)..=(j - n) {
                    if dp[s - 1][i] == neg {
                        continue;
                    }
                    let cand = dp[s - 1][i].min(ctc(i, j));
                    // Tie-break toward balanced segment ops.
                    let better = cand > dp[s][j] + 1e-12
                        || (cand > dp[s][j] - 1e-12 && {
                            let target = prefix_ops[l] as f64 / s_max as f64;
                            let new_dev =
                                ((prefix_ops[j] - prefix_ops[i]) as f64 - target).abs();
                            let old_i = back[s][j];
                            let old_dev =
                                ((prefix_ops[j] - prefix_ops[old_i]) as f64 - target).abs();
                            new_dev < old_dev
                        });
                    if better {
                        dp[s][j] = cand;
                        back[s][j] = i;
                    }
                }
            }
        }
        debug_assert!(dp[s_max][l] > neg, "DP always feasible when n*s <= l");

        // Reconstruct cuts.
        let mut cuts = vec![l];
        let mut j = l;
        for s in (1..=s_max).rev() {
            j = back[s][j];
            cuts.push(j);
        }
        cuts.reverse();

        // Per-segment balanced blocks, bound to PUs by load rank.
        let mut segments = Vec::with_capacity(s_max);
        for w2 in cuts.windows(2) {
            let (lo, hi) = (w2[0], w2[1]);
            let bounds = balanced_blocks(&ops, lo, hi - lo, n);
            // Rank blocks by ops, heaviest first.
            let mut blocks: Vec<(usize, u64)> = bounds
                .windows(2)
                .enumerate()
                .map(|(k, b)| (k, prefix_ops[b[1]] - prefix_ops[b[0]]))
                .collect();
            blocks.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            let mut pu_of_block = vec![0usize; n];
            for (rank, &(block, _)) in blocks.iter().enumerate() {
                pu_of_block[block] = rank;
            }
            let mut assignments = Vec::with_capacity(hi - lo);
            for (k, b) in bounds.windows(2).enumerate() {
                for item in b[0]..b[1] {
                    assignments.push(Assignment {
                        item,
                        pu: pu_of_block[k],
                    });
                }
            }
            segments.push(Segment { assignments });
        }

        SegmentSchedule::new(segments, n, workload).map_err(AutoSegError::from)
    }

    fn name(&self) -> &'static str {
        "chain-dp"
    }
}

#[cfg(test)]
mod tests {
    use super::super::{metrics, testutil::chain};
    use super::*;
    use nnmodel::{analysis, zoo, Workload};

    #[test]
    fn produces_valid_schedules_for_all_zoo_models() {
        let seg = ChainDpSegmenter::new();
        for g in zoo::evaluation_models() {
            let w = Workload::from_graph(&g);
            for (n, s) in [(2, 2), (4, 2), (3, 4)] {
                if n * s > w.len() {
                    continue;
                }
                let sched = seg.segment(&w, n, s).unwrap();
                assert_eq!(sched.len(), s, "{}", g.name());
                sched.validate(&w).unwrap();
            }
        }
    }

    #[test]
    fn beats_even_segmentation_on_min_ctc() {
        let seg = ChainDpSegmenter::new();
        let w = Workload::from_graph(&zoo::squeezenet1_0());
        let s = 4;
        let sched = seg.segment(&w, 2, s).unwrap();
        let m = metrics(&w, &sched);
        // Even split into the same number of segments.
        let even = analysis::even_segments(&w, w.len().div_ceil(s));
        let even_min = analysis::min_segment_ctc(&w, &even);
        assert!(
            m.min_ctc >= even_min - 1e-9,
            "dp {} vs even {}",
            m.min_ctc,
            even_min
        );
    }

    #[test]
    fn rank_binding_aligns_distributions() {
        // The heaviest block lands on PU 0 in every segment.
        let seg = ChainDpSegmenter::new();
        let w = chain(12);
        let sched = seg.segment(&w, 3, 3).unwrap();
        for s in 0..sched.len() {
            let ops = sched.pu_ops(&w, s);
            assert!(
                ops[0] >= ops[1] && ops[1] >= ops[2],
                "segment {s} ops {ops:?} not rank-ordered"
            );
        }
    }

    #[test]
    fn rejects_impossible_shapes() {
        let seg = ChainDpSegmenter::new();
        let w = chain(6);
        assert!(matches!(
            seg.segment(&w, 4, 2),
            Err(AutoSegError::SegmentationInfeasible { .. })
        ));
        assert!(matches!(
            seg.segment(&w, 0, 2),
            Err(AutoSegError::SegmentationInfeasible { .. })
        ));
    }

    #[test]
    fn single_segment_single_pu_is_identity() {
        let seg = ChainDpSegmenter::new();
        let w = chain(5);
        let sched = seg.segment(&w, 1, 1).unwrap();
        assert_eq!(sched.len(), 1);
        assert_eq!(sched.segments[0].assignments.len(), 5);
        assert!(sched.segments[0].assignments.iter().all(|a| a.pu == 0));
    }

    #[test]
    fn more_segments_never_raise_min_ctc() {
        // Finer segmentation can only reduce (or keep) the min CTC.
        let seg = ChainDpSegmenter::new();
        let w = Workload::from_graph(&zoo::mobilenet_v1());
        let m2 = metrics(&w, &seg.segment(&w, 2, 2).unwrap());
        let m6 = metrics(&w, &seg.segment(&w, 2, 6).unwrap());
        assert!(m6.min_ctc <= m2.min_ctc + 1e-9);
    }

    #[test]
    fn resnet152_segments_quickly() {
        let seg = ChainDpSegmenter::new();
        let w = Workload::from_graph(&zoo::resnet152());
        let t0 = std::time::Instant::now();
        let sched = seg.segment(&w, 4, 8).unwrap();
        assert!(t0.elapsed().as_secs() < 10, "took {:?}", t0.elapsed());
        sched.validate(&w).unwrap();
        assert_eq!(sched.len(), 8);
    }
}
