//! AutoSeg: the HW/SW co-design engine of DeepBurning-SEG (Sections III
//! and V).
//!
//! Given a DNN model, a hardware resource budget and a design goal, AutoSeg
//! produces a customized [`spa_arch::SpaDesign`] in two decoupled steps:
//!
//! 1. **Model segmentation** ([`segment`]): partition the model's work
//!    items into segments and bind each item to a PU, maximizing the
//!    minimum segment CTC ratio and the similarity of per-PU operation
//!    distributions across segments (the paper's MIP of Eq. 2–11). Two
//!    exact-objective engines are provided — a MILP formulation solved with
//!    the `mip` crate and a chain dynamic program that scales to very deep
//!    models — plus random/Bayesian baselines.
//! 2. **Design generation** ([`allocate`]): the heuristic resource
//!    allocation of Algorithm 1 — PE quotas from the normalized operation
//!    distribution, bandwidth-driven sizing, power-of-two rounding, buffer
//!    minimums, dataflow selection, batch scaling and the
//!    upscale/downscale loop.
//!
//! The [`AutoSeg`] entry point enumerates `(N PUs, S segments)`
//! combinations, runs both steps and keeps the best design under the goal.
//!
//! # Anytime execution
//!
//! Every long-running search (the engine sweep, the [`codesign`]
//! baselines, [`multi::design_multi_ctl`] and [`generality::remap_ctl`])
//! also comes in a ctl-aware variant driven by a [`RunCtl`]: cooperative
//! deadlines and generation budgets (a typed [`RunStatus::Partial`] with
//! the best-so-far result instead of lost work), periodic versioned
//! [`Checkpoint`]s, and `--resume` that reconstructs optimizer state by
//! transcript replay so an interrupted-then-resumed search is
//! bit-identical to an uninterrupted one. See [`dse::control`] and
//! [`dse::checkpoint`].
//!
//! # Example
//!
//! ```
//! use autoseg::{AutoSeg, DesignGoal};
//! use nnmodel::zoo;
//! use spa_arch::HwBudget;
//!
//! let outcome = AutoSeg::new(HwBudget::eyeriss())
//!     .design_goal(DesignGoal::Latency)
//!     .max_pus(4)
//!     .run(&zoo::squeezenet1_0())?;
//! assert!(outcome.design.fits(&HwBudget::eyeriss()));
//! assert!(outcome.report.seconds > 0.0);
//! # Ok::<(), autoseg::AutoSegError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod allocate;
pub mod codesign;
pub mod dse;
mod engine;
mod error;
pub mod generality;
pub mod multi;
pub mod segment;

pub use dse::checkpoint::{Checkpoint, CheckpointError};
pub use dse::control::{Partial, RunCtl, RunStatus, StopReason};
pub use engine::{AnytimeOutcome, AutoSeg, AutoSegOutcome, DesignGoal};
pub use error::AutoSegError;
