//! Property tests over random workloads and pipeline shapes: every
//! segmentation engine must emit valid schedules, the exact DP must
//! dominate the sampling baselines, and Algorithm 1's outputs must respect
//! the hardware constraints.

use autoseg::allocate::allocate;
use autoseg::segment::{
    metrics, BayesSegmenter, ChainDpSegmenter, MipSegmenter, RandomSegmenter, Segmenter,
};
use autoseg::DesignGoal;
use nnmodel::{Dtype, GraphBuilder, TensorShape, Workload};
use proptest::prelude::*;
use pucost::LayerDesc;
use spa_arch::HwBudget;

/// A random conv chain with varied widths/kernels/strides.
fn random_chain() -> impl Strategy<Value = Workload> {
    proptest::collection::vec((1usize..=6, 0usize..2, 1usize..=2), 4..16).prop_map(|layers| {
        let mut b = GraphBuilder::new("prop", Dtype::Int8, TensorShape::new(4, 64, 64));
        let mut x = b.input();
        for (i, (c, k, s)) in layers.into_iter().enumerate() {
            let kernel = [1, 3][k];
            x = b
                .conv(format!("c{i}"), x, 4 * c, kernel, s, kernel / 2)
                .expect("valid conv");
        }
        Workload::from_graph(&b.finish())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every engine produces Eq. 2-4-valid schedules on any feasible
    /// shape.
    #[test]
    fn all_segmenters_emit_valid_schedules(
        w in random_chain(),
        n in 1usize..=4,
        s in 1usize..=4,
    ) {
        prop_assume!(n * s <= w.len());
        let engines: Vec<Box<dyn Segmenter>> = vec![
            Box::new(ChainDpSegmenter::new()),
            Box::new(RandomSegmenter::new(7, 20)),
            Box::new(BayesSegmenter::new(7, 20)),
        ];
        for e in engines {
            let sched = e.segment(&w, n, s).expect("feasible shape");
            sched.validate(&w).expect("valid schedule");
            prop_assert_eq!(sched.len(), s, "{}", e.name());
            prop_assert_eq!(sched.n_pus, n);
        }
    }

    /// The exact DP dominates random sampling on the min-CTC objective
    /// over the same (contiguous) search space.
    #[test]
    fn dp_dominates_random_on_min_ctc(
        w in random_chain(),
        n in 1usize..=3,
        s in 2usize..=4,
    ) {
        prop_assume!(n * s <= w.len());
        let dp = ChainDpSegmenter::new().segment(&w, n, s).expect("feasible");
        let rnd = RandomSegmenter::new(11, 40).segment(&w, n, s).expect("feasible");
        prop_assert!(
            metrics(&w, &dp).min_ctc >= metrics(&w, &rnd).min_ctc - 1e-9
        );
    }

    /// Algorithm 1 always emits power-of-two PE arrays with buffers
    /// meeting every assigned layer's minimum, and never overshoots a
    /// budget it claims to fit.
    #[test]
    fn allocator_respects_constraints(
        w in random_chain(),
        n in 2usize..=4,
        s in 1usize..=3,
    ) {
        prop_assume!(n * s <= w.len());
        let sched = ChainDpSegmenter::new().segment(&w, n, s).expect("feasible");
        let budget = HwBudget::nvdla_large();
        let d = allocate(&w, &sched, &budget, DesignGoal::Latency).expect("allocates");
        for pu in &d.pus {
            prop_assert!(pu.num_pe().is_power_of_two());
        }
        if d.fits(&budget) {
            let r = d.resources();
            prop_assert!(r.pes <= budget.pes);
            prop_assert!(r.on_chip_bytes <= budget.on_chip_bytes);
        }
        for (pu_idx, pu) in d.pus.iter().enumerate() {
            for seg in &d.schedule.segments {
                for &item in &seg.items_on(pu_idx) {
                    let desc = LayerDesc::from_item(&w.items()[item]);
                    prop_assert!(pu.act_buf_bytes >= desc.min_act_buf_bytes());
                    prop_assert!(pu.wgt_buf_bytes >= desc.min_wgt_buf_bytes(pu.num_pe()));
                }
            }
        }
        // The (possibly rebalanced) schedule is still valid.
        d.schedule.validate(&w).expect("valid after rebalance");
    }

    /// Allocation under a throughput goal never yields lower throughput
    /// than batch-1 for the same schedule.
    #[test]
    fn throughput_allocation_batches_sanely(w in random_chain(), n in 2usize..=3) {
        prop_assume!(n * 2 <= w.len());
        let sched = ChainDpSegmenter::new().segment(&w, n, 2).expect("feasible");
        let budget = HwBudget::edge_tpu();
        let d = allocate(&w, &sched, &budget, DesignGoal::Throughput).expect("allocates");
        prop_assert!(d.batch >= 1);
        if d.fits(&budget) {
            prop_assert!(d.resources().pes <= budget.pes);
        }
    }
}

// The MILP property runs far fewer cases: each instance is a full
// branch-and-bound solve.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The MILP engine (with DP fallback) is never worse than the DP under
    /// the combined objective.
    #[test]
    fn milp_never_worse_than_dp(w in random_chain(), n in 2usize..=3) {
        prop_assume!(n * 2 <= w.len());
        let mut engine = MipSegmenter::new();
        engine.time_limit = std::time::Duration::from_secs(3);
        engine.max_nodes = 5_000;
        let milp = engine.segment(&w, n, 2).expect("feasible");
        milp.validate(&w).expect("valid");
        let dp = ChainDpSegmenter::new().segment(&w, n, 2).expect("feasible");
        prop_assert!(
            metrics(&w, &milp).objective() <= metrics(&w, &dp).objective() + 1e-9
        );
    }
}
