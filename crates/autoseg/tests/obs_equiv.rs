//! Determinism contract of the instrumentation: enabling `obs` tracing
//! must not change a single bit of any search result. Instrumentation
//! reads clocks but never feeds timing back into search decisions, so the
//! point clouds and engine outcomes with `OBS_LEVEL=trace` must equal the
//! `off` reference exactly.
//!
//! This lives in its own integration-test file (= its own process):
//! `obs::set_level` is process-global, so these tests must not share a
//! process with tests assuming the default `off` level.

use autoseg::codesign::{
    baye_baye_with, mip_baye_with, mip_heuristic_with, CodesignBudgets, DesignPoint,
};
use autoseg::dse::DsePool;
use autoseg::AutoSeg;
use nnmodel::zoo;
use pucost::EvalCache;
use spa_arch::HwBudget;

/// The obs level and sink are process-global: tests serialize on this.
static OBS_GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn budgets() -> CodesignBudgets {
    CodesignBudgets {
        hw_iters: 24,
        seg_iters: 32,
        seed: 5,
        threads: 2,
    }
}

/// The bench_dse workload: three methods on one shared cache.
fn run_codesign(pool: &DsePool) -> Vec<DesignPoint> {
    let model = zoo::alexnet_conv();
    let budget = HwBudget::nvdla_small();
    let b = budgets();
    let cache = EvalCache::default();
    let mut pts = mip_heuristic_with(&model, &budget, pool, &cache).unwrap();
    pts.extend(mip_baye_with(&model, &budget, &b, pool, &cache).unwrap());
    pts.extend(baye_baye_with(&model, &budget, &b, pool, &cache).unwrap());
    pts
}

#[test]
fn tracing_on_vs_off_is_bit_identical() {
    let _g = OBS_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    // Events go to an in-memory sink so the test leaves no files behind.
    obs::set_sink_memory();

    obs::set_level(obs::Level::Off);
    obs::reset();
    let _ = obs::take_memory_lines();
    let pool = DsePool::new(2);
    let off = run_codesign(&pool);
    assert!(!off.is_empty());
    assert!(
        obs::snapshot().is_empty(),
        "level off must record nothing"
    );

    for level in [obs::Level::Summary, obs::Level::Trace] {
        obs::set_level(level);
        obs::reset();
        let _ = obs::take_memory_lines();
        let on = run_codesign(&pool);
        assert_eq!(off, on, "tracing at {level:?} changed search results");

        let report = obs::snapshot();
        assert!(!report.is_empty(), "instrumentation recorded at {level:?}");
        assert!(report.counter("pucost.cache.misses").unwrap_or(0) > 0);
        assert!(report.counter("dse.candidates").unwrap_or(0) > 0);
        // The "mip-*" methods segment with the exact chain DP, not the
        // MILP solver, so mip.* counters stay 0 here; the pipeline
        // simulator behind every latency probe does fire.
        assert!(report.counter("spa.pipeline.segments").unwrap_or(0) > 0);
        assert!(report.span("codesign.run").is_some());
        let lines = obs::take_memory_lines();
        assert!(
            lines.iter().any(|l| l.contains("codesign.generation")),
            "convergence events missing at {level:?}"
        );
        if level == obs::Level::Trace {
            assert!(
                lines.iter().any(|l| l.contains("\"t\":\"span\"")),
                "trace level must write span lines"
            );
        }
    }
    obs::set_level(obs::Level::Off);
}

#[test]
fn trace_ids_and_flight_recorder_are_bit_invisible() {
    let _g = OBS_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    obs::set_sink_memory();
    obs::set_level(obs::Level::Off);
    obs::reset();
    let pool = DsePool::new(2);

    // Reference: recorder off, no trace id set.
    obs::flight::configure(0);
    obs::set_trace(0);
    let off = run_codesign(&pool);
    assert!(!off.is_empty());

    // Recorder on, under an active request trace id (the serving-layer
    // configuration): the search result must not move a bit, and the
    // recorder must have captured attributed events from the pool
    // workers (trace ids propagate across the DsePool fan-out).
    obs::flight::configure(4096);
    obs::flight::reset();
    {
        let _t = obs::TraceGuard::enter(77);
        let on = run_codesign(&pool);
        assert_eq!(off, on, "flight recorder + trace ids changed search results");
    }
    let dump = obs::flight::drain();
    let probes: Vec<_> = dump
        .events
        .iter()
        .filter(|e| e.name == "cache.batch_probe")
        .collect();
    assert!(!probes.is_empty(), "cache probes were noted");
    assert!(
        probes.iter().any(|e| e.trace == 77),
        "pool workers inherit the caller's trace id"
    );
    assert_eq!(obs::current_trace(), 0, "TraceGuard restored the idle state");
    obs::flight::reset();
    obs::flight::configure(0);
    obs::set_level(obs::Level::Off);
}

#[test]
fn engine_sweep_unchanged_by_tracing() {
    let _g = OBS_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    obs::set_sink_memory();
    obs::set_level(obs::Level::Off);
    let budget = HwBudget::nvdla_small();
    let run = || {
        AutoSeg::new(budget.clone())
            .max_pus(3)
            .max_segments(4)
            .threads(2)
            .run(&zoo::squeezenet1_0())
            .unwrap()
    };
    let off = run();

    obs::set_level(obs::Level::Trace);
    obs::reset();
    let on = run();
    assert_eq!(off.design, on.design);
    assert_eq!(off.explored, on.explored);
    assert_eq!(off.report.cycles, on.report.cycles);
    assert_eq!(off.report.seconds, on.report.seconds);

    let report = obs::snapshot();
    assert!(report.span("autoseg.engine").is_some());
    assert_eq!(
        report.counter("engine.shapes_feasible"),
        Some(on.explored as u64)
    );
    obs::set_level(obs::Level::Off);
}
