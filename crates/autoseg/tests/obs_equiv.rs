//! Determinism contract of the instrumentation: enabling `obs` tracing
//! must not change a single bit of any search result. Instrumentation
//! reads clocks but never feeds timing back into search decisions, so the
//! point clouds and engine outcomes with `OBS_LEVEL=trace` must equal the
//! `off` reference exactly.
//!
//! This lives in its own integration-test file (= its own process):
//! `obs::set_level` is process-global, so these tests must not share a
//! process with tests assuming the default `off` level.

use autoseg::codesign::{
    baye_baye_with, mip_baye_with, mip_heuristic_with, CodesignBudgets, DesignPoint,
};
use autoseg::dse::DsePool;
use autoseg::AutoSeg;
use nnmodel::zoo;
use pucost::EvalCache;
use spa_arch::HwBudget;

/// The obs level and sink are process-global: tests serialize on this.
static OBS_GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn budgets() -> CodesignBudgets {
    CodesignBudgets {
        hw_iters: 24,
        seg_iters: 32,
        seed: 5,
        threads: 2,
    }
}

/// The bench_dse workload: three methods on one shared cache.
fn run_codesign(pool: &DsePool) -> Vec<DesignPoint> {
    let model = zoo::alexnet_conv();
    let budget = HwBudget::nvdla_small();
    let b = budgets();
    let cache = EvalCache::default();
    let mut pts = mip_heuristic_with(&model, &budget, pool, &cache).unwrap();
    pts.extend(mip_baye_with(&model, &budget, &b, pool, &cache).unwrap());
    pts.extend(baye_baye_with(&model, &budget, &b, pool, &cache).unwrap());
    pts
}

#[test]
fn tracing_on_vs_off_is_bit_identical() {
    let _g = OBS_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    // Events go to an in-memory sink so the test leaves no files behind.
    obs::set_sink_memory();

    obs::set_level(obs::Level::Off);
    obs::reset();
    let _ = obs::take_memory_lines();
    let pool = DsePool::new(2);
    let off = run_codesign(&pool);
    assert!(!off.is_empty());
    assert!(
        obs::snapshot().is_empty(),
        "level off must record nothing"
    );

    for level in [obs::Level::Summary, obs::Level::Trace] {
        obs::set_level(level);
        obs::reset();
        let _ = obs::take_memory_lines();
        let on = run_codesign(&pool);
        assert_eq!(off, on, "tracing at {level:?} changed search results");

        let report = obs::snapshot();
        assert!(!report.is_empty(), "instrumentation recorded at {level:?}");
        assert!(report.counter("pucost.cache.misses").unwrap_or(0) > 0);
        assert!(report.counter("dse.candidates").unwrap_or(0) > 0);
        // The "mip-*" methods segment with the exact chain DP, not the
        // MILP solver, so mip.* counters stay 0 here; the pipeline
        // simulator behind every latency probe does fire.
        assert!(report.counter("spa.pipeline.segments").unwrap_or(0) > 0);
        assert!(report.span("codesign.run").is_some());
        let lines = obs::take_memory_lines();
        assert!(
            lines.iter().any(|l| l.contains("codesign.generation")),
            "convergence events missing at {level:?}"
        );
        if level == obs::Level::Trace {
            assert!(
                lines.iter().any(|l| l.contains("\"t\":\"span\"")),
                "trace level must write span lines"
            );
        }
    }
    obs::set_level(obs::Level::Off);
}

#[test]
fn engine_sweep_unchanged_by_tracing() {
    let _g = OBS_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    obs::set_sink_memory();
    obs::set_level(obs::Level::Off);
    let budget = HwBudget::nvdla_small();
    let run = || {
        AutoSeg::new(budget.clone())
            .max_pus(3)
            .max_segments(4)
            .threads(2)
            .run(&zoo::squeezenet1_0())
            .unwrap()
    };
    let off = run();

    obs::set_level(obs::Level::Trace);
    obs::reset();
    let on = run();
    assert_eq!(off.design, on.design);
    assert_eq!(off.explored, on.explored);
    assert_eq!(off.report.cycles, on.report.cycles);
    assert_eq!(off.report.seconds, on.report.seconds);

    let report = obs::snapshot();
    assert!(report.span("autoseg.engine").is_some());
    assert_eq!(
        report.counter("engine.shapes_feasible"),
        Some(on.explored as u64)
    );
    obs::set_level(obs::Level::Off);
}
