//! The anytime contract, end to end: killing a search at an arbitrary
//! generation and resuming it from its checkpoint produces **bit-identical**
//! results to the uninterrupted run — for every co-design method, any
//! thread count, and the engine sweep. This is the acceptance criterion
//! of the checkpoint/resume subsystem; if any piece of optimizer state
//! (RNG stream position, TPE history, cost-cache contents, best-so-far
//! points) were lost or reordered across the save/replay boundary, the
//! resumed trajectory would diverge and these comparisons would fail.

use autoseg::codesign::{run_codesign, CodesignBudgets, Method};
use autoseg::{AutoSeg, AutoSegError, CheckpointError, RunCtl, RunStatus, StopReason};
use nnmodel::zoo;
use spa_arch::HwBudget;
use std::path::PathBuf;

fn budgets(threads: usize) -> CodesignBudgets {
    CodesignBudgets {
        hw_iters: 32,
        seg_iters: 48,
        seed: 9,
        threads,
    }
}

/// A scratch checkpoint path unique to one (test, combination) pair, so
/// concurrently running tests never collide on disk.
fn ckpt_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("spa_resume_equiv");
    let _ = std::fs::create_dir_all(&dir);
    dir.join(format!("{tag}.ckpt"))
}

/// Kill a method's search after `kill` generations (checkpointing every
/// generation), resume, and demand the final point cloud equal `expect`.
fn kill_resume(
    method: Method,
    threads: usize,
    kill: u64,
    expect: &autoseg::codesign::CodesignRun,
) {
    let model = zoo::alexnet_conv();
    let budget = HwBudget::nvdla_small();
    let b = budgets(threads);
    let ckpt = ckpt_path(&format!("{}_t{threads}_k{kill}", method.label()));
    let cut = run_codesign(
        &model,
        &budget,
        &b,
        method,
        &RunCtl::none().stop_after_gens(kill).checkpoint(&ckpt, 1),
    )
    .unwrap();
    match cut.status {
        RunStatus::Partial(p) => {
            assert_eq!(p.completed_gens, kill, "{method} t={threads} k={kill}");
            assert_eq!(p.reason, StopReason::GenBudget);
            // The partial's points must be a prefix of the full run's.
            assert_eq!(
                cut.points[..],
                expect.points[..cut.points.len()],
                "{method} t={threads} k={kill}: partial is not a prefix"
            );
        }
        RunStatus::Complete => panic!("{method}: kill at {kill} gens finished the whole search"),
    }
    let resumed = run_codesign(&model, &budget, &b, method, &RunCtl::none().resume(&ckpt)).unwrap();
    assert!(resumed.status.is_complete());
    assert_eq!(
        resumed.points, expect.points,
        "{method} t={threads} k={kill}: kill+resume != uninterrupted"
    );
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn optimizer_methods_survive_any_kill_point_at_any_thread_count() {
    // The two methods with the most optimizer state to lose: TPE history
    // plus RNG stream (MipBaye), and the nested bi-loop whose inner
    // searches are seeded from global candidate indices (BayeBaye).
    let model = zoo::alexnet_conv();
    let budget = HwBudget::nvdla_small();
    for method in [Method::MipBaye, Method::BayeBaye] {
        let reference = run_codesign(&model, &budget, &budgets(1), method, &RunCtl::none()).unwrap();
        assert!(reference.status.is_complete());
        assert!(!reference.points.is_empty());
        for threads in [1, 2, 4] {
            // Thread-count invariance of the uninterrupted run…
            let full =
                run_codesign(&model, &budget, &budgets(threads), method, &RunCtl::none()).unwrap();
            assert_eq!(full.points, reference.points, "{method} t={threads}");
            // …and of every kill/resume split point.
            for kill in [1, 2, 3] {
                kill_resume(method, threads, kill, &reference);
            }
        }
    }
}

#[test]
fn every_method_survives_kill_and_resume() {
    let model = zoo::alexnet_conv();
    let budget = HwBudget::nvdla_small();
    for method in Method::ALL {
        let reference = run_codesign(&model, &budget, &budgets(2), method, &RunCtl::none()).unwrap();
        kill_resume(method, 2, 1, &reference);
    }
}

#[test]
fn engine_sweep_survives_kill_and_resume() {
    let budget = HwBudget::nvdla_small();
    for threads in [1, 4] {
        let eng = AutoSeg::new(budget.clone())
            .max_pus(4)
            .max_segments(6)
            .threads(threads);
        let full = eng.run(&zoo::squeezenet1_0()).unwrap();
        let ckpt = ckpt_path(&format!("engine_t{threads}"));
        let cut = eng
            .run_ctl(
                &zoo::squeezenet1_0(),
                &RunCtl::none().stop_after_gens(1).checkpoint(&ckpt, 1),
            )
            .unwrap();
        assert!(!cut.status.is_complete());
        let resumed = eng
            .run_ctl(&zoo::squeezenet1_0(), &RunCtl::none().resume(&ckpt))
            .unwrap();
        assert!(resumed.status.is_complete());
        let out = resumed.outcome.expect("feasible");
        assert_eq!(out.design, full.design, "t={threads}");
        assert_eq!(out.explored, full.explored);
        assert_eq!(out.report.cycles, full.report.cycles);
        assert_eq!(
            out.report.seconds.to_bits(),
            full.report.seconds.to_bits(),
            "t={threads}"
        );
        let _ = std::fs::remove_file(&ckpt);
    }
}

#[test]
fn resuming_a_finished_run_is_a_complete_noop() {
    let model = zoo::alexnet_conv();
    let budget = HwBudget::nvdla_small();
    let b = budgets(2);
    let ckpt = ckpt_path("finished");
    let full = run_codesign(
        &model,
        &budget,
        &b,
        Method::MipBaye,
        &RunCtl::none().checkpoint(&ckpt, 1),
    )
    .unwrap();
    assert!(full.status.is_complete());
    let resumed =
        run_codesign(&model, &budget, &b, Method::MipBaye, &RunCtl::none().resume(&ckpt)).unwrap();
    assert!(resumed.status.is_complete());
    assert_eq!(resumed.points, full.points);
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn resume_under_a_different_config_is_a_typed_mismatch() {
    let model = zoo::alexnet_conv();
    let budget = HwBudget::nvdla_small();
    let b = budgets(2);
    let ckpt = ckpt_path("mismatch");
    let _ = run_codesign(
        &model,
        &budget,
        &b,
        Method::MipBaye,
        &RunCtl::none().stop_after_gens(1).checkpoint(&ckpt, 1),
    )
    .unwrap();
    // Wrong method.
    let err = run_codesign(&model, &budget, &b, Method::MipAnneal, &RunCtl::none().resume(&ckpt))
        .unwrap_err();
    assert!(
        matches!(
            &err,
            AutoSegError::Checkpoint(CheckpointError::Mismatch { key, .. }) if key == "kind" || key == "method"
        ),
        "got {err}"
    );
    // Wrong iteration budget.
    let other = CodesignBudgets {
        hw_iters: 64,
        ..b
    };
    let err = run_codesign(&model, &budget, &other, Method::MipBaye, &RunCtl::none().resume(&ckpt))
        .unwrap_err();
    assert!(
        matches!(
            &err,
            AutoSegError::Checkpoint(CheckpointError::Mismatch { key, .. }) if key == "hw_iters"
        ),
        "got {err}"
    );
    // Missing file is a typed I/O error, not a panic.
    let err = run_codesign(
        &model,
        &budget,
        &b,
        Method::MipBaye,
        &RunCtl::none().resume(std::env::temp_dir().join("spa_resume_equiv/definitely_absent.ckpt")),
    )
    .unwrap_err();
    assert!(
        matches!(&err, AutoSegError::Checkpoint(CheckpointError::Io { .. })),
        "got {err}"
    );
    let _ = std::fs::remove_file(&ckpt);
}
