//! The fault-injection matrix: every scripted fault point either
//! recovers transparently (bit-identical results, `fault.recovered`
//! recorded) or surfaces as a typed error / typed partial — never a
//! panic, never a silently wrong result.
//!
//! Fault points exercised end to end:
//!
//! * `dse.worker`  — a pool worker dies mid-sweep; abandoned candidates
//!   are re-evaluated inline after the join.
//! * `cache.poison` — a cost-cache shard mutex is poisoned as a crashed
//!   thread would leave it; lookups and inserts recover via
//!   `into_inner`.
//! * `ckpt.torn`   — a checkpoint write is cut short mid-file; the torn
//!   file is detected at load as a typed `Corrupt`, and a clean re-run
//!   heals it.
//! * `obs.sink`    — the telemetry sink fails to write; it degrades to
//!   dropping lines (counted) and the search is undisturbed.
//! * `trace.dump`  — a flight-recorder dump is torn mid-write; it
//!   degrades typed (`false` + `sink_errors` counted), never a panic,
//!   and the recorder keeps capturing.
//! * `mip.node`    — a branch-and-bound worker dies mid-wave inside the
//!   MILP engine; the lost node re-evaluates inline in fixed task order,
//!   so the incumbent stays bit-identical at any thread count.
//!
//! Fault plans and the `obs` level are process-global, so every test
//! holds [`faultsim::exclusive`] for its whole body.

use autoseg::codesign::{run_codesign, CodesignBudgets, CodesignRun, Method};
use autoseg::{AutoSegError, CheckpointError, RunCtl, RunStatus, StopReason};
use nnmodel::zoo;
use spa_arch::HwBudget;
use std::time::Duration;

fn budgets(threads: usize) -> CodesignBudgets {
    CodesignBudgets {
        hw_iters: 24,
        seg_iters: 32,
        seed: 5,
        threads,
    }
}

fn run(method: Method, threads: usize, ctl: &RunCtl) -> Result<CodesignRun, AutoSegError> {
    run_codesign(
        &zoo::alexnet_conv(),
        &HwBudget::nvdla_small(),
        &budgets(threads),
        method,
        ctl,
    )
}

fn ckpt_path(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("spa_fault_matrix");
    let _ = std::fs::create_dir_all(&dir);
    dir.join(format!("{tag}.ckpt"))
}

#[test]
fn worker_death_at_every_index_recovers_bit_identically() {
    let _x = faultsim::exclusive();
    obs::set_sink_memory();
    obs::set_level(obs::Level::Summary);
    obs::reset();
    let clean = run(Method::MipBaye, 4, &RunCtl::none()).unwrap();
    faultsim::arm("dse.worker@*").expect("plan parses");
    let faulted = run(Method::MipBaye, 4, &RunCtl::none()).unwrap();
    let injected = faultsim::injected_count();
    faultsim::disarm();
    assert!(faulted.status.is_complete());
    assert_eq!(
        faulted.points, clean.points,
        "worker deaths changed the point cloud"
    );
    assert!(injected > 0, "the fault plan never fired");
    let report = obs::snapshot();
    assert!(report.counter("fault.injected").unwrap_or(0) > 0);
    assert!(report.counter("fault.recovered").unwrap_or(0) > 0);
    obs::set_level(obs::Level::Off);
}

/// A 10-item knapsack whose LP relaxation is fractional at the root, so
/// the engine must branch through several waves of node tasks — enough
/// arrivals for both an index-scripted and an always-on `mip.node` plan.
fn branching_milp() -> mip::Problem {
    let mut p = mip::Problem::new(mip::Sense::Maximize);
    let values = [9.0, 7.0, 8.0, 3.0, 5.0, 11.0, 4.0, 6.0, 10.0, 2.0];
    let weights = [5.0, 4.0, 5.0, 2.0, 3.0, 7.0, 3.0, 4.0, 6.0, 1.0];
    let mut obj = mip::LinExpr::new();
    let mut load = mip::LinExpr::new();
    for (i, (&v, &w)) in values.iter().zip(&weights).enumerate() {
        let x = p.add_binary(format!("x{i}"));
        obj.add_term(x, v);
        load.add_term(x, w);
    }
    p.set_objective(obj);
    p.add_constraint(load, mip::Cmp::Le, 17.0);
    p
}

#[test]
fn mip_node_death_mid_branch_and_bound_recovers_bit_identically() {
    let _x = faultsim::exclusive();
    obs::set_sink_memory();
    obs::set_level(obs::Level::Summary);
    obs::reset();
    let p = branching_milp();
    // Presolve off so the engine genuinely branches instead of fixing.
    let solver = mip::Solver::new().presolve(false);
    for threads in [1usize, 4] {
        let pool = autoseg::dse::DsePool::new(threads);
        let clean = solver.solve_with_pool(&p, &pool).expect("valid problem");
        assert_eq!(clean.status, mip::SolveStatus::Optimal);
        assert!(clean.nodes > 3, "instance too easy to exercise waves");
        for plan in ["mip.node#2", "mip.node@*"] {
            faultsim::arm(plan).expect("plan parses");
            let faulted = solver.solve_with_pool(&p, &pool).expect("valid problem");
            let injected = faultsim::injected_count();
            faultsim::disarm();
            assert!(
                injected >= 1,
                "plan {plan} never fired at {threads} threads"
            );
            assert_eq!(faulted.status, clean.status, "plan {plan}, {threads} threads");
            assert_eq!(
                faulted.objective.to_bits(),
                clean.objective.to_bits(),
                "plan {plan}, {threads} threads: objective drifted"
            );
            assert_eq!(
                faulted.values(),
                clean.values(),
                "plan {plan}, {threads} threads: incumbent drifted"
            );
            assert_eq!(
                faulted.nodes, clean.nodes,
                "plan {plan}, {threads} threads: node count drifted"
            );
        }
    }
    let report = obs::snapshot();
    assert!(report.counter("fault.injected").unwrap_or(0) > 0);
    assert!(
        report.counter("fault.recovered").unwrap_or(0)
            >= report.counter("fault.injected").unwrap_or(0),
        "every injected node death must be recovered"
    );
    obs::set_level(obs::Level::Off);
}

#[test]
fn cache_poison_recovers_and_results_stay_correct() {
    let _x = faultsim::exclusive();
    obs::set_sink_memory();
    obs::set_level(obs::Level::Summary);
    obs::reset();
    let clean = run(Method::MipHeuristic, 2, &RunCtl::none()).unwrap();
    faultsim::arm("cache.poison@3").expect("plan parses");
    let faulted = run(Method::MipHeuristic, 2, &RunCtl::none()).unwrap();
    let injected = faultsim::injected_count();
    faultsim::disarm();
    assert_eq!(
        faulted.points, clean.points,
        "a poisoned cache shard changed results"
    );
    assert_eq!(injected, 1, "exactly the third miss poisons");
    let report = obs::snapshot();
    assert!(report.counter("fault.injected").unwrap_or(0) >= 1);
    assert!(report.counter("fault.recovered").unwrap_or(0) >= 1);
    obs::set_level(obs::Level::Off);
}

#[test]
fn torn_checkpoint_write_yields_typed_error_not_panic() {
    let _x = faultsim::exclusive();
    obs::set_sink_memory();
    obs::set_level(obs::Level::Summary);
    obs::reset();
    let ckpt = ckpt_path("torn");
    let full = run(Method::MipBaye, 2, &RunCtl::none()).unwrap();

    // Every checkpoint write in this run is torn mid-file.
    faultsim::arm("ckpt.torn@*").expect("plan parses");
    let cut = run(
        Method::MipBaye,
        2,
        &RunCtl::none().stop_after_gens(1).checkpoint(&ckpt, 1),
    )
    .unwrap();
    let injected = faultsim::injected_count();
    faultsim::disarm();
    assert!(!cut.status.is_complete());
    assert!(injected >= 1, "no torn write was injected");
    assert!(
        obs::snapshot().counter("fault.injected").unwrap_or(0) >= 1,
        "injections must be observable"
    );

    // The torn file is detected at load — a typed Corrupt, not garbage
    // results and not a panic.
    let err = run(Method::MipBaye, 2, &RunCtl::none().resume(&ckpt)).unwrap_err();
    assert!(
        matches!(
            &err,
            AutoSegError::Checkpoint(CheckpointError::Corrupt { .. })
        ),
        "got {err}"
    );

    // A clean re-run overwrites the torn file and resume works again.
    let cut = run(
        Method::MipBaye,
        2,
        &RunCtl::none().stop_after_gens(1).checkpoint(&ckpt, 1),
    )
    .unwrap();
    assert!(!cut.status.is_complete());
    let resumed = run(Method::MipBaye, 2, &RunCtl::none().resume(&ckpt)).unwrap();
    assert!(resumed.status.is_complete());
    assert_eq!(resumed.points, full.points, "healed resume == uninterrupted");
    let _ = std::fs::remove_file(&ckpt);
    obs::set_level(obs::Level::Off);
}

#[test]
fn sink_failure_never_disturbs_the_search() {
    let _x = faultsim::exclusive();
    obs::set_sink_memory();
    obs::set_level(obs::Level::Summary);
    obs::reset();
    // MipBaye emits `codesign.generation` events, so the faulted run is
    // guaranteed to exercise the sink.
    let clean = run(Method::MipBaye, 2, &RunCtl::none()).unwrap();
    let _ = obs::take_memory_lines();
    let before = obs::sink_errors();
    faultsim::arm("obs.sink@1").expect("plan parses");
    let faulted = run(Method::MipBaye, 2, &RunCtl::none()).unwrap();
    faultsim::disarm();
    assert_eq!(
        faulted.points, clean.points,
        "a dead telemetry sink changed results"
    );
    assert!(
        obs::sink_errors() > before,
        "the sink failure must be counted"
    );
    obs::set_level(obs::Level::Off);
}

#[test]
fn torn_flight_dump_degrades_typed_not_panic() {
    let _x = faultsim::exclusive();
    obs::set_sink_memory();
    obs::flight::configure(64);
    obs::flight::reset();
    obs::flight::note("fault.matrix", 1, 2);
    // Clean dump first: succeeds and lands in the sink.
    let _ = obs::take_memory_lines();
    assert!(obs::flight::dump_to_sink(), "clean dump succeeds");
    assert!(
        obs::take_memory_lines().iter().any(|l| l.contains("\"t\":\"flight\"")),
        "clean dump reaches the sink"
    );
    // Torn dump: the first dump attempt fails typed — `false` comes
    // back, the shared sink-error counter increments, nothing panics.
    let before = obs::sink_errors();
    faultsim::arm("trace.dump@1").expect("plan parses");
    assert!(!obs::flight::dump_to_sink(), "torn dump reports failure");
    faultsim::disarm();
    assert!(
        obs::sink_errors() > before,
        "the torn dump must be counted as a sink error"
    );
    // The recorder itself is unharmed: events still drain.
    let dump = obs::flight::drain();
    assert!(
        dump.events.iter().any(|e| e.name == "fault.matrix"),
        "recorder survives a torn dump"
    );
    obs::flight::reset();
    obs::flight::configure(0);
}

#[test]
fn deadline_stop_is_a_typed_partial_never_a_panic() {
    let _x = faultsim::exclusive();
    // An already-expired deadline: cooperative stop before any work.
    let cut = run(
        Method::MipBaye,
        2,
        &RunCtl::none().deadline(Duration::ZERO),
    )
    .unwrap();
    match cut.status {
        RunStatus::Partial(p) => {
            assert_eq!(p.completed_gens, 0);
            assert_eq!(p.reason, StopReason::Deadline);
            assert!(p.planned_gens > 0);
        }
        RunStatus::Complete => panic!("an expired deadline cannot complete"),
    }
    assert!(cut.points.is_empty());
    // A generous deadline changes nothing.
    let clean = run(Method::MipBaye, 2, &RunCtl::none()).unwrap();
    let relaxed = run(
        Method::MipBaye,
        2,
        &RunCtl::none().deadline(Duration::from_secs(3600)),
    )
    .unwrap();
    assert!(relaxed.status.is_complete());
    assert_eq!(relaxed.points, clean.points);
}
