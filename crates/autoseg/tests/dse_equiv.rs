//! Determinism contract of the parallel DSE executor: every co-design
//! method, and the AutoSeg engine sweep, must produce *bit-identical*
//! results for any worker count. `threads = 1` is the serial reference
//! path (no threads are spawned), so these tests pin parallel == serial.

use autoseg::codesign::{
    baye_baye_with, baye_heuristic_with, mip_anneal_with, mip_baye_with, mip_heuristic_with,
    mip_random_with, CodesignBudgets, DesignPoint,
};
use autoseg::dse::DsePool;
use autoseg::AutoSeg;
use nnmodel::zoo;
use pucost::EvalCache;
use spa_arch::HwBudget;

fn budgets() -> CodesignBudgets {
    CodesignBudgets {
        hw_iters: 32,
        seg_iters: 48,
        seed: 9,
        threads: 1,
    }
}

/// Runs all six methods on one pool, each with a fresh cache.
fn run_all(pool: &DsePool) -> Vec<(&'static str, Vec<DesignPoint>)> {
    let model = zoo::alexnet_conv();
    let budget = HwBudget::nvdla_small();
    let b = budgets();
    vec![
        (
            "mip-heuristic",
            mip_heuristic_with(&model, &budget, pool, &EvalCache::default()).unwrap(),
        ),
        (
            "mip-random",
            mip_random_with(&model, &budget, &b, pool, &EvalCache::default()).unwrap(),
        ),
        (
            "mip-baye",
            mip_baye_with(&model, &budget, &b, pool, &EvalCache::default()).unwrap(),
        ),
        (
            "baye-heuristic",
            baye_heuristic_with(&model, &budget, &b, pool, &EvalCache::default()).unwrap(),
        ),
        (
            "baye-baye",
            baye_baye_with(&model, &budget, &b, pool, &EvalCache::default()).unwrap(),
        ),
        (
            "mip-anneal",
            mip_anneal_with(&model, &budget, &b, pool, &EvalCache::default()).unwrap(),
        ),
    ]
}

#[test]
fn parallel_codesign_matches_serial_reference() {
    let serial = run_all(&DsePool::new(1));
    for (name, pts) in &serial {
        assert!(!pts.is_empty(), "{name} produced no points");
    }
    for threads in [2, 4] {
        let parallel = run_all(&DsePool::new(threads));
        for ((name, s), (_, p)) in serial.iter().zip(&parallel) {
            assert_eq!(s, p, "{name} diverged at {threads} threads");
        }
    }
}

#[test]
fn public_entry_points_honor_the_threads_field() {
    // The plain (non-`_with`) entry points build their pool from
    // `budgets.threads`; the point clouds must not depend on its value.
    let model = zoo::alexnet_conv();
    let budget = HwBudget::nvdla_small();
    let serial = autoseg::codesign::mip_random(&model, &budget, &budgets()).unwrap();
    let parallel = autoseg::codesign::mip_random(
        &model,
        &budget,
        &CodesignBudgets {
            threads: 4,
            ..budgets()
        },
    )
    .unwrap();
    assert_eq!(serial, parallel);
}

#[test]
fn shared_cache_reuse_does_not_change_points() {
    // Re-running a search on an already-warm cache must return the same
    // points while serving (almost) everything from memo.
    let model = zoo::alexnet_conv();
    let budget = HwBudget::nvdla_small();
    let pool = DsePool::new(2);
    let cache = EvalCache::default();
    let cold = mip_heuristic_with(&model, &budget, &pool, &cache).unwrap();
    let (cold_hits, cold_misses) = (cache.hits(), cache.misses());
    let warm = mip_heuristic_with(&model, &budget, &pool, &cache).unwrap();
    assert_eq!(cold, warm);
    assert_eq!(
        cache.misses(),
        cold_misses,
        "warm rerun should add no new cache entries"
    );
    assert!(cache.hits() > cold_hits);
    assert!(
        cache.hit_rate() > 0.5,
        "hit rate {:.3} after warm rerun",
        cache.hit_rate()
    );
}

#[test]
fn engine_sweep_is_thread_count_invariant() {
    let budget = HwBudget::nvdla_small();
    let serial = AutoSeg::new(budget.clone())
        .max_pus(3)
        .max_segments(4)
        .threads(1)
        .run(&zoo::squeezenet1_0())
        .unwrap();
    for threads in [2, 4] {
        let parallel = AutoSeg::new(budget.clone())
            .max_pus(3)
            .max_segments(4)
            .threads(threads)
            .run(&zoo::squeezenet1_0())
            .unwrap();
        assert_eq!(serial.explored, parallel.explored, "{threads} threads");
        assert_eq!(serial.design, parallel.design, "{threads} threads");
        assert_eq!(serial.report.cycles, parallel.report.cycles);
        assert_eq!(serial.report.seconds, parallel.report.seconds);
        assert_eq!(
            serial.report.energy.total_pj(),
            parallel.report.energy.total_pj()
        );
    }
}
